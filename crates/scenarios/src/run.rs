//! One-call runners wiring scenarios, stacks and attack taps together.

use adassure_control::pipeline::{AdStack, StackConfig};
use adassure_control::ControllerKind;
use adassure_sim::engine::{Engine, SensorTap, SimConfig, SimOutput};
use adassure_sim::SimError;

use crate::Scenario;

/// The engine (simulator + track) for a scenario and seed.
pub fn engine_for(scenario: &Scenario, seed: u64) -> Engine {
    let config = SimConfig::new(scenario.duration).with_seed(seed);
    Engine::new(config, scenario.track.clone())
}

/// The standard stack configuration for a scenario.
pub fn stack_config(scenario: &Scenario, controller: ControllerKind) -> StackConfig {
    StackConfig::new(controller).with_cruise_speed(scenario.cruise_speed)
}

/// Runs the scenario with no attack (a golden run).
///
/// # Errors
///
/// Propagates simulator errors ([`SimError`]); a standard scenario with a
/// standard stack should never produce one.
pub fn clean(
    scenario: &Scenario,
    controller: ControllerKind,
    seed: u64,
) -> Result<SimOutput, SimError> {
    let mut stack = AdStack::new(stack_config(scenario, controller), scenario.track.clone());
    engine_for(scenario, seed).run(&mut stack)
}

/// Runs the scenario with an attack tap between sensors and stack.
///
/// # Errors
///
/// Propagates simulator errors ([`SimError`]).
pub fn with_tap(
    scenario: &Scenario,
    controller: ControllerKind,
    seed: u64,
    tap: &mut dyn SensorTap,
) -> Result<SimOutput, SimError> {
    let mut stack = AdStack::new(stack_config(scenario, controller), scenario.track.clone());
    engine_for(scenario, seed).run_with_tap(&mut stack, tap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScenarioKind;
    use adassure_sim::sensor::SensorFrame;
    use adassure_sim::vehicle::VehicleState;
    use adassure_trace::well_known as sig;

    #[test]
    fn clean_run_reaches_goal_on_open_scenarios() {
        for kind in [ScenarioKind::Straight, ScenarioKind::LaneChange] {
            let scenario = Scenario::of_kind(kind).unwrap();
            let out = clean(&scenario, ControllerKind::PurePursuit, 1).unwrap();
            assert!(out.reached_goal, "{kind}");
        }
    }

    #[test]
    fn closed_scenarios_keep_lapping() {
        let scenario = Scenario::of_kind(ScenarioKind::Circle).unwrap();
        let out = clean(&scenario, ControllerKind::Stanley, 2).unwrap();
        let progress = out.trace.require(sig::TRUE_PROGRESS).unwrap();
        let total = progress.last().unwrap().value;
        assert!(
            total > scenario.route_length(),
            "should complete more than one lap: {total}"
        );
    }

    #[test]
    fn taps_are_applied() {
        struct KillGnss;
        impl SensorTap for KillGnss {
            fn tap(&mut self, frame: &mut SensorFrame, _truth: &VehicleState) {
                frame.gnss = None;
            }
        }
        let scenario = Scenario::of_kind(ScenarioKind::Straight).unwrap();
        let out = with_tap(&scenario, ControllerKind::PurePursuit, 3, &mut KillGnss).unwrap();
        assert!(
            out.trace.series_by_name(sig::GNSS_X).is_none(),
            "no fixes should have been recorded"
        );
    }

    #[test]
    fn seeds_differentiate_runs() {
        let scenario = Scenario::of_kind(ScenarioKind::Straight).unwrap();
        let a = clean(&scenario, ControllerKind::PurePursuit, 10).unwrap();
        let b = clean(&scenario, ControllerKind::PurePursuit, 11).unwrap();
        assert_ne!(a.trace, b.trace);
    }
}
