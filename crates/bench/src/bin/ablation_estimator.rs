//! **AB3 — Estimator ablation (extension)**: how estimator robustness
//! interacts with assertion-based debugging. Compares the complementary
//! filter, a standard EKF and an innovation-gated EKF under the GNSS attack
//! classes: detection latency *and* physical damage (worst true cross-track
//! error).
//!
//! The expected tension: gating *masks* spoofed fixes from the behavioural
//! assertions (the vehicle stays on the true path) while the innovation
//! assertion fires regardless — robustness and diagnosability are
//! complementary, not competing.
//!
//! Regenerate with:
//! `cargo run --release -p adassure-bench --bin ablation_estimator`

use adassure_attacks::campaign::AttackSpec;
use adassure_attacks::{Channel, Window};
use adassure_bench::{attacks_for, catalog_for, fmt_mean_std};
use adassure_control::pipeline::{AdStack, EstimatorKind, StackConfig};
use adassure_control::ControllerKind;
use adassure_core::checker;
use adassure_scenarios::{run, Scenario, ScenarioKind};
use adassure_trace::well_known as sig;

fn main() {
    let scenario = Scenario::of_kind(ScenarioKind::SCurve).expect("library scenario");
    let cat = catalog_for(&scenario);
    let seeds = [1u64, 2, 3];

    println!(
        "AB3: estimator ablation under GNSS attacks (scenario `{}`, pure_pursuit, seeds {seeds:?})",
        scenario.kind
    );
    println!("cells: detection latency (s) | worst true |xtrack| (m), mean over seeds\n");
    print!("{:<16}", "attack");
    for kind in EstimatorKind::ALL {
        print!("{:>26}", kind.name());
    }
    println!();

    for attack in attacks_for(&scenario)
        .into_iter()
        .filter(|a| a.kind.channel() == Channel::Gnss)
    {
        let spec = AttackSpec::new(attack.kind, Window::from_start(scenario.attack_start));
        print!("{:<16}", spec.name());
        for estimator in EstimatorKind::ALL {
            let mut latencies = Vec::new();
            let mut damages = Vec::new();
            let mut detected = 0usize;
            for &seed in &seeds {
                let config = StackConfig::new(ControllerKind::PurePursuit)
                    .with_cruise_speed(scenario.cruise_speed)
                    .with_estimator(estimator);
                let mut stack = AdStack::new(config, scenario.track.clone());
                let mut injector = spec.injector(seed);
                let out = run::engine_for(&scenario, seed)
                    .run_with_tap(&mut stack, &mut injector)
                    .expect("run");
                let report = checker::check(&cat, &out.trace);
                if let Some(latency) = report.detection_latency(spec.window.start) {
                    detected += 1;
                    latencies.push(latency);
                }
                let damage = out
                    .trace
                    .require(sig::TRUE_XTRACK_ERR)
                    .expect("signal")
                    .samples()
                    .iter()
                    .filter(|s| s.time >= spec.window.start)
                    .map(|s| s.value.abs())
                    .fold(0.0f64, f64::max);
                damages.push(damage);
            }
            let latency = if latencies.is_empty() {
                format!("miss {}/{}", detected, seeds.len())
            } else {
                fmt_mean_std(&latencies)
            };
            print!("{:>26}", format!("{latency} | {}", fmt_mean_std(&damages)));
        }
        println!();
    }
    println!("\n(the gated EKF keeps the vehicle physically safer under spoofing —");
    println!(" the rejected fixes never steer the car — while the innovation");
    println!(" assertion still fires, so detection is not traded away.)");
}
