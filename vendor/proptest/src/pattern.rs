//! Tiny regex-like string generation: character classes (`[a-z0-9_]`),
//! literals, and repetition (`{m}`, `{m,n}`, `?`, `*`, `+`), which covers
//! the patterns this workspace uses as string strategies.

use crate::test_runner::TestRng;

struct Atom {
    /// Inclusive character ranges to choose among.
    choices: Vec<(char, char)>,
    min: usize,
    max: usize,
}

/// Generates one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let atoms = parse(pattern);
    let mut out = String::new();
    for atom in &atoms {
        let reps = rng.u64_in(atom.min as u64, atom.max as u64 + 1) as usize;
        for _ in 0..reps {
            let total: u32 = atom
                .choices
                .iter()
                .map(|&(lo, hi)| hi as u32 - lo as u32 + 1)
                .sum();
            let mut pick = rng.u64_in(0, u64::from(total)) as u32;
            for &(lo, hi) in &atom.choices {
                let span = hi as u32 - lo as u32 + 1;
                if pick < span {
                    out.push(char::from_u32(lo as u32 + pick).expect("valid char range"));
                    break;
                }
                pick -= span;
            }
        }
    }
    out
}

fn parse(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let choices = match chars[i] {
            '[' => {
                i += 1;
                let mut choices = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let lo = chars[i];
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        choices.push((lo, chars[i + 2]));
                        i += 3;
                    } else {
                        choices.push((lo, lo));
                        i += 1;
                    }
                }
                assert!(
                    i < chars.len(),
                    "unterminated character class in `{pattern}`"
                );
                i += 1; // ']'
                choices
            }
            '\\' => {
                i += 1;
                assert!(i < chars.len(), "dangling escape in `{pattern}`");
                let c = chars[i];
                i += 1;
                vec![(c, c)]
            }
            c => {
                i += 1;
                vec![(c, c)]
            }
        };
        let (min, max) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unterminated repetition")
                    + i;
                let spec: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad repetition lower bound"),
                        hi.trim().parse().expect("bad repetition upper bound"),
                    ),
                    None => {
                        let n = spec.trim().parse().expect("bad repetition count");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            _ => (1, 1),
        };
        atoms.push(Atom { choices, min, max });
    }
    atoms
}

#[cfg(test)]
mod tests {
    use super::generate;
    use crate::test_runner::TestRng;

    #[test]
    fn identifier_pattern_generates_matching_strings() {
        let mut rng = TestRng::deterministic("pattern");
        for _ in 0..500 {
            let s = generate("[a-z][a-z0-9_]{0,8}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 9, "{s}");
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_lowercase(), "{s}");
            assert!(
                cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "{s}"
            );
        }
    }

    #[test]
    fn literals_and_counts() {
        let mut rng = TestRng::deterministic("lit");
        assert_eq!(generate("abc", &mut rng), "abc");
        let s = generate("x{3}", &mut rng);
        assert_eq!(s, "xxx");
    }
}
