//! Typed observability events and the severity/sampling filter.
//!
//! Events are `Copy` and carry inline [`Label`]s, so constructing and
//! filtering one on the checker's hot path never allocates. Serialization
//! to JSONL is hand-written into a caller-supplied `String` buffer
//! ([`Event::write_jsonl`]) instead of going through serde, which keeps the
//! emit path allocation-free once the buffer has warmed up.

use crate::label::Label;
use std::fmt::Write as _;

/// The verdict an assertion produced for a cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Not yet evaluated (no samples seen).
    Unknown,
    /// Evaluated and satisfied.
    Pass,
    /// Inputs too unhealthy to trust an evaluation.
    Inconclusive,
    /// Evaluated and violated.
    Violated,
}

impl Verdict {
    /// Stable wire/export name.
    pub fn name(self) -> &'static str {
        match self {
            Verdict::Unknown => "unknown",
            Verdict::Pass => "pass",
            Verdict::Inconclusive => "inconclusive",
            Verdict::Violated => "violated",
        }
    }

    /// Dense index for counter arrays.
    pub fn index(self) -> usize {
        self as usize
    }

    /// All verdicts, in `index()` order.
    pub const ALL: [Verdict; 4] = [
        Verdict::Unknown,
        Verdict::Pass,
        Verdict::Inconclusive,
        Verdict::Violated,
    ];
}

/// Telemetry-health state of a monitored assertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Health {
    /// Inputs fresh and finite; verdicts are trustworthy.
    Active,
    /// Some inputs poisoned or stale; verdicts may be Inconclusive.
    Degraded,
    /// Quarantined after a sustained degraded streak.
    Suspended,
}

impl Health {
    /// Stable wire/export name.
    pub fn name(self) -> &'static str {
        match self {
            Health::Active => "active",
            Health::Degraded => "degraded",
            Health::Suspended => "suspended",
        }
    }

    /// Dense index for transition grids.
    pub fn index(self) -> usize {
        self as usize
    }

    /// All health states, in `index()` order.
    pub const ALL: [Health; 3] = [Health::Active, Health::Degraded, Health::Suspended];
}

/// Guardian supervision mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Guard {
    /// Normal operation.
    Nominal,
    /// Alarm under confirmation; widened thresholds active.
    Degraded,
    /// Confirmed violation; vehicle commanded to a safe stop.
    SafeStop,
}

impl Guard {
    /// Stable wire/export name.
    pub fn name(self) -> &'static str {
        match self {
            Guard::Nominal => "nominal",
            Guard::Degraded => "degraded",
            Guard::SafeStop => "safe_stop",
        }
    }

    /// Dense index for transition grids.
    pub fn index(self) -> usize {
        self as usize
    }

    /// All guardian modes, in `index()` order.
    pub const ALL: [Guard; 3] = [Guard::Nominal, Guard::Degraded, Guard::SafeStop];
}

/// Event severity, ordered from least to most urgent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Sev {
    /// Routine state change (e.g. a flip back to pass).
    Info,
    /// Degraded trust (flip to inconclusive, health drop).
    Warn,
    /// Violation or safety action.
    Alarm,
}

impl Sev {
    /// Stable wire/export name.
    pub fn name(self) -> &'static str {
        match self {
            Sev::Info => "info",
            Sev::Warn => "warn",
            Sev::Alarm => "alarm",
        }
    }
}

/// Discriminant of an [`Event`], used for filter bitmasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// An assertion's verdict changed between cycles.
    VerdictFlip,
    /// An assertion's telemetry-health state changed.
    HealthTransition,
    /// The guardian changed supervision mode.
    GuardTransition,
    /// A run (trace replay / campaign cell) started.
    RunStart,
    /// A run finished.
    RunEnd,
}

impl EventKind {
    /// Stable wire/export name.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::VerdictFlip => "verdict_flip",
            EventKind::HealthTransition => "health_transition",
            EventKind::GuardTransition => "guard_transition",
            EventKind::RunStart => "run_start",
            EventKind::RunEnd => "run_end",
        }
    }

    /// Bit for this kind in an [`EventFilter`] mask.
    pub fn bit(self) -> u8 {
        1 << (self as u8)
    }
}

/// A single observability event. `Copy`, allocation-free, timestamped in
/// simulation seconds (`t`), tagged with the originating run id.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// An assertion's verdict changed between consecutive cycles.
    VerdictFlip {
        /// Run the event belongs to.
        run: u64,
        /// Simulation time of the cycle, seconds.
        t: f64,
        /// Assertion id (e.g. "A7").
        assertion: Label,
        /// Verdict on the previous cycle.
        from: Verdict,
        /// Verdict on this cycle.
        to: Verdict,
    },
    /// An assertion's telemetry-health state changed.
    HealthTransition {
        /// Run the event belongs to.
        run: u64,
        /// Simulation time of the cycle, seconds.
        t: f64,
        /// Assertion id.
        assertion: Label,
        /// Previous health state.
        from: Health,
        /// New health state.
        to: Health,
    },
    /// The guardian changed supervision mode.
    GuardTransition {
        /// Run the event belongs to.
        run: u64,
        /// Simulation time of the cycle, seconds.
        t: f64,
        /// Previous mode.
        from: Guard,
        /// New mode.
        to: Guard,
    },
    /// A run started.
    RunStart {
        /// Run id.
        run: u64,
        /// Simulation time of the first cycle, seconds.
        t: f64,
    },
    /// A run finished.
    RunEnd {
        /// Run id.
        run: u64,
        /// Simulation time of the last cycle, seconds.
        t: f64,
        /// Cycles evaluated.
        cycles: u64,
        /// Violation episodes recorded.
        violations: u64,
    },
}

impl Event {
    /// This event's kind discriminant.
    pub fn kind(&self) -> EventKind {
        match self {
            Event::VerdictFlip { .. } => EventKind::VerdictFlip,
            Event::HealthTransition { .. } => EventKind::HealthTransition,
            Event::GuardTransition { .. } => EventKind::GuardTransition,
            Event::RunStart { .. } => EventKind::RunStart,
            Event::RunEnd { .. } => EventKind::RunEnd,
        }
    }

    /// Severity: flips into `Violated` and guardian escalations alarm,
    /// degradations warn, everything else is informational.
    pub fn severity(&self) -> Sev {
        match self {
            Event::VerdictFlip { to, .. } => match to {
                Verdict::Violated => Sev::Alarm,
                Verdict::Inconclusive => Sev::Warn,
                Verdict::Pass | Verdict::Unknown => Sev::Info,
            },
            Event::HealthTransition { to, .. } => match to {
                Health::Active => Sev::Info,
                Health::Degraded | Health::Suspended => Sev::Warn,
            },
            Event::GuardTransition { to, .. } => match to {
                Guard::Nominal => Sev::Info,
                Guard::Degraded => Sev::Warn,
                Guard::SafeStop => Sev::Alarm,
            },
            Event::RunStart { .. } | Event::RunEnd { .. } => Sev::Info,
        }
    }

    /// Simulation timestamp of the event, seconds.
    pub fn time(&self) -> f64 {
        match *self {
            Event::VerdictFlip { t, .. }
            | Event::HealthTransition { t, .. }
            | Event::GuardTransition { t, .. }
            | Event::RunStart { t, .. }
            | Event::RunEnd { t, .. } => t,
        }
    }

    /// Run id the event belongs to.
    pub fn run(&self) -> u64 {
        match *self {
            Event::VerdictFlip { run, .. }
            | Event::HealthTransition { run, .. }
            | Event::GuardTransition { run, .. }
            | Event::RunStart { run, .. }
            | Event::RunEnd { run, .. } => run,
        }
    }

    /// Appends this event as one JSON object plus a trailing newline to
    /// `out`. Allocation-free once `out` has enough capacity. Non-finite
    /// timestamps are written as `null` (JSON has no NaN/Inf).
    pub fn write_jsonl(&self, out: &mut String) {
        fn num(out: &mut String, v: f64) {
            if v.is_finite() {
                let _ = write!(out, "{v}");
            } else {
                out.push_str("null");
            }
        }
        out.push_str("{\"kind\":\"");
        out.push_str(self.kind().name());
        out.push_str("\",\"run\":");
        let _ = write!(out, "{}", self.run());
        out.push_str(",\"t\":");
        num(out, self.time());
        match self {
            Event::VerdictFlip {
                assertion,
                from,
                to,
                ..
            } => {
                out.push_str(",\"assertion\":\"");
                out.push_str(assertion.as_str());
                out.push_str("\",\"from\":\"");
                out.push_str(from.name());
                out.push_str("\",\"to\":\"");
                out.push_str(to.name());
                out.push_str("\",\"sev\":\"");
                out.push_str(self.severity().name());
                out.push('"');
            }
            Event::HealthTransition {
                assertion,
                from,
                to,
                ..
            } => {
                out.push_str(",\"assertion\":\"");
                out.push_str(assertion.as_str());
                out.push_str("\",\"from\":\"");
                out.push_str(from.name());
                out.push_str("\",\"to\":\"");
                out.push_str(to.name());
                out.push('"');
            }
            Event::GuardTransition { from, to, .. } => {
                out.push_str(",\"from\":\"");
                out.push_str(from.name());
                out.push_str("\",\"to\":\"");
                out.push_str(to.name());
                out.push('"');
            }
            Event::RunStart { .. } => {}
            Event::RunEnd {
                cycles, violations, ..
            } => {
                out.push_str(",\"cycles\":");
                let _ = write!(out, "{cycles}");
                out.push_str(",\"violations\":");
                let _ = write!(out, "{violations}");
            }
        }
        out.push_str("}\n");
    }
}

/// Severity/sampling filter applied before an event reaches a sink.
///
/// The kind mask and minimum flip severity make the disabled configuration
/// a couple of predictable branches; `flip_stride` additionally samples
/// below-threshold verdict flips (1-in-N) so a chattering assertion cannot
/// flood the log while flips that cross `min_flip_sev` are always kept.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventFilter {
    /// Bitmask of accepted [`EventKind`]s (see [`EventKind::bit`]).
    pub kinds: u8,
    /// Verdict flips at or above this severity always pass.
    pub min_flip_sev: Sev,
    /// Keep 1-in-N verdict flips *below* `min_flip_sev`; `0` drops them.
    pub flip_stride: u32,
    seen_flips: u32,
}

impl EventFilter {
    /// Accept every event.
    pub fn all() -> Self {
        EventFilter {
            kinds: 0xff,
            min_flip_sev: Sev::Info,
            flip_stride: 1,
            seen_flips: 0,
        }
    }

    /// Accept nothing.
    pub fn none() -> Self {
        EventFilter {
            kinds: 0,
            min_flip_sev: Sev::Alarm,
            flip_stride: 0,
            seen_flips: 0,
        }
    }

    /// Default production filter: everything except informational verdict
    /// flips, which are sampled 1-in-32.
    pub fn default_sampled() -> Self {
        EventFilter {
            kinds: 0xff,
            min_flip_sev: Sev::Warn,
            flip_stride: 32,
            seen_flips: 0,
        }
    }

    /// Whether `ev` should be forwarded to the sink. Mutates the sampling
    /// counter for below-threshold flips; never allocates.
    #[inline]
    pub fn accepts(&mut self, ev: &Event) -> bool {
        if self.kinds & ev.kind().bit() == 0 {
            return false;
        }
        if let Event::VerdictFlip { .. } = ev {
            if ev.severity() < self.min_flip_sev {
                if self.flip_stride == 0 {
                    return false;
                }
                self.seen_flips = self.seen_flips.wrapping_add(1);
                return self.seen_flips.is_multiple_of(self.flip_stride);
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flip(to: Verdict) -> Event {
        Event::VerdictFlip {
            run: 0,
            t: 1.5,
            assertion: Label::new("A3"),
            from: Verdict::Pass,
            to,
        }
    }

    #[test]
    fn severity_classification() {
        assert_eq!(flip(Verdict::Violated).severity(), Sev::Alarm);
        assert_eq!(flip(Verdict::Inconclusive).severity(), Sev::Warn);
        assert_eq!(flip(Verdict::Pass).severity(), Sev::Info);
        let g = Event::GuardTransition {
            run: 0,
            t: 0.0,
            from: Guard::Degraded,
            to: Guard::SafeStop,
        };
        assert_eq!(g.severity(), Sev::Alarm);
    }

    #[test]
    fn jsonl_shape() {
        let mut out = String::new();
        flip(Verdict::Violated).write_jsonl(&mut out);
        assert_eq!(
            out,
            "{\"kind\":\"verdict_flip\",\"run\":0,\"t\":1.5,\"assertion\":\"A3\",\
             \"from\":\"pass\",\"to\":\"violated\",\"sev\":\"alarm\"}\n"
        );
        out.clear();
        Event::RunEnd {
            run: 7,
            t: 9.0,
            cycles: 100,
            violations: 2,
        }
        .write_jsonl(&mut out);
        assert_eq!(
            out,
            "{\"kind\":\"run_end\",\"run\":7,\"t\":9,\"cycles\":100,\"violations\":2}\n"
        );
    }

    #[test]
    fn jsonl_non_finite_time_is_null() {
        let mut out = String::new();
        Event::RunStart {
            run: 0,
            t: f64::NAN,
        }
        .write_jsonl(&mut out);
        assert!(out.contains("\"t\":null"));
    }

    #[test]
    fn filter_kind_mask() {
        let mut f = EventFilter::all();
        f.kinds = EventKind::GuardTransition.bit();
        assert!(!f.accepts(&flip(Verdict::Violated)));
        assert!(f.accepts(&Event::GuardTransition {
            run: 0,
            t: 0.0,
            from: Guard::Nominal,
            to: Guard::Degraded,
        }));
    }

    #[test]
    fn filter_samples_info_flips() {
        let mut f = EventFilter::default_sampled();
        // Alarm flips always pass.
        assert!(f.accepts(&flip(Verdict::Violated)));
        // Info flips pass 1-in-32.
        let kept = (0..64).filter(|_| f.accepts(&flip(Verdict::Pass))).count();
        assert_eq!(kept, 2);
        // Stride 0 drops them entirely.
        let mut none = EventFilter::all();
        none.min_flip_sev = Sev::Warn;
        none.flip_stride = 0;
        assert!(!none.accepts(&flip(Verdict::Pass)));
        assert!(none.accepts(&flip(Verdict::Inconclusive)));
    }
}
