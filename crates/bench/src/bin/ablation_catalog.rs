//! **AB2 — Catalog leave-one-out ablation**: remove each assertion in turn
//! and measure which attacks become undetected or slower to detect —
//! i.e. which assertion carries which attack class.
//!
//! Regenerate with:
//! `cargo run --release -p adassure-bench --bin ablation_catalog`

use adassure_attacks::campaign::AttackSpec;
use adassure_attacks::Window;
use adassure_bench::{attacks_for, catalog_config_for, run_attacked};
use adassure_control::ControllerKind;
use adassure_core::catalog;
use adassure_scenarios::{Scenario, ScenarioKind};

fn main() {
    let scenario = Scenario::of_kind(ScenarioKind::SCurve).expect("library scenario");
    let controller = ControllerKind::PurePursuit;
    let full = catalog::build(&catalog_config_for(&scenario));
    let attacks = attacks_for(&scenario);
    let seed = 1u64;

    // Cache per-attack traces once; re-checking different catalogs is cheap.
    println!(
        "AB2: leave-one-out catalog ablation (scenario `{}`, {} stack, seed {seed})",
        scenario.kind, controller
    );
    println!("cells: detection latency in seconds, `miss` when undetected\n");

    let mut traces = Vec::new();
    for attack in &attacks {
        let spec = AttackSpec::new(attack.kind, Window::from_start(scenario.attack_start));
        let (out, _) = run_attacked(&scenario, controller, &spec, seed, &full).expect("run");
        traces.push((spec, out.trace));
    }

    print!("{:<14}", "removed");
    for (spec, _) in &traces {
        print!("{:>11}", shorten(spec.name()));
    }
    println!();

    let mut rows: Vec<(String, Vec<Option<f64>>)> = Vec::new();
    // Baseline row: full catalog.
    rows.push((
        "(none)".to_owned(),
        traces
            .iter()
            .map(|(spec, trace)| {
                adassure_core::checker::check(&full, trace).detection_latency(spec.window.start)
            })
            .collect(),
    ));
    for removed in &full {
        let reduced: Vec<_> = full
            .iter()
            .filter(|a| a.id != removed.id)
            .cloned()
            .collect();
        rows.push((
            removed.id.as_str().to_owned(),
            traces
                .iter()
                .map(|(spec, trace)| {
                    adassure_core::checker::check(&reduced, trace)
                        .detection_latency(spec.window.start)
                })
                .collect(),
        ));
    }

    let baseline = rows[0].1.clone();
    for (name, latencies) in &rows {
        print!("{name:<14}");
        for (latency, base) in latencies.iter().zip(&baseline) {
            let cell = match latency {
                None => "miss".to_owned(),
                Some(l) => {
                    let degraded = base.map_or(false, |b| *l > b + 0.05);
                    if degraded {
                        format!("{l:.2}*")
                    } else {
                        format!("{l:.2}")
                    }
                }
            };
            print!("{cell:>11}");
        }
        println!();
    }
    println!("\n(* = slower than the full catalog; `miss` = attack lost. The matrix");
    println!(" shows the redundancy structure: most attacks are covered by several");
    println!(" assertions, while A13 uniquely carries the dropout class.)");
}

fn shorten(name: &str) -> String {
    name.replace("gnss_", "g_")
        .replace("wheel_speed_", "w_")
        .replace("compass_", "c_")
        .replace("imu_yaw_", "i_")
        .chars()
        .take(10)
        .collect()
}
