//! Observability configuration and the `ADASSURE_OBS` environment toggles.
//!
//! Mirrors the `ADASSURE_THREADS` convention from the campaign engine: an
//! env var for ad-hoc control from the shell, plus an explicit [`ObsConfig`]
//! for programmatic use (tests, bench bins).

use crate::event::EventFilter;
use std::path::PathBuf;

/// Env var toggling event emission: unset, `0` or `off` disables; `1`,
/// `on` or `sampled` enables (`sampled` applies the production filter that
/// samples informational verdict flips 1-in-32).
pub const OBS_ENV: &str = "ADASSURE_OBS";

/// Env var naming the JSONL output file used when [`OBS_ENV`] is enabled.
pub const OBS_PATH_ENV: &str = "ADASSURE_OBS_PATH";

/// Observability switches for a checker, guardian or campaign run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsConfig {
    /// Whether events are emitted at all.
    pub events: bool,
    /// Filter applied before an event reaches the sink.
    pub filter: EventFilter,
    /// Where the campaign engine writes merged JSONL (`None` keeps events
    /// in memory / discards them).
    pub jsonl_path: Option<PathBuf>,
    /// Sample wall-clock cycle timing every N cycles (power of two;
    /// rounded up if not). Timing an ~100 ns cycle with two `Instant`
    /// reads costs ~30-50%, so stride-1 is for benchmarks only.
    pub timing_stride: u32,
}

impl ObsConfig {
    /// Default stride between wall-clock timing samples.
    pub const DEFAULT_TIMING_STRIDE: u32 = 64;

    /// Everything off: no events, no timing. Metrics counters still run
    /// (they are a few adds per cycle and keep reports comparable).
    pub fn disabled() -> Self {
        ObsConfig {
            events: false,
            filter: EventFilter::none(),
            jsonl_path: None,
            timing_stride: Self::DEFAULT_TIMING_STRIDE,
        }
    }

    /// Events on with the accept-everything filter.
    pub fn enabled() -> Self {
        ObsConfig {
            events: true,
            filter: EventFilter::all(),
            jsonl_path: None,
            timing_stride: Self::DEFAULT_TIMING_STRIDE,
        }
    }

    /// Reads [`OBS_ENV`] / [`OBS_PATH_ENV`]. Unrecognized values of
    /// [`OBS_ENV`] count as enabled (so `ADASSURE_OBS=yes` works), and the
    /// path is only honoured when events are on.
    pub fn from_env() -> Self {
        let mut cfg = match std::env::var(OBS_ENV) {
            Err(_) => return ObsConfig::disabled(),
            Ok(v) => match v.trim() {
                "" | "0" | "off" => return ObsConfig::disabled(),
                "sampled" => {
                    let mut cfg = ObsConfig::enabled();
                    cfg.filter = EventFilter::default_sampled();
                    cfg
                }
                _ => ObsConfig::enabled(),
            },
        };
        cfg.jsonl_path = std::env::var(OBS_PATH_ENV).ok().map(PathBuf::from);
        cfg
    }

    /// `timing_stride` rounded up to a power of two, as a cycle-counter
    /// mask (`cycle & mask == 0` → take a timing sample).
    pub fn timing_mask(&self) -> u64 {
        u64::from(self.timing_stride.max(1)).next_power_of_two() - 1
    }

    /// Builder-style: set the JSONL output path.
    pub fn with_jsonl_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.jsonl_path = Some(path.into());
        self
    }
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_emits_nothing() {
        let cfg = ObsConfig::disabled();
        assert!(!cfg.events);
        assert_eq!(cfg.filter, EventFilter::none());
    }

    #[test]
    fn timing_mask_rounds_to_power_of_two() {
        let mut cfg = ObsConfig::enabled();
        cfg.timing_stride = 64;
        assert_eq!(cfg.timing_mask(), 63);
        cfg.timing_stride = 1;
        assert_eq!(cfg.timing_mask(), 0, "stride 1 samples every cycle");
        cfg.timing_stride = 100;
        assert_eq!(cfg.timing_mask(), 127);
        cfg.timing_stride = 0;
        assert_eq!(cfg.timing_mask(), 0);
    }

    // `from_env` is covered by the campaign integration tests; mutating
    // process-global env vars inside the parallel unit-test runner would
    // race with other tests.
}
