//! The campaign executor's central guarantee: results are bit-identical
//! regardless of worker count, because cells are seeded independently and
//! results are merged by cell index.

use adassure_control::ControllerKind;
use adassure_exp::grid::{AttackSet, Grid};
use adassure_exp::{par, Campaign};
use adassure_scenarios::ScenarioKind;

fn small_grid() -> Grid {
    Grid::new()
        .scenarios([ScenarioKind::Straight])
        .controllers([ControllerKind::PurePursuit])
        .attacks(AttackSet::Channel(adassure_attacks::Channel::ImuYaw))
        .include_clean(true)
        .seeds([1, 2])
}

/// One test body owns the `ADASSURE_THREADS` variable for the whole file —
/// per-case `#[test]` functions would race on the process environment.
#[test]
fn campaign_json_is_identical_across_thread_counts() {
    std::env::set_var(par::THREADS_ENV, "1");
    assert_eq!(par::thread_count(), 1);
    let serial = Campaign::new("determinism", small_grid())
        .run()
        .expect("serial campaign");

    std::env::set_var(par::THREADS_ENV, "4");
    assert_eq!(par::thread_count(), 4);
    let parallel = Campaign::new("determinism", small_grid())
        .run()
        .expect("parallel campaign");
    std::env::remove_var(par::THREADS_ENV);

    assert_eq!(
        serial.to_json(),
        parallel.to_json(),
        "4-thread campaign JSON must be byte-identical to the serial run"
    );

    // The guarantee is not vacuous: the grid really ran and detected.
    // (clean + the standard catalog's one IMU attack) × 2 seeds.
    assert_eq!(serial.runs.len(), 4);
    assert!(serial.runs.iter().any(|r| r.detected));

    // Unset and invalid overrides fall back to the machine default.
    std::env::set_var(par::THREADS_ENV, "0");
    assert!(par::thread_count() >= 1);
    std::env::set_var(par::THREADS_ENV, "not-a-number");
    assert!(par::thread_count() >= 1);
    std::env::remove_var(par::THREADS_ENV);
}
