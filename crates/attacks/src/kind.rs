use serde::{Deserialize, Serialize};

use adassure_sim::geometry::Vec2;

/// The sensor channel an attack targets.
///
/// Diagnosis accuracy (experiment T3) is scored against this: the engine
/// knows which channel was attacked, the diagnosis engine has to infer it
/// from assertion violations alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Channel {
    /// GNSS position fixes.
    Gnss,
    /// Wheel-odometry speed.
    WheelSpeed,
    /// IMU yaw rate.
    ImuYaw,
    /// Compass heading.
    Compass,
}

impl Channel {
    /// Short lowercase name (stable; used in reports).
    pub fn name(self) -> &'static str {
        match self {
            Channel::Gnss => "gnss",
            Channel::WheelSpeed => "wheel_speed",
            Channel::ImuYaw => "imu_yaw",
            Channel::Compass => "compass",
        }
    }
}

impl std::fmt::Display for Channel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The attack/fault taxonomy.
///
/// Magnitudes are part of the variant so a campaign can sweep them; the
/// standard catalog in [`crate::campaign`] fixes representative values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum AttackKind {
    /// Constant position offset added to every GNSS fix (slow-cooked spoof).
    GnssBias {
        /// Offset applied to each fix (m).
        offset: Vec2,
    },
    /// Position offset growing linearly while active (drag-away spoof).
    GnssDrift {
        /// Drift velocity (m/s).
        rate: Vec2,
    },
    /// Sudden teleport: a large offset applied from one fix to the next.
    GnssJump {
        /// Offset applied to each fix (m).
        offset: Vec2,
    },
    /// Additional zero-mean Gaussian noise on fixes (jamming/meaconing).
    GnssNoise {
        /// Extra per-axis noise standard deviation (m).
        std_dev: f64,
    },
    /// Fixes freeze at the value seen when the attack started.
    GnssFreeze,
    /// Fixes stop arriving entirely.
    GnssDropout,
    /// Fixes are replayed with a delay (record-and-replay).
    GnssDelay {
        /// Replay delay (s).
        delay: f64,
    },
    /// Wheel-speed readings are scaled by a factor.
    WheelSpeedScale {
        /// Multiplicative factor (1.0 = no attack).
        factor: f64,
    },
    /// Wheel-speed readings freeze at the attack-start value.
    WheelSpeedFreeze,
    /// Additional zero-mean Gaussian noise on wheel-speed readings.
    WheelSpeedNoise {
        /// Extra noise standard deviation (m/s).
        std_dev: f64,
    },
    /// Constant bias added to the IMU yaw rate.
    ImuYawBias {
        /// Bias (rad/s).
        bias: f64,
    },
    /// IMU yaw-rate readings are scaled by a factor (gain fault). Only
    /// observable while the vehicle is actually turning.
    ImuYawScale {
        /// Multiplicative factor (1.0 = no attack).
        factor: f64,
    },
    /// Constant bias added to the compass heading.
    CompassBias {
        /// Bias (rad).
        bias: f64,
    },
    /// Compass bias growing linearly while active — the heading analogue of
    /// the GNSS drag-away spoof, and similarly stealthy.
    CompassDrift {
        /// Drift rate (rad/s).
        rate: f64,
    },
}

impl AttackKind {
    /// The channel this attack targets.
    pub fn channel(&self) -> Channel {
        match self {
            AttackKind::GnssBias { .. }
            | AttackKind::GnssDrift { .. }
            | AttackKind::GnssJump { .. }
            | AttackKind::GnssNoise { .. }
            | AttackKind::GnssFreeze
            | AttackKind::GnssDropout
            | AttackKind::GnssDelay { .. } => Channel::Gnss,
            AttackKind::WheelSpeedScale { .. }
            | AttackKind::WheelSpeedFreeze
            | AttackKind::WheelSpeedNoise { .. } => Channel::WheelSpeed,
            AttackKind::ImuYawBias { .. } | AttackKind::ImuYawScale { .. } => Channel::ImuYaw,
            AttackKind::CompassBias { .. } | AttackKind::CompassDrift { .. } => Channel::Compass,
        }
    }

    /// Short snake-case name of the attack class (stable; used as row keys
    /// in every experiment table).
    pub fn name(&self) -> &'static str {
        match self {
            AttackKind::GnssBias { .. } => "gnss_bias",
            AttackKind::GnssDrift { .. } => "gnss_drift",
            AttackKind::GnssJump { .. } => "gnss_jump",
            AttackKind::GnssNoise { .. } => "gnss_noise",
            AttackKind::GnssFreeze => "gnss_freeze",
            AttackKind::GnssDropout => "gnss_dropout",
            AttackKind::GnssDelay { .. } => "gnss_delay",
            AttackKind::WheelSpeedScale { .. } => "wheel_speed_scale",
            AttackKind::WheelSpeedFreeze => "wheel_speed_freeze",
            AttackKind::WheelSpeedNoise { .. } => "wheel_speed_noise",
            AttackKind::ImuYawBias { .. } => "imu_yaw_bias",
            AttackKind::ImuYawScale { .. } => "imu_yaw_scale",
            AttackKind::CompassBias { .. } => "compass_bias",
            AttackKind::CompassDrift { .. } => "compass_drift",
        }
    }
}

impl std::fmt::Display for AttackKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn catalog() -> Vec<AttackKind> {
        vec![
            AttackKind::GnssBias {
                offset: Vec2::new(1.0, 0.0),
            },
            AttackKind::GnssDrift {
                rate: Vec2::new(0.5, 0.0),
            },
            AttackKind::GnssJump {
                offset: Vec2::new(10.0, 0.0),
            },
            AttackKind::GnssNoise { std_dev: 2.0 },
            AttackKind::GnssFreeze,
            AttackKind::GnssDropout,
            AttackKind::GnssDelay { delay: 1.0 },
            AttackKind::WheelSpeedScale { factor: 0.5 },
            AttackKind::WheelSpeedFreeze,
            AttackKind::WheelSpeedNoise { std_dev: 1.5 },
            AttackKind::ImuYawBias { bias: 0.1 },
            AttackKind::ImuYawScale { factor: 1.6 },
            AttackKind::CompassBias { bias: 0.3 },
            AttackKind::CompassDrift { rate: 0.02 },
        ]
    }

    #[test]
    fn names_are_unique() {
        let names: HashSet<_> = catalog().iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), catalog().len());
    }

    #[test]
    fn channels_partition_the_taxonomy() {
        let gnss = catalog()
            .iter()
            .filter(|k| k.channel() == Channel::Gnss)
            .count();
        assert_eq!(gnss, 7);
        assert_eq!(
            catalog()
                .iter()
                .filter(|k| k.channel() == Channel::WheelSpeed)
                .count(),
            3
        );
        assert_eq!(
            catalog()
                .iter()
                .filter(|k| k.channel() == Channel::ImuYaw)
                .count(),
            2
        );
        assert_eq!(
            catalog()
                .iter()
                .filter(|k| k.channel() == Channel::Compass)
                .count(),
            2
        );
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(AttackKind::GnssFreeze.to_string(), "gnss_freeze");
        assert_eq!(Channel::ImuYaw.to_string(), "imu_yaw");
    }
}
