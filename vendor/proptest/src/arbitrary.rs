//! The [`Arbitrary`] trait and [`any`], for types with a canonical strategy.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The canonical strategy type.
    type Strategy: Strategy<Value = Self>;

    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (`any::<bool>()` etc.).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Uniform `bool` strategy.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;

    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty => $name:ident),* $(,)?) => {
        $(
            /// Full-range integer strategy.
            #[derive(Debug, Clone, Copy)]
            pub struct $name;

            impl Strategy for $name {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }

            impl Arbitrary for $ty {
                type Strategy = $name;

                fn arbitrary() -> $name {
                    $name
                }
            }
        )*
    };
}

impl_arbitrary_int! {
    u8 => AnyU8,
    u16 => AnyU16,
    u32 => AnyU32,
    u64 => AnyU64,
    usize => AnyUsize,
    i8 => AnyI8,
    i16 => AnyI16,
    i32 => AnyI32,
    i64 => AnyI64,
    isize => AnyIsize,
}
