//! JSON emission: a [`serde::Serializer`] writing into a `String`, with
//! compact and two-space-indented pretty modes.

use crate::Error;
use serde::ser::{
    Serialize, SerializeMap, SerializeSeq, SerializeStruct, SerializeTuple, Serializer,
};

/// Writes one JSON value into the borrowed output buffer.
pub struct JsonSerializer<'a> {
    out: &'a mut String,
    pretty: bool,
    /// Indentation level of the value being written (prefix already emitted).
    indent: usize,
}

impl<'a> JsonSerializer<'a> {
    pub fn compact(out: &'a mut String) -> Self {
        JsonSerializer {
            out,
            pretty: false,
            indent: 0,
        }
    }

    pub fn pretty(out: &'a mut String) -> Self {
        JsonSerializer {
            out,
            pretty: true,
            indent: 0,
        }
    }

    fn newline(out: &mut String, indent: usize) {
        out.push('\n');
        for _ in 0..indent {
            out.push_str("  ");
        }
    }

    fn push_escaped(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                '\u{8}' => out.push_str("\\b"),
                '\u{c}' => out.push_str("\\f"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    fn push_f64(out: &mut String, v: f64) {
        if v.is_finite() {
            out.push_str(&v.to_string());
        } else {
            // JSON has no NaN/Infinity literal; mirror a lossy but
            // deterministic fallback.
            out.push_str("null");
        }
    }

    /// Opens an externally-tagged variant wrapper `{"Variant": ` and returns
    /// the indentation level for the wrapped value.
    fn open_variant(&mut self, variant: &str) -> usize {
        self.out.push('{');
        if self.pretty {
            Self::newline(self.out, self.indent + 1);
        }
        Self::push_escaped(self.out, variant);
        self.out.push(':');
        if self.pretty {
            self.out.push(' ');
        }
        self.indent + 1
    }

    fn close_variant(out: &mut String, pretty: bool, indent: usize) {
        if pretty {
            Self::newline(out, indent);
        }
        out.push('}');
    }
}

/// In-progress JSON container ( `[...]` or `{...}` ).
pub struct Compound<'a> {
    out: &'a mut String,
    pretty: bool,
    /// Indentation level of the container's elements.
    indent: usize,
    first: bool,
    close: char,
    /// When the container is wrapped in an enum-variant object, the wrapper's
    /// indentation level (the closing `}` is emitted at this level).
    wrap_indent: Option<usize>,
}

impl<'a> Compound<'a> {
    fn separate(&mut self) {
        if self.first {
            self.first = false;
        } else {
            self.out.push(',');
        }
        if self.pretty {
            JsonSerializer::newline(self.out, self.indent);
        }
    }

    fn value_serializer(&mut self) -> JsonSerializer<'_> {
        JsonSerializer {
            out: self.out,
            pretty: self.pretty,
            indent: self.indent,
        }
    }

    fn finish(self) -> Result<(), Error> {
        if self.pretty && !self.first {
            JsonSerializer::newline(self.out, self.indent - 1);
        }
        self.out.push(self.close);
        if let Some(indent) = self.wrap_indent {
            JsonSerializer::close_variant(self.out, self.pretty, indent);
        }
        Ok(())
    }

    fn push_key(&mut self, key: &str) {
        JsonSerializer::push_escaped(self.out, key);
        self.out.push(':');
        if self.pretty {
            self.out.push(' ');
        }
    }
}

impl<'a> Serializer for JsonSerializer<'a> {
    type Ok = ();
    type Error = Error;
    type SerializeSeq = Compound<'a>;
    type SerializeTuple = Compound<'a>;
    type SerializeMap = Compound<'a>;
    type SerializeStruct = Compound<'a>;
    type SerializeStructVariant = Compound<'a>;
    type SerializeTupleVariant = Compound<'a>;

    fn serialize_bool(self, v: bool) -> Result<(), Error> {
        self.out.push_str(if v { "true" } else { "false" });
        Ok(())
    }

    fn serialize_i64(self, v: i64) -> Result<(), Error> {
        self.out.push_str(&v.to_string());
        Ok(())
    }

    fn serialize_u64(self, v: u64) -> Result<(), Error> {
        self.out.push_str(&v.to_string());
        Ok(())
    }

    fn serialize_f64(self, v: f64) -> Result<(), Error> {
        Self::push_f64(self.out, v);
        Ok(())
    }

    fn serialize_str(self, v: &str) -> Result<(), Error> {
        Self::push_escaped(self.out, v);
        Ok(())
    }

    fn serialize_unit(self) -> Result<(), Error> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_none(self) -> Result<(), Error> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_some<T: ?Sized + Serialize>(self, value: &T) -> Result<(), Error> {
        value.serialize(self)
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
    ) -> Result<(), Error> {
        Self::push_escaped(self.out, variant);
        Ok(())
    }

    fn serialize_newtype_variant<T: ?Sized + Serialize>(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        let pretty = self.pretty;
        let outer = self.indent;
        let mut this = self;
        let inner = this.open_variant(variant);
        value.serialize(JsonSerializer {
            out: this.out,
            pretty,
            indent: inner,
        })?;
        Self::close_variant(this.out, pretty, outer);
        Ok(())
    }

    fn serialize_seq(self, _len: Option<usize>) -> Result<Compound<'a>, Error> {
        self.out.push('[');
        Ok(Compound {
            indent: self.indent + 1,
            out: self.out,
            pretty: self.pretty,
            first: true,
            close: ']',
            wrap_indent: None,
        })
    }

    fn serialize_tuple(self, len: usize) -> Result<Compound<'a>, Error> {
        let _ = len;
        self.serialize_seq(None)
    }

    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>, Error> {
        let outer = self.indent;
        let pretty = self.pretty;
        let mut this = self;
        let inner = this.open_variant(variant);
        this.out.push('[');
        Ok(Compound {
            indent: inner + 1,
            out: this.out,
            pretty,
            first: true,
            close: ']',
            wrap_indent: Some(outer),
        })
    }

    fn serialize_map(self, _len: Option<usize>) -> Result<Compound<'a>, Error> {
        self.out.push('{');
        Ok(Compound {
            indent: self.indent + 1,
            out: self.out,
            pretty: self.pretty,
            first: true,
            close: '}',
            wrap_indent: None,
        })
    }

    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Compound<'a>, Error> {
        self.serialize_map(None)
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>, Error> {
        let outer = self.indent;
        let pretty = self.pretty;
        let mut this = self;
        let inner = this.open_variant(variant);
        this.out.push('{');
        Ok(Compound {
            indent: inner + 1,
            out: this.out,
            pretty,
            first: true,
            close: '}',
            wrap_indent: Some(outer),
        })
    }
}

impl SerializeSeq for Compound<'_> {
    type Ok = ();
    type Error = Error;

    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Error> {
        self.separate();
        value.serialize(self.value_serializer())
    }

    fn end(self) -> Result<(), Error> {
        self.finish()
    }
}

impl SerializeTuple for Compound<'_> {
    type Ok = ();
    type Error = Error;

    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Error> {
        SerializeSeq::serialize_element(self, value)
    }

    fn end(self) -> Result<(), Error> {
        self.finish()
    }
}

impl SerializeMap for Compound<'_> {
    type Ok = ();
    type Error = Error;

    fn serialize_entry<K: ?Sized + Serialize, V: ?Sized + Serialize>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<(), Error> {
        self.separate();
        // JSON object keys must be strings: serialize the key standalone and
        // quote non-string results (numeric keys) the way serde_json does.
        let mut raw = String::new();
        key.serialize(JsonSerializer::compact(&mut raw))?;
        if raw.starts_with('"') {
            self.out.push_str(&raw);
        } else {
            JsonSerializer::push_escaped(self.out, &raw);
        }
        self.out.push(':');
        if self.pretty {
            self.out.push(' ');
        }
        value.serialize(self.value_serializer())
    }

    fn end(self) -> Result<(), Error> {
        self.finish()
    }
}

impl SerializeStruct for Compound<'_> {
    type Ok = ();
    type Error = Error;

    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        self.separate();
        self.push_key(key);
        value.serialize(self.value_serializer())
    }

    fn end(self) -> Result<(), Error> {
        self.finish()
    }
}
