//! The campaign executor's central guarantee: results are bit-identical
//! regardless of worker count, because cells are seeded independently and
//! results are merged by cell index.

use adassure_control::ControllerKind;
use adassure_exp::grid::{AttackSet, Grid};
use adassure_exp::{Campaign, Runtime};
use adassure_scenarios::ScenarioKind;

fn small_grid() -> Grid {
    Grid::new()
        .scenarios([ScenarioKind::Straight])
        .controllers([ControllerKind::PurePursuit])
        .attacks(AttackSet::Channel(adassure_attacks::Channel::ImuYaw))
        .include_clean(true)
        .seeds([1, 2])
}

/// `thread_count()` is resolved once per process, so the comparison pins
/// explicit [`Runtime`]s on each campaign instead of mutating the
/// environment mid-run.
#[test]
fn campaign_json_is_identical_across_worker_counts() {
    let serial = Campaign::new("determinism", small_grid())
        .with_runtime(Runtime::with_workers(1))
        .run()
        .expect("serial campaign");

    let parallel = Campaign::new("determinism", small_grid())
        .with_runtime(Runtime::with_workers(4))
        .run()
        .expect("parallel campaign");

    assert_eq!(
        serial.to_json(),
        parallel.to_json(),
        "4-worker campaign JSON must be byte-identical to the serial run"
    );

    // The guarantee is not vacuous: the grid really ran and detected.
    // (clean + the standard catalog's one IMU attack) × 2 seeds.
    assert_eq!(serial.runs.len(), 4);
    assert!(serial.runs.iter().any(|r| r.detected));
}
