//! Bounded-memory metrics: per-assertion verdict counters, state-transition
//! grids, and the serializable snapshot types.
//!
//! Live counters ([`VerdictCounts`], [`TransitionGrid`]) are plain fixed
//! arrays the checker/guardian bump in place — no allocation after
//! construction. At the end of a run they are assembled into a
//! [`MetricsSnapshot`]; the deterministic subset of that (everything except
//! wall-clock timing) is an [`ObsSummary`], which is what campaign reports
//! embed so they stay byte-reproducible across machines.

use crate::event::Verdict;
use crate::hist::Histogram;
use serde::{Deserialize, Serialize};

/// How many cycles an assertion spent in each verdict.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerdictCounts {
    /// Cycles with no evaluation yet.
    pub unknown: u64,
    /// Cycles evaluated and satisfied.
    pub pass: u64,
    /// Cycles with untrustworthy inputs.
    pub inconclusive: u64,
    /// Cycles evaluated and violated.
    pub violated: u64,
}

impl VerdictCounts {
    /// Bumps the counter for `v`.
    #[inline]
    pub fn record(&mut self, v: Verdict) {
        match v {
            Verdict::Unknown => self.unknown += 1,
            Verdict::Pass => self.pass += 1,
            Verdict::Inconclusive => self.inconclusive += 1,
            Verdict::Violated => self.violated += 1,
        }
    }

    /// Total cycles counted.
    pub fn total(&self) -> u64 {
        self.unknown + self.pass + self.inconclusive + self.violated
    }

    /// Adds `other` into `self`.
    pub fn merge(&mut self, other: &VerdictCounts) {
        self.unknown += other.unknown;
        self.pass += other.pass;
        self.inconclusive += other.inconclusive;
        self.violated += other.violated;
    }
}

/// Per-assertion counters, identified by assertion id.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AssertionStats {
    /// Assertion id (e.g. "A7").
    pub id: String,
    /// Cycles spent in each verdict.
    pub verdicts: VerdictCounts,
    /// Verdict changes between consecutive cycles.
    pub flips: u64,
    /// Distinct violation episodes (onset → clear).
    pub episodes: u64,
}

impl AssertionStats {
    /// Fresh zeroed stats for assertion `id` (the one allocation, at
    /// construction time).
    pub fn new(id: &str) -> Self {
        AssertionStats {
            id: id.to_string(),
            ..AssertionStats::default()
        }
    }

    /// Adds `other`'s counters into `self` (ids must already match).
    pub fn merge(&mut self, other: &AssertionStats) {
        self.verdicts.merge(&other.verdicts);
        self.flips += other.flips;
        self.episodes += other.episodes;
    }
}

/// A 3×3 from→to transition counter for three-state machines (telemetry
/// health, guardian mode). Fixed storage, bumped in place on the hot path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransitionGrid {
    counts: [[u64; 3]; 3],
}

impl TransitionGrid {
    /// A zeroed grid.
    pub fn new() -> Self {
        TransitionGrid::default()
    }

    /// Counts one `from → to` transition (state indices from
    /// `Health::index()` / `Guard::index()`).
    #[inline]
    pub fn record(&mut self, from: usize, to: usize) {
        self.counts[from][to] += 1;
    }

    /// Count for one cell.
    pub fn get(&self, from: usize, to: usize) -> u64 {
        self.counts[from][to]
    }

    /// Total transitions recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }

    /// The raw 3×3 count matrix, row-major `[from][to]` — the stable
    /// serialization surface used by checkpoint encoders.
    pub fn counts(&self) -> [[u64; 3]; 3] {
        self.counts
    }

    /// Rebuilds a grid from a count matrix previously obtained via
    /// [`TransitionGrid::counts`].
    pub fn from_counts(counts: [[u64; 3]; 3]) -> Self {
        TransitionGrid { counts }
    }

    /// Adds `other` into `self`.
    pub fn merge(&mut self, other: &TransitionGrid) {
        for (row, orow) in self.counts.iter_mut().zip(&other.counts) {
            for (cell, ocell) in row.iter_mut().zip(orow) {
                *cell += ocell;
            }
        }
    }

    /// Non-zero cells as named [`Transition`]s, in row-major (from, to)
    /// order, labelled by `labels[index]`.
    pub fn sparse(&self, labels: [&str; 3]) -> Vec<Transition> {
        let mut out = Vec::new();
        for (from, row) in self.counts.iter().enumerate() {
            for (to, &count) in row.iter().enumerate() {
                if count > 0 {
                    out.push(Transition {
                        from: labels[from].to_string(),
                        to: labels[to].to_string(),
                        count,
                    });
                }
            }
        }
        out
    }
}

/// One named state-machine transition with its count.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transition {
    /// Source state name.
    pub from: String,
    /// Destination state name.
    pub to: String,
    /// Times the transition fired.
    pub count: u64,
}

/// Merges `src` transitions into `dst` by (from, to), appending unseen
/// pairs in encounter order (deterministic for a fixed merge order).
pub fn merge_transitions(dst: &mut Vec<Transition>, src: &[Transition]) {
    for t in src {
        match dst.iter_mut().find(|d| d.from == t.from && d.to == t.to) {
            Some(d) => d.count += t.count,
            None => dst.push(t.clone()),
        }
    }
}

/// Full end-of-run metrics, including wall-clock timing. Exported via
/// `obs_dump` / Prometheus; **not** embedded in campaign reports (see
/// [`ObsSummary`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Cycles evaluated.
    pub cycles: u64,
    /// Per-assertion counters, in catalog order.
    pub assertions: Vec<AssertionStats>,
    /// Telemetry-health transitions (active/degraded/suspended).
    pub health_transitions: Vec<Transition>,
    /// Guardian mode transitions (nominal/degraded/safe_stop).
    pub guard_transitions: Vec<Transition>,
    /// Events that passed the filter and reached the sink.
    pub events_emitted: u64,
    /// Wall-clock cycle-evaluation time, nanoseconds (sampled; see
    /// `ObsConfig::timing_stride`). Non-deterministic by nature.
    pub eval_cycle_ns: Histogram,
    /// Detection latency in simulation seconds (fault onset → first
    /// alarm). Sim-time, hence deterministic.
    pub detection_latency_s: Histogram,
}

impl Default for MetricsSnapshot {
    fn default() -> Self {
        MetricsSnapshot::empty()
    }
}

impl MetricsSnapshot {
    /// An empty snapshot with the standard histogram layouts.
    pub fn empty() -> Self {
        MetricsSnapshot {
            cycles: 0,
            assertions: Vec::new(),
            health_transitions: Vec::new(),
            guard_transitions: Vec::new(),
            events_emitted: 0,
            eval_cycle_ns: Histogram::nanos(),
            detection_latency_s: Histogram::seconds(),
        }
    }

    /// Adds `other` into `self`: assertions merge by id (unseen ids append
    /// in encounter order), transition lists merge by (from, to),
    /// histograms merge bucket-wise. Merging campaign cells in cell-index
    /// order yields the same snapshot regardless of worker scheduling.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        self.cycles += other.cycles;
        for stats in &other.assertions {
            match self.assertions.iter_mut().find(|s| s.id == stats.id) {
                Some(s) => s.merge(stats),
                None => self.assertions.push(stats.clone()),
            }
        }
        merge_transitions(&mut self.health_transitions, &other.health_transitions);
        merge_transitions(&mut self.guard_transitions, &other.guard_transitions);
        self.events_emitted += other.events_emitted;
        self.eval_cycle_ns.merge(&other.eval_cycle_ns);
        self.detection_latency_s.merge(&other.detection_latency_s);
    }

    /// The deterministic subset, safe to embed in a campaign report:
    /// everything except the wall-clock `eval_cycle_ns` histogram.
    pub fn summary(&self) -> ObsSummary {
        ObsSummary {
            cycles: self.cycles,
            assertions: self.assertions.clone(),
            health_transitions: self.health_transitions.clone(),
            guard_transitions: self.guard_transitions.clone(),
            events_emitted: self.events_emitted,
            detection_latency_s: self.detection_latency_s.clone(),
        }
    }
}

/// The deterministic slice of a [`MetricsSnapshot`] — no wall-clock data —
/// embedded in `CampaignReport` so reports stay byte-reproducible.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObsSummary {
    /// Cycles evaluated.
    pub cycles: u64,
    /// Per-assertion counters.
    pub assertions: Vec<AssertionStats>,
    /// Telemetry-health transitions.
    pub health_transitions: Vec<Transition>,
    /// Guardian mode transitions.
    pub guard_transitions: Vec<Transition>,
    /// Events that passed the filter.
    pub events_emitted: u64,
    /// Detection latency, simulation seconds.
    pub detection_latency_s: Histogram,
}

impl Default for ObsSummary {
    fn default() -> Self {
        ObsSummary {
            cycles: 0,
            assertions: Vec::new(),
            health_transitions: Vec::new(),
            guard_transitions: Vec::new(),
            events_emitted: 0,
            detection_latency_s: Histogram::seconds(),
        }
    }
}

impl ObsSummary {
    /// An empty summary (what reports carry when observability is off).
    pub fn empty() -> Self {
        ObsSummary::default()
    }

    /// Adds `other` into `self` with the same semantics as
    /// [`MetricsSnapshot::merge`].
    pub fn merge(&mut self, other: &ObsSummary) {
        self.cycles += other.cycles;
        for stats in &other.assertions {
            match self.assertions.iter_mut().find(|s| s.id == stats.id) {
                Some(s) => s.merge(stats),
                None => self.assertions.push(stats.clone()),
            }
        }
        merge_transitions(&mut self.health_transitions, &other.health_transitions);
        merge_transitions(&mut self.guard_transitions, &other.guard_transitions);
        self.events_emitted += other.events_emitted;
        self.detection_latency_s.merge(&other.detection_latency_s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Health;

    #[test]
    fn verdict_counts_record_and_merge() {
        let mut a = VerdictCounts::default();
        a.record(Verdict::Pass);
        a.record(Verdict::Pass);
        a.record(Verdict::Violated);
        let mut b = VerdictCounts::default();
        b.record(Verdict::Inconclusive);
        a.merge(&b);
        assert_eq!(a.pass, 2);
        assert_eq!(a.violated, 1);
        assert_eq!(a.inconclusive, 1);
        assert_eq!(a.total(), 4);
    }

    #[test]
    fn grid_records_and_sparsifies_in_row_major_order() {
        let mut g = TransitionGrid::new();
        g.record(Health::Active.index(), Health::Degraded.index());
        g.record(Health::Active.index(), Health::Degraded.index());
        g.record(Health::Degraded.index(), Health::Active.index());
        let sparse = g.sparse(["active", "degraded", "suspended"]);
        assert_eq!(
            sparse,
            vec![
                Transition {
                    from: "active".into(),
                    to: "degraded".into(),
                    count: 2
                },
                Transition {
                    from: "degraded".into(),
                    to: "active".into(),
                    count: 1
                },
            ]
        );
        assert_eq!(g.total(), 3);
    }

    #[test]
    fn snapshot_merge_is_by_id_and_order_stable() {
        let mut a = MetricsSnapshot::empty();
        a.cycles = 10;
        a.assertions.push(AssertionStats::new("A1"));
        a.assertions[0].verdicts.pass = 10;

        let mut b = MetricsSnapshot::empty();
        b.cycles = 5;
        b.assertions.push(AssertionStats::new("A1"));
        b.assertions[0].verdicts.pass = 3;
        b.assertions.push(AssertionStats::new("A2"));
        b.health_transitions.push(Transition {
            from: "active".into(),
            to: "degraded".into(),
            count: 1,
        });

        a.merge(&b);
        assert_eq!(a.cycles, 15);
        assert_eq!(a.assertions.len(), 2);
        assert_eq!(a.assertions[0].id, "A1");
        assert_eq!(a.assertions[0].verdicts.pass, 13);
        assert_eq!(a.assertions[1].id, "A2");
        assert_eq!(a.health_transitions.len(), 1);

        // Merging the same operands again doubles counts but keeps order.
        a.merge(&b);
        assert_eq!(a.assertions[0].verdicts.pass, 16);
        assert_eq!(a.health_transitions[0].count, 2);
    }

    #[test]
    fn summary_strips_wall_clock_only() {
        let mut snap = MetricsSnapshot::empty();
        snap.cycles = 4;
        snap.eval_cycle_ns.record(125.0);
        snap.detection_latency_s.record(0.42);
        let s = snap.summary();
        assert_eq!(s.cycles, 4);
        assert_eq!(s.detection_latency_s.count, 1);
        let json = serde_json::to_string(&s).unwrap();
        assert!(!json.contains("eval_cycle_ns"));
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let mut snap = MetricsSnapshot::empty();
        snap.assertions.push(AssertionStats::new("A9"));
        snap.guard_transitions.push(Transition {
            from: "nominal".into(),
            to: "degraded".into(),
            count: 2,
        });
        snap.eval_cycle_ns.record(99.0);
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }
}
