//! LQR lateral controller on the kinematic error model.
//!
//! Error state `x = [e, θ_e]` (cross-track and heading error), discretised
//! at the control period for the current speed:
//!
//! ```text
//! A = | 1  v·dt |     B = |    0     |
//!     | 0   1   |         | v·dt / L |
//! ```
//!
//! The feedback gain is obtained by iterating the discrete algebraic
//! Riccati equation to convergence (no linear-algebra dependency: the model
//! is only 2×2). A curvature feed-forward `atan(L·κ)` centres the feedback
//! around the geometrically correct steer.

use serde::{Deserialize, Serialize};

use adassure_sim::geometry::wrap_angle;
use adassure_sim::track::Track;

use crate::{Estimate, LateralController};

/// LQR tuning parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LqrConfig {
    /// Wheelbase (m).
    pub wheelbase: f64,
    /// Control period the gains are discretised at (s).
    pub period: f64,
    /// State cost on cross-track error.
    pub q_cross_track: f64,
    /// State cost on heading error.
    pub q_heading: f64,
    /// Input cost on steering.
    pub r_steer: f64,
    /// Hard clamp on the produced steering command (rad).
    pub max_steer: f64,
}

impl LqrConfig {
    /// Defaults matched to the workspace passenger car at 100 Hz.
    pub fn standard() -> Self {
        LqrConfig {
            wheelbase: 2.7,
            period: 0.01,
            q_cross_track: 1.0,
            q_heading: 3.0,
            r_steer: 8.0,
            max_steer: 0.55,
        }
    }
}

impl Default for LqrConfig {
    fn default() -> Self {
        LqrConfig::standard()
    }
}

/// Plain-data snapshot of an [`Lqr`]'s mutable state. `cached_speed` may
/// be NaN (the never-refreshed sentinel), so snapshots must round-trip
/// NaN bit patterns exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LqrState {
    /// Speed the cached gains were solved for (NaN = never solved).
    pub cached_speed: f64,
    /// Cached feedback gains `[k_e, k_θ]`.
    pub gains: [f64; 2],
}

/// The LQR controller with speed-scheduled gains.
#[derive(Debug, Clone)]
pub struct Lqr {
    config: LqrConfig,
    cached_speed: f64,
    gains: [f64; 2],
}

impl Lqr {
    /// Creates a controller.
    pub fn new(config: LqrConfig) -> Self {
        let mut lqr = Lqr {
            config,
            cached_speed: f64::NAN,
            gains: [0.0; 2],
        };
        lqr.refresh_gains(1.0);
        lqr
    }

    /// The feedback gains `[k_e, k_θ]` currently in use.
    pub fn gains(&self) -> [f64; 2] {
        self.gains
    }

    /// Captures the controller's mutable state (the gain cache).
    pub fn state(&self) -> LqrState {
        LqrState {
            cached_speed: self.cached_speed,
            gains: self.gains,
        }
    }

    /// Reinstates a state captured with [`Lqr::state`].
    pub fn restore(&mut self, s: &LqrState) {
        self.cached_speed = s.cached_speed;
        self.gains = s.gains;
    }

    /// Solves the DARE for speed `v` by fixed-point iteration.
    ///
    /// Returns the feedback row `K = (R + BᵀPB)⁻¹ BᵀPA`.
    pub fn solve_gains(config: &LqrConfig, v: f64) -> [f64; 2] {
        let v = v.max(0.5); // gains below walking pace are meaningless
        let dt = config.period;
        let a = [[1.0, v * dt], [0.0, 1.0]];
        let b = [0.0, v * dt / config.wheelbase];
        let q = [config.q_cross_track, config.q_heading];
        let r = config.r_steer;

        // P starts at Q and iterates P ← Q + AᵀPA − AᵀPB (R+BᵀPB)⁻¹ BᵀPA.
        let mut p = [[q[0], 0.0], [0.0, q[1]]];
        for _ in 0..10_000 {
            // PA and PB.
            let pa = mat_mul(p, a);
            let pb = [
                p[0][0] * b[0] + p[0][1] * b[1],
                p[1][0] * b[0] + p[1][1] * b[1],
            ];
            let at_pa = mat_mul(transpose(a), pa);
            let at_pb = [
                a[0][0] * pb[0] + a[1][0] * pb[1],
                a[0][1] * pb[0] + a[1][1] * pb[1],
            ];
            let btpb = b[0] * pb[0] + b[1] * pb[1];
            let inv = 1.0 / (r + btpb);
            let btpa = [
                b[0] * pa[0][0] + b[1] * pa[1][0],
                b[0] * pa[0][1] + b[1] * pa[1][1],
            ];
            let mut next = [[0.0; 2]; 2];
            for i in 0..2 {
                for j in 0..2 {
                    let qij = if i == j { q[i] } else { 0.0 };
                    next[i][j] = qij + at_pa[i][j] - at_pb[i] * inv * btpa[j];
                }
            }
            let delta = (0..2)
                .flat_map(|i| (0..2).map(move |j| (i, j)))
                .map(|(i, j)| (next[i][j] - p[i][j]).abs())
                .fold(0.0f64, f64::max);
            p = next;
            if delta < 1e-10 {
                break;
            }
        }
        let pa = mat_mul(p, a);
        let pb = [
            p[0][0] * b[0] + p[0][1] * b[1],
            p[1][0] * b[0] + p[1][1] * b[1],
        ];
        let btpb = b[0] * pb[0] + b[1] * pb[1];
        let inv = 1.0 / (r + btpb);
        [
            inv * (b[0] * pa[0][0] + b[1] * pa[1][0]),
            inv * (b[0] * pa[0][1] + b[1] * pa[1][1]),
        ]
    }

    fn refresh_gains(&mut self, speed: f64) {
        if (speed - self.cached_speed).abs() > 0.5 || !self.cached_speed.is_finite() {
            self.gains = Lqr::solve_gains(&self.config, speed);
            self.cached_speed = speed;
        }
    }
}

impl Default for Lqr {
    fn default() -> Self {
        Lqr::new(LqrConfig::standard())
    }
}

impl LateralController for Lqr {
    fn steer(&mut self, est: &Estimate, track: &Track, _dt: f64) -> f64 {
        self.refresh_gains(est.speed);
        let proj = track.project(est.position);
        let heading_err = wrap_angle(est.heading - proj.heading);
        let feedforward = (self.config.wheelbase * track.curvature_at(proj.station)).atan();
        let feedback = -(self.gains[0] * proj.cross_track + self.gains[1] * heading_err);
        (feedforward + feedback).clamp(-self.config.max_steer, self.config.max_steer)
    }

    fn reset(&mut self) {
        self.cached_speed = f64::NAN;
    }
}

fn mat_mul(a: [[f64; 2]; 2], b: [[f64; 2]; 2]) -> [[f64; 2]; 2] {
    let mut out = [[0.0; 2]; 2];
    for i in 0..2 {
        for j in 0..2 {
            out[i][j] = a[i][0] * b[0][j] + a[i][1] * b[1][j];
        }
    }
    out
}

fn transpose(a: [[f64; 2]; 2]) -> [[f64; 2]; 2] {
    [[a[0][0], a[1][0]], [a[0][1], a[1][1]]]
}

#[cfg(test)]
mod tests {
    use super::*;
    use adassure_sim::geometry::Vec2;

    fn straight() -> Track {
        Track::line([0.0, 0.0], [200.0, 0.0], 1.0).unwrap()
    }

    fn estimate(x: f64, y: f64, heading: f64, speed: f64) -> Estimate {
        Estimate {
            position: Vec2::new(x, y),
            heading,
            speed,
            yaw_rate: 0.0,
        }
    }

    #[test]
    fn gains_are_positive_and_finite() {
        let k = Lqr::solve_gains(&LqrConfig::standard(), 10.0);
        assert!(k[0] > 0.0 && k[1] > 0.0, "{k:?}");
        assert!(k.iter().all(|g| g.is_finite()));
    }

    #[test]
    fn gains_shrink_with_speed() {
        // At higher speed the same gain would destabilise; LQR backs off the
        // cross-track gain.
        let slow = Lqr::solve_gains(&LqrConfig::standard(), 3.0);
        let fast = Lqr::solve_gains(&LqrConfig::standard(), 20.0);
        assert!(fast[0] < slow[0], "slow {slow:?} fast {fast:?}");
    }

    #[test]
    fn sign_conventions_match_other_controllers() {
        let mut lqr = Lqr::default();
        assert!(lqr.steer(&estimate(5.0, 2.0, 0.0, 8.0), &straight(), 0.01) < 0.0);
        assert!(lqr.steer(&estimate(5.0, -2.0, 0.0, 8.0), &straight(), 0.01) > 0.0);
        assert!(lqr.steer(&estimate(5.0, 0.0, 0.3, 8.0), &straight(), 0.01) < 0.0);
    }

    #[test]
    fn neutral_on_path() {
        let mut lqr = Lqr::default();
        let steer = lqr.steer(&estimate(5.0, 0.0, 0.0, 8.0), &straight(), 0.01);
        assert!(steer.abs() < 1e-6, "{steer}");
    }

    #[test]
    fn feedforward_matches_circle_curvature() {
        let track = Track::circle([0.0, 0.0], 20.0, 1.0).unwrap();
        let mut lqr = Lqr::default();
        let p = track.point_at(5.0);
        let h = track.heading_at(5.0);
        let steer = lqr.steer(&estimate(p.x, p.y, h, 6.0), &track, 0.01);
        let expected = (2.7f64 / 20.0).atan();
        assert!((steer - expected).abs() < 0.08, "{steer} vs {expected}");
    }

    #[test]
    fn closed_loop_error_dynamics_are_stable() {
        // Simulate the 2-state error model under the solved gains and check
        // the error contracts — the defining property of an LQR solution.
        let config = LqrConfig::standard();
        let v = 10.0;
        let k = Lqr::solve_gains(&config, v);
        let dt = config.period;
        let (mut e, mut th) = (2.0, 0.3);
        for _ in 0..10_000 {
            let steer = -(k[0] * e + k[1] * th);
            let steer = steer.clamp(-config.max_steer, config.max_steer);
            e += v * th * dt;
            th += v * steer / config.wheelbase * dt;
        }
        assert!(e.abs() < 1e-3 && th.abs() < 1e-3, "e={e} th={th}");
    }

    #[test]
    fn output_is_clamped() {
        let mut lqr = Lqr::default();
        let steer = lqr.steer(&estimate(5.0, 30.0, 1.5, 5.0), &straight(), 0.01);
        assert!(steer.abs() <= 0.55 + 1e-12);
    }
}
