use std::borrow::Borrow;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use serde::{Deserialize, Deserializer, Serialize, Serializer};

/// Internal representation of a [`SignalId`].
///
/// Canonical names (everything in [`well_known::ALL`]) are stored as an
/// index into that table, so cloning them is a plain copy — no atomic
/// reference count traffic on the checker's per-sample hot path. Everything
/// else falls back to a reference-counted string.
enum Repr {
    /// Index into [`well_known::ALL`].
    WellKnown(u8),
    /// Any other (dynamically named) signal.
    Owned(Arc<str>),
}

// Manual impl so the hot-path copy of a well-known id inlines across
// crates (derived impls carry no `#[inline]` hint).
impl Clone for Repr {
    #[inline]
    fn clone(&self) -> Self {
        match self {
            Repr::WellKnown(i) => Repr::WellKnown(*i),
            Repr::Owned(s) => Repr::Owned(Arc::clone(s)),
        }
    }
}

/// Identifier of a recorded signal.
///
/// Cloning is cheap in every case (a copy for [`well_known`] names, a
/// pointer copy otherwise), which matters because an id is cloned for every
/// sample routed through a [`crate::Trace`] or an online checker.
///
/// Equality, ordering and hashing are all by name, so a `SignalId` behaves
/// exactly like its string content in maps and sets regardless of how it
/// was constructed.
///
/// # Example
///
/// ```
/// use adassure_trace::SignalId;
///
/// let a = SignalId::new("xtrack_err");
/// let b = a.clone();
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "xtrack_err");
/// ```
pub struct SignalId(Repr);

impl Clone for SignalId {
    #[inline]
    fn clone(&self) -> Self {
        SignalId(self.0.clone())
    }
}

impl SignalId {
    /// Creates a signal id from any string-like value. Canonical names are
    /// normalised to their [`well_known`] index.
    pub fn new(name: impl AsRef<str>) -> Self {
        let name = name.as_ref();
        match well_known::index_of(name) {
            #[allow(clippy::cast_possible_truncation)] // table is far below 256 entries
            Some(i) => SignalId(Repr::WellKnown(i as u8)),
            None => SignalId(Repr::Owned(Arc::from(name))),
        }
    }

    /// Returns the signal name as a string slice.
    #[inline]
    pub fn as_str(&self) -> &str {
        match &self.0 {
            Repr::WellKnown(i) => well_known::ALL[usize::from(*i)],
            Repr::Owned(s) => s,
        }
    }

    /// Index into [`well_known::ALL`] when this id is a canonical name.
    ///
    /// The evaluation-plan compiler uses this to resolve catalog signals to
    /// dense slots with a single array load instead of a string hash.
    #[inline]
    pub fn well_known_index(&self) -> Option<usize> {
        match &self.0 {
            Repr::WellKnown(i) => Some(usize::from(*i)),
            Repr::Owned(_) => None,
        }
    }
}

impl fmt::Debug for SignalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("SignalId").field(&self.as_str()).finish()
    }
}

impl PartialEq for SignalId {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        match (&self.0, &other.0) {
            (Repr::WellKnown(a), Repr::WellKnown(b)) => a == b,
            (Repr::Owned(a), Repr::Owned(b)) if Arc::ptr_eq(a, b) => true,
            _ => self.as_str() == other.as_str(),
        }
    }
}

impl Eq for SignalId {}

// Hash by string content so `Borrow<str>` lookups stay consistent with the
// derived `Hash` on `str`.
impl Hash for SignalId {
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_str().hash(state);
    }
}

impl PartialOrd for SignalId {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SignalId {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        match (&self.0, &other.0) {
            (Repr::WellKnown(a), Repr::WellKnown(b)) if a == b => Ordering::Equal,
            _ => self.as_str().cmp(other.as_str()),
        }
    }
}

impl fmt::Display for SignalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for SignalId {
    fn from(name: &str) -> Self {
        SignalId::new(name)
    }
}

impl From<String> for SignalId {
    fn from(name: String) -> Self {
        SignalId::new(name)
    }
}

impl AsRef<str> for SignalId {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl Borrow<str> for SignalId {
    fn borrow(&self) -> &str {
        self.as_str()
    }
}

impl Serialize for SignalId {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self.as_str())
    }
}

impl<'de> Deserialize<'de> for SignalId {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        Ok(SignalId::new(s))
    }
}

/// Canonical signal names used across the ADAssure workspace.
///
/// The simulator, controllers and assertion catalog all agree on these names
/// so that assertions written against the catalog bind to the signals the
/// engine records without any per-experiment wiring.
pub mod well_known {
    /// Ground-truth x position of the vehicle (m).
    pub const TRUE_X: &str = "true_x";
    /// Ground-truth y position of the vehicle (m).
    pub const TRUE_Y: &str = "true_y";
    /// Ground-truth heading (rad, wrapped to (-pi, pi]).
    pub const TRUE_HEADING: &str = "true_heading";
    /// Ground-truth forward speed (m/s).
    pub const TRUE_SPEED: &str = "true_speed";
    /// Ground-truth yaw rate (rad/s).
    pub const TRUE_YAW_RATE: &str = "true_yaw_rate";

    /// GNSS-reported x position (m), after any attack.
    pub const GNSS_X: &str = "gnss_x";
    /// GNSS-reported y position (m), after any attack.
    pub const GNSS_Y: &str = "gnss_y";
    /// Speed derived from consecutive GNSS fixes (m/s).
    pub const GNSS_SPEED: &str = "gnss_speed";
    /// Magnitude of the per-cycle GNSS position increment (m).
    pub const GNSS_JUMP: &str = "gnss_jump";
    /// Wheel-odometry speed (m/s), after any attack.
    pub const WHEEL_SPEED: &str = "wheel_speed";
    /// Wheel-odometry acceleration derived over a ~0.5 s baseline (m/s²).
    pub const WHEEL_ACCEL: &str = "wheel_accel";
    /// Exponentially-weighted mean of the per-cycle wheel-speed change
    /// magnitude (m/s) — a dispersion measure that catches zero-mean noise
    /// injection, which debounced level assertions are blind to.
    pub const WHEEL_JITTER: &str = "wheel_jitter";
    /// IMU yaw rate (rad/s), after any attack.
    pub const IMU_YAW_RATE: &str = "imu_yaw_rate";
    /// IMU longitudinal acceleration (m/s^2), after any attack.
    pub const IMU_ACCEL: &str = "imu_accel";
    /// Compass / heading sensor reading (rad), after any attack.
    pub const COMPASS_HEADING: &str = "compass_heading";

    /// Estimated x position from the state estimator (m).
    pub const EST_X: &str = "est_x";
    /// Estimated y position from the state estimator (m).
    pub const EST_Y: &str = "est_y";
    /// Estimated heading (rad).
    pub const EST_HEADING: &str = "est_heading";
    /// Estimated speed (m/s).
    pub const EST_SPEED: &str = "est_speed";
    /// Estimator innovation: gap between GNSS fix and dead-reckoned pose (m).
    pub const INNOVATION: &str = "innovation";

    /// Signed cross-track error of the *estimated* pose to the path (m).
    pub const XTRACK_ERR: &str = "xtrack_err";
    /// Signed cross-track error of the *ground-truth* pose to the path (m).
    pub const TRUE_XTRACK_ERR: &str = "true_xtrack_err";
    /// Heading error to the path tangent (rad).
    pub const HEADING_ERR: &str = "heading_err";
    /// Target speed requested by the scenario profile (m/s).
    pub const TARGET_SPEED: &str = "target_speed";
    /// Arc-length progress along the path (m), from the estimated pose.
    pub const PROGRESS: &str = "progress";
    /// Arc-length progress along the path (m), from the ground-truth pose.
    pub const TRUE_PROGRESS: &str = "true_progress";

    /// Steering command issued by the lateral controller (rad).
    pub const STEER_CMD: &str = "steer_cmd";
    /// Longitudinal acceleration command (m/s^2, negative = braking).
    pub const ACCEL_CMD: &str = "accel_cmd";
    /// Actual (post-actuator) steering angle (rad).
    pub const STEER_ACTUAL: &str = "steer_actual";
    /// Lateral acceleration implied by the current motion (m/s^2).
    pub const LAT_ACCEL: &str = "lat_accel";

    /// All canonical names, in a stable order (useful for CSV headers).
    pub const ALL: &[&str] = &[
        TRUE_X,
        TRUE_Y,
        TRUE_HEADING,
        TRUE_SPEED,
        TRUE_YAW_RATE,
        GNSS_X,
        GNSS_Y,
        GNSS_SPEED,
        GNSS_JUMP,
        WHEEL_SPEED,
        WHEEL_ACCEL,
        WHEEL_JITTER,
        IMU_YAW_RATE,
        IMU_ACCEL,
        COMPASS_HEADING,
        EST_X,
        EST_Y,
        EST_HEADING,
        EST_SPEED,
        INNOVATION,
        XTRACK_ERR,
        TRUE_XTRACK_ERR,
        HEADING_ERR,
        TARGET_SPEED,
        PROGRESS,
        TRUE_PROGRESS,
        STEER_CMD,
        ACCEL_CMD,
        STEER_ACTUAL,
        LAT_ACCEL,
    ];

    /// Position of `name` in [`ALL`], if canonical.
    ///
    /// A literal `match` (rather than a linear scan over [`ALL`]) so the
    /// compiler lowers it to length-bucketed comparisons — this sits on the
    /// constructor path of every [`super::SignalId`]. The
    /// `index_of_agrees_with_all` test pins it to [`ALL`]'s order.
    #[inline]
    pub fn index_of(name: &str) -> Option<usize> {
        let idx = match name {
            "true_x" => 0,
            "true_y" => 1,
            "true_heading" => 2,
            "true_speed" => 3,
            "true_yaw_rate" => 4,
            "gnss_x" => 5,
            "gnss_y" => 6,
            "gnss_speed" => 7,
            "gnss_jump" => 8,
            "wheel_speed" => 9,
            "wheel_accel" => 10,
            "wheel_jitter" => 11,
            "imu_yaw_rate" => 12,
            "imu_accel" => 13,
            "compass_heading" => 14,
            "est_x" => 15,
            "est_y" => 16,
            "est_heading" => 17,
            "est_speed" => 18,
            "innovation" => 19,
            "xtrack_err" => 20,
            "true_xtrack_err" => 21,
            "heading_err" => 22,
            "target_speed" => 23,
            "progress" => 24,
            "true_progress" => 25,
            "steer_cmd" => 26,
            "accel_cmd" => 27,
            "steer_actual" => 28,
            "lat_accel" => 29,
            _ => return None,
        };
        Some(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_compare_by_content() {
        assert_eq!(SignalId::new("a"), SignalId::from("a"));
        assert_ne!(SignalId::new("a"), SignalId::new("b"));
        // Mixed representations still compare by name.
        assert_eq!(SignalId::new("gnss_x"), SignalId::new("gnss_x"));
        assert_ne!(SignalId::new("gnss_x"), SignalId::new("gnss_y"));
        assert_ne!(SignalId::new("gnss_x"), SignalId::new("custom"));
    }

    #[test]
    fn id_orders_lexicographically() {
        assert!(SignalId::new("a") < SignalId::new("b"));
        // Well-known ordering is by name, not table index: gnss_x (index 5)
        // sorts after est_x (index 15).
        assert!(SignalId::new("est_x") < SignalId::new("gnss_x"));
        assert!(SignalId::new("aaa") < SignalId::new("gnss_x"));
    }

    #[test]
    fn borrow_allows_str_lookup_in_sets() {
        let mut set = HashSet::new();
        set.insert(SignalId::new("speed"));
        set.insert(SignalId::new("gnss_speed"));
        assert!(set.contains("speed"));
        assert!(set.contains("gnss_speed"), "well-known hash by content");
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(SignalId::new("xtrack_err").to_string(), "xtrack_err");
        assert_eq!(SignalId::new("my_signal").to_string(), "my_signal");
    }

    #[test]
    fn well_known_names_are_unique() {
        let set: HashSet<_> = well_known::ALL.iter().collect();
        assert_eq!(set.len(), well_known::ALL.len());
    }

    #[test]
    fn index_of_agrees_with_all() {
        for (i, name) in well_known::ALL.iter().enumerate() {
            assert_eq!(well_known::index_of(name), Some(i), "{name}");
        }
        assert_eq!(well_known::index_of("not_a_signal"), None);
        assert_eq!(well_known::index_of(""), None);
    }

    #[test]
    fn well_known_index_is_exposed() {
        assert_eq!(SignalId::new("true_x").well_known_index(), Some(0));
        assert_eq!(SignalId::new("lat_accel").well_known_index(), Some(29));
        assert_eq!(SignalId::new("custom").well_known_index(), None);
    }

    #[test]
    fn serde_round_trip() {
        let id = SignalId::new("gnss_x");
        let json = serde_json::to_string(&id).unwrap();
        assert_eq!(json, "\"gnss_x\"");
        let back: SignalId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, id);
        assert_eq!(back.well_known_index(), Some(5), "normalised on the way in");
        let dynamic: SignalId = serde_json::from_str("\"mystery\"").unwrap();
        assert_eq!(dynamic.as_str(), "mystery");
    }
}
