//! Property-based test of the crash-recovery invariant: checkpointing a
//! fleet mid-campaign and continuing from the restored image yields
//! bit-identical per-stream reports and metrics to an uninterrupted run —
//! for any shard layout, any split point (including mid-confirm-window
//! guardians), and any health state (degraded, quarantined, recovering).

use adassure_core::{Assertion, Condition, HealthConfig, Severity, SignalExpr};
use adassure_fleet::{
    Fleet, FleetConfig, GuardConfig, SampleBatch, StreamConfig, StreamGuard, StreamId, SubmitError,
};
use proptest::prelude::*;

fn catalog() -> Vec<Assertion> {
    vec![
        Assertion::new(
            "P1",
            "bounded cross-track error",
            Severity::Critical,
            Condition::AtMost {
                expr: SignalExpr::signal("xtrack").abs(),
                limit: 1.0,
            },
        ),
        Assertion::new(
            "P2",
            "gnss fix is fresh",
            Severity::Critical,
            Condition::Fresh {
                signal: "gnss_x".into(),
                max_age: 0.11,
            },
        ),
    ]
}

fn config(shards: usize) -> FleetConfig {
    FleetConfig {
        shards,
        // Aggressive health thresholds so random traffic actually
        // reaches Degraded and Suspended before the split point.
        health: HealthConfig {
            stale_after: 0.11,
            quarantine_after: 2,
            recover_after: 3,
        },
        ..FleetConfig::default()
    }
}

const MAX_STREAMS: usize = 4;

/// One cycle's per-stream traffic: does `xtrack` violate, and does the
/// gnss fix arrive (absences drive Fresh violations and staleness
/// degradation/quarantine)?
type CycleSpec = [(bool, bool); MAX_STREAMS];

fn open_streams(fleet: &mut Fleet, guards: &[bool]) -> Vec<StreamId> {
    guards
        .iter()
        .map(|&guarded| {
            fleet.open_stream_with(StreamConfig {
                injector: None,
                // Tight confirmation window so splits land inside it.
                guard: guarded.then(|| {
                    StreamGuard::new(GuardConfig {
                        confirm_cycles: 3,
                        recover_cycles: 4,
                    })
                }),
            })
        })
        .collect()
}

fn feed(fleet: &mut Fleet, ids: &[StreamId], cycles: &[CycleSpec], from: usize) {
    for (i, cycle) in cycles.iter().enumerate().skip(from) {
        let t = 0.05 * (i + 1) as f64;
        for (stream, &(violate, gnss)) in ids.iter().zip(cycle.iter()) {
            let mut batch = SampleBatch::new(*stream);
            batch.push(t, "xtrack", if violate { 2.5 } else { 0.4 });
            if gnss {
                batch.push(t, "gnss_x", 1.0);
            }
            let mut pending = batch;
            loop {
                match fleet.submit(pending) {
                    Ok(()) => break,
                    Err(SubmitError::Saturated { batch, .. }) => {
                        fleet.poll();
                        pending = batch;
                    }
                    Err(other) => panic!("submit failed: {other}"),
                }
            }
        }
        fleet.poll();
    }
}

/// Close every stream and serialize everything observable: per-stream
/// reports in order, then the merged metrics summary.
fn observable_output(mut fleet: Fleet, ids: &[StreamId]) -> Vec<String> {
    let mut out = Vec::with_capacity(ids.len() + 1);
    for &id in ids {
        let (report, _) = fleet.close_stream(id).expect("stream is open");
        out.push(serde_json::to_string(&report).expect("report serializes"));
    }
    out.push(serde_json::to_string(&fleet.metrics().summary()).expect("summary serializes"));
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn restored_fleet_continues_bit_identically(
        shards in 1usize..4,
        n_streams in 1usize..(MAX_STREAMS + 1),
        guards in proptest::collection::vec(any::<bool>(), MAX_STREAMS),
        cycles in proptest::collection::vec(
            proptest::collection::vec((any::<bool>(), any::<bool>()), MAX_STREAMS),
            4usize..28,
        ),
        split_roll in 0usize..1000,
    ) {
        let guards = &guards[..n_streams];
        let cycles: Vec<CycleSpec> = cycles
            .iter()
            .map(|c| {
                let mut spec = [(false, false); MAX_STREAMS];
                spec.copy_from_slice(&c[..MAX_STREAMS]);
                spec
            })
            .collect();
        let split = split_roll % (cycles.len() + 1);

        // Oracle: the same traffic, never interrupted.
        let mut oracle = Fleet::new(catalog(), config(shards));
        let oracle_ids = open_streams(&mut oracle, guards);
        feed(&mut oracle, &oracle_ids, &cycles, 0);
        let expected = observable_output(oracle, &oracle_ids);

        // Subject: checkpoint at the split, restore, continue.
        let mut subject = Fleet::new(catalog(), config(shards));
        let subject_ids = open_streams(&mut subject, guards);
        feed(&mut subject, &subject_ids, &cycles[..split], 0);
        let image = subject.checkpoint().expect("checkpointable fleet");
        drop(subject); // the "crash"
        let mut restored =
            Fleet::restore(catalog(), config(shards), &image).expect("image restores");
        feed(&mut restored, &subject_ids, &cycles, split);
        let actual = observable_output(restored, &subject_ids);

        prop_assert_eq!(actual, expected);
    }
}
