//! Test-runner configuration and the deterministic case RNG.

/// Per-test configuration (subset of the real `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic RNG used to generate test cases (SplitMix64; seeded from
/// the test name so failures reproduce run to run).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from an arbitrary string (FNV-1a hash).
    pub fn deterministic(name: &str) -> Self {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: hash }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[lo, hi)` (`lo` when the range is empty).
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        lo + self.next_u64() % (hi - lo)
    }

    /// Uniform index in `[0, len)`; `len` must be non-zero.
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "cannot pick from an empty set");
        (self.next_u64() % len as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::TestRng;

    #[test]
    fn named_seeding_is_deterministic() {
        let draw = |name: &str| {
            let mut rng = TestRng::deterministic(name);
            (0..8).map(|_| rng.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(draw("alpha"), draw("alpha"));
        assert_ne!(draw("alpha"), draw("beta"));
    }

    #[test]
    fn bounded_draws_stay_in_range() {
        let mut rng = TestRng::deterministic("bounds");
        for _ in 0..1000 {
            let v = rng.u64_in(5, 17);
            assert!((5..17).contains(&v));
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
