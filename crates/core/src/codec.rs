//! Shared binary codec helpers for versioned checkpoint formats.
//!
//! Both the fleet checkpoints (`adassure-fleet`, `ADCKPT`) and the sim
//! debug checkpoints (`adassure-debug`, `ADSIM`) serialize checker state
//! into little-endian binary images with explicit magic/version markers.
//! The primitives live here so the two formats share one bounds-checked
//! cursor, one [`CheckerState`] encoding, and one typed error surface —
//! a checkpoint written by either side decodes checker state with the
//! exact same bit-for-bit semantics.
//!
//! Conventions (mirroring `.adt`/ADWIRE):
//!
//! - every integer and float is little-endian; floats are stored as raw
//!   IEEE-754 bits so NaNs round-trip exactly,
//! - variable-length strings are `u16` length + UTF-8 bytes,
//! - repeated sections carry a `u32` count validated against the bytes
//!   remaining, so corrupt counts cannot drive huge allocations,
//! - decoding returns a typed [`CodecError`] instead of panicking.

use adassure_obs::{AssertionStats, Histogram, Verdict, VerdictCounts};

use crate::assertion::{AssertionId, Eval, Severity};
use crate::online::{CheckerState, HealthState, MonitorSnapshot, SignalSnapshot};
use crate::violation::Violation;

/// Typed encode/decode/restore failures shared by every checkpoint
/// format in the workspace.
#[derive(Debug)]
pub enum CodecError {
    /// Reading or writing the underlying file failed.
    Io(std::io::Error),
    /// The bytes are not structurally valid (bad magic, truncation,
    /// out-of-range tags).
    Malformed {
        /// What was wrong.
        message: String,
    },
    /// The bytes are valid but do not fit the supplied catalog, config
    /// or layout.
    Incompatible {
        /// What did not line up.
        message: String,
    },
    /// The state cannot be checkpointed or restored as requested.
    Unsupported {
        /// Which feature blocked the operation.
        message: String,
    },
}

impl CodecError {
    /// A [`CodecError::Malformed`] with the given message.
    pub fn malformed(message: impl Into<String>) -> Self {
        CodecError::Malformed {
            message: message.into(),
        }
    }

    /// A [`CodecError::Incompatible`] with the given message.
    pub fn incompatible(message: impl Into<String>) -> Self {
        CodecError::Incompatible {
            message: message.into(),
        }
    }

    /// A [`CodecError::Unsupported`] with the given message.
    pub fn unsupported(message: impl Into<String>) -> Self {
        CodecError::Unsupported {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Io(e) => write!(f, "checkpoint I/O failed: {e}"),
            CodecError::Malformed { message } => write!(f, "malformed checkpoint: {message}"),
            CodecError::Incompatible { message } => {
                write!(f, "incompatible checkpoint: {message}")
            }
            CodecError::Unsupported { message } => {
                write!(f, "unsupported checkpoint request: {message}")
            }
        }
    }
}

impl std::error::Error for CodecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CodecError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CodecError {
    fn from(e: std::io::Error) -> Self {
        CodecError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// Encoding primitives
// ---------------------------------------------------------------------------

/// Appends a `u16` length-prefixed UTF-8 string.
pub fn put_u16_str(out: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    debug_assert!(bytes.len() <= u16::MAX as usize, "oversized id string");
    #[allow(clippy::cast_possible_truncation)]
    out.extend_from_slice(&(bytes.len() as u16).to_le_bytes());
    out.extend_from_slice(bytes);
}

/// Appends a presence byte followed by the raw bits when `Some`.
pub fn put_opt_f64(out: &mut Vec<u8>, v: Option<f64>) {
    match v {
        Some(v) => {
            out.push(1);
            out.extend_from_slice(&v.to_le_bytes());
        }
        None => out.push(0),
    }
}

/// Appends a `u32` element count (callers must keep sections under 4 G
/// entries, which every in-memory state satisfies by construction).
pub fn put_count(out: &mut Vec<u8>, n: usize) {
    debug_assert!(n <= u32::MAX as usize, "oversized section");
    #[allow(clippy::cast_possible_truncation)]
    out.extend_from_slice(&(n as u32).to_le_bytes());
}

/// Appends a bounded-memory histogram.
pub fn put_histogram(out: &mut Vec<u8>, h: &Histogram) {
    out.extend_from_slice(&h.lo.to_le_bytes());
    put_count(out, h.buckets.len());
    for &b in &h.buckets {
        out.extend_from_slice(&b.to_le_bytes());
    }
    out.extend_from_slice(&h.underflow.to_le_bytes());
    out.extend_from_slice(&h.overflow.to_le_bytes());
    out.extend_from_slice(&h.rejected.to_le_bytes());
    out.extend_from_slice(&h.count.to_le_bytes());
    out.extend_from_slice(&h.sum.to_le_bytes());
    out.extend_from_slice(&h.max.to_le_bytes());
}

/// Appends a 3x3 transition grid.
pub fn put_grid(out: &mut Vec<u8>, grid: &[[u64; 3]; 3]) {
    for row in grid {
        for &cell in row {
            out.extend_from_slice(&cell.to_le_bytes());
        }
    }
}

/// The wire byte of a [`Severity`].
pub fn severity_byte(s: Severity) -> u8 {
    match s {
        Severity::Info => 0,
        Severity::Warning => 1,
        Severity::Critical => 2,
    }
}

/// The wire byte of a [`Verdict`].
pub fn verdict_byte(v: Verdict) -> u8 {
    match v {
        Verdict::Unknown => 0,
        Verdict::Pass => 1,
        Verdict::Inconclusive => 2,
        Verdict::Violated => 3,
    }
}

/// Appends one violation episode.
pub fn put_violation(out: &mut Vec<u8>, v: &Violation) {
    put_u16_str(out, v.assertion.as_str());
    out.push(severity_byte(v.severity));
    out.extend_from_slice(&v.onset.to_le_bytes());
    out.extend_from_slice(&v.detected.to_le_bytes());
    out.extend_from_slice(&v.value.to_le_bytes());
    out.extend_from_slice(&v.cycle.to_le_bytes());
    put_opt_f64(out, v.recovered);
}

/// Appends a complete [`CheckerState`] snapshot.
pub fn put_checker(out: &mut Vec<u8>, c: &CheckerState) {
    out.extend_from_slice(&c.now.to_le_bytes());
    put_count(out, c.signals.len());
    for s in &c.signals {
        out.push(u8::from(s.seen));
        out.extend_from_slice(&s.time.to_le_bytes());
        out.extend_from_slice(&s.value.to_le_bytes());
        match s.last_step {
            Some((delta, dt)) => {
                out.push(1);
                out.extend_from_slice(&delta.to_le_bytes());
                out.extend_from_slice(&dt.to_le_bytes());
            }
            None => out.push(0),
        }
    }
    put_count(out, c.monitors.len());
    for m in &c.monitors {
        match m.health {
            HealthState::Active => out.push(0),
            HealthState::Degraded(n) => {
                out.push(1);
                out.extend_from_slice(&n.to_le_bytes());
            }
            HealthState::Suspended => out.push(2),
        }
        out.extend_from_slice(&m.degraded_streak.to_le_bytes());
        out.extend_from_slice(&m.clean_streak.to_le_bytes());
        match m.cached {
            None => out.push(0),
            Some(Eval::Healthy) => out.push(1),
            Some(Eval::Violated(v)) => {
                out.push(2);
                out.extend_from_slice(&v.to_le_bytes());
            }
            Some(Eval::Unknown) => out.push(3),
            Some(Eval::Inconclusive) => out.push(4),
        }
        put_opt_f64(out, m.episode_start);
        out.push(u8::from(m.alarmed_this_episode));
        out.push(u8::from(m.ever_healthy));
        out.push(u8::from(m.saw_first_sample));
        match m.open_violation {
            Some(idx) => {
                out.push(1);
                out.extend_from_slice(&idx.to_le_bytes());
            }
            None => out.push(0),
        }
        out.push(verdict_byte(m.last_verdict));
    }
    put_count(out, c.poisoned.len());
    for &p in &c.poisoned {
        out.push(u8::from(p));
    }
    out.extend_from_slice(&c.inconclusive_cycles.to_le_bytes());
    put_opt_f64(out, c.last_cycle);
    put_count(out, c.violations.len());
    for v in &c.violations {
        put_violation(out, v);
    }
    put_count(out, c.stats.len());
    for s in &c.stats {
        put_u16_str(out, &s.id);
        for v in [
            s.verdicts.unknown,
            s.verdicts.pass,
            s.verdicts.inconclusive,
            s.verdicts.violated,
            s.flips,
            s.episodes,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    put_grid(out, &c.health_grid);
    put_histogram(out, &c.eval_ns);
    out.extend_from_slice(&c.cycles.to_le_bytes());
    out.extend_from_slice(&c.events_emitted.to_le_bytes());
    out.extend_from_slice(&c.run_id.to_le_bytes());
    out.push(u8::from(c.started));
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// A bounds-checked little-endian cursor over checkpoint bytes.
#[derive(Debug)]
pub struct Cur<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    /// Starts a cursor at the beginning of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Cur { bytes, pos: 0 }
    }

    /// A [`CodecError::Malformed`] (convenience for decode sites).
    pub fn bad(message: impl Into<String>) -> CodecError {
        CodecError::malformed(message)
    }

    /// Current byte offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Errors unless the cursor consumed the input exactly.
    ///
    /// # Errors
    ///
    /// [`CodecError::Malformed`] when trailing bytes remain.
    pub fn expect_end(&self) -> Result<(), CodecError> {
        if self.pos != self.bytes.len() {
            return Err(Cur::bad(format!(
                "{} trailing bytes after checkpoint",
                self.bytes.len() - self.pos
            )));
        }
        Ok(())
    }

    /// Consumes `n` raw bytes.
    ///
    /// # Errors
    ///
    /// [`CodecError::Malformed`] on truncation.
    pub fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], CodecError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| Cur::bad(format!("truncated: {what} needs {n} bytes")))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`CodecError::Malformed`] on truncation.
    pub fn u8(&mut self, what: &str) -> Result<u8, CodecError> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a strict boolean byte (0 or 1).
    ///
    /// # Errors
    ///
    /// [`CodecError::Malformed`] on truncation or any other byte value.
    pub fn bool(&mut self, what: &str) -> Result<bool, CodecError> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(Cur::bad(format!("{what}: invalid bool byte {other}"))),
        }
    }

    /// Reads a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// [`CodecError::Malformed`] on truncation.
    pub fn u16(&mut self, what: &str) -> Result<u16, CodecError> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`CodecError::Malformed`] on truncation.
    pub fn u32(&mut self, what: &str) -> Result<u32, CodecError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`CodecError::Malformed`] on truncation.
    pub fn u64(&mut self, what: &str) -> Result<u64, CodecError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a little-endian `usize` stored as `u64`.
    ///
    /// # Errors
    ///
    /// [`CodecError::Malformed`] on truncation or a value exceeding the
    /// platform's pointer width.
    pub fn usize64(&mut self, what: &str) -> Result<usize, CodecError> {
        usize::try_from(self.u64(what)?)
            .map_err(|_| Cur::bad(format!("{what}: value exceeds usize")))
    }

    /// Reads an `f64` from raw IEEE-754 bits.
    ///
    /// # Errors
    ///
    /// [`CodecError::Malformed`] on truncation.
    pub fn f64(&mut self, what: &str) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// Reads an optional `f64` (presence byte + bits).
    ///
    /// # Errors
    ///
    /// [`CodecError::Malformed`] on truncation or an invalid presence
    /// byte.
    pub fn opt_f64(&mut self, what: &str) -> Result<Option<f64>, CodecError> {
        Ok(if self.bool(what)? {
            Some(self.f64(what)?)
        } else {
            None
        })
    }

    /// Reads a `u16` length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`CodecError::Malformed`] on truncation or invalid UTF-8.
    pub fn str16(&mut self, what: &str) -> Result<String, CodecError> {
        let len = self.u16(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| Cur::bad(format!("{what}: invalid UTF-8")))
    }

    /// Length prefix for a repeated section; capped so corrupt counts
    /// cannot drive huge allocations before the bytes run out.
    ///
    /// # Errors
    ///
    /// [`CodecError::Malformed`] on truncation or an impossible count.
    pub fn count(&mut self, what: &str) -> Result<usize, CodecError> {
        let n = self.u32(what)? as usize;
        if n > self.bytes.len().saturating_sub(self.pos) {
            return Err(Cur::bad(format!(
                "{what}: count {n} exceeds the remaining {} bytes",
                self.bytes.len() - self.pos
            )));
        }
        Ok(n)
    }

    /// Reads a bounded-memory histogram.
    ///
    /// # Errors
    ///
    /// [`CodecError::Malformed`] on truncation or an invalid layout.
    pub fn histogram(&mut self, what: &str) -> Result<Histogram, CodecError> {
        let lo = self.f64(what)?;
        if !(lo.is_finite() && lo > 0.0) {
            return Err(Cur::bad(format!("{what}: invalid histogram lo {lo}")));
        }
        let buckets = self.count(what)?;
        let mut h = Histogram::new(lo, buckets.max(1));
        h.buckets.clear();
        for _ in 0..buckets {
            h.buckets.push(self.u64(what)?);
        }
        h.underflow = self.u64(what)?;
        h.overflow = self.u64(what)?;
        h.rejected = self.u64(what)?;
        h.count = self.u64(what)?;
        h.sum = self.f64(what)?;
        h.max = self.f64(what)?;
        Ok(h)
    }

    /// Reads a 3x3 transition grid.
    ///
    /// # Errors
    ///
    /// [`CodecError::Malformed`] on truncation.
    pub fn grid(&mut self, what: &str) -> Result<[[u64; 3]; 3], CodecError> {
        let mut grid = [[0u64; 3]; 3];
        for row in &mut grid {
            for cell in row.iter_mut() {
                *cell = self.u64(what)?;
            }
        }
        Ok(grid)
    }
}

/// Decodes a [`Severity`] wire byte.
///
/// # Errors
///
/// [`CodecError::Malformed`] on an unknown byte.
pub fn severity_from(b: u8) -> Result<Severity, CodecError> {
    Ok(match b {
        0 => Severity::Info,
        1 => Severity::Warning,
        2 => Severity::Critical,
        other => return Err(Cur::bad(format!("invalid severity byte {other}"))),
    })
}

/// Decodes a [`Verdict`] wire byte.
///
/// # Errors
///
/// [`CodecError::Malformed`] on an unknown byte.
pub fn verdict_from(b: u8) -> Result<Verdict, CodecError> {
    Ok(match b {
        0 => Verdict::Unknown,
        1 => Verdict::Pass,
        2 => Verdict::Inconclusive,
        3 => Verdict::Violated,
        other => return Err(Cur::bad(format!("invalid verdict byte {other}"))),
    })
}

/// Reads one violation episode.
///
/// # Errors
///
/// [`CodecError::Malformed`] on truncation or invalid tags.
pub fn read_violation(c: &mut Cur<'_>) -> Result<Violation, CodecError> {
    let assertion = AssertionId::new(c.str16("violation assertion")?);
    let severity = severity_from(c.u8("violation severity")?)?;
    let onset = c.f64("violation onset")?;
    let detected = c.f64("violation detected")?;
    let value = c.f64("violation value")?;
    let cycle = c.u64("violation cycle")?;
    let recovered = c.opt_f64("violation recovered")?;
    Ok(Violation {
        assertion,
        severity,
        onset,
        detected,
        value,
        cycle,
        recovered,
    })
}

/// Reads a complete [`CheckerState`] snapshot (inverse of
/// [`put_checker`]).
///
/// # Errors
///
/// [`CodecError::Malformed`] on truncation or invalid tags.
pub fn read_checker(c: &mut Cur<'_>) -> Result<CheckerState, CodecError> {
    let now = c.f64("checker now")?;
    let signal_count = c.count("signal count")?;
    let mut signals = Vec::with_capacity(signal_count);
    for _ in 0..signal_count {
        let seen = c.bool("signal seen")?;
        let time = c.f64("signal time")?;
        let value = c.f64("signal value")?;
        let last_step = if c.bool("signal step flag")? {
            Some((c.f64("signal delta")?, c.f64("signal dt")?))
        } else {
            None
        };
        signals.push(SignalSnapshot {
            seen,
            time,
            value,
            last_step,
        });
    }
    let monitor_count = c.count("monitor count")?;
    let mut monitors = Vec::with_capacity(monitor_count);
    for _ in 0..monitor_count {
        let health = match c.u8("monitor health")? {
            0 => HealthState::Active,
            1 => HealthState::Degraded(c.u32("degraded count")?),
            2 => HealthState::Suspended,
            other => return Err(Cur::bad(format!("invalid health tag {other}"))),
        };
        let degraded_streak = c.u32("degraded streak")?;
        let clean_streak = c.u32("clean streak")?;
        let cached = match c.u8("cached verdict tag")? {
            0 => None,
            1 => Some(Eval::Healthy),
            2 => Some(Eval::Violated(c.f64("cached violated value")?)),
            3 => Some(Eval::Unknown),
            4 => Some(Eval::Inconclusive),
            other => return Err(Cur::bad(format!("invalid cached verdict tag {other}"))),
        };
        let episode_start = c.opt_f64("episode start")?;
        let alarmed_this_episode = c.bool("alarmed flag")?;
        let ever_healthy = c.bool("ever-healthy flag")?;
        let saw_first_sample = c.bool("first-sample flag")?;
        let open_violation = if c.bool("open violation flag")? {
            Some(c.u64("open violation index")?)
        } else {
            None
        };
        let last_verdict = verdict_from(c.u8("last verdict")?)?;
        monitors.push(MonitorSnapshot {
            health,
            degraded_streak,
            clean_streak,
            cached,
            episode_start,
            alarmed_this_episode,
            ever_healthy,
            saw_first_sample,
            open_violation,
            last_verdict,
        });
    }
    let poison_count = c.count("poison count")?;
    let mut poisoned = Vec::with_capacity(poison_count);
    for _ in 0..poison_count {
        poisoned.push(c.bool("poison flag")?);
    }
    let inconclusive_cycles = c.u64("inconclusive cycles")?;
    let last_cycle = c.opt_f64("last cycle")?;
    let violation_count = c.count("violation count")?;
    let mut violations = Vec::with_capacity(violation_count);
    for _ in 0..violation_count {
        violations.push(read_violation(c)?);
    }
    let stat_count = c.count("stat count")?;
    let mut stats = Vec::with_capacity(stat_count);
    for _ in 0..stat_count {
        let id = c.str16("stat id")?;
        let verdicts = VerdictCounts {
            unknown: c.u64("stat unknown")?,
            pass: c.u64("stat pass")?,
            inconclusive: c.u64("stat inconclusive")?,
            violated: c.u64("stat violated")?,
        };
        let flips = c.u64("stat flips")?;
        let episodes = c.u64("stat episodes")?;
        let mut stat = AssertionStats::new(&id);
        stat.verdicts = verdicts;
        stat.flips = flips;
        stat.episodes = episodes;
        stats.push(stat);
    }
    let health_grid = c.grid("health grid")?;
    let eval_ns = c.histogram("eval histogram")?;
    let cycles = c.u64("checker cycles")?;
    let events_emitted = c.u64("events emitted")?;
    let run_id = c.u64("run id")?;
    let started = c.bool("started flag")?;
    Ok(CheckerState {
        now,
        signals,
        monitors,
        poisoned,
        inconclusive_cycles,
        last_cycle,
        violations,
        stats,
        health_grid,
        eval_ns,
        cycles,
        events_emitted,
        run_id,
        started,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_round_trips_including_cycle() {
        let v = Violation {
            assertion: AssertionId::new("A7"),
            severity: Severity::Critical,
            onset: 12.5,
            detected: 12.8,
            value: f64::NAN,
            cycle: 1280,
            recovered: Some(14.0),
        };
        let mut bytes = Vec::new();
        put_violation(&mut bytes, &v);
        let mut c = Cur::new(&bytes);
        let back = read_violation(&mut c).expect("decodes");
        c.expect_end().expect("fully consumed");
        assert_eq!(back.assertion, v.assertion);
        assert_eq!(back.cycle, 1280);
        assert_eq!(back.value.to_bits(), v.value.to_bits(), "NaN bits survive");
        assert_eq!(back.recovered, v.recovered);
    }

    #[test]
    fn truncation_and_bad_tags_are_typed() {
        let v = Violation {
            assertion: AssertionId::new("A1"),
            severity: Severity::Info,
            onset: 0.0,
            detected: 0.1,
            value: 1.0,
            cycle: 10,
            recovered: None,
        };
        let mut bytes = Vec::new();
        put_violation(&mut bytes, &v);
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            let mut c = Cur::new(&bytes[..cut]);
            assert!(
                matches!(read_violation(&mut c), Err(CodecError::Malformed { .. })),
                "truncation at {cut} must fail"
            );
        }
        let mut flipped = bytes.clone();
        flipped[4] = 99; // severity byte (after u16 len + "A1")
        let mut c = Cur::new(&flipped);
        assert!(read_violation(&mut c).is_err());
    }

    #[test]
    fn counts_are_capped_by_remaining_bytes() {
        let mut bytes = Vec::new();
        put_count(&mut bytes, 1000);
        let mut c = Cur::new(&bytes);
        assert!(matches!(
            c.count("huge section"),
            Err(CodecError::Malformed { .. })
        ));
    }
}
