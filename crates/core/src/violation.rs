//! Violation records: what fired, when it started, when it was detected.

use serde::{Deserialize, Serialize};

use crate::assertion::{AssertionId, Severity};

/// One assertion-violation episode.
///
/// `onset` is when the healthy-state condition first went bad in this
/// episode; `detected` is when the temporal operator raised the alarm
/// (after debouncing). `detected - onset` is the monitor-internal delay;
/// detection latency against an attack is measured from the attack start to
/// `detected`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Violation {
    /// Which assertion fired.
    pub assertion: AssertionId,
    /// Severity copied from the assertion.
    pub severity: Severity,
    /// Start of the violating episode (s).
    pub onset: f64,
    /// Alarm instant (s).
    pub detected: f64,
    /// Value of the monitored expression at the alarm instant (for
    /// freshness assertions: the observed staleness).
    pub value: f64,
    /// Zero-based monitor-cycle index at the alarm instant — the exact
    /// cycle a deterministic replay must reach to observe this firing
    /// (`Eventually` violations judged at run end carry the total cycle
    /// count, one past the last cycle).
    pub cycle: u64,
    /// Instant the condition returned to healthy, ending the episode;
    /// `None` while the episode is still open (or the run ended inside it).
    pub recovered: Option<f64>,
}

impl Violation {
    /// Monitor-internal delay between onset and alarm (s).
    pub fn debounce_delay(&self) -> f64 {
        self.detected - self.onset
    }

    /// Duration of the episode, when it recovered within the run (s).
    pub fn episode_duration(&self) -> Option<f64> {
        self.recovered.map(|r| r - self.onset)
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} violated at t={:.2}s (onset {:.2}s, value {:.3})",
            self.assertion, self.detected, self.onset, self.value
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_and_display() {
        let v = Violation {
            assertion: AssertionId::new("A1"),
            severity: Severity::Critical,
            onset: 2.0,
            detected: 2.3,
            value: 1.8,
            cycle: 230,
            recovered: None,
        };
        assert!((v.debounce_delay() - 0.3).abs() < 1e-12);
        let text = v.to_string();
        assert!(text.contains("A1") && text.contains("2.30"));
        assert_eq!(v.episode_duration(), None);
    }

    #[test]
    fn episode_duration_uses_recovery() {
        let v = Violation {
            assertion: AssertionId::new("A6"),
            severity: Severity::Warning,
            onset: 5.0,
            detected: 5.2,
            value: 3.0,
            cycle: 520,
            recovered: Some(9.0),
        };
        assert_eq!(v.episode_duration(), Some(4.0));
    }
}
