//! Property pins for the minimizer: across seeded random compound
//! timelines, the minimized repro (a) still fires the same assertion on
//! independent re-execution, and (b) is 1-minimal — dropping any single
//! surviving entry stops the violation.

use adassure_attacks::campaign::{extended_attacks, AttackSpec};
use adassure_attacks::{AttackKind, AttackTimeline, Window};
use adassure_control::pipeline::EstimatorKind;
use adassure_control::ControllerKind;
use adassure_debug::{minimize, DebugError, DebugSpec, MinimizeConfig};
use adassure_exp::rerun::{reproduces, run_repro};
use adassure_scenarios::{ReproCase, Scenario, ScenarioKind};
use adassure_sim::geometry::Vec2;
use proptest::prelude::*;

/// Decoy entries that cannot cause a violation on their own: inactive
/// (window opens after the run ends) or negligible in magnitude.
fn decoy(index: usize) -> AttackSpec {
    match index {
        0 => AttackSpec::new(
            AttackKind::GnssBias {
                offset: Vec2::new(40.0, 40.0),
            },
            Window::from_start(1.0e6),
        ),
        1 => AttackSpec::new(AttackKind::ImuYawBias { bias: 1.0e-7 }, Window::always()),
        _ => AttackSpec::new(
            AttackKind::GnssNoise { std_dev: 1.0e-6 },
            Window::from_start(5.0),
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn minimized_repro_fires_and_is_one_minimal(
        seed in 1u64..12,
        decoy_index in 0usize..3,
        decoy_first in any::<bool>(),
    ) {
        let scenario = Scenario::of_kind(ScenarioKind::Straight).expect("standard scenario");
        let real = extended_attacks(scenario.attack_start)
            .into_iter()
            .find(|s| s.name() == "gnss_bias")
            .expect("catalog has gnss_bias");
        let decoy = decoy(decoy_index);
        let entries = if decoy_first {
            [decoy, real]
        } else {
            [real, decoy]
        };
        let spec = DebugSpec {
            scenario: ScenarioKind::Straight,
            controller: ControllerKind::PurePursuit,
            estimator: EstimatorKind::Complementary,
            seed,
            timeline: AttackTimeline::new(entries),
        };
        // Loose tolerances keep the oracle-run count small: the property
        // under test is minimality/reproduction, not tightness.
        let config = MinimizeConfig {
            max_runs: 30,
            time_tolerance: 2.0,
            scale_tolerance: 0.25,
        };
        let minimized = match minimize(&spec, &config) {
            Ok(m) => m,
            // This seed's compound run happens not to violate at all —
            // nothing to minimize, nothing to assert.
            Err(DebugError::NoViolation) => return,
            Err(other) => panic!("minimize failed: {other}"),
        };

        // (a) The emitted case is self-contained and still fires the same
        // assertion on an independent re-execution, at the stamped cycle.
        let (_, report) = run_repro(&minimized.case).expect("repro run");
        prop_assert!(reproduces(&minimized.case, &report), "repro case no longer fires");
        let first = report
            .violations_of(&minimized.case.expect.assertion)
            .next()
            .expect("reproduces() implies a violation");
        prop_assert_eq!(first.cycle, minimized.case.expect.cycle, "detection cycle moved");

        // (b) 1-minimality: dropping any single surviving entry stops the
        // violation.
        let len = minimized.case.timeline.len();
        prop_assert!(len >= 1);
        for drop in 0..len {
            let keep: Vec<usize> = (0..len).filter(|&i| i != drop).collect();
            let smaller = ReproCase {
                timeline: minimized.case.timeline.subset(&keep),
                ..minimized.case.clone()
            };
            let (_, smaller_report) = run_repro(&smaller).expect("leave-one-out run");
            prop_assert!(
                smaller_report
                    .violations_of(&minimized.case.expect.assertion)
                    .next()
                    .is_none(),
                "timeline is not 1-minimal: entry {drop} of {len} is droppable"
            );
        }
    }
}
