//! `monitor-server` — a demo fleet monitor service.
//!
//! Drives a synthetic vehicle fleet through the sharded checker and
//! serves the merged metrics over HTTP (`GET /metrics`, Prometheus text
//! format; `GET /metrics.json` for the JSON exporter), plus fleet-level
//! gauges (open streams, rejected batches, stale drops). With
//! `--ingest PORT` it also opens the binary wire-protocol listener
//! ([`adassure_fleet::IngestServer`]) on the same fleet, so external
//! producers can push batches while Prometheus scrapes. Plain
//! `std::net` — no async runtime, one thread per connection, which is
//! plenty for a scrape endpoint.
//!
//! ```text
//! monitor-server [--streams N] [--shards N] [--bind ADDR] [--port P]
//!                [--ingest PORT] [--ticks N] [--once]
//!                [--checkpoint-dir DIR] [--checkpoint-every SECS]
//!                [--max-connections N]
//! ```
//!
//! `--streams 0` disables the synthetic driver (ingest-only service).
//! `--once` runs `--ticks` ingestion ticks and prints the Prometheus
//! export to stdout instead of serving — the CI smoke mode.
//!
//! With `--checkpoint-dir` (and `--ingest`), the server writes a
//! periodic [`adassure_fleet::checkpoint`] snapshot of the whole fleet —
//! checker state, guardians, session sequences — to
//! `DIR/fleet.adckpt`, atomically. On startup it restores from that
//! file when present, so producers that reconnect with their session
//! token resume exactly where the checkpoint left them.

use std::io::{Read, Write};
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use adassure_core::{Assertion, Condition, Severity, SignalExpr};
use adassure_fleet::{
    restore_server, Fleet, FleetConfig, IngestConfig, IngestListener, IngestServer,
    IngestStatsSnapshot, SampleBatch, SessionSeed, StreamId, SubmitError,
};
use adassure_obs::export;

struct Args {
    streams: usize,
    shards: usize,
    bind: String,
    port: u16,
    ingest: Option<u16>,
    ticks: u64,
    once: bool,
    checkpoint_dir: Option<PathBuf>,
    checkpoint_every: u64,
    max_connections: usize,
}

/// Startup failures that should reach the operator as a message and a
/// nonzero exit, not a panic backtrace.
#[derive(Debug)]
enum ServerError {
    /// A listener could not be bound.
    Bind {
        what: &'static str,
        addr: String,
        source: std::io::Error,
    },
    /// A checkpoint file exists but cannot be restored.
    Restore { path: PathBuf, message: String },
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Bind { what, addr, source } => {
                write!(f, "cannot bind {what} listener on {addr}: {source}")
            }
            ServerError::Restore { path, message } => {
                write!(f, "cannot restore checkpoint {}: {message}", path.display())
            }
        }
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        streams: 256,
        shards: 8,
        bind: String::from("127.0.0.1"),
        port: 9464,
        ingest: None,
        ticks: 200,
        once: false,
        checkpoint_dir: None,
        checkpoint_every: 30,
        max_connections: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut grab = |name: &str| {
            it.next()
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or_else(|| panic!("{name} needs a numeric value"))
        };
        match flag.as_str() {
            "--streams" => args.streams = grab("--streams") as usize,
            "--shards" => args.shards = grab("--shards") as usize,
            "--bind" => {
                args.bind = it.next().unwrap_or_else(|| {
                    eprintln!("--bind needs an address");
                    std::process::exit(2);
                })
            }
            "--port" => args.port = grab("--port") as u16,
            "--ingest" => args.ingest = Some(grab("--ingest") as u16),
            "--ticks" => args.ticks = grab("--ticks"),
            "--once" => args.once = true,
            "--checkpoint-dir" => {
                args.checkpoint_dir = Some(PathBuf::from(it.next().unwrap_or_else(|| {
                    eprintln!("--checkpoint-dir needs a path");
                    std::process::exit(2);
                })))
            }
            "--checkpoint-every" => args.checkpoint_every = grab("--checkpoint-every"),
            "--max-connections" => args.max_connections = grab("--max-connections") as usize,
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn catalog() -> Vec<Assertion> {
    vec![
        Assertion::new(
            "S1",
            "bounded cross-track error",
            Severity::Critical,
            Condition::AtMost {
                expr: SignalExpr::signal("xtrack").abs(),
                limit: 1.0,
            },
        ),
        Assertion::new(
            "S2",
            "speed stays non-negative",
            Severity::Warning,
            Condition::AtLeast {
                expr: SignalExpr::signal("speed"),
                limit: 0.0,
            },
        ),
        Assertion::new(
            "S3",
            "gnss fix is fresh",
            Severity::Critical,
            Condition::Fresh {
                signal: "gnss_x".into(),
                max_age: 0.5,
            },
        ),
    ]
}

/// Deterministic per-stream telemetry synthesizer (split-mix style LCG).
struct Synth {
    state: u64,
    t: f64,
}

impl Synth {
    fn new(seed: u64) -> Self {
        Synth {
            state: seed.wrapping_mul(2654435761).wrapping_add(12345),
            t: 0.0,
        }
    }

    fn next(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.state >> 11
    }

    fn uniform(&mut self) -> f64 {
        (self.next() % 1_000_000) as f64 / 1_000_000.0
    }

    /// One cycle of samples at the stream's next timestamp.
    fn cycle(&mut self, id: StreamId) -> SampleBatch {
        self.t += 0.05;
        let mut batch = SampleBatch::new(id);
        let roll = self.uniform();
        let xtrack = if roll < 0.02 {
            1.0 + self.uniform() * 2.0
        } else {
            self.uniform() * 0.9
        };
        batch.push(self.t, "xtrack", xtrack);
        batch.push(self.t, "speed", 4.0 + self.uniform());
        if self.uniform() > 0.2 {
            batch.push(self.t, "gnss_x", self.uniform() * 50.0);
        }
        batch
    }
}

/// One ingestion tick: a cycle for every stream, retrying on saturation.
fn tick(fleet: &mut Fleet, ids: &[StreamId], synths: &mut [Synth]) {
    for (id, synth) in ids.iter().zip(synths.iter_mut()) {
        let mut batch = synth.cycle(*id);
        loop {
            match fleet.submit(batch) {
                Ok(()) => break,
                Err(SubmitError::Saturated { batch: b, .. }) => {
                    fleet.poll();
                    batch = b;
                }
                Err(other) => panic!("submit failed: {other}"),
            }
        }
    }
    fleet.poll();
}

/// The Prometheus page: checker metrics, fleet-level counters, and —
/// when the wire listener is up — the ingest counters.
fn metrics_page(fleet: &Fleet, ingest: Option<&IngestStatsSnapshot>) -> String {
    let mut page = export::prometheus(&fleet.metrics());
    let stats = fleet.stats();
    export::push_gauge(
        &mut page,
        "adassure_fleet_open_streams",
        "Streams currently open",
        stats.open_streams as f64,
    );
    export::push_counter(
        &mut page,
        "adassure_fleet_rejected_batches",
        "Batches refused by saturated shard queues",
        stats.rejected_batches,
    );
    export::push_counter(
        &mut page,
        "adassure_fleet_stale_batches",
        "Batches dropped for a stale stream generation",
        stats.stale_batches,
    );
    export::push_counter(
        &mut page,
        "adassure_fleet_bad_cycles",
        "Cycles rejected for non-monotone timestamps",
        stats.bad_cycles,
    );
    export::push_counter(
        &mut page,
        "adassure_fleet_samples",
        "Samples checked",
        stats.samples,
    );
    export::push_quantiles(
        &mut page,
        "adassure_fleet_cycle_latency_ns",
        "Sampled per-cycle shard drain latency, nanoseconds",
        &fleet.cycle_latency(),
    );
    if let Some(ingest) = ingest {
        for (name, help, value) in [
            (
                "adassure_ingest_connections_total",
                "Producer connections accepted",
                ingest.connections,
            ),
            (
                "adassure_ingest_rejected_connections",
                "Connections refused at the connection cap",
                ingest.rejected_connections,
            ),
            (
                "adassure_ingest_resumes_total",
                "Producer sessions resumed after a reconnect",
                ingest.resumes,
            ),
            (
                "adassure_ingest_checkpoints_total",
                "Fleet checkpoints written",
                ingest.checkpoints,
            ),
            (
                "adassure_ingest_frames_total",
                "Wire frames decoded",
                ingest.frames,
            ),
            (
                "adassure_ingest_batches_total",
                "Sample batches applied from the wire",
                ingest.batches,
            ),
            (
                "adassure_ingest_samples_total",
                "Samples applied from the wire",
                ingest.samples,
            ),
            (
                "adassure_ingest_streams_opened_total",
                "Streams opened over the wire",
                ingest.opens,
            ),
            (
                "adassure_ingest_streams_closed_total",
                "Streams closed over the wire",
                ingest.closes,
            ),
            (
                "adassure_ingest_saturated_nacks_total",
                "Batches nacked Saturated (retried by producers)",
                ingest.saturated_nacks,
            ),
            (
                "adassure_ingest_superseded_nacks_total",
                "Frames nacked Superseded during go-back-N rewinds",
                ingest.superseded_nacks,
            ),
            (
                "adassure_ingest_rejected_unknown_shard_total",
                "Batches addressed to a shard the fleet does not have",
                ingest.rejected_unknown_shard,
            ),
            (
                "adassure_ingest_rejected_stale_total",
                "Close requests for stale or unknown streams",
                ingest.rejected_stale,
            ),
            (
                "adassure_ingest_malformed_total",
                "Protocol-level rejections (malformed, bad magic, bad version)",
                ingest.malformed,
            ),
            (
                "adassure_ingest_truncated_total",
                "Connections that disconnected mid-frame",
                ingest.truncated,
            ),
            (
                "adassure_ingest_bytes_total",
                "Raw bytes received on the wire",
                ingest.bytes_rx,
            ),
        ] {
            export::push_counter(&mut page, name, help, value);
        }
        export::push_quantiles(
            &mut page,
            "adassure_ingest_decode_ns",
            "Sampled wire-frame decode latency, nanoseconds",
            &ingest.decode_ns,
        );
    }
    page
}

fn run(args: Args) -> Result<(), ServerError> {
    let fleet_config = FleetConfig {
        shards: args.shards,
        ..FleetConfig::default()
    };
    // Restore from the last checkpoint when one exists: the fleet comes
    // back with every stream's checker state, and the session seed lets
    // reconnecting producers resume exactly where the snapshot left
    // them.
    let checkpoint_path = args
        .checkpoint_dir
        .as_ref()
        .map(|dir| dir.join("fleet.adckpt"));
    let mut session_seed: Option<SessionSeed> = None;
    let mut fleet = match &checkpoint_path {
        Some(path) if path.exists() && !args.once => {
            let restore = std::fs::read(path)
                .map_err(|e| (path, e.to_string()))
                .and_then(|bytes| {
                    restore_server(catalog(), fleet_config, &bytes)
                        .map_err(|e| (path, e.to_string()))
                });
            match restore {
                Ok((fleet, seed)) => {
                    eprintln!(
                        "monitor-server: restored {} sessions from {}",
                        seed.len(),
                        path.display()
                    );
                    session_seed = Some(seed);
                    fleet
                }
                Err((path, message)) => {
                    return Err(ServerError::Restore {
                        path: path.clone(),
                        message,
                    })
                }
            }
        }
        _ => Fleet::new(catalog(), fleet_config),
    };
    let ids: Vec<StreamId> = (0..args.streams).map(|_| fleet.open_stream()).collect();
    let mut synths: Vec<Synth> = (0..args.streams).map(|i| Synth::new(i as u64)).collect();

    if args.once {
        for _ in 0..args.ticks {
            tick(&mut fleet, &ids, &mut synths);
        }
        print!("{}", metrics_page(&fleet, None));
        let stats = fleet.stats();
        eprintln!(
            "monitor-server: {} streams, {} cycles, {} violations, {} rejected batches",
            args.streams, stats.cycles, stats.violations, stats.rejected_batches
        );
        return Ok(());
    }

    let fleet = Arc::new(Mutex::new(fleet));

    // The wire-protocol ingest listener, if requested. Its drain thread
    // polls the fleet, so the synthetic driver below stays optional.
    let ingest = match args.ingest {
        Some(port) => {
            let addr = format!("{}:{port}", args.bind);
            let listener =
                TcpListener::bind(addr.as_str()).map_err(|source| ServerError::Bind {
                    what: "ingest",
                    addr: addr.clone(),
                    source,
                })?;
            let config = IngestConfig {
                max_connections: args.max_connections,
                ..IngestConfig::default()
            };
            let server = match session_seed.take() {
                Some(seed) => IngestServer::spawn_restored(
                    Arc::clone(&fleet),
                    IngestListener::Tcp(listener),
                    config,
                    seed,
                ),
                None => {
                    IngestServer::spawn(Arc::clone(&fleet), IngestListener::Tcp(listener), config)
                }
            }
            .map_err(|source| ServerError::Bind {
                what: "ingest",
                addr,
                source,
            })?;
            eprintln!("monitor-server: wire ingest on {}:{port}", args.bind);
            Some(server)
        }
        None => None,
    };

    // Periodic crash-recovery snapshots, atomically replacing
    // DIR/fleet.adckpt. Only meaningful alongside the wire listener —
    // the checkpoint covers the sessions producers resume into.
    if let (Some(server), Some(path)) = (&ingest, &checkpoint_path) {
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        let checkpointer = server.checkpointer();
        let every = std::time::Duration::from_secs(args.checkpoint_every.max(1));
        eprintln!(
            "monitor-server: checkpointing to {} every {}s",
            path.display(),
            every.as_secs()
        );
        let path = path.clone();
        std::thread::spawn(move || loop {
            std::thread::sleep(every);
            if let Err(e) = checkpointer.checkpoint_to(&path) {
                eprintln!("monitor-server: checkpoint failed: {e}");
            }
        });
    } else if checkpoint_path.is_some() && !args.once {
        eprintln!("monitor-server: --checkpoint-dir is ignored without --ingest");
    }

    if !ids.is_empty() {
        let fleet = Arc::clone(&fleet);
        std::thread::spawn(move || loop {
            {
                let mut fleet = fleet.lock().expect("fleet lock");
                tick(&mut fleet, &ids, &mut synths);
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
        });
    }

    let addr = format!("{}:{}", args.bind, args.port);
    let listener = TcpListener::bind(addr.as_str()).map_err(|source| ServerError::Bind {
        what: "metrics",
        addr: addr.clone(),
        source,
    })?;
    eprintln!(
        "monitor-server: serving /metrics on {addr} ({} streams, {} shards)",
        args.streams, args.shards
    );
    let ingest = ingest.map(Arc::new);
    for stream in listener.incoming() {
        let Ok(mut conn) = stream else { continue };
        let fleet = Arc::clone(&fleet);
        let ingest = ingest.clone();
        std::thread::spawn(move || {
            let mut buf = [0u8; 1024];
            let n = conn.read(&mut buf).unwrap_or(0);
            let request = String::from_utf8_lossy(&buf[..n]);
            let path = request.split_whitespace().nth(1).unwrap_or("/");
            let (status, body, content_type) = {
                let ingest_stats = ingest.as_ref().map(|s| s.stats());
                let fleet = fleet.lock().expect("fleet lock");
                match path {
                    "/metrics" => (
                        "200 OK",
                        metrics_page(&fleet, ingest_stats.as_ref()),
                        "text/plain; version=0.0.4",
                    ),
                    "/metrics.json" => {
                        ("200 OK", export::json(&fleet.metrics()), "application/json")
                    }
                    _ => ("404 Not Found", String::from("not found\n"), "text/plain"),
                }
            };
            let _ = write!(
                conn,
                "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                body.len()
            );
        });
    }
    Ok(())
}

fn main() {
    if let Err(e) = run(parse_args()) {
        eprintln!("monitor-server: {e}");
        std::process::exit(1);
    }
}
