//! The fleet multiplexer: sharded stream slabs behind bounded ingestion
//! queues, drained on the shared worker pool.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};

use adassure_core::{Assertion, CheckReport, CheckerPlan, HealthConfig};
use adassure_exp::Runtime;
use adassure_obs::{Histogram, MetricsSnapshot};

use crate::shard::{DrainStats, Shard, ShardState, StreamConfig, StreamError};
use crate::stream::{SampleBatch, StreamId};

/// Plain-data snapshot of a whole fleet, captured between polls. The
/// binary encoding lives in [`crate::checkpoint`].
#[derive(Debug, Clone)]
pub(crate) struct FleetState {
    /// Assertion ids of the plan the state was captured under, in catalog
    /// order — the restore side validates its plan against them.
    pub(crate) assertion_ids: Vec<String>,
    pub(crate) health: HealthConfig,
    pub(crate) next_seq: u64,
    pub(crate) closed_streams: u64,
    pub(crate) retired: MetricsSnapshot,
    pub(crate) rejected: Vec<u64>,
    pub(crate) shards: Vec<ShardState>,
}

/// Fleet construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Number of shards. More shards = more drain parallelism and smaller
    /// lock scopes; stream → shard assignment is round-robin by open
    /// order, so any count yields the same per-stream results.
    pub shards: usize,
    /// Per-shard ingestion queue capacity, in batches. A full queue
    /// rejects [`Fleet::submit`] with [`SubmitError::Saturated`] — explicit
    /// backpressure instead of unbounded buffering.
    pub queue_capacity: usize,
    /// Telemetry-health configuration for every stream's checker.
    pub health: HealthConfig,
    /// Worker pool draining the shards ([`Runtime::global`] by default).
    pub runtime: Runtime,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            shards: 8,
            queue_capacity: 1024,
            health: HealthConfig::default(),
            runtime: Runtime::global(),
        }
    }
}

/// Typed rejection from [`Fleet::submit`] / [`FleetHandle::submit`]. The
/// batch rides along so the producer can retry without cloning up front.
#[derive(Debug)]
pub enum SubmitError {
    /// The target shard's queue is full. The shard's rejected-batch
    /// counter has been bumped (observable via [`Fleet::stats`]); nothing
    /// was buffered or dropped silently.
    Saturated {
        /// The saturated shard.
        shard: usize,
        /// The rejected batch, returned for retry.
        batch: SampleBatch,
    },
    /// The batch's stream id names a shard this fleet does not have.
    UnknownShard {
        /// The rejected batch.
        batch: SampleBatch,
    },
    /// The shard's receiver is gone (the fleet was dropped).
    Disconnected {
        /// The rejected batch.
        batch: SampleBatch,
    },
}

impl SubmitError {
    /// Recovers the rejected batch for retry.
    pub fn into_batch(self) -> SampleBatch {
        match self {
            SubmitError::Saturated { batch, .. }
            | SubmitError::UnknownShard { batch }
            | SubmitError::Disconnected { batch } => batch,
        }
    }
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Saturated { shard, .. } => {
                write!(f, "shard {shard} ingestion queue is full")
            }
            SubmitError::UnknownShard { batch } => {
                write!(f, "stream addresses unknown shard {}", batch.stream.shard())
            }
            SubmitError::Disconnected { .. } => write!(f, "fleet is gone"),
        }
    }
}

/// A clonable producer-side handle: submit batches without touching the
/// fleet (and without its lock). One handle per producer thread.
#[derive(Debug, Clone)]
pub struct FleetHandle {
    txs: Vec<SyncSender<SampleBatch>>,
    rejected: Vec<Arc<AtomicU64>>,
}

impl FleetHandle {
    /// Queues `batch` on its stream's shard.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Saturated`] when the shard queue is full (the batch
    /// is returned; the rejection is counted), [`SubmitError::UnknownShard`]
    /// for a foreign [`StreamId`].
    pub fn submit(&self, batch: SampleBatch) -> Result<(), SubmitError> {
        let shard = batch.stream.shard();
        let Some(tx) = self.txs.get(shard) else {
            return Err(SubmitError::UnknownShard { batch });
        };
        match tx.try_send(batch) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(batch)) => {
                self.rejected[shard].fetch_add(1, Ordering::Relaxed);
                Err(SubmitError::Saturated { shard, batch })
            }
            Err(TrySendError::Disconnected(batch)) => Err(SubmitError::Disconnected { batch }),
        }
    }
}

/// Aggregate counters over the fleet's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Streams currently open.
    pub open_streams: u64,
    /// Streams closed so far.
    pub closed_streams: u64,
    /// Batches rejected with [`SubmitError::Saturated`].
    pub rejected_batches: u64,
    /// Batches consumed from the queues.
    pub batches: u64,
    /// Samples offered to checkers.
    pub samples: u64,
    /// Cycles closed.
    pub cycles: u64,
    /// Violations raised.
    pub violations: u64,
    /// Cycle groups rejected for bad timestamps.
    pub bad_cycles: u64,
    /// Batches addressed to a closed stream generation, dropped (counted,
    /// never silent).
    pub stale_batches: u64,
}

/// Per-[`Fleet::poll`] progress counters.
pub type PollStats = DrainStats;

/// A sharded multi-stream monitor over one compiled assertion catalog.
///
/// ```
/// use adassure_core::{Assertion, Condition, Severity, SignalExpr};
/// use adassure_fleet::{Fleet, FleetConfig, SampleBatch};
///
/// let catalog = [Assertion::new(
///     "A1",
///     "bounded x",
///     Severity::Critical,
///     Condition::AtMost { expr: SignalExpr::signal("x").abs(), limit: 1.0 },
/// )];
/// let mut fleet = Fleet::new(catalog, FleetConfig::default());
/// let id = fleet.open_stream();
/// let mut batch = SampleBatch::new(id);
/// batch.push(0.1, "x", 0.5);
/// batch.push(0.2, "x", 2.0);
/// fleet.submit(batch).unwrap();
/// let polled = fleet.poll();
/// assert_eq!(polled.cycles, 2);
/// assert_eq!(polled.violations, 1);
/// let (report, _metrics) = fleet.close_stream(id).unwrap();
/// assert_eq!(report.violations.len(), 1);
/// ```
#[derive(Debug)]
pub struct Fleet {
    plan: Arc<CheckerPlan>,
    health: HealthConfig,
    runtime: Runtime,
    shards: Vec<Mutex<Shard>>,
    txs: Vec<SyncSender<SampleBatch>>,
    rejected: Vec<Arc<AtomicU64>>,
    /// Snapshots of closed streams, merged eagerly in close order (an
    /// order the caller controls, hence shard-count independent).
    retired: MetricsSnapshot,
    closed_streams: u64,
    next_seq: u64,
}

impl Fleet {
    /// Compiles `catalog` once and builds a fleet over it.
    pub fn new(catalog: impl IntoIterator<Item = Assertion>, config: FleetConfig) -> Self {
        Fleet::with_plan(Arc::new(CheckerPlan::compile(catalog)), config)
    }

    /// Builds a fleet over an already-compiled plan (shareable with other
    /// fleets or serial checkers).
    pub fn with_plan(plan: Arc<CheckerPlan>, config: FleetConfig) -> Self {
        let shard_count = config.shards.max(1);
        let capacity = config.queue_capacity.max(1);
        let mut shards = Vec::with_capacity(shard_count);
        let mut txs = Vec::with_capacity(shard_count);
        let mut rejected = Vec::with_capacity(shard_count);
        for index in 0..shard_count {
            let (tx, rx) = sync_channel(capacity);
            shards.push(Mutex::new(Shard::new(index as u32, rx)));
            txs.push(tx);
            rejected.push(Arc::new(AtomicU64::new(0)));
        }
        Fleet {
            plan,
            health: config.health,
            runtime: config.runtime,
            shards,
            txs,
            rejected,
            retired: MetricsSnapshot::empty(),
            closed_streams: 0,
            next_seq: 0,
        }
    }

    /// The shared compiled plan.
    pub fn plan(&self) -> &Arc<CheckerPlan> {
        &self.plan
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Opens a stream with a clean telemetry link and no guardian.
    pub fn open_stream(&mut self) -> StreamId {
        self.open_stream_with(StreamConfig::default())
    }

    /// Opens a stream with explicit per-stream options (fault injector,
    /// guardian). Streams are assigned to shards round-robin by open
    /// order.
    pub fn open_stream_with(&mut self, config: StreamConfig) -> StreamId {
        let seq = self.next_seq;
        self.next_seq += 1;
        let shard = (seq % self.shards.len() as u64) as usize;
        self.shards[shard]
            .lock()
            .expect("shard lock poisoned")
            .open(seq, &self.plan, self.health, config)
    }

    /// A clonable producer handle (see [`FleetHandle`]).
    pub fn handle(&self) -> FleetHandle {
        FleetHandle {
            txs: self.txs.clone(),
            rejected: self.rejected.clone(),
        }
    }

    /// Queues `batch` on its stream's shard — see [`FleetHandle::submit`].
    pub fn submit(&self, batch: SampleBatch) -> Result<(), SubmitError> {
        let shard = batch.stream.shard();
        let Some(tx) = self.txs.get(shard) else {
            return Err(SubmitError::UnknownShard { batch });
        };
        match tx.try_send(batch) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(batch)) => {
                self.rejected[shard].fetch_add(1, Ordering::Relaxed);
                Err(SubmitError::Saturated { shard, batch })
            }
            Err(TrySendError::Disconnected(batch)) => Err(SubmitError::Disconnected { batch }),
        }
    }

    /// Drains every shard's queue on the worker pool and returns this
    /// poll's aggregate progress. Deterministic: each stream's cycles
    /// depend only on its own batch order, never on which worker drained
    /// the shard.
    pub fn poll(&self) -> PollStats {
        let indices: Vec<usize> = (0..self.shards.len()).collect();
        let deltas = self.runtime.map(&indices, |&i| {
            self.shards[i].lock().expect("shard lock poisoned").drain()
        });
        let mut total = DrainStats::default();
        for delta in &deltas {
            total.merge(delta);
        }
        total
    }

    /// Closes a stream: drains its shard (so queued batches are applied,
    /// not lost), finalises the checker at the last cycle's timestamp, and
    /// retires the stream's metrics into the fleet accumulator.
    ///
    /// # Errors
    ///
    /// [`StreamError`] when the id is stale or unknown.
    pub fn close_stream(
        &mut self,
        id: StreamId,
    ) -> Result<(CheckReport, MetricsSnapshot), StreamError> {
        let shard = self
            .shards
            .get(id.shard())
            .ok_or(StreamError::UnknownSlot)?;
        let mut shard = shard.lock().expect("shard lock poisoned");
        shard.drain();
        let (report, snapshot) = shard.close(id)?;
        drop(shard);
        self.retired.merge(&snapshot);
        self.closed_streams += 1;
        Ok((report, snapshot))
    }

    /// The fleet-wide metrics snapshot: every closed stream (in close
    /// order) merged with every live stream (in open order). Both orders
    /// are independent of shard and worker count, so the result is
    /// bit-identical across fleet layouts — the property pinned by the
    /// sharded-vs-serial differential test.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut live: Vec<(u64, MetricsSnapshot)> = Vec::new();
        for shard in &self.shards {
            shard
                .lock()
                .expect("shard lock poisoned")
                .snapshots(&mut live);
        }
        live.sort_by_key(|(seq, _)| *seq);
        let mut out = MetricsSnapshot::empty();
        out.merge(&self.retired);
        for (_, snap) in &live {
            out.merge(snap);
        }
        out
    }

    /// Aggregate lifetime counters (streams, batches, rejections, drops).
    pub fn stats(&self) -> FleetStats {
        let mut stats = FleetStats {
            closed_streams: self.closed_streams,
            ..FleetStats::default()
        };
        for (shard, rejected) in self.shards.iter().zip(&self.rejected) {
            let shard = shard.lock().expect("shard lock poisoned");
            let totals = shard.totals();
            stats.open_streams += shard.live() as u64;
            stats.batches += totals.batches;
            stats.samples += totals.samples;
            stats.cycles += totals.cycles;
            stats.violations += totals.violations;
            stats.bad_cycles += totals.bad_cycles;
            stats.stale_batches += totals.stale_batches;
            stats.rejected_batches += rejected.load(Ordering::Relaxed);
        }
        stats
    }

    /// Drains every queue, then captures the fleet's complete state as
    /// plain data: slab layouts, checker and guardian states, merged
    /// retired metrics, and the stream-sequence counter. Together with the
    /// plan this determines every future verdict, which is what makes
    /// checkpoint/restore bit-identical (see [`crate::checkpoint`]).
    pub(crate) fn capture_state(&mut self) -> Result<FleetState, String> {
        self.poll();
        let mut shards = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            shards.push(shard.lock().expect("shard lock poisoned").save_state()?);
        }
        Ok(FleetState {
            assertion_ids: self
                .plan
                .monitors()
                .iter()
                .map(|m| m.assertion().id.as_str().to_owned())
                .collect(),
            health: self.health,
            next_seq: self.next_seq,
            closed_streams: self.closed_streams,
            retired: self.retired.clone(),
            rejected: self
                .rejected
                .iter()
                .map(|r| r.load(Ordering::Relaxed))
                .collect(),
            shards,
        })
    }

    /// Rebuilds a fleet from a captured [`FleetState`] over `plan`. The
    /// plan must carry the same catalog (validated by assertion ids) and
    /// `config` must match the state's shard count and health config —
    /// stream ids encode their shard, so the layout is part of the state.
    pub(crate) fn restore_with_state(
        plan: Arc<CheckerPlan>,
        config: FleetConfig,
        state: FleetState,
    ) -> Result<Self, String> {
        let plan_ids: Vec<&str> = plan
            .monitors()
            .iter()
            .map(|m| m.assertion().id.as_str())
            .collect();
        if plan_ids.len() != state.assertion_ids.len()
            || plan_ids
                .iter()
                .zip(&state.assertion_ids)
                .any(|(p, s)| p != s)
        {
            return Err(format!(
                "checkpoint catalog {:?} does not match the supplied catalog {plan_ids:?}",
                state.assertion_ids
            ));
        }
        if config.health != state.health {
            return Err("checkpoint health config does not match the supplied config".into());
        }
        if config.shards.max(1) != state.shards.len() {
            return Err(format!(
                "checkpoint has {} shards, config requests {}",
                state.shards.len(),
                config.shards.max(1)
            ));
        }
        let mut fleet = Fleet::with_plan(plan, config);
        for (shard, shard_state) in fleet.shards.iter().zip(state.shards) {
            shard.lock().expect("shard lock poisoned").restore_state(
                shard_state,
                &fleet.plan,
                fleet.health,
            )?;
        }
        for (counter, value) in fleet.rejected.iter().zip(&state.rejected) {
            counter.store(*value, Ordering::Relaxed);
        }
        fleet.next_seq = state.next_seq;
        fleet.closed_streams = state.closed_streams;
        fleet.retired = state.retired;
        Ok(fleet)
    }

    /// Sampled wall-clock per-cycle latency, merged across shards. For
    /// benchmarks and dashboards; never part of the deterministic
    /// snapshot comparison.
    pub fn cycle_latency(&self) -> Histogram {
        let mut out = Histogram::nanos();
        for shard in &self.shards {
            out.merge(shard.lock().expect("shard lock poisoned").cycle_ns());
        }
        out
    }
}
