//! Autonomous-driving control algorithms — the code ADAssure debugs.
//!
//! This crate implements the classical AD control stack the methodology is
//! evaluated against:
//!
//! * [`estimator`] — a complementary-filter state estimator fusing GNSS,
//!   IMU, wheel odometry and compass (the attack surface: it believes the
//!   sensors); [`ekf`] — an extended Kalman filter alternative with
//!   optional innovation gating;
//! * [`pure_pursuit`], [`stanley`], [`lqr`], [`mpc`] — four lateral
//!   controllers spanning geometric, error-feedback, optimal-gain and
//!   receding-horizon designs;
//! * [`pid`] — longitudinal PID speed control with anti-windup;
//! * [`pipeline`] — [`pipeline::AdStack`], the full waypoint-following
//!   pipeline implementing [`adassure_sim::engine::Driver`] and recording
//!   every internal signal (estimates, error terms, innovation, progress)
//!   under the [`adassure_trace::well_known`] names.
//!
//! # Example
//!
//! ```
//! use adassure_control::pipeline::{AdStack, StackConfig};
//! use adassure_control::ControllerKind;
//! use adassure_sim::engine::{Engine, SimConfig};
//! use adassure_sim::track::Track;
//!
//! # fn main() -> Result<(), adassure_sim::SimError> {
//! let track = Track::line([0.0, 0.0], [300.0, 0.0], 1.0)?;
//! let mut stack = AdStack::new(
//!     StackConfig::new(ControllerKind::PurePursuit).with_cruise_speed(8.0),
//!     track.clone(),
//! );
//! let out = Engine::new(SimConfig::new(60.0).with_seed(1), track).run(&mut stack)?;
//! assert!(out.reached_goal);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ekf;
pub mod estimator;
pub mod lqr;
pub mod mpc;
pub mod pid;
pub mod pipeline;
pub mod pure_pursuit;
pub mod stanley;
mod types;

pub use types::{ControllerKind, Estimate, LateralController};
