//! Network ingestion: the connection-per-producer server loop feeding the
//! sharded fleet, and the reusable client-side producer.
//!
//! The server accepts TCP or Unix-domain connections, runs the
//! [`crate::wire`] protocol on each (one thread per producer — plain
//! `std::net`, no async runtime), decodes frames into the fleet's
//! bounded shard queues through a lock-free [`crate::FleetHandle`], and
//! drains the shards on a dedicated thread. Backpressure is end-to-end
//! and typed: a saturated shard queue surfaces to the producer as a
//! [`NackReason::Saturated`] with a retry-after hint — nothing is
//! silently dropped, and every rejection is counted in [`IngestStats`].
//!
//! # Ordering under backpressure (go-back-N)
//!
//! Per-stream batch order is what the checker's determinism rests on, so
//! the connection enforces a sequence discipline: every post-handshake
//! frame carries a `u64` sequence number and the server only applies the
//! next expected one. When a batch is refused as `Saturated`, the
//! expected sequence *stays put*; frames already in flight behind it are
//! answered `Superseded` (counted, never applied) and the producer
//! rewinds — re-sending its unacknowledged window from the refused
//! sequence on. The result is exactly-once, in-order application of
//! every batch, which is what makes wire-path output bit-identical to
//! in-process submission (pinned by `tests/ingest_differential.rs`).
//!
//! # Sessions and crash recovery
//!
//! The sequence discipline lives in a *session*, not the connection. A
//! fresh `Hello` allocates a session token; the server keeps the
//! session's expected sequence and a bounded ring of its recent encoded
//! responses after the connection drops. A producer that reconnects with
//! `Hello{session}` + `Resume{last_acked}` learns the server's next
//! expected sequence, receives replayed responses for frames it sent but
//! never saw answered, and rewinds its retained window — exactly-once
//! application survives the cut. Periodic [`Checkpointer`] snapshots
//! (see [`crate::checkpoint`]) extend the same guarantee across a server
//! crash: a restored server nacks nothing, it simply answers `Resume`
//! with the checkpointed sequence and producers replay the gap from
//! their retained frames. `BatchApplied` acks carry the session's
//! durable (checkpoint-covered) sequence so producers can trim that
//! retention.

use std::collections::{BTreeMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use adassure_obs::Histogram;

use crate::checkpoint::{self, CheckpointError, SessionSeed, SessionSeedEntry};
use crate::fleet::{Fleet, FleetHandle, SubmitError};
use crate::shard::StreamError;
use crate::stream::{SampleBatch, StreamId};
use crate::wire::{
    encode_ack, encode_close_stream, encode_get_metrics, encode_hello, encode_hello_session,
    encode_nack, encode_open_stream, encode_resume, encode_sample_batch, AckBody, Frame,
    FrameDecoder, NackReason, WireError, DEFAULT_MAX_FRAME_LEN, VERSION,
};

/// Sample the per-frame decode latency every `DECODE_TIMING_MASK + 1`
/// frames — the same stride philosophy as the shard's cycle timing.
const DECODE_TIMING_MASK: u64 = 7;

/// Ingest server tuning.
#[derive(Debug, Clone, Copy)]
pub struct IngestConfig {
    /// Cap on a frame body; a declared length beyond it closes the
    /// connection with a typed error before any buffering.
    pub max_frame_len: usize,
    /// Retry hint (µs) carried by `Saturated` nacks.
    pub retry_after_us: u32,
    /// Drain-thread cadence: 0 polls eagerly (parking briefly when
    /// idle); a positive value sleeps that many µs between polls —
    /// useful in tests to force queue saturation.
    pub poll_interval_us: u64,
    /// Cap on concurrently served connections; an accept beyond it is
    /// answered with a [`NackReason::ConnectionLimit`] nack (carrying
    /// the retry hint) and closed, counted in
    /// [`IngestStats::rejected_connections`]. 0 = unlimited.
    pub max_connections: usize,
    /// Per-session ring of recent encoded responses retained for resume
    /// replay. A reconnecting producer whose `last_acked` has fallen out
    /// of the ring is refused with [`NackReason::ResumeGap`].
    pub session_ack_ring: usize,
    /// Cap on retained sessions; at the cap a new `Hello` evicts the
    /// oldest detached session, or is refused when every session is
    /// live. 0 = unlimited.
    pub max_sessions: usize,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            retry_after_us: 100,
            poll_interval_us: 0,
            max_connections: 0,
            session_ack_ring: 256,
            max_sessions: 4096,
        }
    }
}

/// The transport the server listens on.
#[derive(Debug)]
pub enum IngestListener {
    /// Loopback/LAN TCP.
    Tcp(TcpListener),
    /// Unix-domain socket (same protocol, no TCP stack).
    #[cfg(unix)]
    Unix(UnixListener),
}

/// Live ingestion counters, shared across connection threads.
#[derive(Debug)]
pub struct IngestStats {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Connections refused at [`IngestConfig::max_connections`].
    pub rejected_connections: AtomicU64,
    /// Successful session resumptions.
    pub resumes: AtomicU64,
    /// Checkpoints written via [`Checkpointer::checkpoint_to`].
    pub checkpoints: AtomicU64,
    /// Frames decoded (all types).
    pub frames: AtomicU64,
    /// Sample batches applied to shard queues.
    pub batches: AtomicU64,
    /// Samples inside applied batches.
    pub samples: AtomicU64,
    /// Streams opened over the wire.
    pub opens: AtomicU64,
    /// Streams closed over the wire.
    pub closes: AtomicU64,
    /// Batches refused with `Saturated` (each later re-sent by its
    /// producer).
    pub saturated_nacks: AtomicU64,
    /// Frames refused as `Superseded` during a rewind.
    pub superseded_nacks: AtomicU64,
    /// Batches addressed to a shard the fleet does not have.
    pub rejected_unknown_shard: AtomicU64,
    /// Close requests for stale or unknown streams, unknown-session
    /// hellos, and resume attempts past the ack ring.
    pub rejected_stale: AtomicU64,
    /// Protocol-level rejections: malformed or oversized frames, bad
    /// magic, unsupported versions, pre-handshake traffic.
    pub malformed: AtomicU64,
    /// Connections that disconnected mid-frame.
    pub truncated: AtomicU64,
    /// Raw bytes received.
    pub bytes_rx: AtomicU64,
    /// Sampled wall-clock frame decode latency (1-in-8 frames).
    pub decode_ns: Mutex<Histogram>,
}

impl Default for IngestStats {
    fn default() -> Self {
        IngestStats {
            connections: AtomicU64::new(0),
            rejected_connections: AtomicU64::new(0),
            resumes: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
            frames: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            samples: AtomicU64::new(0),
            opens: AtomicU64::new(0),
            closes: AtomicU64::new(0),
            saturated_nacks: AtomicU64::new(0),
            superseded_nacks: AtomicU64::new(0),
            rejected_unknown_shard: AtomicU64::new(0),
            rejected_stale: AtomicU64::new(0),
            malformed: AtomicU64::new(0),
            truncated: AtomicU64::new(0),
            bytes_rx: AtomicU64::new(0),
            decode_ns: Mutex::new(Histogram::nanos()),
        }
    }
}

/// A point-in-time copy of [`IngestStats`].
#[derive(Debug, Clone)]
pub struct IngestStatsSnapshot {
    /// Connections accepted.
    pub connections: u64,
    /// Connections refused at the connection cap.
    pub rejected_connections: u64,
    /// Successful session resumptions.
    pub resumes: u64,
    /// Checkpoints written.
    pub checkpoints: u64,
    /// Frames decoded.
    pub frames: u64,
    /// Batches applied.
    pub batches: u64,
    /// Samples applied.
    pub samples: u64,
    /// Streams opened over the wire.
    pub opens: u64,
    /// Streams closed over the wire.
    pub closes: u64,
    /// `Saturated` nacks sent.
    pub saturated_nacks: u64,
    /// `Superseded` nacks sent.
    pub superseded_nacks: u64,
    /// Unknown-shard rejections.
    pub rejected_unknown_shard: u64,
    /// Stale/unknown-stream and stale-session rejections.
    pub rejected_stale: u64,
    /// Protocol-level rejections (malformed frames, bad magic,
    /// unsupported version, pre-handshake traffic).
    pub malformed: u64,
    /// Mid-frame disconnects.
    pub truncated: u64,
    /// Raw bytes received.
    pub bytes_rx: u64,
    /// Sampled frame decode latency.
    pub decode_ns: Histogram,
}

impl IngestStats {
    /// Copies every counter (and the decode histogram) at once.
    pub fn snapshot(&self) -> IngestStatsSnapshot {
        IngestStatsSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            rejected_connections: self.rejected_connections.load(Ordering::Relaxed),
            resumes: self.resumes.load(Ordering::Relaxed),
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
            frames: self.frames.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            samples: self.samples.load(Ordering::Relaxed),
            opens: self.opens.load(Ordering::Relaxed),
            closes: self.closes.load(Ordering::Relaxed),
            saturated_nacks: self.saturated_nacks.load(Ordering::Relaxed),
            superseded_nacks: self.superseded_nacks.load(Ordering::Relaxed),
            rejected_unknown_shard: self.rejected_unknown_shard.load(Ordering::Relaxed),
            rejected_stale: self.rejected_stale.load(Ordering::Relaxed),
            malformed: self.malformed.load(Ordering::Relaxed),
            truncated: self.truncated.load(Ordering::Relaxed),
            bytes_rx: self.bytes_rx.load(Ordering::Relaxed),
            decode_ns: self.decode_ns.lock().expect("decode hist lock").clone(),
        }
    }
}

// ---------------------------------------------------------------------------
// Sessions
// ---------------------------------------------------------------------------

/// One producer session's server-side state: the go-back-N high-water
/// mark, the durable (checkpoint-covered) sequence, whether a connection
/// currently owns it, and the bounded ring of recent encoded responses
/// for resume replay.
#[derive(Debug)]
struct SessionEntry {
    expected_seq: u64,
    durable_seq: u64,
    attached: bool,
    acks: VecDeque<(u64, Vec<u8>)>,
}

impl SessionEntry {
    fn push_ack(&mut self, seq: u64, bytes: Vec<u8>, cap: usize) {
        self.acks.push_back((seq, bytes));
        while self.acks.len() > cap.max(1) {
            self.acks.pop_front();
        }
    }
}

/// All sessions, keyed by token, plus the checkpoint gate: connection
/// threads hold the gate shared while handling a windowed frame, a
/// checkpoint holds it exclusively — so a checkpoint always observes the
/// fleet and every session at a frame boundary.
#[derive(Debug)]
struct SessionTable {
    inner: Mutex<TableInner>,
    gate: RwLock<()>,
    max_sessions: usize,
}

#[derive(Debug, Default)]
struct TableInner {
    sessions: BTreeMap<u64, Arc<Mutex<SessionEntry>>>,
    next_token: u64,
}

impl SessionTable {
    fn new(max_sessions: usize) -> Self {
        SessionTable {
            inner: Mutex::new(TableInner {
                sessions: BTreeMap::new(),
                next_token: 1,
            }),
            gate: RwLock::new(()),
            max_sessions,
        }
    }

    fn seeded(max_sessions: usize, seed: SessionSeed) -> Self {
        let table = SessionTable::new(max_sessions);
        {
            let mut inner = table.inner.lock().expect("session table lock");
            for entry in seed.sessions {
                inner.next_token = inner.next_token.max(entry.token + 1);
                inner.sessions.insert(
                    entry.token,
                    Arc::new(Mutex::new(SessionEntry {
                        expected_seq: entry.expected_seq,
                        // Everything the checkpoint covers is durable by
                        // definition of being in the checkpoint.
                        durable_seq: entry.expected_seq.saturating_sub(1),
                        attached: false,
                        acks: entry.acks.into_iter().collect(),
                    })),
                );
            }
        }
        table
    }

    /// Allocates a fresh session, evicting the oldest detached one at
    /// the cap. `None` when the table is full of live sessions.
    fn create(&self) -> Option<(u64, Arc<Mutex<SessionEntry>>)> {
        let mut inner = self.inner.lock().expect("session table lock");
        if self.max_sessions > 0 && inner.sessions.len() >= self.max_sessions {
            let victim = inner
                .sessions
                .iter()
                .find(|(_, e)| !e.lock().expect("session lock").attached)
                .map(|(token, _)| *token);
            match victim {
                Some(token) => {
                    inner.sessions.remove(&token);
                }
                None => return None,
            }
        }
        let token = inner.next_token;
        inner.next_token += 1;
        let entry = Arc::new(Mutex::new(SessionEntry {
            expected_seq: 1,
            durable_seq: 0,
            attached: true,
            acks: VecDeque::new(),
        }));
        inner.sessions.insert(token, Arc::clone(&entry));
        Some((token, entry))
    }

    /// Attaches to an existing detached session. `None` for unknown
    /// tokens or sessions another connection still owns.
    fn attach(&self, token: u64) -> Option<Arc<Mutex<SessionEntry>>> {
        let inner = self.inner.lock().expect("session table lock");
        let entry = inner.sessions.get(&token)?;
        let mut locked = entry.lock().expect("session lock");
        if locked.attached {
            return None;
        }
        locked.attached = true;
        Some(Arc::clone(entry))
    }

    /// Captures every session for a checkpoint. Returns the seed entries
    /// plus `(token, expected_seq)` marks for the post-write durable
    /// bump. Caller must hold the gate exclusively.
    fn snapshot(&self) -> (Vec<SessionSeedEntry>, Vec<(u64, u64)>) {
        let inner = self.inner.lock().expect("session table lock");
        let mut seed = Vec::with_capacity(inner.sessions.len());
        let mut marks = Vec::with_capacity(inner.sessions.len());
        for (&token, entry) in &inner.sessions {
            let e = entry.lock().expect("session lock");
            seed.push(SessionSeedEntry {
                token,
                expected_seq: e.expected_seq,
                acks: e.acks.iter().cloned().collect(),
            });
            marks.push((token, e.expected_seq));
        }
        (seed, marks)
    }

    /// Advances durable sequences after a checkpoint file is safely on
    /// disk. Monotone (`max`), so a stale mark can never regress one.
    fn bump_durable(&self, marks: &[(u64, u64)]) {
        let inner = self.inner.lock().expect("session table lock");
        for (token, expected) in marks {
            if let Some(entry) = inner.sessions.get(token) {
                let mut e = entry.lock().expect("session lock");
                e.durable_seq = e.durable_seq.max(expected.saturating_sub(1));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// Everything a connection thread needs, bundled once.
#[derive(Debug)]
struct ConnShared {
    fleet: Arc<Mutex<Fleet>>,
    stats: Arc<IngestStats>,
    stop: Arc<AtomicBool>,
    sessions: Arc<SessionTable>,
    live_conns: Arc<AtomicUsize>,
    config: IngestConfig,
}

/// A clonable checkpoint handle, detached from the [`IngestServer`]'s
/// lifetime so a periodic thread can snapshot while the server serves.
///
/// Capture holds the session gate exclusively (stalling windowed-frame
/// handling for the duration of the in-memory copy), drains the fleet,
/// and serializes fleet plus session state; the file write happens
/// outside the gate, atomically (`.tmp` + rename), and only *after* the
/// rename do the sessions' durable sequences advance — so a `durable_seq`
/// a producer ever sees is always backed by a fully written file.
#[derive(Debug, Clone)]
pub struct Checkpointer {
    fleet: Arc<Mutex<Fleet>>,
    sessions: Arc<SessionTable>,
    stats: Arc<IngestStats>,
    io_lock: Arc<Mutex<()>>,
}

/// Captured checkpoint bytes plus the `(session, durable_seq)` marks to
/// apply once those bytes are safely on disk.
type Capture = (Vec<u8>, Vec<(u64, u64)>);

impl Checkpointer {
    fn capture(&self) -> Result<Capture, CheckpointError> {
        let _gate = self.sessions.gate.write().expect("checkpoint gate");
        let state = self
            .fleet
            .lock()
            .expect("fleet lock")
            .capture_state()
            .map_err(|message| CheckpointError::Unsupported { message })?;
        let (seed, marks) = self.sessions.snapshot();
        Ok((checkpoint::encode(&state, &seed), marks))
    }

    /// Serializes the fleet and session state to checkpoint bytes
    /// without touching disk (durable sequences do not advance).
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Unsupported`] when a stream cannot be
    /// checkpointed.
    pub fn checkpoint_bytes(&self) -> Result<Vec<u8>, CheckpointError> {
        Ok(self.capture()?.0)
    }

    /// Writes a checkpoint atomically to `path` (`path.tmp` + rename)
    /// and then advances the sessions' durable sequences.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] on filesystem failure,
    /// [`CheckpointError::Unsupported`] when a stream cannot be
    /// checkpointed.
    pub fn checkpoint_to(&self, path: &Path) -> Result<(), CheckpointError> {
        let _io = self.io_lock.lock().expect("checkpoint io lock");
        let (bytes, marks) = self.capture()?;
        let tmp = path.with_extension("adckpt.tmp");
        std::fs::write(&tmp, &bytes)?;
        std::fs::rename(&tmp, path)?;
        self.sessions.bump_durable(&marks);
        self.stats.checkpoints.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

/// The ingest server: accept loop, one protocol thread per producer
/// connection, and a drain thread turning queued batches into checker
/// cycles.
///
/// The fleet is shared (`Arc<Mutex<Fleet>>`) so a metrics endpoint — or
/// the embedding `monitor-server` — can serve exporter snapshots from
/// the same instance the wire path feeds. Batches themselves bypass the
/// mutex entirely via [`FleetHandle`]; the lock is only taken for
/// opens, closes, metrics reads and shard drains.
#[derive(Debug)]
pub struct IngestServer {
    fleet: Arc<Mutex<Fleet>>,
    stats: Arc<IngestStats>,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
    sessions: Arc<SessionTable>,
    io_lock: Arc<Mutex<()>>,
    local_addr: Option<SocketAddr>,
}

impl IngestServer {
    /// Starts serving `listener` against `fleet`. Returns immediately;
    /// accept/drain threads run until [`IngestServer::shutdown`].
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] when the listener cannot be switched to
    /// non-blocking accept mode.
    pub fn spawn(
        fleet: Arc<Mutex<Fleet>>,
        listener: IngestListener,
        config: IngestConfig,
    ) -> std::io::Result<Self> {
        IngestServer::spawn_with_sessions(
            fleet,
            listener,
            config,
            SessionTable::new(config.max_sessions),
        )
    }

    /// Starts a server whose session table is pre-seeded from a restored
    /// checkpoint (see [`crate::restore_server`]): reconnecting
    /// producers resume exactly at the checkpointed sequence instead of
    /// being refused as unknown.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] when the listener cannot be switched to
    /// non-blocking accept mode.
    pub fn spawn_restored(
        fleet: Arc<Mutex<Fleet>>,
        listener: IngestListener,
        config: IngestConfig,
        seed: SessionSeed,
    ) -> std::io::Result<Self> {
        IngestServer::spawn_with_sessions(
            fleet,
            listener,
            config,
            SessionTable::seeded(config.max_sessions, seed),
        )
    }

    fn spawn_with_sessions(
        fleet: Arc<Mutex<Fleet>>,
        listener: IngestListener,
        config: IngestConfig,
        sessions: SessionTable,
    ) -> std::io::Result<Self> {
        let stats = Arc::new(IngestStats::default());
        let stop = Arc::new(AtomicBool::new(false));
        let conn_threads = Arc::new(Mutex::new(Vec::new()));
        let sessions = Arc::new(sessions);
        let local_addr = match &listener {
            IngestListener::Tcp(l) => Some(l.local_addr()?),
            #[cfg(unix)]
            IngestListener::Unix(_) => None,
        };
        let shared = Arc::new(ConnShared {
            fleet: Arc::clone(&fleet),
            stats: Arc::clone(&stats),
            stop: Arc::clone(&stop),
            sessions: Arc::clone(&sessions),
            live_conns: Arc::new(AtomicUsize::new(0)),
            config,
        });

        let mut threads = Vec::new();
        {
            let shared = Arc::clone(&shared);
            let conn_threads = Arc::clone(&conn_threads);
            match listener {
                IngestListener::Tcp(l) => {
                    l.set_nonblocking(true)?;
                    threads.push(std::thread::spawn(move || {
                        accept_tcp(&l, &shared, &conn_threads);
                    }));
                }
                #[cfg(unix)]
                IngestListener::Unix(l) => {
                    l.set_nonblocking(true)?;
                    threads.push(std::thread::spawn(move || {
                        accept_unix(&l, &shared, &conn_threads);
                    }));
                }
            }
        }
        {
            let fleet = Arc::clone(&fleet);
            let stop = Arc::clone(&stop);
            threads.push(std::thread::spawn(move || {
                drain_loop(&fleet, &stop, config)
            }));
        }

        Ok(IngestServer {
            fleet,
            stats,
            stop,
            threads,
            conn_threads,
            sessions,
            io_lock: Arc::new(Mutex::new(())),
            local_addr,
        })
    }

    /// The bound TCP address (`None` for Unix-domain listeners). Useful
    /// after binding port 0.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.local_addr
    }

    /// The shared fleet this server feeds.
    pub fn fleet(&self) -> &Arc<Mutex<Fleet>> {
        &self.fleet
    }

    /// A point-in-time copy of the ingestion counters.
    pub fn stats(&self) -> IngestStatsSnapshot {
        self.stats.snapshot()
    }

    /// A clonable checkpoint handle for periodic snapshot threads.
    pub fn checkpointer(&self) -> Checkpointer {
        Checkpointer {
            fleet: Arc::clone(&self.fleet),
            sessions: Arc::clone(&self.sessions),
            stats: Arc::clone(&self.stats),
            io_lock: Arc::clone(&self.io_lock),
        }
    }

    /// Writes a checkpoint atomically to `path`. See
    /// [`Checkpointer::checkpoint_to`].
    ///
    /// # Errors
    ///
    /// [`CheckpointError`] on filesystem failure or non-checkpointable
    /// state.
    pub fn checkpoint_to(&self, path: &Path) -> Result<(), CheckpointError> {
        self.checkpointer().checkpoint_to(path)
    }

    /// Stops accepting, waits for every connection and drain thread, and
    /// returns the final counters. Queued batches are drained before the
    /// drain thread exits.
    pub fn shutdown(mut self) -> IngestStatsSnapshot {
        self.stop.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        let conns: Vec<_> = self
            .conn_threads
            .lock()
            .expect("conn thread list lock")
            .drain(..)
            .collect();
        for t in conns {
            let _ = t.join();
        }
        // One final drain so nothing submitted in the last instants of a
        // connection is left queued.
        self.fleet.lock().expect("fleet lock").poll();
        self.stats.snapshot()
    }

    /// Abrupt stop for crash drills: tears the threads down without the
    /// final drain, abandoning whatever post-checkpoint progress was in
    /// flight — exactly what a process kill would lose. The fleet behind
    /// the server should be discarded and rebuilt from the last
    /// checkpoint.
    pub fn kill(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        let conns: Vec<_> = self
            .conn_threads
            .lock()
            .expect("conn thread list lock")
            .drain(..)
            .collect();
        for t in conns {
            let _ = t.join();
        }
    }
}

/// Joins finished connection threads in place; called every accept
/// iteration so a long-lived server does not accumulate one parked
/// handle per past connection.
fn reap_finished(conn_threads: &Arc<Mutex<Vec<JoinHandle<()>>>>) {
    let mut list = conn_threads.lock().expect("conn thread list lock");
    let mut i = 0;
    while i < list.len() {
        if list[i].is_finished() {
            let handle = list.swap_remove(i);
            let _ = handle.join();
        } else {
            i += 1;
        }
    }
}

/// Refuses a connection at the cap: one `ConnectionLimit` nack (with the
/// retry hint), then close.
fn reject_over_limit<C: Read + Write>(mut conn: C, shared: &ConnShared) {
    shared
        .stats
        .rejected_connections
        .fetch_add(1, Ordering::Relaxed);
    let mut out = Vec::with_capacity(32);
    encode_nack(
        &mut out,
        0,
        NackReason::ConnectionLimit,
        shared.config.retry_after_us,
    );
    let _ = conn.write_all(&out);
    let _ = conn.flush();
}

fn over_limit(shared: &ConnShared) -> bool {
    shared.config.max_connections > 0
        && shared.live_conns.load(Ordering::Relaxed) >= shared.config.max_connections
}

fn accept_tcp(
    listener: &TcpListener,
    shared: &Arc<ConnShared>,
    conn_threads: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    while !shared.stop.load(Ordering::SeqCst) {
        reap_finished(conn_threads);
        match listener.accept() {
            Ok((conn, _)) => {
                let _ = conn.set_nodelay(true);
                let _ = conn.set_read_timeout(Some(Duration::from_millis(20)));
                if over_limit(shared) {
                    reject_over_limit(conn, shared);
                } else {
                    spawn_conn(conn, shared, conn_threads);
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => break,
        }
    }
}

#[cfg(unix)]
fn accept_unix(
    listener: &UnixListener,
    shared: &Arc<ConnShared>,
    conn_threads: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    while !shared.stop.load(Ordering::SeqCst) {
        reap_finished(conn_threads);
        match listener.accept() {
            Ok((conn, _)) => {
                let _ = conn.set_read_timeout(Some(Duration::from_millis(20)));
                if over_limit(shared) {
                    reject_over_limit(conn, shared);
                } else {
                    spawn_conn(conn, shared, conn_threads);
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => break,
        }
    }
}

fn spawn_conn<C: Read + Write + Send + 'static>(
    conn: C,
    shared: &Arc<ConnShared>,
    conn_threads: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    shared.stats.connections.fetch_add(1, Ordering::Relaxed);
    shared.live_conns.fetch_add(1, Ordering::Relaxed);
    let shared = Arc::clone(shared);
    let handle = std::thread::spawn(move || {
        serve_conn(conn, &shared);
        shared.live_conns.fetch_sub(1, Ordering::Relaxed);
    });
    conn_threads
        .lock()
        .expect("conn thread list lock")
        .push(handle);
}

fn drain_loop(fleet: &Arc<Mutex<Fleet>>, stop: &Arc<AtomicBool>, config: IngestConfig) {
    loop {
        let polled = fleet.lock().expect("fleet lock").poll();
        if stop.load(Ordering::SeqCst) {
            break;
        }
        if config.poll_interval_us > 0 {
            std::thread::sleep(Duration::from_micros(config.poll_interval_us));
        } else if polled.batches == 0 {
            std::thread::sleep(Duration::from_micros(100));
        }
    }
    // Final sweep after stop so late submissions still get checked.
    fleet.lock().expect("fleet lock").poll();
}

/// Connection handshake progression: bare/new-session hello goes
/// straight to `Ready`; a session-bearing hello must `Resume` first.
#[derive(Debug, PartialEq, Eq)]
enum Phase {
    AwaitHello,
    AwaitResume,
    Ready,
}

/// Per-connection protocol state.
struct Conn {
    phase: Phase,
    token: u64,
    entry: Option<Arc<Mutex<SessionEntry>>>,
    frame_counter: u64,
}

enum Step {
    Continue,
    Close,
}

fn serve_conn<C: Read + Write>(mut conn: C, shared: &ConnShared) {
    let handle = shared.fleet.lock().expect("fleet lock").handle();
    let stats = &shared.stats;
    let mut decoder = FrameDecoder::new(shared.config.max_frame_len);
    let mut state = Conn {
        phase: Phase::AwaitHello,
        token: 0,
        entry: None,
        frame_counter: 0,
    };
    let mut rbuf = vec![0u8; 64 * 1024];
    let mut out: Vec<u8> = Vec::with_capacity(4096);

    'conn: loop {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let n = match conn.read(&mut rbuf) {
            Ok(0) => {
                if decoder.pending() > 0 {
                    stats.truncated.fetch_add(1, Ordering::Relaxed);
                }
                break;
            }
            Ok(n) => n,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                continue;
            }
            Err(_) => {
                // Reset mid-frame is the same loss as a clean EOF mid-frame.
                if decoder.pending() > 0 {
                    stats.truncated.fetch_add(1, Ordering::Relaxed);
                }
                break;
            }
        };
        stats.bytes_rx.fetch_add(n as u64, Ordering::Relaxed);
        decoder.feed(&rbuf[..n]);
        loop {
            let timed = (state.frame_counter & DECODE_TIMING_MASK == 0).then(Instant::now);
            match decoder.next_frame() {
                Ok(None) => break,
                Ok(Some(frame)) => {
                    if let Some(t0) = timed {
                        stats
                            .decode_ns
                            .lock()
                            .expect("decode hist lock")
                            .record(t0.elapsed().as_nanos() as f64);
                    }
                    state.frame_counter += 1;
                    stats.frames.fetch_add(1, Ordering::Relaxed);
                    match handle_frame(frame, &mut state, shared, &handle, &mut out) {
                        Step::Continue => {}
                        Step::Close => {
                            let _ = conn.write_all(&out);
                            let _ = conn.flush();
                            break 'conn;
                        }
                    }
                }
                Err(_) => {
                    stats.malformed.fetch_add(1, Ordering::Relaxed);
                    encode_nack(&mut out, 0, NackReason::Malformed, 0);
                    let _ = conn.write_all(&out);
                    let _ = conn.flush();
                    break 'conn;
                }
            }
        }
        if !out.is_empty() {
            if conn.write_all(&out).is_err() {
                if decoder.pending() > 0 {
                    stats.truncated.fetch_add(1, Ordering::Relaxed);
                }
                break;
            }
            let _ = conn.flush();
            out.clear();
        }
    }
    // The session outlives the connection: detach so a reconnecting
    // producer can claim it.
    if let Some(entry) = &state.entry {
        entry.lock().expect("session lock").attached = false;
    }
}

fn handle_frame(
    frame: Frame,
    state: &mut Conn,
    shared: &ConnShared,
    handle: &FleetHandle,
    out: &mut Vec<u8>,
) -> Step {
    let stats = &shared.stats;
    match frame {
        Frame::Hello { version, session } => {
            if state.phase != Phase::AwaitHello || version != VERSION {
                stats.malformed.fetch_add(1, Ordering::Relaxed);
                encode_nack(out, 0, NackReason::Unsupported, 0);
                return Step::Close;
            }
            if session == 0 {
                let Some((token, entry)) = shared.sessions.create() else {
                    stats.rejected_stale.fetch_add(1, Ordering::Relaxed);
                    encode_nack(out, 0, NackReason::Saturated, shared.config.retry_after_us);
                    return Step::Close;
                };
                state.token = token;
                state.entry = Some(entry);
                state.phase = Phase::Ready;
                encode_ack(
                    out,
                    0,
                    &AckBody::Hello {
                        version: VERSION,
                        session: token,
                    },
                );
            } else {
                let Some(entry) = shared.sessions.attach(session) else {
                    stats.rejected_stale.fetch_add(1, Ordering::Relaxed);
                    encode_nack(out, 0, NackReason::UnknownSession, 0);
                    return Step::Close;
                };
                state.token = session;
                state.entry = Some(entry);
                state.phase = Phase::AwaitResume;
                encode_ack(
                    out,
                    0,
                    &AckBody::Hello {
                        version: VERSION,
                        session,
                    },
                );
            }
            Step::Continue
        }
        Frame::Resume {
            session,
            last_acked,
        } => {
            if state.phase != Phase::AwaitResume || session != state.token {
                stats.malformed.fetch_add(1, Ordering::Relaxed);
                encode_nack(out, 0, NackReason::Malformed, 0);
                return Step::Close;
            }
            let entry = state.entry.clone().expect("attached in AwaitResume");
            let _gate = shared.sessions.gate.read().expect("checkpoint gate");
            let e = entry.lock().expect("session lock");
            if last_acked + 1 < e.expected_seq {
                // Replay needs every response in (last_acked, expected);
                // the ring is contiguous, so only its oldest entry
                // matters.
                let oldest = e.acks.front().map(|(s, _)| *s);
                if oldest.is_none_or(|s| s > last_acked + 1) {
                    stats.rejected_stale.fetch_add(1, Ordering::Relaxed);
                    encode_nack(out, 0, NackReason::ResumeGap, 0);
                    return Step::Close;
                }
            }
            state.phase = Phase::Ready;
            stats.resumes.fetch_add(1, Ordering::Relaxed);
            encode_ack(
                out,
                0,
                &AckBody::Resumed {
                    next_seq: e.expected_seq,
                },
            );
            for (seq, bytes) in &e.acks {
                if *seq > last_acked {
                    out.extend_from_slice(bytes);
                }
            }
            Step::Continue
        }
        _ if state.phase != Phase::Ready => {
            stats.malformed.fetch_add(1, Ordering::Relaxed);
            encode_nack(out, 0, NackReason::Malformed, 0);
            Step::Close
        }
        Frame::Ack { .. } | Frame::Nack { .. } => {
            // Server-to-client frames arriving at the server are a
            // protocol violation.
            stats.malformed.fetch_add(1, Ordering::Relaxed);
            encode_nack(out, 0, NackReason::Malformed, 0);
            Step::Close
        }
        windowed => {
            let entry = state.entry.clone().expect("attached when Ready");
            let _gate = shared.sessions.gate.read().expect("checkpoint gate");
            let mut e = entry.lock().expect("session lock");
            handle_windowed(windowed, &mut e, shared, handle, out)
        }
    }
}

/// Handles one sequence-disciplined frame under the session lock (and
/// the checkpoint gate, held shared by the caller). Every response that
/// advances the expected sequence is also stored in the session's ack
/// ring for resume replay.
fn handle_windowed(
    frame: Frame,
    e: &mut SessionEntry,
    shared: &ConnShared,
    handle: &FleetHandle,
    out: &mut Vec<u8>,
) -> Step {
    let stats = &shared.stats;
    let config = shared.config;
    let mark = out.len();
    let mut advanced: Option<u64> = None;
    let step = match frame {
        Frame::OpenStream { seq, flags } => {
            if seq != e.expected_seq {
                stats.superseded_nacks.fetch_add(1, Ordering::Relaxed);
                encode_nack(out, seq, NackReason::Superseded, 0);
                return Step::Continue;
            }
            if flags != 0 {
                stats.malformed.fetch_add(1, Ordering::Relaxed);
                encode_nack(out, seq, NackReason::Unsupported, 0);
                return Step::Close;
            }
            e.expected_seq += 1;
            advanced = Some(seq);
            let stream = shared.fleet.lock().expect("fleet lock").open_stream();
            stats.opens.fetch_add(1, Ordering::Relaxed);
            encode_ack(out, seq, &AckBody::StreamOpened { stream });
            Step::Continue
        }
        Frame::SampleBatch { seq, batch } => {
            if seq != e.expected_seq {
                stats.superseded_nacks.fetch_add(1, Ordering::Relaxed);
                encode_nack(out, seq, NackReason::Superseded, 0);
                return Step::Continue;
            }
            let samples = batch.samples.len() as u64;
            match handle.submit(batch) {
                Ok(()) => {
                    e.expected_seq += 1;
                    advanced = Some(seq);
                    stats.batches.fetch_add(1, Ordering::Relaxed);
                    stats.samples.fetch_add(samples, Ordering::Relaxed);
                    encode_ack(
                        out,
                        seq,
                        &AckBody::BatchApplied {
                            durable_seq: e.durable_seq,
                        },
                    );
                    Step::Continue
                }
                Err(SubmitError::Saturated { .. }) => {
                    // Expected sequence stays put: the producer rewinds to
                    // this batch, so order is preserved end to end.
                    stats.saturated_nacks.fetch_add(1, Ordering::Relaxed);
                    encode_nack(out, seq, NackReason::Saturated, config.retry_after_us);
                    Step::Continue
                }
                Err(SubmitError::UnknownShard { .. }) => {
                    e.expected_seq += 1;
                    advanced = Some(seq);
                    stats.rejected_unknown_shard.fetch_add(1, Ordering::Relaxed);
                    encode_nack(out, seq, NackReason::UnknownShard, 0);
                    Step::Continue
                }
                Err(SubmitError::Disconnected { .. }) => {
                    encode_nack(out, seq, NackReason::ShuttingDown, 0);
                    Step::Close
                }
            }
        }
        Frame::CloseStream { seq, stream } => {
            if seq != e.expected_seq {
                stats.superseded_nacks.fetch_add(1, Ordering::Relaxed);
                encode_nack(out, seq, NackReason::Superseded, 0);
                return Step::Continue;
            }
            e.expected_seq += 1;
            advanced = Some(seq);
            let closed = shared
                .fleet
                .lock()
                .expect("fleet lock")
                .close_stream(stream);
            match closed {
                Ok((report, _snapshot)) => {
                    let report_json = serde_json::to_vec(&report).expect("report serializes");
                    stats.closes.fetch_add(1, Ordering::Relaxed);
                    encode_ack(out, seq, &AckBody::StreamClosed { report_json });
                }
                Err(StreamError::StaleGeneration) => {
                    stats.rejected_stale.fetch_add(1, Ordering::Relaxed);
                    encode_nack(out, seq, NackReason::StaleGeneration, 0);
                }
                Err(StreamError::UnknownSlot) => {
                    stats.rejected_stale.fetch_add(1, Ordering::Relaxed);
                    encode_nack(out, seq, NackReason::UnknownSlot, 0);
                }
            }
            Step::Continue
        }
        Frame::GetMetrics { seq } => {
            if seq != e.expected_seq {
                stats.superseded_nacks.fetch_add(1, Ordering::Relaxed);
                encode_nack(out, seq, NackReason::Superseded, 0);
                return Step::Continue;
            }
            e.expected_seq += 1;
            advanced = Some(seq);
            let summary = shared.fleet.lock().expect("fleet lock").metrics().summary();
            let summary_json = serde_json::to_vec(&summary).expect("summary serializes");
            encode_ack(out, seq, &AckBody::Metrics { summary_json });
            Step::Continue
        }
        Frame::Hello { .. } | Frame::Resume { .. } | Frame::Ack { .. } | Frame::Nack { .. } => {
            unreachable!("routed by handle_frame")
        }
    };
    if let Some(seq) = advanced {
        e.push_ack(seq, out[mark..].to_vec(), config.session_ack_ring);
    }
    step
}

// ---------------------------------------------------------------------------
// Producer
// ---------------------------------------------------------------------------

/// Producer-side failures.
#[derive(Debug)]
pub enum ProducerError {
    /// Transport failure.
    Io(std::io::Error),
    /// The server sent bytes that do not decode.
    Wire(WireError),
    /// The server refused a frame for a non-retryable reason.
    Rejected {
        /// The refused frame's sequence number.
        seq: u64,
        /// The server's typed reason.
        reason: NackReason,
    },
    /// The server violated the protocol (wrong ack kind, unexpected
    /// frame).
    Protocol(String),
    /// The connection closed while responses were still outstanding.
    Disconnected,
    /// A resume needs frames the producer has already released from its
    /// replay retention ([`ProducerConfig::retain_for_replay`]).
    ReplayExhausted {
        /// The sequence the server asked to continue from.
        needed: u64,
        /// The oldest sequence still retained.
        floor: u64,
    },
}

impl std::fmt::Display for ProducerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProducerError::Io(e) => write!(f, "transport error: {e}"),
            ProducerError::Wire(e) => write!(f, "undecodable server bytes: {e}"),
            ProducerError::Rejected { seq, reason } => {
                write!(f, "frame {seq} rejected: {reason}")
            }
            ProducerError::Protocol(m) => write!(f, "protocol violation: {m}"),
            ProducerError::Disconnected => write!(f, "server disconnected"),
            ProducerError::ReplayExhausted { needed, floor } => write!(
                f,
                "resume needs frame {needed} but replay retention starts at {floor}"
            ),
        }
    }
}

impl std::error::Error for ProducerError {}

impl From<std::io::Error> for ProducerError {
    fn from(e: std::io::Error) -> Self {
        ProducerError::Io(e)
    }
}

impl From<WireError> for ProducerError {
    fn from(e: WireError) -> Self {
        ProducerError::Wire(e)
    }
}

/// Producer tuning.
#[derive(Debug, Clone, Copy)]
pub struct ProducerConfig {
    /// Maximum unacknowledged frames in flight before
    /// [`IngestProducer::submit`] blocks on acks. Also bounds rewind
    /// memory: the producer retains every unacked frame for re-send.
    pub window: usize,
    /// Decoder cap for server responses.
    pub max_frame_len: usize,
    /// Acknowledged frames retained for crash-resume replay, beyond the
    /// unacked window. 0 disables retention (a resume can then only
    /// rewind to the first unacknowledged frame). Frames at or below the
    /// server's durable sequence are trimmed eagerly regardless of the
    /// cap.
    pub retain_for_replay: usize,
}

impl Default for ProducerConfig {
    fn default() -> Self {
        ProducerConfig {
            window: 64,
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            retain_for_replay: 0,
        }
    }
}

/// Lifetime counters for one producer connection (carried across
/// resumes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProducerStats {
    /// Batches acknowledged as applied.
    pub acked_batches: u64,
    /// `Saturated` nacks received (each triggered a rewind).
    pub saturated_nacks: u64,
    /// `Superseded` nacks received (in-flight frames the rewind already
    /// covered).
    pub superseded_nacks: u64,
    /// Frames re-sent during saturation rewinds.
    pub resent_frames: u64,
    /// Successful session resumptions onto a fresh transport.
    pub reconnects: u64,
    /// Frames re-sent during resumes (from the window and the replay
    /// retention).
    pub replayed_frames: u64,
}

/// One in-flight (sent, unacknowledged) frame, retained for rewinds.
#[derive(Debug)]
struct InFlight {
    seq: u64,
    bytes: Vec<u8>,
}

/// Everything a dead producer needs to resume its session on a fresh
/// transport: token, sequence marks, retained frames and lifetime stats.
/// Obtained from [`IngestProducer::into_recovery`], consumed by
/// [`IngestProducer::resume`]. Opaque plain data — no I/O handles.
#[derive(Debug)]
pub struct RecoveryState {
    session: u64,
    next_seq: u64,
    acked_seq: u64,
    durable_seq: u64,
    /// Retained frames in ascending sequence order: replay retention
    /// (acknowledged) followed by the unacknowledged window.
    frames: VecDeque<InFlight>,
    stats: ProducerStats,
}

impl RecoveryState {
    /// The session token to resume.
    pub fn session(&self) -> u64 {
        self.session
    }
}

/// The client side of the ingest protocol: frame encoding with buffer
/// reuse, a bounded in-flight window, and transparent retry on
/// saturation.
///
/// Works over any `Read + Write` transport — `TcpStream`, `UnixStream`,
/// or an in-memory pipe in tests. The transport must be in blocking
/// mode.
#[derive(Debug)]
pub struct IngestProducer<C: Read + Write> {
    conn: C,
    decoder: FrameDecoder,
    config: ProducerConfig,
    /// Encoded-but-unacknowledged frames, oldest first.
    window: VecDeque<InFlight>,
    /// Acknowledged frames retained for crash-resume replay
    /// ([`ProducerConfig::retain_for_replay`]-bounded), oldest first.
    settled: VecDeque<InFlight>,
    /// Recycled frame buffers ([`ProducerConfig::window`]-bounded).
    spare: Vec<Vec<u8>>,
    /// Outbound coalescing buffer, flushed before every read.
    obuf: Vec<u8>,
    rbuf: Vec<u8>,
    session: u64,
    next_seq: u64,
    /// Highest acknowledged sequence.
    acked_seq: u64,
    /// Highest server-durable (checkpoint-covered) sequence seen.
    durable_seq: u64,
    stats: ProducerStats,
    /// Response bodies captured for sequence numbers waiters ask for.
    /// More than one can be pending while a resume replays responses.
    captured: Vec<(u64, AckBody)>,
    /// Highest sequence ever answered by the server. Responses arrive in
    /// sequence order, so everything at or below it is settled — the
    /// resume path re-applies this after re-installing retained frames,
    /// because replayed responses can land in the same read chunk as the
    /// `Resumed` ack, before the frames are back in the window.
    settle_mark: u64,
}

impl<C: Read + Write> IngestProducer<C> {
    fn empty(conn: C, config: ProducerConfig) -> Self {
        IngestProducer {
            conn,
            decoder: FrameDecoder::new(config.max_frame_len),
            config,
            window: VecDeque::new(),
            settled: VecDeque::new(),
            spare: Vec::new(),
            obuf: Vec::with_capacity(256 * 1024),
            rbuf: vec![0u8; 64 * 1024],
            session: 0,
            next_seq: 1,
            acked_seq: 0,
            durable_seq: 0,
            stats: ProducerStats::default(),
            captured: Vec::new(),
            settle_mark: 0,
        }
    }

    /// Performs the handshake on `conn` and returns the ready producer.
    ///
    /// # Errors
    ///
    /// [`ProducerError`] when the transport fails or the server refuses
    /// the protocol version.
    pub fn connect(conn: C, config: ProducerConfig) -> Result<Self, ProducerError> {
        let mut producer = IngestProducer::empty(conn, config);
        encode_hello(&mut producer.obuf);
        match producer.wait_ack(0)? {
            AckBody::Hello { session, .. } => {
                producer.session = session;
                Ok(producer)
            }
            other => Err(ProducerError::Protocol(format!(
                "expected hello ack, got {other:?}"
            ))),
        }
    }

    /// Resumes a session on a fresh transport: handshakes with the
    /// retained session token, asks the server for its next expected
    /// sequence, and rewinds — re-sending retained frames the server
    /// lost and awaiting replayed responses for frames it already
    /// applied. On failure the recovery state comes back for another
    /// attempt.
    ///
    /// # Errors
    ///
    /// The pair of the intact [`RecoveryState`] and the typed failure:
    /// transport errors are retryable; [`ProducerError::Rejected`] with
    /// [`NackReason::UnknownSession`] / [`NackReason::ResumeGap`] and
    /// [`ProducerError::ReplayExhausted`] are terminal for the session.
    #[allow(clippy::result_large_err)]
    pub fn resume(
        conn: C,
        config: ProducerConfig,
        recovery: RecoveryState,
    ) -> Result<Self, (RecoveryState, Box<ProducerError>)> {
        let mut p = IngestProducer::empty(conn, config);
        p.session = recovery.session;
        p.next_seq = recovery.next_seq;
        p.acked_seq = recovery.acked_seq;
        p.durable_seq = recovery.durable_seq;
        p.stats = recovery.stats;
        p.settle_mark = recovery.acked_seq;

        let handshake = (|p: &mut Self| -> Result<u64, ProducerError> {
            encode_hello_session(&mut p.obuf, p.session);
            match p.wait_ack(0)? {
                AckBody::Hello { session, .. } if session == p.session => {}
                other => {
                    return Err(ProducerError::Protocol(format!(
                        "expected hello ack for session {}, got {other:?}",
                        p.session
                    )))
                }
            }
            encode_resume(&mut p.obuf, p.session, p.acked_seq);
            match p.wait_ack(0)? {
                AckBody::Resumed { next_seq } => Ok(next_seq),
                other => Err(ProducerError::Protocol(format!(
                    "expected resumed ack, got {other:?}"
                ))),
            }
        })(&mut p);
        let next = match handshake {
            Ok(next) => next,
            Err(e) => {
                let mut recovery = recovery;
                recovery.stats = p.stats;
                return Err((recovery, Box::new(e)));
            }
        };
        if next > p.next_seq {
            return Err((
                recovery,
                Box::new(ProducerError::Protocol(format!(
                    "server expects frame {next} but only {} were ever sent",
                    p.next_seq - 1
                ))),
            ));
        }
        let floor = recovery
            .frames
            .front()
            .map_or(p.next_seq, |f| f.seq.min(p.next_seq));
        if next < floor {
            return Err((
                recovery,
                Box::new(ProducerError::ReplayExhausted {
                    needed: next,
                    floor,
                }),
            ));
        }
        // Partition the retained frames. Frames the server still has
        // applied (below `next` and acknowledged) stay settled; frames
        // from `next` on are re-sent; acknowledged-here-but-unapplied
        // frames cannot exist (`next` never exceeds durable+window
        // bounds checked above). Unacknowledged frames below `next` stay
        // windowed without re-send — the server replays their responses
        // right after the resume ack.
        let mut recovery = recovery;
        for frame in recovery.frames.drain(..) {
            if frame.seq >= next {
                p.obuf.extend_from_slice(&frame.bytes);
                p.stats.replayed_frames += 1;
                p.window.push_back(frame);
            } else if frame.seq <= p.acked_seq {
                p.settled.push_back(frame);
            } else {
                p.window.push_back(frame);
            }
        }
        // Replayed responses may already have been read alongside the
        // Resumed ack, before the frames above were re-installed; settle
        // up to the highest answered sequence so those frames don't wait
        // for acks that already arrived.
        let mark = p.settle_mark;
        p.settle(mark);
        p.stats.reconnects += 1;
        Ok(p)
    }

    /// Tears the producer down into plain-data [`RecoveryState`] for a
    /// later [`IngestProducer::resume`] on a fresh transport. The dead
    /// transport is dropped.
    pub fn into_recovery(self) -> RecoveryState {
        let mut frames = self.settled;
        frames.extend(self.window);
        RecoveryState {
            session: self.session,
            next_seq: self.next_seq,
            acked_seq: self.acked_seq,
            durable_seq: self.durable_seq,
            frames,
            stats: self.stats,
        }
    }

    /// Lifetime counters.
    pub fn stats(&self) -> ProducerStats {
        self.stats
    }

    /// The session token the server assigned at handshake.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// The next sequence number this producer will assign. Exposed so a
    /// reconnect wrapper can tell whether a failed send was windowed
    /// (sequence consumed — the resume replays it) or not (safe to
    /// re-issue).
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Opens a stream on the server and returns its wire id.
    ///
    /// # Errors
    ///
    /// [`ProducerError`] on transport failure or server rejection.
    pub fn open_stream(&mut self) -> Result<StreamId, ProducerError> {
        let seq = self.send_frame(|out, seq| {
            encode_open_stream(out, seq);
            Ok(())
        })?;
        match self.wait_ack(seq)? {
            AckBody::StreamOpened { stream } => Ok(stream),
            other => Err(ProducerError::Protocol(format!(
                "expected stream-opened ack, got {other:?}"
            ))),
        }
    }

    /// Queues `batch` for transmission. Blocks only when the in-flight
    /// window is full (reading acks until space frees up); saturation
    /// rewinds happen transparently inside that wait.
    ///
    /// # Errors
    ///
    /// [`ProducerError`] on transport failure or a non-retryable
    /// rejection.
    pub fn submit(&mut self, batch: &SampleBatch) -> Result<(), ProducerError> {
        self.send_frame(|out, seq| encode_sample_batch(out, seq, batch).map_err(Into::into))?;
        Ok(())
    }

    /// Closes `stream` and returns its final
    /// [`adassure_core::CheckReport`] as JSON bytes.
    ///
    /// # Errors
    ///
    /// [`ProducerError::Rejected`] with [`NackReason::StaleGeneration`] /
    /// [`NackReason::UnknownSlot`] for an already-closed or foreign id.
    pub fn close_stream(&mut self, stream: StreamId) -> Result<Vec<u8>, ProducerError> {
        let seq = self.send_frame(|out, seq| {
            encode_close_stream(out, seq, stream);
            Ok(())
        })?;
        match self.wait_ack(seq)? {
            AckBody::StreamClosed { report_json } => Ok(report_json),
            other => Err(ProducerError::Protocol(format!(
                "expected stream-closed ack, got {other:?}"
            ))),
        }
    }

    /// Fetches the fleet-wide deterministic metrics summary as JSON
    /// bytes.
    ///
    /// # Errors
    ///
    /// [`ProducerError`] on transport failure or rejection.
    pub fn fetch_metrics(&mut self) -> Result<Vec<u8>, ProducerError> {
        let seq = self.send_frame(|out, seq| {
            encode_get_metrics(out, seq);
            Ok(())
        })?;
        match self.wait_ack(seq)? {
            AckBody::Metrics { summary_json } => Ok(summary_json),
            other => Err(ProducerError::Protocol(format!(
                "expected metrics ack, got {other:?}"
            ))),
        }
    }

    /// Blocks until every in-flight frame is acknowledged.
    ///
    /// # Errors
    ///
    /// [`ProducerError`] on transport failure or rejection.
    pub fn flush(&mut self) -> Result<(), ProducerError> {
        while !self.window.is_empty() {
            self.pump()?;
        }
        self.flush_obuf()?;
        Ok(())
    }

    /// Waits for and returns the response to `seq`. Exposed for resume
    /// wrappers that need to re-await a windowed frame's replayed
    /// response after reconnecting.
    ///
    /// # Errors
    ///
    /// [`ProducerError`] on transport failure or rejection.
    pub fn wait_response(&mut self, seq: u64) -> Result<AckBody, ProducerError> {
        self.wait_ack(seq)
    }

    /// Returns the transport and final stats, consuming the producer.
    pub fn into_parts(self) -> (C, ProducerStats) {
        (self.conn, self.stats)
    }

    /// Encodes one frame (via `encode`), windows it and queues its bytes.
    /// The sequence number is consumed only on successful encode, so an
    /// encode failure leaves the producer/server sequences aligned.
    fn send_frame(
        &mut self,
        encode: impl FnOnce(&mut Vec<u8>, u64) -> Result<(), ProducerError>,
    ) -> Result<u64, ProducerError> {
        while self.window.len() >= self.config.window {
            self.pump()?;
        }
        let seq = self.next_seq;
        let mut bytes = self.spare.pop().unwrap_or_default();
        bytes.clear();
        if let Err(e) = encode(&mut bytes, seq) {
            self.recycle(bytes);
            return Err(e);
        }
        self.next_seq += 1;
        self.obuf.extend_from_slice(&bytes);
        self.window.push_back(InFlight { seq, bytes });
        if self.obuf.len() >= 128 * 1024 {
            self.flush_obuf()?;
        }
        Ok(seq)
    }

    /// Blocks until the response for `seq` arrives and returns its body.
    fn wait_ack(&mut self, seq: u64) -> Result<AckBody, ProducerError> {
        loop {
            if let Some(i) = self.captured.iter().position(|(got, _)| *got == seq) {
                return Ok(self.captured.swap_remove(i).1);
            }
            if seq > 0
                && seq < self.next_seq
                && !self.window.iter().any(|f| f.seq == seq)
                && !self.settled.iter().any(|f| f.seq == seq)
            {
                // Already acknowledged without capture — protocol bug on
                // our side rather than the server's.
                return Err(ProducerError::Protocol(format!(
                    "response for frame {seq} was consumed without a waiter"
                )));
            }
            self.pump()?;
        }
    }

    fn flush_obuf(&mut self) -> Result<(), ProducerError> {
        if !self.obuf.is_empty() {
            self.conn.write_all(&self.obuf)?;
            self.conn.flush()?;
            self.obuf.clear();
        }
        Ok(())
    }

    /// Flushes outbound bytes, reads one chunk of responses and applies
    /// them to the window.
    fn pump(&mut self) -> Result<(), ProducerError> {
        self.flush_obuf()?;
        while let Some(frame) = self.decoder.next_frame()? {
            self.apply_response(frame)?;
        }
        let n = self.conn.read(&mut self.rbuf)?;
        if n == 0 {
            return Err(ProducerError::Disconnected);
        }
        self.decoder.feed(&self.rbuf[..n]);
        while let Some(frame) = self.decoder.next_frame()? {
            self.apply_response(frame)?;
        }
        Ok(())
    }

    fn apply_response(&mut self, frame: Frame) -> Result<(), ProducerError> {
        match frame {
            Frame::Ack { seq, body } => {
                if seq > 0 {
                    self.settle_mark = self.settle_mark.max(seq);
                }
                if let AckBody::BatchApplied { durable_seq } = body {
                    self.durable_seq = self.durable_seq.max(durable_seq);
                    self.settle(seq);
                    self.stats.acked_batches += 1;
                } else {
                    self.settle(seq);
                    self.captured.push((seq, body));
                }
                Ok(())
            }
            Frame::Nack {
                seq,
                reason: NackReason::Saturated,
                retry_after_us,
            } => {
                self.stats.saturated_nacks += 1;
                if retry_after_us > 0 {
                    std::thread::sleep(Duration::from_micros(u64::from(retry_after_us)));
                }
                // Go-back-N rewind: re-send every unacknowledged frame
                // from the refused one on, in order. Frames before `seq`
                // were already acknowledged, so the window starts at it.
                for inflight in &self.window {
                    debug_assert!(inflight.seq >= seq);
                    self.obuf.extend_from_slice(&inflight.bytes);
                    self.stats.resent_frames += 1;
                }
                self.flush_obuf()?;
                Ok(())
            }
            Frame::Nack {
                reason: NackReason::Superseded,
                ..
            } => {
                // In-flight across a rewind; already re-sent. Count and
                // move on.
                self.stats.superseded_nacks += 1;
                Ok(())
            }
            Frame::Nack { seq, reason, .. } => {
                if seq > 0 {
                    self.settle_mark = self.settle_mark.max(seq);
                }
                self.settle(seq);
                Err(ProducerError::Rejected { seq, reason })
            }
            other => Err(ProducerError::Protocol(format!(
                "unexpected server frame {other:?}"
            ))),
        }
    }

    /// Retires `seq` (and anything older) from the window into the
    /// replay retention (or straight to the recycle pile when retention
    /// is off), then trims retention by the durable sequence and the
    /// cap.
    fn settle(&mut self, seq: u64) {
        while let Some(front) = self.window.front() {
            if front.seq > seq {
                break;
            }
            let retired = self.window.pop_front().expect("front checked");
            self.acked_seq = self.acked_seq.max(retired.seq);
            if self.config.retain_for_replay > 0 {
                self.settled.push_back(retired);
            } else {
                self.recycle(retired.bytes);
            }
        }
        while let Some(front) = self.settled.front() {
            if front.seq > self.durable_seq && self.settled.len() <= self.config.retain_for_replay {
                break;
            }
            let evicted = self.settled.pop_front().expect("front checked");
            self.recycle(evicted.bytes);
        }
    }

    fn recycle(&mut self, bytes: Vec<u8>) {
        if self.spare.len() < self.config.window {
            self.spare.push(bytes);
        }
    }
}

/// Convenience: connects a TCP producer with [`ProducerConfig`] defaults
/// and `TCP_NODELAY` set.
///
/// # Errors
///
/// [`ProducerError`] on connect or handshake failure.
pub fn connect_tcp(
    addr: SocketAddr,
    config: ProducerConfig,
) -> Result<IngestProducer<TcpStream>, ProducerError> {
    let conn = TcpStream::connect(addr)?;
    conn.set_nodelay(true)?;
    IngestProducer::connect(conn, config)
}

/// Convenience: connects a Unix-domain producer.
///
/// # Errors
///
/// [`ProducerError`] on connect or handshake failure.
#[cfg(unix)]
pub fn connect_unix(
    path: &std::path::Path,
    config: ProducerConfig,
) -> Result<IngestProducer<UnixStream>, ProducerError> {
    let conn = UnixStream::connect(path)?;
    IngestProducer::connect(conn, config)
}
