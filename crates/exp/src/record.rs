//! Structured per-run and per-campaign results.
//!
//! A [`RunRecord`] is everything the text tables aggregate from one run:
//! detection, latency, the fired assertions, the diagnosis ranking and the
//! physical damage. A [`CampaignReport`] bundles the records of one grid
//! and serializes to `results/<name>.json` next to the text tables, so the
//! numbers behind every table row are machine-readable.

use std::io;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use adassure_attacks::Channel;
use adassure_core::diagnosis::{self, CauseTag, Diagnosis};
use adassure_core::CheckReport;
use adassure_sim::engine::SimOutput;
use adassure_trace::well_known as sig;

use crate::grid::RunSpec;

/// The ground-truth cause for an attack on `channel` (what the diagnosis
/// engine should recover from violations alone).
pub fn cause_of(channel: Channel) -> CauseTag {
    match channel {
        Channel::Gnss => CauseTag::GnssChannel,
        Channel::WheelSpeed => CauseTag::WheelSpeedChannel,
        Channel::ImuYaw => CauseTag::ImuYawChannel,
        Channel::Compass => CauseTag::CompassChannel,
    }
}

/// Worst `|true cross-track error|` recorded at or after `t0` (m); `0.0`
/// when the trace has no ground-truth signal.
pub fn worst_xtrack_after(trace: &adassure_trace::Trace, t0: f64) -> f64 {
    trace
        .series_by_name(sig::TRUE_XTRACK_ERR)
        .map(|series| {
            series
                .samples()
                .iter()
                .filter(|s| s.time >= t0)
                .map(|s| s.value.abs())
                .fold(0.0_f64, f64::max)
        })
        .unwrap_or(0.0)
}

/// The structured result of one grid cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunRecord {
    /// The cell index within the campaign's grid.
    pub cell: usize,
    /// Scenario name.
    pub scenario: String,
    /// Controller name.
    pub controller: String,
    /// Estimator name.
    pub estimator: String,
    /// Attack name, or `None` for a clean run.
    pub attack: Option<String>,
    /// The attacked sensor channel, or `None` for a clean run.
    pub channel: Option<String>,
    /// Simulation seed.
    pub seed: u64,
    /// Whether an open-track run reached its goal.
    pub reached_goal: bool,
    /// Whether any assertion fired at or after [`RunSpec::alarm_start`].
    /// For attacked runs this is detection; for clean runs, a false
    /// positive.
    pub detected: bool,
    /// Seconds from attack start to the first subsequent alarm.
    pub detection_latency: Option<f64>,
    /// The assertion raising that first alarm.
    pub first_assertion: Option<String>,
    /// Every assertion that fired during the run, in id order.
    pub violated: Vec<String>,
    /// The assertions with a violation detected at or after
    /// [`RunSpec::alarm_start`] (what the detection matrix marks).
    pub violated_after_start: Vec<String>,
    /// The diagnosis ranking computed from the fired assertions.
    pub diagnosis: Diagnosis,
    /// Worst `|true cross-track error|` at or after the alarm-start time
    /// (m) — the physical damage of an attacked run.
    pub worst_xtrack_err: f64,
    /// Telemetry-link fault kind injected on the monitor's input stream,
    /// or `None` for a clean link.
    pub fault: Option<String>,
    /// Per-sample probability of the telemetry fault, when one is active.
    pub fault_rate: Option<f64>,
    /// Final guardian state of a guarded run (`"nominal"`, `"degraded"`,
    /// `"safe_stop"`), or `None` when no guardian was in the loop.
    pub guard_state: Option<String>,
}

impl RunRecord {
    /// Builds the record for one executed cell.
    pub fn from_run(spec: &RunSpec, output: &SimOutput, report: &CheckReport) -> Self {
        let start = spec.alarm_start();
        let first = report.first_detection_after(start);
        let violated_after_start: Vec<String> = report
            .violated_ids()
            .iter()
            .filter(|id| {
                report
                    .violations_of(id.as_str())
                    .any(|v| v.detected >= start)
            })
            .map(|id| id.as_str().to_owned())
            .collect();
        let worst_xtrack_err = worst_xtrack_after(&output.trace, start);
        RunRecord {
            cell: spec.index,
            scenario: spec.scenario.name().to_owned(),
            controller: spec.controller.name().to_owned(),
            estimator: spec.estimator.name().to_owned(),
            attack: spec.attack.map(|a| a.name().to_owned()),
            channel: spec.attack.map(|a| a.kind.channel().name().to_owned()),
            seed: spec.seed,
            reached_goal: output.reached_goal,
            detected: first.is_some(),
            detection_latency: first.map(|v| v.detected - start),
            first_assertion: first.map(|v| v.assertion.as_str().to_owned()),
            violated: report
                .violated_ids()
                .iter()
                .map(|id| id.as_str().to_owned())
                .collect(),
            violated_after_start,
            diagnosis: diagnosis::diagnose(report),
            worst_xtrack_err,
            fault: None,
            fault_rate: None,
            guard_state: None,
        }
    }

    /// Whether the top-`k` diagnosis candidates contain the attacked
    /// channel's true cause. `false` for clean runs.
    pub fn diagnosis_in_top(&self, k: usize) -> bool {
        self.true_cause()
            .is_some_and(|truth| self.diagnosis.contains_in_top(truth, k))
    }

    /// The ground-truth cause of this run's attack, if any.
    pub fn true_cause(&self) -> Option<CauseTag> {
        let channel = self.channel.as_deref()?;
        CauseTag::ALL
            .into_iter()
            .find(|cause| cause.name() == channel)
    }
}

/// Aggregate detection/false-alarm statistics of one group of runs (e.g.
/// one fault kind × rate configuration), with deltas against the
/// campaign's clean-link baseline group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupSummary {
    /// The group key (e.g. `"baseline"` or `"dropout@0.20"`).
    pub group: String,
    /// Number of runs aggregated.
    pub runs: usize,
    /// Fraction of *attacked* runs in the group that were detected.
    pub detection_rate: f64,
    /// Fraction of *clean* runs in the group that raised an alarm.
    pub false_alarm_rate: f64,
    /// `detection_rate` minus the baseline group's.
    pub detection_delta: f64,
    /// `false_alarm_rate` minus the baseline group's.
    pub false_alarm_delta: f64,
}

/// The structured results of one campaign: a named grid plus the record of
/// every cell, in cell order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// The campaign name (also the `results/<name>.json` stem).
    pub name: String,
    /// Per-cell records, in grid enumeration order.
    pub runs: Vec<RunRecord>,
    /// Per-group aggregates, when the campaign computes them (robustness
    /// sweeps); empty otherwise.
    pub summaries: Vec<GroupSummary>,
    /// Deterministic observability roll-up of the whole campaign: verdict
    /// counters, transition grids and the detection-latency histogram,
    /// merged over the cells in cell order. Wall-clock timing histograms
    /// are deliberately excluded so the report stays byte-reproducible
    /// (export them separately via [`adassure_obs::MetricsSnapshot`]).
    pub obs: adassure_obs::ObsSummary,
}

impl CampaignReport {
    /// Pretty-printed JSON of the whole report (trailing newline included).
    pub fn to_json(&self) -> String {
        let mut text = serde_json::to_string_pretty(self).expect("report serializes");
        text.push('\n');
        text
    }

    /// Writes the report to `<dir>/<name>.json`, creating `dir` as needed,
    /// and returns the path written.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from directory creation or the write.
    pub fn write_json(&self, dir: impl AsRef<Path>) -> io::Result<PathBuf> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.name));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// The records satisfying a predicate (aggregation convenience).
    pub fn select<'a>(&'a self, pred: impl Fn(&RunRecord) -> bool + 'a) -> Vec<&'a RunRecord> {
        self.runs.iter().filter(|r| pred(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(attack: Option<&str>, channel: Option<&str>) -> RunRecord {
        RunRecord {
            cell: 0,
            scenario: "straight".into(),
            controller: "pure_pursuit".into(),
            estimator: "complementary".into(),
            attack: attack.map(str::to_owned),
            channel: channel.map(str::to_owned),
            seed: 1,
            reached_goal: true,
            detected: attack.is_some(),
            detection_latency: attack.map(|_| 0.5),
            first_assertion: attack.map(|_| "A7".to_owned()),
            violated: vec!["A7".into()],
            violated_after_start: vec!["A7".into()],
            diagnosis: diagnosis::diagnose_ids(&["A7"].map(adassure_core::AssertionId::new).into()),
            worst_xtrack_err: 1.25,
            fault: None,
            fault_rate: None,
            guard_state: None,
        }
    }

    #[test]
    fn cause_mapping_is_total() {
        assert_eq!(cause_of(Channel::Gnss), CauseTag::GnssChannel);
        assert_eq!(cause_of(Channel::WheelSpeed), CauseTag::WheelSpeedChannel);
        assert_eq!(cause_of(Channel::ImuYaw), CauseTag::ImuYawChannel);
        assert_eq!(cause_of(Channel::Compass), CauseTag::CompassChannel);
    }

    #[test]
    fn top_k_checks_against_the_attacked_channel() {
        let rec = record(Some("gnss_bias"), Some("gnss"));
        assert_eq!(rec.true_cause(), Some(CauseTag::GnssChannel));
        assert!(rec.diagnosis_in_top(1));
        let clean = record(None, None);
        assert_eq!(clean.true_cause(), None);
        assert!(!clean.diagnosis_in_top(5));
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = CampaignReport {
            name: "unit".into(),
            runs: vec![record(Some("gnss_bias"), Some("gnss")), record(None, None)],
            summaries: vec![GroupSummary {
                group: "baseline".into(),
                runs: 2,
                detection_rate: 1.0,
                false_alarm_rate: 0.0,
                detection_delta: 0.0,
                false_alarm_delta: 0.0,
            }],
            obs: adassure_obs::ObsSummary::empty(),
        };
        let json = report.to_json();
        assert!(json.ends_with('\n'));
        let back: CampaignReport = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, report);
    }

    #[test]
    fn select_filters_records() {
        let report = CampaignReport {
            name: "unit".into(),
            runs: vec![record(Some("gnss_bias"), Some("gnss")), record(None, None)],
            summaries: Vec::new(),
            obs: adassure_obs::ObsSummary::empty(),
        };
        assert_eq!(report.select(|r| r.attack.is_none()).len(), 1);
        assert_eq!(report.select(|r| r.detected).len(), 1);
    }
}
