//! The full waypoint-following pipeline: estimator → lateral controller →
//! longitudinal PID, wired as an [`adassure_sim::engine::Driver`].
//!
//! [`AdStack`] is the *system under debug* in every ADAssure experiment. It
//! records its internal signals — estimates, error terms, innovation,
//! progress, target speed — under the [`adassure_trace::well_known`] names
//! so the assertion catalog binds without per-experiment wiring.

use serde::{Deserialize, Serialize};

use adassure_sim::engine::{DriveCtx, Driver};
use adassure_sim::geometry::wrap_angle;
use adassure_sim::track::Track;
use adassure_sim::vehicle::Controls;
use adassure_trace::{well_known as sig, Trace};

use crate::ekf::{Ekf, EkfConfig, EkfState};
use crate::estimator::{Estimator, EstimatorConfig, EstimatorState};
use crate::lqr::{Lqr, LqrConfig, LqrState};
use crate::mpc::{Mpc, MpcConfig, MpcState};
use crate::pid::{Pid, PidConfig, PidState};
use crate::pure_pursuit::{PurePursuit, PurePursuitConfig};
use crate::stanley::{Stanley, StanleyConfig};
use crate::{ControllerKind, Estimate, LateralController};

/// Which state estimator the stack fuses its sensors with.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum EstimatorKind {
    /// Complementary filter (the workspace default).
    #[default]
    Complementary,
    /// Extended Kalman filter.
    Ekf,
    /// Extended Kalman filter with 99 % innovation gating on GNSS fixes.
    GatedEkf,
}

impl EstimatorKind {
    /// All estimator kinds, in a stable order.
    pub const ALL: [EstimatorKind; 3] = [
        EstimatorKind::Complementary,
        EstimatorKind::Ekf,
        EstimatorKind::GatedEkf,
    ];

    /// Short lowercase name (stable; used in reports).
    pub fn name(self) -> &'static str {
        match self {
            EstimatorKind::Complementary => "complementary",
            EstimatorKind::Ekf => "ekf",
            EstimatorKind::GatedEkf => "gated_ekf",
        }
    }
}

impl std::fmt::Display for EstimatorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Configuration of the full stack.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StackConfig {
    /// Which lateral controller to use.
    pub controller: ControllerKind,
    /// Which state estimator to use.
    pub estimator_kind: EstimatorKind,
    /// Cruise speed on straights (m/s).
    pub cruise_speed: f64,
    /// Lateral-acceleration budget used to slow down for curves (m/s²).
    pub lat_accel_limit: f64,
    /// Preview distance for curve speed planning (m).
    pub preview: f64,
    /// Comfortable deceleration used to stop at the goal (m/s²).
    pub goal_decel: f64,
    /// Estimator gains.
    pub estimator: EstimatorConfig,
    /// Longitudinal PID gains.
    pub pid: PidConfig,
}

impl StackConfig {
    /// A standard stack around the given lateral controller.
    pub fn new(controller: ControllerKind) -> Self {
        StackConfig {
            controller,
            estimator_kind: EstimatorKind::Complementary,
            cruise_speed: 8.0,
            lat_accel_limit: 2.5,
            preview: 15.0,
            goal_decel: 1.5,
            estimator: EstimatorConfig::standard(),
            pid: PidConfig::speed_control(),
        }
    }

    /// Replaces the cruise speed.
    pub fn with_cruise_speed(mut self, speed: f64) -> Self {
        self.cruise_speed = speed;
        self
    }

    /// Replaces the estimator.
    pub fn with_estimator(mut self, kind: EstimatorKind) -> Self {
        self.estimator_kind = kind;
        self
    }
}

/// Enum dispatch over the two estimator families.
#[derive(Debug, Clone)]
enum AnyEstimator {
    Complementary(Estimator),
    Ekf(Ekf),
}

impl AnyEstimator {
    fn of_kind(kind: EstimatorKind, config: EstimatorConfig) -> Self {
        match kind {
            EstimatorKind::Complementary => AnyEstimator::Complementary(Estimator::new(config)),
            EstimatorKind::Ekf => AnyEstimator::Ekf(Ekf::new(EkfConfig::standard())),
            EstimatorKind::GatedEkf => AnyEstimator::Ekf(Ekf::new(EkfConfig::gated())),
        }
    }

    fn update(&mut self, frame: &adassure_sim::sensor::SensorFrame, dt: f64) -> Estimate {
        match self {
            AnyEstimator::Complementary(e) => e.update(frame, dt),
            AnyEstimator::Ekf(e) => e.update(frame, dt),
        }
    }

    fn is_initialized(&self) -> bool {
        match self {
            AnyEstimator::Complementary(e) => e.is_initialized(),
            AnyEstimator::Ekf(e) => e.is_initialized(),
        }
    }

    fn last_innovation(&self) -> f64 {
        match self {
            AnyEstimator::Complementary(e) => e.last_innovation(),
            AnyEstimator::Ekf(e) => e.last_innovation(),
        }
    }
}

/// Enum dispatch over the four lateral controllers.
#[derive(Debug, Clone)]
enum Lateral {
    PurePursuit(PurePursuit),
    Stanley(Stanley),
    Lqr(Lqr),
    Mpc(Mpc),
}

impl Lateral {
    fn of_kind(kind: ControllerKind) -> Self {
        match kind {
            ControllerKind::PurePursuit => {
                Lateral::PurePursuit(PurePursuit::new(PurePursuitConfig::standard()))
            }
            ControllerKind::Stanley => Lateral::Stanley(Stanley::new(StanleyConfig::standard())),
            ControllerKind::Lqr => Lateral::Lqr(Lqr::new(LqrConfig::standard())),
            ControllerKind::Mpc => Lateral::Mpc(Mpc::new(MpcConfig::standard())),
        }
    }
}

impl LateralController for Lateral {
    fn steer(&mut self, est: &Estimate, track: &Track, dt: f64) -> f64 {
        match self {
            Lateral::PurePursuit(c) => c.steer(est, track, dt),
            Lateral::Stanley(c) => c.steer(est, track, dt),
            Lateral::Lqr(c) => c.steer(est, track, dt),
            Lateral::Mpc(c) => c.steer(est, track, dt),
        }
    }

    fn reset(&mut self) {
        match self {
            Lateral::PurePursuit(c) => c.reset(),
            Lateral::Stanley(c) => c.reset(),
            Lateral::Lqr(c) => c.reset(),
            Lateral::Mpc(c) => c.reset(),
        }
    }
}

/// Plain-data snapshot of whichever estimator family an [`AdStack`] runs.
#[derive(Debug, Clone, PartialEq)]
pub enum AnyEstimatorState {
    /// Complementary-filter state.
    Complementary(EstimatorState),
    /// EKF state (plain or gated — the gate lives in the config).
    Ekf(EkfState),
}

/// Plain-data snapshot of whichever lateral controller an [`AdStack`] runs.
#[derive(Debug, Clone, PartialEq)]
pub enum LateralState {
    /// Pure pursuit and Stanley carry no mutable state.
    Stateless,
    /// LQR gain cache.
    Lqr(LqrState),
    /// MPC plan and slew anchor.
    Mpc(MpcState),
}

/// The complete mutable state of an [`AdStack`], captured between control
/// cycles (see [`AdStack::save_state`]).
#[derive(Debug, Clone, PartialEq)]
pub struct StackState {
    /// Estimator internals.
    pub estimator: AnyEstimatorState,
    /// Lateral-controller internals.
    pub lateral: LateralState,
    /// Longitudinal PID internals.
    pub pid: PidState,
    /// Unwrapped arc-length progress of the estimated pose (m).
    pub progress: f64,
    /// Track station at the previous cycle, if any.
    pub last_station: Option<f64>,
}

/// The full AD control stack (estimator + lateral + longitudinal).
#[derive(Debug)]
pub struct AdStack {
    config: StackConfig,
    track: Track,
    estimator: AnyEstimator,
    lateral: Lateral,
    pid: Pid,
    progress: f64,
    last_station: Option<f64>,
}

impl AdStack {
    /// Creates a stack following `track`.
    pub fn new(config: StackConfig, track: Track) -> Self {
        AdStack {
            estimator: AnyEstimator::of_kind(config.estimator_kind, config.estimator),
            lateral: Lateral::of_kind(config.controller),
            pid: Pid::new(config.pid),
            config,
            track,
            progress: 0.0,
            last_station: None,
        }
    }

    /// The stack's configuration.
    pub fn config(&self) -> &StackConfig {
        &self.config
    }

    /// Unwrapped arc-length progress of the estimated pose (m).
    pub fn progress(&self) -> f64 {
        self.progress
    }

    /// Resets all internal state for a fresh run.
    pub fn reset(&mut self) {
        self.estimator = AnyEstimator::of_kind(self.config.estimator_kind, self.config.estimator);
        self.lateral.reset();
        self.pid.reset();
        self.progress = 0.0;
        self.last_station = None;
    }

    /// Curve-aware target speed at station `s`.
    fn target_speed(&self, station: f64) -> f64 {
        let mut target: f64 = self.config.cruise_speed;
        // Slow down for the sharpest curvature in the preview window.
        let samples = 5;
        for i in 0..=samples {
            let ahead = station + self.config.preview * i as f64 / samples as f64;
            let kappa = self.track.curvature_at(ahead).abs();
            if kappa > 1e-6 {
                target = target.min((self.config.lat_accel_limit / kappa).sqrt());
            }
        }
        // Taper to a stop at the end of open tracks.
        if !self.track.is_closed() {
            let remaining = (self.track.length() - station).max(0.0);
            target = target.min((2.0 * self.config.goal_decel * remaining).sqrt());
        }
        target
    }

    /// Captures the stack's complete mutable state as plain data — the
    /// estimator, lateral controller and PID internals plus the progress
    /// tracker. Restoring it into a stack built from the same
    /// [`StackConfig`] and track resumes the control law bit-identically.
    pub fn save_state(&self) -> StackState {
        StackState {
            estimator: match &self.estimator {
                AnyEstimator::Complementary(e) => AnyEstimatorState::Complementary(e.state()),
                AnyEstimator::Ekf(e) => AnyEstimatorState::Ekf(e.state()),
            },
            lateral: match &self.lateral {
                Lateral::PurePursuit(_) | Lateral::Stanley(_) => LateralState::Stateless,
                Lateral::Lqr(c) => LateralState::Lqr(c.state()),
                Lateral::Mpc(c) => LateralState::Mpc(c.state()),
            },
            pid: self.pid.state(),
            progress: self.progress,
            last_station: self.last_station,
        }
    }

    /// Reinstates a state captured with [`AdStack::save_state`].
    ///
    /// # Errors
    ///
    /// Returns a message when the snapshot's estimator/controller family
    /// does not match this stack's configuration.
    pub fn restore_state(&mut self, s: &StackState) -> Result<(), String> {
        match (&mut self.estimator, &s.estimator) {
            (AnyEstimator::Complementary(e), AnyEstimatorState::Complementary(snap)) => {
                e.restore(snap);
            }
            (AnyEstimator::Ekf(e), AnyEstimatorState::Ekf(snap)) => e.restore(snap),
            _ => {
                return Err(format!(
                    "estimator snapshot does not match the stack's {} estimator",
                    self.config.estimator_kind
                ))
            }
        }
        match (&mut self.lateral, &s.lateral) {
            (Lateral::PurePursuit(_) | Lateral::Stanley(_), LateralState::Stateless) => {}
            (Lateral::Lqr(c), LateralState::Lqr(snap)) => c.restore(snap),
            (Lateral::Mpc(c), LateralState::Mpc(snap)) => c.restore(snap),
            _ => {
                return Err(format!(
                    "controller snapshot does not match the stack's {} controller",
                    self.config.controller
                ))
            }
        }
        self.pid.restore(&s.pid);
        self.progress = s.progress;
        self.last_station = s.last_station;
        Ok(())
    }

    fn update_progress(&mut self, station: f64) {
        match self.last_station {
            None => self.progress = station,
            Some(prev) => {
                let mut delta = station - prev;
                if self.track.is_closed() {
                    let len = self.track.length();
                    if delta > len / 2.0 {
                        delta -= len;
                    } else if delta < -len / 2.0 {
                        delta += len;
                    }
                }
                self.progress += delta;
            }
        }
        self.last_station = Some(station);
    }
}

impl Driver for AdStack {
    fn control(&mut self, ctx: &DriveCtx<'_>, trace: &mut Trace) -> Controls {
        let est = self.estimator.update(ctx.frame, ctx.dt);
        let proj = self.track.project(est.position);
        self.update_progress(proj.station);

        let heading_err = wrap_angle(est.heading - proj.heading);
        let target_speed = self.target_speed(proj.station);

        let steer = if self.estimator.is_initialized() {
            self.lateral.steer(&est, &self.track, ctx.dt)
        } else {
            0.0
        };
        let accel = self.pid.update(target_speed, est.speed, ctx.dt);

        let t = ctx.time;
        trace.record(sig::EST_X, t, est.position.x);
        trace.record(sig::EST_Y, t, est.position.y);
        trace.record(sig::EST_HEADING, t, est.heading);
        trace.record(sig::EST_SPEED, t, est.speed);
        trace.record(sig::INNOVATION, t, self.estimator.last_innovation());
        trace.record(sig::XTRACK_ERR, t, proj.cross_track);
        trace.record(sig::HEADING_ERR, t, heading_err);
        trace.record(sig::TARGET_SPEED, t, target_speed);
        trace.record(sig::PROGRESS, t, self.progress);

        Controls::new(steer, accel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adassure_sim::engine::{Engine, SimConfig};
    use adassure_sim::sensor::SensorConfig;
    use adassure_trace::stats::SummaryStats;

    fn run_stack(
        kind: ControllerKind,
        track: Track,
        duration: f64,
        seed: u64,
    ) -> adassure_sim::engine::SimOutput {
        let mut stack = AdStack::new(StackConfig::new(kind), track.clone());
        let engine = Engine::new(SimConfig::new(duration).with_seed(seed), track);
        engine.run(&mut stack).expect("simulation must not diverge")
    }

    #[test]
    fn every_controller_follows_a_straight_road() {
        let track = Track::line([0.0, 0.0], [250.0, 0.0], 1.0).unwrap();
        for kind in ControllerKind::ALL {
            let out = run_stack(kind, track.clone(), 60.0, 42);
            assert!(out.reached_goal, "{kind} failed to reach the goal");
            let xtrack = out.trace.require(sig::TRUE_XTRACK_ERR).unwrap();
            let stats = SummaryStats::from_series(xtrack).unwrap();
            // Launch transients may excurse briefly (MPC especially); the
            // sustained tracking quality is what matters.
            assert!(
                stats.rms < 0.5,
                "{kind} cross-track rms too large: {stats:?}"
            );
            assert!(
                stats.max.abs().max(stats.min.abs()) < 2.0,
                "{kind} cross-track excursion too large: {stats:?}"
            );
        }
    }

    #[test]
    fn every_controller_follows_a_curve() {
        let track = Track::from_waypoints(
            [
                [0.0, 0.0],
                [40.0, 0.0],
                [70.0, 10.0],
                [90.0, 30.0],
                [100.0, 60.0],
                [100.0, 100.0],
            ],
            1.0,
            false,
        )
        .unwrap();
        for kind in ControllerKind::ALL {
            let out = run_stack(kind, track.clone(), 90.0, 7);
            assert!(out.reached_goal, "{kind} failed to reach the goal");
            let xtrack = out.trace.require(sig::TRUE_XTRACK_ERR).unwrap();
            let worst = xtrack.values().map(f64::abs).fold(0.0f64, f64::max);
            assert!(worst < 2.0, "{kind} worst cross-track {worst}");
        }
    }

    #[test]
    fn stack_records_all_pipeline_signals() {
        let track = Track::line([0.0, 0.0], [100.0, 0.0], 1.0).unwrap();
        let out = run_stack(ControllerKind::PurePursuit, track, 30.0, 3);
        for name in [
            sig::EST_X,
            sig::EST_SPEED,
            sig::INNOVATION,
            sig::XTRACK_ERR,
            sig::HEADING_ERR,
            sig::TARGET_SPEED,
            sig::PROGRESS,
        ] {
            assert!(
                out.trace.require(name).unwrap().len() > 100,
                "missing pipeline signal {name}"
            );
        }
    }

    #[test]
    fn progress_is_monotone_on_clean_run() {
        let track = Track::line([0.0, 0.0], [150.0, 0.0], 1.0).unwrap();
        let out = run_stack(ControllerKind::Stanley, track, 60.0, 9);
        let progress = out.trace.require(sig::PROGRESS).unwrap();
        let mut prev = f64::NEG_INFINITY;
        for v in progress.values() {
            assert!(v >= prev - 0.6, "progress regressed: {v} after {prev}");
            prev = v;
        }
    }

    #[test]
    fn speed_tracks_target_within_tolerance() {
        let track = Track::line([0.0, 0.0], [400.0, 0.0], 1.0).unwrap();
        let out = run_stack(ControllerKind::PurePursuit, track.clone(), 80.0, 1);
        // After the launch transient, speed should sit near the target.
        let speed = out.trace.require(sig::TRUE_SPEED).unwrap();
        let target = out.trace.require(sig::TARGET_SPEED).unwrap();
        let mut worst = 0.0f64;
        for s in speed
            .samples()
            .iter()
            .filter(|s| s.time > 10.0 && s.time < 30.0)
        {
            if let Some(t) = target.value_at(s.time) {
                worst = worst.max((s.value - t).abs());
            }
        }
        assert!(worst < 1.0, "speed tracking error {worst}");
    }

    #[test]
    fn curve_speed_planning_slows_for_corners() {
        let stack = AdStack::new(
            StackConfig::new(ControllerKind::PurePursuit).with_cruise_speed(15.0),
            Track::circle([0.0, 0.0], 15.0, 1.0).unwrap(),
        );
        // Circle of r=15 with a_lat=2.5 → v = sqrt(2.5*15) ≈ 6.1 m/s.
        let target = stack.target_speed(10.0);
        assert!(target < 7.5, "corner target {target}");
        assert!(target > 4.0, "corner target {target}");
    }

    #[test]
    fn goal_taper_stops_at_track_end() {
        let stack = AdStack::new(
            StackConfig::new(ControllerKind::PurePursuit),
            Track::line([0.0, 0.0], [100.0, 0.0], 1.0).unwrap(),
        );
        assert!(stack.target_speed(99.5) < 1.5);
        assert_eq!(stack.target_speed(100.0), 0.0);
    }

    #[test]
    fn ideal_sensors_give_near_perfect_tracking() {
        let track = Track::line([0.0, 0.0], [200.0, 0.0], 1.0).unwrap();
        let mut stack = AdStack::new(StackConfig::new(ControllerKind::Lqr), track.clone());
        let config = SimConfig::new(40.0)
            .with_seed(0)
            .with_sensors(SensorConfig::ideal());
        let out = Engine::new(config, track).run(&mut stack).unwrap();
        let xtrack = out.trace.require(sig::TRUE_XTRACK_ERR).unwrap();
        let worst = xtrack.values().map(f64::abs).fold(0.0f64, f64::max);
        assert!(worst < 0.2, "ideal-sensor worst cross-track {worst}");
    }

    #[test]
    fn every_estimator_tracks_the_road() {
        let track = Track::line([0.0, 0.0], [250.0, 0.0], 1.0).unwrap();
        for kind in EstimatorKind::ALL {
            let config = StackConfig::new(ControllerKind::PurePursuit).with_estimator(kind);
            let mut stack = AdStack::new(config, track.clone());
            let engine = Engine::new(SimConfig::new(60.0).with_seed(13), track.clone());
            let out = engine.run(&mut stack).expect("run");
            assert!(out.reached_goal, "{kind} stack failed to reach the goal");
            let xtrack = out.trace.require(sig::TRUE_XTRACK_ERR).unwrap();
            let stats = SummaryStats::from_series(xtrack).unwrap();
            assert!(stats.rms < 0.5, "{kind} rms {stats:?}");
        }
    }

    #[test]
    fn estimator_kinds_have_unique_names() {
        let names: std::collections::HashSet<_> =
            EstimatorKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), EstimatorKind::ALL.len());
        assert_eq!(EstimatorKind::default(), EstimatorKind::Complementary);
    }

    #[test]
    fn reset_restores_initial_behaviour() {
        let track = Track::line([0.0, 0.0], [100.0, 0.0], 1.0).unwrap();
        let mut stack = AdStack::new(StackConfig::new(ControllerKind::PurePursuit), track.clone());
        let engine = Engine::new(SimConfig::new(10.0).with_seed(4), track);
        let first = engine.run(&mut stack).unwrap();
        stack.reset();
        let second = engine.run(&mut stack).unwrap();
        assert_eq!(first.trace, second.trace, "reset must be complete");
    }
}
