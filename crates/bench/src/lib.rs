//! Shared experiment plumbing for the ADAssure benchmark harnesses.
//!
//! The sweep mechanics — grid enumeration, parallel execution, records and
//! aggregation — live in [`adassure_exp`]; every table/figure binary in
//! `src/bin/` is a thin declarative definition on top of it. This crate
//! re-exports the helpers the harnesses and benches share, plus single-run
//! wrappers for callers that want one `(output, report)` pair rather than a
//! whole campaign.

#![warn(missing_docs)]

use adassure_attacks::campaign::AttackSpec;
use adassure_control::pipeline::EstimatorKind;
use adassure_control::ControllerKind;
use adassure_core::{Assertion, CheckReport};
use adassure_exp::grid::RunSpec;
use adassure_scenarios::Scenario;
use adassure_sim::engine::SimOutput;
use adassure_sim::SimError;

pub use adassure_exp::agg::{fmt_mean_std, row};
pub use adassure_exp::campaign::{catalog_config_for, standard_catalog as catalog_for};

/// The standard attack set activating at the scenario's canonical attack
/// start.
pub fn attacks_for(scenario: &Scenario) -> Vec<AttackSpec> {
    adassure_attacks::campaign::standard_attacks(scenario.attack_start)
}

fn single_cell(
    scenario: &Scenario,
    controller: ControllerKind,
    attack: Option<AttackSpec>,
    seed: u64,
) -> RunSpec {
    RunSpec {
        index: 0,
        scenario: scenario.kind,
        controller,
        estimator: EstimatorKind::Complementary,
        attack,
        seed,
    }
}

/// Runs a clean (golden) pass and checks it against `cat`.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run_clean(
    scenario: &Scenario,
    controller: ControllerKind,
    seed: u64,
    cat: &[Assertion],
) -> Result<(SimOutput, CheckReport), SimError> {
    adassure_exp::campaign::execute(&single_cell(scenario, controller, None, seed), cat)
}

/// Runs an attacked pass and checks it against `cat`.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run_attacked(
    scenario: &Scenario,
    controller: ControllerKind,
    attack: &AttackSpec,
    seed: u64,
    cat: &[Assertion],
) -> Result<(SimOutput, CheckReport), SimError> {
    adassure_exp::campaign::execute(&single_cell(scenario, controller, Some(*attack), seed), cat)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adassure_scenarios::ScenarioKind;

    #[test]
    fn catalog_config_matches_topology() {
        let open = Scenario::of_kind(ScenarioKind::Straight).unwrap();
        assert!(catalog_config_for(&open).goal_distance.is_some());
        let closed = Scenario::of_kind(ScenarioKind::Circle).unwrap();
        assert!(catalog_config_for(&closed).goal_distance.is_none());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(row(&["a".into(), "bb".into()], &[3, 3]), "a   bb");
        assert_eq!(fmt_mean_std(&[]), "-");
        assert_eq!(fmt_mean_std(&[2.0, 2.0]), "2.00±0.00");
    }
}
