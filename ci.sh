#!/usr/bin/env sh
# Local CI gate: formatting, lints, tests. Run from the repository root.
set -eu

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (workspace, warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test (workspace) =="
cargo test --workspace -q

echo "== table5_robustness smoke slice (seconds-scale, seeded) =="
cargo run --release -q -p adassure-bench --bin table5_robustness -- --smoke

echo "== cargo bench --no-run (benchmarks stay compilable) =="
cargo bench --workspace --no-run

echo "CI OK"
