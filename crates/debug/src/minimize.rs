//! Automatic minimal repro: shrinks a violating attack timeline to a
//! 1-minimal, tight-windowed, small-magnitude repro case.
//!
//! The minimizer treats the run as a black-box oracle — "does this
//! candidate timeline still fire the target assertion?" — and applies
//! three shrinking phases, each preserving the invariant that the current
//! timeline has been *verified to fire* by an actual re-execution:
//!
//! 1. **Entry ddmin** — classic delta debugging over the timeline's
//!    entries (subsets, then complements, with granularity doubling).
//!    Terminating at granularity `n == len` tests every singleton and
//!    every leave-one-out split, so the surviving entry set is 1-minimal:
//!    dropping any single entry stops the violation.
//! 2. **Window narrowing** — per entry, binary-searches the latest
//!    activation and earliest deactivation that still fire, to
//!    [`MinimizeConfig::time_tolerance`] seconds.
//! 3. **Magnitude shrinking** — per entry, bisects the smallest scale
//!    factor in `(0, 1]` of the attack magnitude that still fires, to
//!    [`MinimizeConfig::scale_tolerance`] (magnitude-free attacks are
//!    skipped).
//!
//! A final re-execution verifies the result and stamps the expectation
//! (assertion id + detection cycle), producing a self-contained
//! [`ReproCase`] that `adassure_exp::rerun::run_repro` — and the `addebug
//! rerun` command — replays bit-identically.

use adassure_attacks::{AttackTimeline, Window};
use adassure_core::CheckReport;
use adassure_exp::rerun::run_repro;
use adassure_scenarios::{ReproCase, ReproExpectation, Scenario};

use crate::session::DebugSpec;
use crate::DebugError;

/// Tuning knobs for [`minimize`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MinimizeConfig {
    /// Hard cap on oracle re-executions across all shrinking phases (the
    /// initial and final verification runs are always performed). When the
    /// budget runs out, shrinking stops early at the last verified
    /// timeline — the result still reproduces, it just may not be fully
    /// tightened.
    pub max_runs: usize,
    /// Window-narrowing resolution (s).
    pub time_tolerance: f64,
    /// Magnitude-shrinking resolution (relative scale factor).
    pub scale_tolerance: f64,
}

impl Default for MinimizeConfig {
    fn default() -> Self {
        MinimizeConfig {
            max_runs: 120,
            time_tolerance: 0.25,
            scale_tolerance: 0.05,
        }
    }
}

/// The outcome of [`minimize`]: a verified, self-contained repro.
#[derive(Debug, Clone)]
pub struct Minimized {
    /// The minimized, re-verified repro case (timeline + expectation).
    pub case: ReproCase,
    /// The report of the final verification run of `case`.
    pub report: CheckReport,
    /// Total re-executions spent (including the initial and final runs).
    pub runs: usize,
    /// Entry count of the timeline before minimization.
    pub original_entries: usize,
}

/// The re-execution oracle: runs a candidate timeline through the
/// campaign plumbing and asks whether the target assertion still fires.
struct Oracle<'a> {
    spec: &'a DebugSpec,
    target: String,
    runs: usize,
    max_runs: usize,
}

impl Oracle<'_> {
    /// Whether the exploration budget allows another probe.
    fn remaining(&self) -> bool {
        self.runs < self.max_runs
    }

    /// Re-executes `timeline` and reports the full check report.
    fn execute(&mut self, timeline: &AttackTimeline) -> Result<CheckReport, DebugError> {
        self.runs += 1;
        let case = self.spec.repro_case(
            "minimizer probe",
            timeline.clone(),
            ReproExpectation {
                assertion: self.target.clone(),
                cycle: 0,
            },
        );
        let (_, report) = run_repro(&case)?;
        Ok(report)
    }

    /// Whether `timeline` still fires the target assertion.
    fn fires(&mut self, timeline: &AttackTimeline) -> Result<bool, DebugError> {
        let report = self.execute(timeline)?;
        let fired = report.violations_of(&self.target).next().is_some();
        Ok(fired)
    }
}

/// Minimizes `spec`'s timeline against the *first* violation its run
/// raises. See the module docs for the phases.
///
/// # Errors
///
/// [`DebugError::NoViolation`] when the run raises no violation at all,
/// plus simulator errors from re-execution.
pub fn minimize(spec: &DebugSpec, config: &MinimizeConfig) -> Result<Minimized, DebugError> {
    minimize_target(spec, None, config)
}

/// [`minimize`], but targeting a specific assertion id (`None` = the
/// first violation of the initial run).
///
/// # Errors
///
/// [`DebugError::NoViolation`] when the targeted assertion (or, for
/// `None`, any assertion) does not fire on the unminimized run.
pub fn minimize_target(
    spec: &DebugSpec,
    target: Option<&str>,
    config: &MinimizeConfig,
) -> Result<Minimized, DebugError> {
    // Initial run: establish the target and verify the full timeline fires.
    let mut oracle = Oracle {
        spec,
        target: target.unwrap_or_default().to_owned(),
        runs: 0,
        max_runs: usize::MAX,
    };
    let initial = oracle.execute(&spec.timeline)?;
    let target = match target {
        Some(id) => {
            if initial.violations_of(id).next().is_none() {
                return Err(DebugError::NoViolation);
            }
            id.to_owned()
        }
        None => match initial.violations.first() {
            Some(v) => v.assertion.as_str().to_owned(),
            None => return Err(DebugError::NoViolation),
        },
    };
    oracle.target = target;
    oracle.max_runs = oracle.runs + config.max_runs;

    let duration = Scenario::of_kind(spec.scenario)?.duration;
    let mut current = ddmin_entries(&mut oracle, &spec.timeline)?;
    current = narrow_windows(&mut oracle, current, duration, config.time_tolerance)?;
    current = shrink_magnitudes(&mut oracle, current, config.scale_tolerance)?;

    // Final verification run (outside the exploration budget): every
    // accepted move was itself a firing run, so this must fire too.
    oracle.max_runs = usize::MAX;
    let report = oracle.execute(&current)?;
    let first = report
        .violations_of(&oracle.target)
        .next()
        .ok_or_else(|| {
            DebugError::Checker(format!(
                "minimized timeline no longer fires {} on re-verification",
                oracle.target
            ))
        })?
        .clone();
    let case = spec.repro_case(
        format!(
            "minimized {} violation: {} of {} attack entries, seed {}",
            oracle.target,
            current.len(),
            spec.timeline.len(),
            spec.seed
        ),
        current,
        ReproExpectation {
            assertion: oracle.target.clone(),
            cycle: first.cycle,
        },
    );
    Ok(Minimized {
        case,
        report,
        runs: oracle.runs,
        original_entries: spec.timeline.len(),
    })
}

/// Splits `0..len` into `n` contiguous chunks of near-equal size.
fn chunk_indices(len: usize, n: usize) -> Vec<Vec<usize>> {
    let mut chunks = Vec::with_capacity(n);
    let base = len / n;
    let extra = len % n;
    let mut next = 0;
    for i in 0..n {
        let size = base + usize::from(i < extra);
        chunks.push((next..next + size).collect());
        next += size;
    }
    chunks
}

/// Phase 1: classic ddmin over timeline entries. Returns a verified-firing
/// timeline that (budget permitting) is 1-minimal in its entry set.
fn ddmin_entries(
    oracle: &mut Oracle<'_>,
    timeline: &AttackTimeline,
) -> Result<AttackTimeline, DebugError> {
    let mut current = timeline.clone();
    let mut n = 2usize;
    while current.len() >= 2 && oracle.remaining() {
        let len = current.len();
        let n_eff = n.min(len);
        let chunks = chunk_indices(len, n_eff);
        let mut reduced = None;
        // Try each chunk alone ("reduce to subset").
        for chunk in &chunks {
            if !oracle.remaining() {
                break;
            }
            let candidate = current.subset(chunk);
            if oracle.fires(&candidate)? {
                reduced = Some((candidate, 2));
                break;
            }
        }
        // Try dropping each chunk ("reduce to complement"); at n == 2 the
        // complements are the subsets just tried, so skip.
        if reduced.is_none() && n_eff > 2 {
            for chunk in &chunks {
                if !oracle.remaining() {
                    break;
                }
                let complement: Vec<usize> = (0..len).filter(|i| !chunk.contains(i)).collect();
                let candidate = current.subset(&complement);
                if oracle.fires(&candidate)? {
                    reduced = Some((candidate, (n_eff - 1).max(2)));
                    break;
                }
            }
        }
        match reduced {
            Some((candidate, next_n)) => {
                current = candidate;
                n = next_n;
            }
            None => {
                if n_eff >= len {
                    break; // every singleton and leave-one-out failed: 1-minimal
                }
                n = (n_eff * 2).min(len);
            }
        }
    }
    Ok(current)
}

/// Phase 2: per entry, binary-search the latest start and earliest end
/// that still fire. Open-ended windows are first clamped to the run
/// duration (kept open if the clamp stops the violation — the tail past
/// the run's end is unobservable anyway, but we never keep an unverified
/// edit).
fn narrow_windows(
    oracle: &mut Oracle<'_>,
    mut current: AttackTimeline,
    duration: f64,
    tolerance: f64,
) -> Result<AttackTimeline, DebugError> {
    for i in 0..current.len() {
        // Latest activation that still fires. Invariant: `lo` fires.
        let window = current.entries[i].window;
        let end_bound = if window.end.is_finite() {
            window.end.min(duration)
        } else {
            duration
        };
        let mut lo = window.start;
        let mut hi = end_bound;
        while hi - lo > tolerance && oracle.remaining() {
            let mid = 0.5 * (lo + hi);
            let candidate = current.with_window(i, Window::new(mid, window.end));
            if oracle.fires(&candidate)? {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        if lo > window.start {
            current = current.with_window(i, Window::new(lo, window.end));
        }

        // Earliest deactivation that still fires. Invariant: `hi` fires.
        let window = current.entries[i].window;
        let mut hi = if window.end.is_finite() {
            window.end
        } else {
            let clamped = current.with_window(i, Window::new(window.start, duration));
            if oracle.remaining() && oracle.fires(&clamped)? {
                current = clamped;
                duration
            } else {
                continue;
            }
        };
        let mut lo = window.start;
        while hi - lo > tolerance && oracle.remaining() {
            let mid = 0.5 * (lo + hi);
            let candidate = current.with_window(i, Window::new(window.start, mid));
            if oracle.fires(&candidate)? {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        current = current.with_window(i, Window::new(window.start, hi));
    }
    Ok(current)
}

/// Phase 3: per entry, bisect the smallest magnitude scale factor in
/// `(0, 1]` that still fires. Invariant: `hi` fires.
fn shrink_magnitudes(
    oracle: &mut Oracle<'_>,
    mut current: AttackTimeline,
    tolerance: f64,
) -> Result<AttackTimeline, DebugError> {
    for i in 0..current.len() {
        if current.with_scaled(i, 0.5) == current {
            continue; // magnitude-free attack: scaling is a no-op
        }
        let mut lo = 0.0f64;
        let mut hi = 1.0f64;
        while hi - lo > tolerance && oracle.remaining() {
            let mid = 0.5 * (lo + hi);
            let candidate = current.with_scaled(i, mid);
            if oracle.fires(&candidate)? {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        if hi < 1.0 {
            current = current.with_scaled(i, hi);
        }
    }
    Ok(current)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adassure_attacks::campaign::AttackSpec;
    use adassure_attacks::AttackKind;
    use adassure_exp::grid::{AttackSet, Grid};
    use adassure_exp::rerun::{reproduces, run_repro};
    use adassure_sim::geometry::Vec2;

    /// A known-violating campaign cell: the first standard-attack cell
    /// (gnss_bias on the straight) with seed 1.
    fn violating_spec() -> DebugSpec {
        let grid = Grid::new().attacks(AttackSet::Standard).seeds([1]);
        DebugSpec::from_run_spec(&grid.cells()[0])
    }

    #[test]
    fn chunking_covers_all_indices() {
        for len in 1..8 {
            for n in 1..=len {
                let chunks = chunk_indices(len, n);
                assert_eq!(chunks.len(), n);
                let flat: Vec<usize> = chunks.into_iter().flatten().collect();
                assert_eq!(flat, (0..len).collect::<Vec<_>>(), "len {len} n {n}");
            }
        }
    }

    #[test]
    fn clean_run_has_nothing_to_minimize() {
        let mut spec = violating_spec();
        spec.timeline = AttackTimeline::new([]);
        assert!(matches!(
            minimize(&spec, &MinimizeConfig::default()),
            Err(DebugError::NoViolation)
        ));
    }

    #[test]
    fn minimizer_drops_a_decoy_entry_and_verifies() {
        // The real attack plus a decoy that never activates (window opens
        // after the run ends): the minimizer must shed the decoy.
        let mut spec = violating_spec();
        let decoy = AttackSpec::new(
            AttackKind::GnssBias {
                offset: Vec2::new(50.0, 50.0),
            },
            Window::from_start(1.0e6),
        );
        spec.timeline = AttackTimeline::new([spec.timeline.entries[0], decoy]);
        let config = MinimizeConfig {
            max_runs: 40,
            ..MinimizeConfig::default()
        };
        let minimized = minimize(&spec, &config).expect("minimization must succeed");
        assert_eq!(minimized.original_entries, 2);
        assert_eq!(
            minimized.case.timeline.len(),
            1,
            "decoy entry must be dropped"
        );
        assert_ne!(
            minimized.case.timeline.entries[0].kind, decoy.kind,
            "the surviving entry is the real attack"
        );
        assert!(reproduces(&minimized.case, &minimized.report));

        // The emitted case is self-contained: an independent re-execution
        // through the campaign plumbing fires the expected assertion at
        // the expected cycle.
        let (_, report) = run_repro(&minimized.case).unwrap();
        let v = report
            .violations_of(&minimized.case.expect.assertion)
            .next()
            .expect("repro case must still fire");
        assert_eq!(v.cycle, minimized.case.expect.cycle);
    }
}
