//! Parallel offline checking: fan a batch of recorded traces across the
//! deterministic campaign executor.
//!
//! Scenario-replay pipelines check thousands of traces against the same
//! catalog. The batch path lane-groups the traces first — up to
//! [`lane::LANES`] traces per group, converted to [`ColumnarTrace`] and
//! evaluated together by the struct-of-arrays engine — and distributes the
//! *groups* across [`par::map`] workers. Reports come back in input order
//! and are bit-identical to the serial scalar loop for any worker count
//! (the lane engine's differential property test pins this).

use adassure_core::{checker, lane, Assertion, CheckReport};
use adassure_trace::{ColumnarTrace, Trace};

use crate::par;

/// Checks every trace against `catalog`: traces are grouped into lanes and
/// the groups fan out across the campaign thread pool.
pub fn check_traces(catalog: &[Assertion], traces: &[Trace]) -> Vec<CheckReport> {
    let groups: Vec<&[Trace]> = traces.chunks(lane::LANES).collect();
    par::map(&groups, |group| {
        let columnar: Vec<ColumnarTrace> = group.iter().map(ColumnarTrace::from_trace).collect();
        lane::check_columnar(catalog, &columnar)
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Checks every trace against `catalog` with the scalar per-trace replay,
/// one trace per work item. Kept as the differential baseline for
/// [`check_traces`] (and for callers that already hold scalar traces they
/// are about to mutate).
pub fn check_traces_scalar(catalog: &[Assertion], traces: &[Trace]) -> Vec<CheckReport> {
    par::map(traces, |trace| checker::check(catalog, trace))
}

/// Checks a batch already in columnar form — the `.adt` corpus fast path:
/// no conversion, lane groups fan straight out across the pool.
pub fn check_columnar_traces(catalog: &[Assertion], traces: &[ColumnarTrace]) -> Vec<CheckReport> {
    let groups: Vec<&[ColumnarTrace]> = traces.chunks(lane::LANES).collect();
    par::map(&groups, |group| lane::check_columnar(catalog, group))
        .into_iter()
        .flatten()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use adassure_core::assertion::{Condition, Severity};
    use adassure_core::SignalExpr;

    fn bound(limit: f64) -> Assertion {
        Assertion::new(
            "A1",
            "bounded x",
            Severity::Critical,
            Condition::AtMost {
                expr: SignalExpr::signal("x").abs(),
                limit,
            },
        )
    }

    fn trace_with_peak(peak: f64) -> Trace {
        let mut t = Trace::new();
        for i in 0..50 {
            let time = f64::from(i) * 0.01;
            t.record("x", time, if i == 25 { peak } else { 0.0 });
        }
        t
    }

    #[test]
    fn parallel_batch_matches_serial_checks() {
        let catalog = [bound(1.0)];
        // 19 traces: two full lane groups plus a ragged tail.
        let traces: Vec<Trace> = (0..19)
            .map(|i| trace_with_peak(f64::from(i) * 0.4))
            .collect();
        let parallel = check_traces(&catalog, &traces);
        let serial: Vec<CheckReport> = traces.iter().map(|t| checker::check(&catalog, t)).collect();
        assert_eq!(parallel, serial);
        assert_eq!(check_traces_scalar(&catalog, &traces), serial);
        // Peaks above 1.0 violate the bound: i * 0.4 > 1.0 for i >= 3.
        assert_eq!(parallel.iter().filter(|r| !r.is_clean()).count(), 16);
    }

    #[test]
    fn columnar_batch_matches_trace_batch() {
        let catalog = [bound(1.0)];
        let traces: Vec<Trace> = (0..10).map(|i| trace_with_peak(f64::from(i))).collect();
        let columnar: Vec<ColumnarTrace> = traces.iter().map(ColumnarTrace::from_trace).collect();
        assert_eq!(
            check_columnar_traces(&catalog, &columnar),
            check_traces(&catalog, &traces)
        );
    }

    #[test]
    fn empty_batch_yields_no_reports() {
        assert!(check_traces(&[bound(1.0)], &[]).is_empty());
        assert!(check_columnar_traces(&[bound(1.0)], &[]).is_empty());
    }
}
