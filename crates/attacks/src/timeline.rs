//! Compound attack timelines: several [`AttackSpec`]s injected in one run.
//!
//! The minimal-repro minimizer works on timelines: a violating run's
//! attack is lifted into a (possibly multi-entry) [`AttackTimeline`],
//! entries are dropped / windows narrowed / magnitudes shrunk, and each
//! candidate is re-executed through a [`MultiInjector`]. A one-entry
//! timeline seeded with `seed` behaves exactly like
//! [`AttackSpec::injector`] with the same seed, so minimized repros slot
//! back into the single-attack campaign machinery unchanged.

use serde::{Deserialize, Serialize};

use adassure_sim::engine::SensorTap;
use adassure_sim::sensor::SensorFrame;
use adassure_sim::vehicle::VehicleState;

use crate::campaign::AttackSpec;
use crate::injector::InjectorState;
use crate::{AttackInjector, Window};

/// A sequence of attacks applied to the same run, each with its own
/// window. Order matters: injectors tap the frame in entry order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackTimeline {
    /// The attacks, in application order.
    pub entries: Vec<AttackSpec>,
}

impl AttackTimeline {
    /// A timeline over the given entries.
    pub fn new(entries: impl IntoIterator<Item = AttackSpec>) -> Self {
        AttackTimeline {
            entries: entries.into_iter().collect(),
        }
    }

    /// A one-entry timeline wrapping a single campaign attack.
    pub fn single(spec: AttackSpec) -> Self {
        AttackTimeline {
            entries: vec![spec],
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the timeline is empty (a clean run).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The timeline restricted to the entries at `indices` (in timeline
    /// order, duplicates ignored) — the ddmin subset operation.
    pub fn subset(&self, indices: &[usize]) -> AttackTimeline {
        let mut keep: Vec<usize> = indices.to_vec();
        keep.sort_unstable();
        keep.dedup();
        AttackTimeline {
            entries: keep
                .into_iter()
                .filter_map(|i| self.entries.get(i).copied())
                .collect(),
        }
    }

    /// A copy with entry `index`'s window replaced.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of bounds.
    pub fn with_window(&self, index: usize, window: Window) -> AttackTimeline {
        let mut next = self.clone();
        next.entries[index].window = window;
        next
    }

    /// A copy with entry `index`'s magnitude scaled by `factor` (see
    /// [`crate::campaign::scale_attack`]; magnitude-free attacks are
    /// unchanged).
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of bounds.
    pub fn with_scaled(&self, index: usize, factor: f64) -> AttackTimeline {
        let mut next = self.clone();
        next.entries[index].kind = crate::campaign::scale_attack(next.entries[index].kind, factor);
        next
    }

    /// Builds the compound injector for this timeline. Entry 0 is seeded
    /// with `seed` itself (matching [`AttackSpec::injector`]); later
    /// entries derive distinct seeds so stochastic attacks stay
    /// independent.
    pub fn injector(&self, seed: u64) -> MultiInjector {
        MultiInjector {
            injectors: self
                .entries
                .iter()
                .enumerate()
                .map(|(i, spec)| {
                    spec.injector(seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                })
                .collect(),
        }
    }
}

/// A [`SensorTap`] applying every entry of an [`AttackTimeline`] in order.
#[derive(Debug, Clone)]
pub struct MultiInjector {
    injectors: Vec<AttackInjector>,
}

impl MultiInjector {
    /// The per-entry injectors, in application order.
    pub fn injectors(&self) -> &[AttackInjector] {
        &self.injectors
    }

    /// Captures every injector's mutable state for mid-run checkpoints.
    pub fn state(&self) -> Vec<InjectorState> {
        self.injectors.iter().map(AttackInjector::state).collect()
    }

    /// Reinstates states captured with [`MultiInjector::state`].
    ///
    /// # Errors
    ///
    /// Returns a message when the entry count does not match.
    pub fn restore(&mut self, states: &[InjectorState]) -> Result<(), String> {
        if states.len() != self.injectors.len() {
            return Err(format!(
                "injector snapshot has {} entries, timeline has {}",
                states.len(),
                self.injectors.len()
            ));
        }
        for (inj, s) in self.injectors.iter_mut().zip(states) {
            inj.restore(s);
        }
        Ok(())
    }
}

impl SensorTap for MultiInjector {
    fn tap(&mut self, frame: &mut SensorFrame, truth: &VehicleState) {
        for inj in &mut self.injectors {
            inj.tap(frame, truth);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AttackKind;
    use adassure_sim::geometry::Vec2;

    fn frame(t: f64, gnss: Option<Vec2>) -> SensorFrame {
        SensorFrame {
            time: t,
            gnss,
            wheel_speed: 5.0,
            imu_yaw_rate: 0.1,
            imu_accel: 0.0,
            compass: 0.2,
        }
    }

    fn truth() -> VehicleState {
        VehicleState::at([0.0, 0.0], 0.0)
    }

    #[test]
    fn single_entry_timeline_matches_plain_injector() {
        let spec = AttackSpec::new(AttackKind::GnssNoise { std_dev: 2.0 }, Window::always());
        let mut single = spec.injector(42);
        let mut multi = AttackTimeline::single(spec).injector(42);
        for i in 0..50 {
            let t = f64::from(i) * 0.1;
            let mut a = frame(t, Some(Vec2::ZERO));
            let mut b = a;
            single.tap(&mut a, &truth());
            multi.tap(&mut b, &truth());
            assert_eq!(a, b, "cycle {i} diverged");
        }
    }

    #[test]
    fn entries_apply_in_order() {
        let timeline = AttackTimeline::new([
            AttackSpec::new(
                AttackKind::GnssBias {
                    offset: Vec2::new(10.0, 0.0),
                },
                Window::always(),
            ),
            AttackSpec::new(AttackKind::GnssDropout, Window::always()),
        ]);
        let mut inj = timeline.injector(0);
        let mut f = frame(0.0, Some(Vec2::ZERO));
        inj.tap(&mut f, &truth());
        assert_eq!(f.gnss, None, "dropout wins when applied after bias");
    }

    #[test]
    fn subset_and_window_and_scale_edits() {
        let timeline = AttackTimeline::new([
            AttackSpec::new(
                AttackKind::ImuYawBias { bias: 0.08 },
                Window::new(5.0, 20.0),
            ),
            AttackSpec::new(AttackKind::GnssFreeze, Window::from_start(10.0)),
        ]);
        let only_second = timeline.subset(&[1]);
        assert_eq!(only_second.len(), 1);
        assert_eq!(only_second.entries[0].kind, AttackKind::GnssFreeze);

        let narrowed = timeline.with_window(0, Window::new(8.0, 9.0));
        assert_eq!(narrowed.entries[0].window, Window::new(8.0, 9.0));
        assert_eq!(narrowed.entries[1].window, Window::from_start(10.0));

        let softened = timeline.with_scaled(0, 0.5);
        assert_eq!(
            softened.entries[0].kind,
            AttackKind::ImuYawBias { bias: 0.04 }
        );
    }

    #[test]
    fn multi_injector_state_round_trips() {
        let timeline = AttackTimeline::new([
            AttackSpec::new(AttackKind::GnssNoise { std_dev: 1.0 }, Window::always()),
            AttackSpec::new(AttackKind::GnssFreeze, Window::always()),
        ]);
        let mut a = timeline.injector(7);
        // Advance a few cycles, snapshot, advance both copies identically.
        for i in 0..10 {
            let mut f = frame(f64::from(i) * 0.1, Some(Vec2::new(1.0, 1.0)));
            a.tap(&mut f, &truth());
        }
        let snap = a.state();
        let mut b = timeline.injector(7);
        b.restore(&snap).unwrap();
        for i in 10..30 {
            let mut fa = frame(f64::from(i) * 0.1, Some(Vec2::new(2.0, 2.0)));
            let mut fb = fa;
            a.tap(&mut fa, &truth());
            b.tap(&mut fb, &truth());
            assert_eq!(fa, fb, "cycle {i} diverged after restore");
        }
        assert!(b.restore(&snap[..1]).is_err());
    }

    #[test]
    fn timeline_serializes_round_trip() {
        let timeline = AttackTimeline::new([AttackSpec::new(
            AttackKind::GnssDrift {
                rate: Vec2::new(0.4, 0.3),
            },
            Window::new(12.0, 30.0),
        )]);
        let json = serde_json::to_string(&timeline).unwrap();
        let back: AttackTimeline = serde_json::from_str(&json).unwrap();
        assert_eq!(back, timeline);
    }
}
