//! Property-based tests of the assertion engine's invariants.

use adassure_core::assertion::{Assertion, Condition, Severity, Temporal};
use adassure_core::catalog::{CatalogConfig, Thresholds};
use adassure_core::expr::Env;
use adassure_core::mining::{mine_bounds, MiningConfig};
use adassure_core::{checker, OnlineChecker, SignalExpr};
use adassure_trace::{SignalId, Trace};
use proptest::prelude::*;

/// Random expression trees for the spec-language round-trip property.
fn arb_expr() -> impl Strategy<Value = SignalExpr> {
    let leaf = prop_oneof![
        "[a-z][a-z0-9_]{0,8}".prop_map(SignalExpr::signal),
        (-1e3f64..1e3).prop_map(SignalExpr::constant),
        "[a-z][a-z0-9_]{0,8}".prop_map(SignalExpr::derivative),
        "[a-z][a-z0-9_]{0,8}".prop_map(SignalExpr::angular_derivative),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            inner.clone().prop_map(SignalExpr::abs),
            inner.clone().prop_map(SignalExpr::neg),
            inner.clone().prop_map(SignalExpr::tan),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.add(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.sub(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.mul(b)),
            (inner.clone(), inner).prop_map(|(a, b)| a.angle_diff(b)),
        ]
    })
}

fn bounded_assertion(limit: f64, temporal: Temporal) -> Assertion {
    Assertion::new(
        "P1",
        "property assertion",
        Severity::Warning,
        Condition::AtMost {
            expr: SignalExpr::signal("x").abs(),
            limit,
        },
    )
    .with_temporal(temporal)
}

proptest! {
    #[test]
    fn expressions_obey_algebraic_identities(
        a in -1e6f64..1e6,
        b in -1e6f64..1e6,
    ) {
        let mut env = Env::new();
        env.set_time(0.0);
        env.update(&SignalId::new("a"), a);
        env.update(&SignalId::new("b"), b);

        let abs = SignalExpr::signal("a").abs().eval(&env).unwrap();
        prop_assert!(abs >= 0.0);
        let self_diff = SignalExpr::signal("a")
            .sub(SignalExpr::signal("a"))
            .eval(&env)
            .unwrap();
        prop_assert_eq!(self_diff, 0.0);
        let sum = SignalExpr::signal("a").add(SignalExpr::signal("b")).eval(&env).unwrap();
        prop_assert_eq!(sum, a + b);
        let neg = SignalExpr::signal("a").neg().eval(&env).unwrap();
        prop_assert_eq!(neg, -a);
        let angdiff = SignalExpr::signal("a")
            .angle_diff(SignalExpr::signal("b"))
            .eval(&env)
            .unwrap();
        prop_assert!(angdiff > -std::f64::consts::PI - 1e-9);
        prop_assert!(angdiff <= std::f64::consts::PI + 1e-9);
    }

    #[test]
    fn env_derivative_matches_last_step(
        v0 in -1e3f64..1e3,
        v1 in -1e3f64..1e3,
        dt in 0.001f64..1.0,
    ) {
        let id = SignalId::new("x");
        let mut env = Env::new();
        env.set_time(0.0);
        env.update(&id, v0);
        env.set_time(dt);
        env.update(&id, v1);
        let d = env.derivative(&id).unwrap();
        prop_assert!((d - (v1 - v0) / dt).abs() < 1e-9 * d.abs().max(1.0));
    }

    #[test]
    fn violations_are_well_formed_for_random_signals(
        values in proptest::collection::vec(-10.0f64..10.0, 1..200),
        limit in 0.1f64..5.0,
        sustain in 0.0f64..0.2,
    ) {
        let mut c = OnlineChecker::new([bounded_assertion(limit, Temporal::Sustained(sustain))]);
        for (i, v) in values.iter().enumerate() {
            c.begin_cycle(i as f64 * 0.01);
            c.update("x", *v);
            c.end_cycle();
        }
        for v in c.violations() {
            prop_assert!(v.onset <= v.detected + 1e-12);
            prop_assert!(v.detected - v.onset + 1e-9 >= sustain);
            prop_assert!(v.value.abs() > limit);
        }
    }

    #[test]
    fn signals_below_threshold_never_fire(
        values in proptest::collection::vec(-1.0f64..1.0, 1..100),
    ) {
        let mut c = OnlineChecker::new([bounded_assertion(1.5, Temporal::Immediate)]);
        for (i, v) in values.iter().enumerate() {
            c.begin_cycle(i as f64 * 0.01);
            c.update("x", *v);
            prop_assert_eq!(c.end_cycle(), 0);
        }
    }

    #[test]
    fn offline_equals_online_for_random_traces(
        values in proptest::collection::vec(-5.0f64..5.0, 1..150),
        limit in 0.5f64..3.0,
    ) {
        let assertion = bounded_assertion(limit, Temporal::Sustained(0.05));
        let mut trace = Trace::new();
        for (i, v) in values.iter().enumerate() {
            trace.record("x", i as f64 * 0.01, *v);
        }
        let offline = checker::check(std::slice::from_ref(&assertion), &trace);

        let mut online = OnlineChecker::new([assertion]);
        for (i, v) in values.iter().enumerate() {
            online.begin_cycle(i as f64 * 0.01);
            online.update("x", *v);
            online.end_cycle();
        }
        let online = online.finish(trace.span().unwrap().1);
        prop_assert_eq!(offline, online);
    }

    #[test]
    fn mined_thresholds_cover_their_training_data(
        values in proptest::collection::vec(-3.0f64..3.0, 20..200),
        margin in 1.05f64..2.0,
    ) {
        // Feed an xtrack-like signal past the behavioural grace period.
        let mut trace = Trace::new();
        for (i, v) in values.iter().enumerate() {
            trace.record("xtrack_err", 10.0 + i as f64 * 0.01, *v);
        }
        let config = CatalogConfig {
            thresholds: Thresholds::default(),
            ..CatalogConfig::default()
        };
        let mining = MiningConfig { margin, floor: 1e-6 };
        let bounds = mine_bounds(&config, &[&trace], &mining);
        let a1 = &bounds["A1"];
        let observed_max = values.iter().map(|v| v.abs()).fold(0.0f64, f64::max);
        prop_assert!((a1.observed - observed_max).abs() < 1e-9);
        prop_assert!(a1.mined + 1e-12 >= a1.observed, "mined below observation");
    }

    #[test]
    fn spec_language_round_trips_arbitrary_expressions(expr in arb_expr()) {
        use adassure_core::spec::parse_expr;
        let text = expr.to_string();
        let parsed = parse_expr(&text)
            .unwrap_or_else(|e| panic!("failed to parse own Display `{text}`: {e}"));
        // Structural equality, except constants go through decimal printing;
        // compare via Display instead (stable fixed point).
        prop_assert_eq!(parsed.to_string(), text);
    }

    #[test]
    fn threshold_scaling_is_linear(
        limit in 0.1f64..100.0,
        factor in 0.1f64..10.0,
    ) {
        let a = bounded_assertion(limit, Temporal::Immediate);
        let scaled = a.with_scaled_threshold(factor);
        prop_assert!((scaled.condition.threshold() - limit * factor).abs() < 1e-9 * limit.max(1.0));
    }
}
