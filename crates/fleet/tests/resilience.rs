//! End-to-end crash-resilience tests: a producer surviving seeded
//! connection cuts, a server restart recovering from a checkpoint with
//! producers resuming their sessions, and the typed connection cap.

use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use adassure_core::{Assertion, Condition, Severity, SignalExpr};
use adassure_fleet::{
    restore_server, ChaosConfig, ChaosTransport, Fleet, FleetConfig, IngestConfig, IngestListener,
    IngestProducer, IngestServer, NackReason, ProducerConfig, ProducerError, ReconnectPolicy,
    ResilientProducer, SampleBatch, StreamId, Transport,
};

fn catalog() -> Vec<Assertion> {
    vec![
        Assertion::new(
            "R1",
            "bounded cross-track error",
            Severity::Critical,
            Condition::AtMost {
                expr: SignalExpr::signal("xtrack").abs(),
                limit: 1.0,
            },
        ),
        Assertion::new(
            "R2",
            "gnss fix is fresh",
            Severity::Critical,
            Condition::Fresh {
                signal: "gnss_x".into(),
                max_age: 0.2,
            },
        ),
    ]
}

fn fleet_config() -> FleetConfig {
    FleetConfig {
        shards: 2,
        ..FleetConfig::default()
    }
}

/// Deterministic per-cycle batch for one stream: periodic excursions and
/// periodic gnss dropouts, so reports have real violations to compare.
fn cycle_batch(stream: StreamId, stream_idx: u64, cycle: u64) -> SampleBatch {
    let t = 0.05 * (cycle + 1) as f64;
    let mut batch = SampleBatch::new(stream);
    let xtrack = if (cycle + stream_idx).is_multiple_of(17) {
        2.0
    } else {
        0.3
    };
    batch.push(t, "xtrack", xtrack);
    if !(cycle + stream_idx).is_multiple_of(11) {
        batch.push(t, "gnss_x", 1.0);
    }
    batch
}

/// Oracle: the same traffic applied in-process, no network, no faults.
fn oracle_reports(streams: usize, cycles: u64) -> Vec<String> {
    let mut fleet = Fleet::new(catalog(), fleet_config());
    let ids: Vec<StreamId> = (0..streams).map(|_| fleet.open_stream()).collect();
    for cycle in 0..cycles {
        for (idx, &id) in ids.iter().enumerate() {
            fleet
                .submit(cycle_batch(id, idx as u64, cycle))
                .expect("queue sized for test");
            fleet.poll();
        }
    }
    ids.iter()
        .map(|&id| {
            let (report, _) = fleet.close_stream(id).expect("open stream closes");
            serde_json::to_string(&report).expect("report serializes")
        })
        .collect()
}

fn unique_tmp(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("adassure-resilience-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir
}

#[test]
fn producer_survives_seeded_connection_cuts() {
    const STREAMS: usize = 2;
    const CYCLES: u64 = 300;

    let fleet = Arc::new(Mutex::new(Fleet::new(catalog(), fleet_config())));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let server = IngestServer::spawn(
        Arc::clone(&fleet),
        IngestListener::Tcp(listener),
        IngestConfig::default(),
    )
    .expect("spawn");
    let addr = server.local_addr().expect("tcp addr");

    let chaos = ChaosConfig {
        write_cut: 0.03,
        read_cut: 0.03,
        delay: 0.0,
        delay_us: 0,
    };
    let mut dial = 0u64;
    let connect = Box::new(
        move |_attempt: u32| -> std::io::Result<Box<dyn Transport>> {
            dial += 1;
            let conn = TcpStream::connect(addr)?;
            conn.set_nodelay(true)?;
            // A distinct seed per dial keeps the fault pattern deterministic
            // but different on every reconnect.
            Ok(Box::new(ChaosTransport::new(conn, chaos, 0xC0FFEE ^ dial)))
        },
    );
    let mut producer = ResilientProducer::connect(
        connect,
        ProducerConfig {
            window: 16,
            retain_for_replay: 128,
            ..ProducerConfig::default()
        },
        ReconnectPolicy {
            base_delay: std::time::Duration::from_millis(1),
            max_delay: std::time::Duration::from_millis(20),
            max_attempts: 16,
            seed: 7,
        },
    )
    .expect("initial connect");

    let ids: Vec<StreamId> = (0..STREAMS)
        .map(|_| producer.open_stream().expect("open"))
        .collect();
    for cycle in 0..CYCLES {
        for (idx, &id) in ids.iter().enumerate() {
            producer
                .submit(&cycle_batch(id, idx as u64, cycle))
                .expect("submit survives cuts");
        }
    }
    producer.flush().expect("flush survives cuts");
    let reports: Vec<String> = ids
        .iter()
        .map(|&id| {
            let json = producer.close_stream(id).expect("close survives cuts");
            String::from_utf8(json).expect("utf8 report")
        })
        .collect();

    let stats = producer.stats();
    assert!(
        stats.reconnects > 0,
        "chaos at 3% per op over {CYCLES} cycles must cut at least once"
    );
    assert_eq!(reports, oracle_reports(STREAMS, CYCLES));

    let server_stats = server.shutdown();
    assert_eq!(server_stats.resumes, stats.reconnects);
    assert_eq!(
        server_stats.batches,
        STREAMS as u64 * CYCLES,
        "exactly once"
    );
}

#[test]
fn server_restart_restores_sessions_from_checkpoint() {
    const PRE: u64 = 40; // cycles before the checkpoint
    const LOST: u64 = 10; // applied after the checkpoint, lost in the crash
    const POST: u64 = 30; // cycles after the restart

    let dir = unique_tmp("restart");
    let ckpt = dir.join("fleet.adckpt");

    let fleet = Arc::new(Mutex::new(Fleet::new(catalog(), fleet_config())));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let server = IngestServer::spawn(
        Arc::clone(&fleet),
        IngestListener::Tcp(listener),
        IngestConfig::default(),
    )
    .expect("spawn");

    let addr = Arc::new(Mutex::new(server.local_addr().expect("tcp addr")));
    let connect = {
        let addr = Arc::clone(&addr);
        Box::new(
            move |_attempt: u32| -> std::io::Result<Box<dyn Transport>> {
                let conn = TcpStream::connect(*addr.lock().expect("addr lock"))?;
                conn.set_nodelay(true)?;
                Ok(Box::new(conn) as Box<dyn Transport>)
            },
        )
    };
    let mut producer = ResilientProducer::connect(
        connect,
        ProducerConfig {
            window: 16,
            retain_for_replay: 256,
            ..ProducerConfig::default()
        },
        ReconnectPolicy {
            base_delay: std::time::Duration::from_millis(1),
            max_delay: std::time::Duration::from_millis(50),
            ..ReconnectPolicy::default()
        },
    )
    .expect("connect");

    let id = producer.open_stream().expect("open");
    for cycle in 0..PRE {
        producer.submit(&cycle_batch(id, 0, cycle)).expect("submit");
    }
    producer.flush().expect("flush");
    server.checkpoint_to(&ckpt).expect("checkpoint");

    // These cycles are applied and acknowledged, then lost in the crash;
    // the producer's replay retention brings them back.
    for cycle in PRE..PRE + LOST {
        producer.submit(&cycle_batch(id, 0, cycle)).expect("submit");
    }
    producer.flush().expect("flush");

    server.kill();
    drop(fleet);

    let bytes = std::fs::read(&ckpt).expect("checkpoint file");
    let (restored, seed) =
        restore_server(catalog(), fleet_config(), &bytes).expect("checkpoint restores");
    assert_eq!(seed.len(), 1, "the producer's session is in the image");
    let listener = TcpListener::bind("127.0.0.1:0").expect("rebind");
    let server = IngestServer::spawn_restored(
        Arc::new(Mutex::new(restored)),
        IngestListener::Tcp(listener),
        IngestConfig::default(),
        seed,
    )
    .expect("respawn");
    *addr.lock().expect("addr lock") = server.local_addr().expect("tcp addr");

    // The next operation hits the dead socket, reconnects to the new
    // address and resumes; the LOST cycles replay from retention.
    for cycle in PRE + LOST..PRE + LOST + POST {
        producer.submit(&cycle_batch(id, 0, cycle)).expect("submit");
    }
    let report =
        String::from_utf8(producer.close_stream(id).expect("close after restart")).expect("utf8");

    assert_eq!(vec![report], oracle_reports(1, PRE + LOST + POST));
    let stats = producer.stats();
    assert_eq!(stats.reconnects, 1);
    assert!(
        stats.replayed_frames >= LOST,
        "the post-checkpoint frames were replayed ({} < {LOST})",
        stats.replayed_frames
    );
    let server_stats = server.shutdown();
    assert_eq!(server_stats.resumes, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn connection_limit_is_a_typed_nack() {
    let fleet = Arc::new(Mutex::new(Fleet::new(catalog(), fleet_config())));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let server = IngestServer::spawn(
        Arc::clone(&fleet),
        IngestListener::Tcp(listener),
        IngestConfig {
            max_connections: 1,
            ..IngestConfig::default()
        },
    )
    .expect("spawn");
    let addr = server.local_addr().expect("tcp addr");

    let first = adassure_fleet::ingest::connect_tcp(addr, ProducerConfig::default())
        .expect("first connection is under the cap");

    // The second connection is refused with the typed reason.
    let conn = TcpStream::connect(addr).expect("tcp connect");
    match IngestProducer::connect(conn, ProducerConfig::default()) {
        Err(ProducerError::Rejected {
            seq: 0,
            reason: NackReason::ConnectionLimit,
        }) => {}
        other => panic!("expected a ConnectionLimit nack, got {other:?}"),
    }

    // Capacity frees up once the first connection ends.
    drop(first);
    let mut retried = None;
    for _ in 0..100 {
        std::thread::sleep(std::time::Duration::from_millis(10));
        let conn = TcpStream::connect(addr).expect("tcp connect");
        match IngestProducer::connect(conn, ProducerConfig::default()) {
            Ok(p) => {
                retried = Some(p);
                break;
            }
            Err(ProducerError::Rejected {
                reason: NackReason::ConnectionLimit,
                ..
            }) => continue,
            Err(other) => panic!("unexpected failure: {other}"),
        }
    }
    assert!(retried.is_some(), "slot frees after the first conn closes");

    let stats = server.shutdown();
    assert!(stats.rejected_connections >= 1);
    assert_eq!(stats.resumes, 0);
}
