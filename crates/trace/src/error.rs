use std::fmt;

/// Errors produced by trace recording and querying.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TraceError {
    /// A sample was pushed with a timestamp not strictly greater than the
    /// previous sample of the same series.
    NonMonotonicTime {
        /// Signal whose series rejected the sample.
        signal: String,
        /// Timestamp of the last accepted sample.
        last: f64,
        /// Timestamp of the rejected sample.
        attempted: f64,
    },
    /// A non-finite (NaN or infinite) timestamp or value was pushed.
    NonFiniteSample {
        /// Signal whose series rejected the sample.
        signal: String,
        /// Timestamp of the rejected sample.
        time: f64,
        /// Value of the rejected sample.
        value: f64,
    },
    /// A query referenced a signal that the trace does not contain.
    UnknownSignal(String),
    /// A query time fell outside the recorded span of a series.
    OutOfRange {
        /// Signal that was queried.
        signal: String,
        /// Query timestamp.
        time: f64,
    },
    /// The series of a trace have mismatched lengths or time grids where an
    /// aligned view was required (e.g. CSV export).
    Misaligned {
        /// First signal of the mismatched pair.
        left: String,
        /// Second signal of the mismatched pair.
        right: String,
    },
    /// A CSV document could not be parsed.
    ParseCsv {
        /// 1-based line number of the offending row.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// A CSV row parsed structurally but its content violated a series
    /// invariant (backwards timestamp, infinite value), so the document
    /// cannot be ingested as a trace.
    Malformed {
        /// 1-based line number of the offending row.
        line: usize,
        /// The underlying invariant violation, rendered.
        message: String,
    },
    /// An `.adt` binary document was corrupt, truncated or violated a
    /// format invariant. Decoding never panics on bad input.
    BadBinary {
        /// Byte offset where the problem was detected.
        offset: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// A filesystem operation on a trace file failed.
    Io(String),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::NonMonotonicTime {
                signal,
                last,
                attempted,
            } => write!(
                f,
                "non-monotonic timestamp {attempted} after {last} on signal `{signal}`"
            ),
            TraceError::NonFiniteSample {
                signal,
                time,
                value,
            } => write!(
                f,
                "non-finite sample (t={time}, v={value}) on signal `{signal}`"
            ),
            TraceError::UnknownSignal(name) => write!(f, "unknown signal `{name}`"),
            TraceError::OutOfRange { signal, time } => {
                write!(f, "time {time} outside recorded span of signal `{signal}`")
            }
            TraceError::Misaligned { left, right } => {
                write!(f, "series `{left}` and `{right}` are not time-aligned")
            }
            TraceError::ParseCsv { line, message } => {
                write!(f, "csv parse error at line {line}: {message}")
            }
            TraceError::Malformed { line, message } => {
                write!(f, "malformed csv row at line {line}: {message}")
            }
            TraceError::BadBinary { offset, message } => {
                write!(f, "bad .adt binary at byte {offset}: {message}")
            }
            TraceError::Io(message) => write!(f, "trace io error: {message}"),
        }
    }
}

impl std::error::Error for TraceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let err = TraceError::UnknownSignal("speed".into());
        assert_eq!(err.to_string(), "unknown signal `speed`");
        let err = TraceError::NonMonotonicTime {
            signal: "x".into(),
            last: 1.0,
            attempted: 0.5,
        };
        assert!(err.to_string().contains("non-monotonic"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TraceError>();
    }
}
