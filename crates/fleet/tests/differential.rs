//! The fleet's central guarantee, pinned: sharded, batched, parallel
//! checking produces **bit-identical** verdicts, violations and metrics
//! to running every stream on its own serial [`OnlineChecker`], for any
//! shard count, worker count and queue capacity — including streams with
//! telemetry-fault injectors and guardians attached, and in the presence
//! of backpressure (saturated queues force retries, which must not change
//! a single byte of output).

use std::sync::Arc;

use adassure_attacks::{ChannelFaultInjector, FaultKind, FaultSpec, Window};
use adassure_core::{
    Assertion, CheckReport, CheckerPlan, Condition, HealthConfig, OnlineChecker, Severity,
    SignalExpr, Temporal,
};
use adassure_exp::Runtime;
use adassure_fleet::{
    Fleet, FleetConfig, GuardConfig, SampleBatch, StreamConfig, StreamGuard, SubmitError,
};
use adassure_obs::MetricsSnapshot;

fn catalog() -> Vec<Assertion> {
    vec![
        Assertion::new(
            "F1",
            "bounded cross-track error",
            Severity::Critical,
            Condition::AtMost {
                expr: SignalExpr::signal("xtrack").abs(),
                limit: 1.0,
            },
        ),
        Assertion::new(
            "F2",
            "speed stays positive",
            Severity::Warning,
            Condition::AtLeast {
                expr: SignalExpr::signal("speed"),
                limit: 0.0,
            },
        )
        .with_temporal(Temporal::Sustained(0.15)),
        Assertion::new(
            "F3",
            "gnss fix is fresh",
            Severity::Critical,
            Condition::Fresh {
                signal: "gnss_x".into(),
                max_age: 0.3,
            },
        ),
    ]
}

fn health() -> HealthConfig {
    HealthConfig {
        stale_after: 0.5,
        quarantine_after: 8,
        recover_after: 3,
    }
}

/// One cycle of one stream: a timestamp and its channel samples.
struct Cycle {
    t: f64,
    samples: Vec<(&'static str, f64)>,
}

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    fn uniform(&mut self) -> f64 {
        (self.next() % 1_000_000) as f64 / 1_000_000.0
    }
}

/// A deterministic synthetic telemetry stream: mostly clean driving with
/// seeded excursions, NaN bursts and gnss dropouts so every verdict,
/// health state and temporal operator in the catalog gets exercised.
fn stream_cycles(seed: u64, cycles: usize) -> Vec<Cycle> {
    let mut rng = Lcg(seed.wrapping_mul(2654435761).wrapping_add(1));
    let mut out = Vec::with_capacity(cycles);
    for k in 0..cycles {
        let t = 0.05 * (k + 1) as f64;
        let mut samples = Vec::new();
        let roll = rng.uniform();
        let xtrack = if roll < 0.15 {
            1.0 + 3.0 * rng.uniform() // excursion
        } else if roll < 0.2 {
            f64::NAN // poisoned sample
        } else {
            rng.uniform() * 0.8
        };
        samples.push(("xtrack", xtrack));
        if rng.uniform() > 0.1 {
            let speed = if rng.uniform() < 0.1 {
                -rng.uniform()
            } else {
                5.0 + rng.uniform()
            };
            samples.push(("speed", speed));
        }
        if rng.uniform() > 0.3 {
            samples.push(("gnss_x", rng.uniform() * 100.0));
        }
        out.push(Cycle { t, samples });
    }
    out
}

/// Per-stream options, varied by index: every third stream gets a fault
/// injector, every other stream a guardian. Both sides of the
/// differential construct these identically.
fn injector_for(index: usize) -> Option<ChannelFaultInjector> {
    match index % 3 {
        0 => None,
        1 => Some(
            FaultSpec::new(FaultKind::Dropout, 0.2, Window::new(0.5, 4.0))
                .injector(900 + index as u64),
        ),
        _ => Some(
            FaultSpec::new(FaultKind::NanBurst, 0.1, Window::new(0.2, f64::INFINITY))
                .injector(77 + index as u64),
        ),
    }
}

fn guard_for(index: usize) -> Option<StreamGuard> {
    index.is_multiple_of(2).then(|| {
        StreamGuard::new(GuardConfig {
            confirm_cycles: 2,
            recover_cycles: 4,
        })
    })
}

const STREAMS: usize = 24;

fn fleet_streams() -> Vec<Vec<Cycle>> {
    (0..STREAMS)
        .map(|i| stream_cycles(i as u64, 60 + (i % 7) * 10))
        .collect()
}

/// The serial oracle: one checker per stream, cycles applied in order,
/// snapshots merged in close order (= open order here) — exactly the
/// merge order `Fleet::metrics` uses once every stream is closed.
fn run_serial(plan: &Arc<CheckerPlan>, streams: &[Vec<Cycle>]) -> (Vec<CheckReport>, String) {
    let mut reports = Vec::new();
    let mut merged = MetricsSnapshot::empty();
    for (index, cycles) in streams.iter().enumerate() {
        let mut checker = OnlineChecker::from_plan(Arc::clone(plan), health());
        let mut injector = injector_for(index);
        let mut guard = guard_for(index);
        let mut last_t = 0.0;
        for cycle in cycles {
            checker
                .begin_cycle(cycle.t)
                .expect("monotone by construction");
            for &(channel, value) in &cycle.samples {
                match &mut injector {
                    Some(inj) => {
                        for &v in inj.apply(channel, cycle.t, value).as_slice() {
                            checker.update(channel, v);
                        }
                    }
                    None => checker.update(channel, value),
                }
            }
            checker.end_cycle();
            last_t = cycle.t;
            if let Some(guard) = &mut guard {
                guard.observe(checker.open_episode_onset(Severity::Critical).is_some());
            }
        }
        let (report, mut snapshot, _) = checker.finish_observed(last_t);
        if let Some(guard) = &guard {
            snapshot.guard_transitions = guard.transitions();
        }
        merged.merge(&snapshot);
        reports.push(report);
    }
    let summary = serde_json::to_string(&merged.summary()).expect("summary serializes");
    (reports, summary)
}

/// The system under test: the same streams through a fleet with the given
/// layout. Batches are cut at seeded cycle boundaries and submitted
/// round-robin across streams; saturation is handled by polling and
/// retrying, so backpressure changes scheduling but never content.
fn run_fleet(
    plan: &Arc<CheckerPlan>,
    streams: &[Vec<Cycle>],
    shards: usize,
    workers: usize,
    queue_capacity: usize,
) -> (Vec<CheckReport>, String, u64) {
    let mut fleet = Fleet::with_plan(
        Arc::clone(plan),
        FleetConfig {
            shards,
            queue_capacity,
            health: health(),
            runtime: Runtime::with_workers(workers),
        },
    );
    let ids: Vec<_> = (0..streams.len())
        .map(|index| {
            fleet.open_stream_with(StreamConfig {
                injector: injector_for(index),
                guard: guard_for(index),
            })
        })
        .collect();

    // Cut each stream into batches of 1..=4 cycles, seeded per stream.
    let mut batches: Vec<Vec<SampleBatch>> = Vec::new();
    for (index, cycles) in streams.iter().enumerate() {
        let mut cuts = Lcg(4242 + index as u64);
        let mut per_stream = Vec::new();
        let mut batch = SampleBatch::new(ids[index]);
        let mut left = 1 + (cuts.next() % 4) as usize;
        for cycle in cycles {
            for &(channel, value) in &cycle.samples {
                batch.push(cycle.t, channel, value);
            }
            left -= 1;
            if left == 0 {
                per_stream.push(std::mem::replace(&mut batch, SampleBatch::new(ids[index])));
                left = 1 + (cuts.next() % 4) as usize;
            }
        }
        if !batch.samples.is_empty() {
            per_stream.push(batch);
        }
        batches.push(per_stream);
    }

    // Interleave submission round-robin across streams (per-stream order
    // preserved — that is the only order that matters).
    let mut saturated = 0u64;
    let mut cursors = vec![0usize; batches.len()];
    loop {
        let mut any = false;
        for (index, cursor) in cursors.iter_mut().enumerate() {
            if *cursor >= batches[index].len() {
                continue;
            }
            any = true;
            let mut batch = batches[index][*cursor].clone();
            loop {
                match fleet.submit(batch) {
                    Ok(()) => break,
                    Err(SubmitError::Saturated { batch: b, .. }) => {
                        saturated += 1;
                        fleet.poll();
                        batch = b;
                    }
                    Err(other) => panic!("unexpected submit error: {other}"),
                }
            }
            *cursor += 1;
        }
        if !any {
            break;
        }
    }
    fleet.poll();

    let reports = ids
        .iter()
        .map(|&id| fleet.close_stream(id).expect("close").0)
        .collect();
    let summary = serde_json::to_string(&fleet.metrics().summary()).expect("summary serializes");
    (reports, summary, saturated)
}

#[test]
fn sharded_fleet_matches_serial_for_any_layout() {
    let plan = Arc::new(CheckerPlan::compile(catalog()));
    let streams = fleet_streams();
    let (serial_reports, serial_summary) = run_serial(&plan, &streams);

    // The serial oracle is not vacuous: the synthetic streams really
    // exercise violations and inconclusive health.
    assert!(serial_reports.iter().any(|r| !r.violations.is_empty()));
    assert!(serial_reports.iter().any(|r| r.inconclusive_cycles > 0));

    for (shards, workers, queue) in [(1, 1, 1024), (2, 4, 1024), (7, 2, 1024), (24, 3, 1024)] {
        let (reports, summary, _) = run_fleet(&plan, &streams, shards, workers, queue);
        for (index, (fleet_report, serial_report)) in
            reports.iter().zip(&serial_reports).enumerate()
        {
            assert_eq!(
                fleet_report, serial_report,
                "stream {index} diverged at shards={shards} workers={workers}"
            );
        }
        assert_eq!(
            summary, serial_summary,
            "merged metrics diverged at shards={shards} workers={workers}"
        );
    }
}

#[test]
fn backpressure_changes_scheduling_but_not_output() {
    let plan = Arc::new(CheckerPlan::compile(catalog()));
    let streams = fleet_streams();
    let (serial_reports, serial_summary) = run_serial(&plan, &streams);

    // A queue of 2 batches across 3 shards forces constant saturation.
    let (reports, summary, saturated) = run_fleet(&plan, &streams, 3, 2, 2);
    assert!(saturated > 0, "the tiny queue must actually saturate");
    assert_eq!(reports, serial_reports);
    assert_eq!(summary, serial_summary);
}
