//! Check reports: the consumable result of a monitoring run.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

use crate::assertion::AssertionId;
use crate::violation::Violation;

/// The originating run of a report: everything a debugger or minimizer
/// needs to re-execute the exact deterministic run that produced it.
///
/// The checker itself cannot know these — they describe the *producer*
/// of the samples — so the campaign engine stamps them onto the report
/// after checking. All fields are plain names resolvable by
/// `adassure-exp` / `adassure-scenarios`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunContext {
    /// Simulation seed of the run.
    pub seed: u64,
    /// Scenario name (e.g. `"s_curve"`).
    pub scenario: String,
    /// Controller name (e.g. `"stanley"`).
    pub controller: String,
    /// Estimator name (e.g. `"ekf"`).
    pub estimator: String,
    /// Attack name, or `None` for a clean run.
    pub attack: Option<String>,
}

/// The result of checking one run against a catalog.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckReport {
    /// All violation episodes, in detection order.
    pub violations: Vec<Violation>,
    /// Time at which the run ended (s).
    pub end_time: f64,
    /// Number of assertions that were monitored.
    pub assertions_checked: usize,
    /// Monitor-cycles where telemetry health forced an
    /// [`crate::assertion::Eval::Inconclusive`] verdict (0 on healthy
    /// streams).
    pub inconclusive_cycles: u64,
    /// The run that produced the checked samples, when the caller knows
    /// it (the campaign engine stamps this; raw trace checks leave it
    /// `None`). Additive JSON field: absent in old reports, `null` when
    /// unknown.
    pub context: Option<RunContext>,
}

impl CheckReport {
    /// Creates a report (with no inconclusive cycles; the online checker
    /// stamps its count after construction).
    pub fn new(violations: Vec<Violation>, end_time: f64, assertions_checked: usize) -> Self {
        CheckReport {
            violations,
            end_time,
            assertions_checked,
            inconclusive_cycles: 0,
            context: None,
        }
    }

    /// Whether no assertion fired.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// The distinct assertions that fired.
    pub fn violated_ids(&self) -> BTreeSet<AssertionId> {
        self.violations
            .iter()
            .map(|v| v.assertion.clone())
            .collect()
    }

    /// The earliest-detected violation, if any.
    pub fn first_violation(&self) -> Option<&Violation> {
        self.violations
            .iter()
            .min_by(|a, b| a.detected.total_cmp(&b.detected))
    }

    /// The earliest violation detected at or after `t0` (used to measure
    /// detection latency against an attack starting at `t0`).
    pub fn first_detection_after(&self, t0: f64) -> Option<&Violation> {
        self.violations
            .iter()
            .filter(|v| v.detected >= t0)
            .min_by(|a, b| a.detected.total_cmp(&b.detected))
    }

    /// Detection latency against an attack starting at `attack_start`:
    /// seconds from attack start to the first subsequent alarm. `None` when
    /// the attack was never detected.
    pub fn detection_latency(&self, attack_start: f64) -> Option<f64> {
        self.first_detection_after(attack_start)
            .map(|v| v.detected - attack_start)
    }

    /// Violations of a particular assertion.
    pub fn violations_of<'a>(&'a self, id: &'a str) -> impl Iterator<Item = &'a Violation> + 'a {
        self.violations
            .iter()
            .filter(move |v| v.assertion.as_str() == id)
    }

    /// A human-readable multi-line summary.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "checked {} assertions over {:.1} s: {} violation(s)",
            self.assertions_checked,
            self.end_time,
            self.violations.len()
        );
        for v in &self.violations {
            let _ = writeln!(out, "  {v}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assertion::Severity;

    fn violation(id: &str, detected: f64) -> Violation {
        Violation {
            assertion: AssertionId::new(id),
            severity: Severity::Warning,
            onset: detected - 0.1,
            detected,
            value: 1.0,
            cycle: (detected * 100.0) as u64,
            recovered: None,
        }
    }

    fn report() -> CheckReport {
        CheckReport::new(
            vec![
                violation("A2", 5.0),
                violation("A1", 3.0),
                violation("A2", 8.0),
            ],
            10.0,
            14,
        )
    }

    #[test]
    fn clean_and_ids() {
        assert!(CheckReport::new(vec![], 1.0, 14).is_clean());
        let ids: Vec<String> = report()
            .violated_ids()
            .iter()
            .map(|i| i.as_str().to_owned())
            .collect();
        assert_eq!(ids, ["A1", "A2"]);
    }

    #[test]
    fn first_violation_is_earliest_detected() {
        assert_eq!(report().first_violation().unwrap().detected, 3.0);
    }

    #[test]
    fn detection_latency_after_attack() {
        let r = report();
        assert_eq!(r.detection_latency(4.0), Some(1.0));
        assert_eq!(r.detection_latency(9.0), None);
        assert_eq!(r.detection_latency(0.0), Some(3.0));
    }

    #[test]
    fn violations_of_filters_by_id() {
        assert_eq!(report().violations_of("A2").count(), 2);
        assert_eq!(report().violations_of("A9").count(), 0);
    }

    #[test]
    fn summary_mentions_everything() {
        let text = report().summary();
        assert!(text.contains("14 assertions"));
        assert!(text.contains("3 violation(s)"));
        assert!(text.contains("A1"));
    }
}
