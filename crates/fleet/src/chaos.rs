//! Deterministic network-fault injection for resilience drills.
//!
//! [`ChaosTransport`] wraps a real socket and, driven by a seeded
//! generator, cuts it mid-frame: a write may deliver only a prefix
//! before the socket is severed, a read may sever before returning, and
//! either may stall briefly first. Faults are a deterministic function
//! of the seed and the operation sequence, so a chaos run is replayable.
//! The wrapped socket must implement [`Severable`] — severing (not just
//! erroring) is what makes the *peer* observe the cut too, which is the
//! failure mode reconnection logic has to survive.
//!
//! Used by the `chaos_soak` benchmark and the resilience tests to prove
//! the [`crate::resilient::ResilientProducer`] + checkpoint path yields
//! byte-identical verdicts under connection loss.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// A transport whose peer can be made to observe a hard cut.
pub trait Severable {
    /// Hard-closes both directions, as a crashed process or dropped
    /// link would.
    fn sever(&self);
}

impl Severable for TcpStream {
    fn sever(&self) {
        let _ = self.shutdown(Shutdown::Both);
    }
}

#[cfg(unix)]
impl Severable for UnixStream {
    fn sever(&self) {
        let _ = self.shutdown(Shutdown::Both);
    }
}

/// Fault rates, each rolled independently per read/write call.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Probability a write delivers a random prefix, severs the socket
    /// and fails with `ConnectionReset` — a mid-frame cut.
    pub write_cut: f64,
    /// Probability a read severs the socket and fails with
    /// `ConnectionReset`.
    pub read_cut: f64,
    /// Probability an operation stalls for [`ChaosConfig::delay_us`]
    /// first.
    pub delay: f64,
    /// Stall length in microseconds.
    pub delay_us: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            write_cut: 0.01,
            read_cut: 0.01,
            delay: 0.05,
            delay_us: 50,
        }
    }
}

/// A fault-injecting wrapper around a severable transport.
#[derive(Debug)]
pub struct ChaosTransport<C: Read + Write + Severable> {
    inner: C,
    config: ChaosConfig,
    rng: u64,
    cuts: u64,
    delays: u64,
}

impl<C: Read + Write + Severable> ChaosTransport<C> {
    /// Wraps `inner`; all faults derive from `seed`.
    pub fn new(inner: C, config: ChaosConfig, seed: u64) -> Self {
        ChaosTransport {
            inner,
            config,
            rng: seed | 1,
            cuts: 0,
            delays: 0,
        }
    }

    /// Connections severed by injected faults so far.
    pub fn cuts(&self) -> u64 {
        self.cuts
    }

    /// Stalls injected so far.
    pub fn delays(&self) -> u64 {
        self.delays
    }

    /// Next uniform roll in `[0, 1)`.
    fn roll(&mut self) -> f64 {
        self.rng = self
            .rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.rng >> 33) as f64 / (1u64 << 31) as f64
    }

    fn maybe_delay(&mut self) {
        if self.config.delay > 0.0 && self.roll() < self.config.delay {
            self.delays += 1;
            std::thread::sleep(Duration::from_micros(self.config.delay_us));
        }
    }

    fn cut(&mut self) -> std::io::Error {
        self.cuts += 1;
        self.inner.sever();
        std::io::Error::new(std::io::ErrorKind::ConnectionReset, "chaos: link severed")
    }
}

impl<C: Read + Write + Severable> Read for ChaosTransport<C> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.maybe_delay();
        if self.config.read_cut > 0.0 && self.roll() < self.config.read_cut {
            return Err(self.cut());
        }
        self.inner.read(buf)
    }
}

impl<C: Read + Write + Severable> Write for ChaosTransport<C> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.maybe_delay();
        if self.config.write_cut > 0.0 && self.roll() < self.config.write_cut {
            // Deliver a random prefix so the server sees a frame cut
            // mid-body, then sever.
            if !buf.is_empty() {
                let k = (self.roll() * buf.len() as f64) as usize;
                if k > 0 {
                    let _ = self.inner.write(&buf[..k.min(buf.len())]);
                    let _ = self.inner.flush();
                }
            }
            return Err(self.cut());
        }
        self.inner.write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}
