//! Receding-horizon MPC-lite lateral controller.
//!
//! Optimises a short steering sequence over a kinematic bicycle prediction
//! of the next `horizon × step` seconds, minimising a quadratic cost on
//! cross-track error, heading error, steering effort and steering slew. The
//! optimiser is a deterministic pattern search (coordinate probes with
//! shrinking step), which is derivative-free, allocation-light and — unlike
//! gradient descent on this non-smooth projection cost — robust.
//!
//! Like production MPCs, the plan is recomputed at a lower rate than the
//! control loop ([`MpcConfig::recompute_every`] cycles) with the first plan
//! element held in between.

use serde::{Deserialize, Serialize};

use adassure_sim::geometry::{wrap_angle, Vec2};
use adassure_sim::track::Track;

use crate::{Estimate, LateralController};

/// MPC tuning parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MpcConfig {
    /// Wheelbase (m).
    pub wheelbase: f64,
    /// Number of prediction steps.
    pub horizon: usize,
    /// Prediction step length (s).
    pub step: f64,
    /// Cost weight on cross-track error.
    pub w_cross_track: f64,
    /// Cost weight on heading error.
    pub w_heading: f64,
    /// Cost weight on steering magnitude.
    pub w_steer: f64,
    /// Cost weight on steering slew between plan steps.
    pub w_slew: f64,
    /// Hard steering bound (rad).
    pub max_steer: f64,
    /// Steering-actuator slew limit the prediction model honours (rad/s).
    /// Without this the optimiser plans swings the physical actuator cannot
    /// follow and the closed loop oscillates.
    pub steer_rate_limit: f64,
    /// Recompute the plan every this many control cycles.
    pub recompute_every: usize,
    /// Pattern-search sweeps per plan.
    pub search_iterations: usize,
}

impl MpcConfig {
    /// Defaults: 8-step × 0.1 s horizon recomputed at 20 Hz.
    pub fn standard() -> Self {
        MpcConfig {
            wheelbase: 2.7,
            horizon: 8,
            step: 0.1,
            w_cross_track: 1.0,
            w_heading: 2.0,
            w_steer: 0.15,
            w_slew: 0.4,
            max_steer: 0.55,
            steer_rate_limit: 0.7,
            recompute_every: 5,
            search_iterations: 6,
        }
    }
}

impl Default for MpcConfig {
    fn default() -> Self {
        MpcConfig::standard()
    }
}

/// Plain-data snapshot of an [`Mpc`]'s mutable state.
#[derive(Debug, Clone, PartialEq)]
pub struct MpcState {
    /// The most recent optimised steering plan.
    pub plan: Vec<f64>,
    /// Cycles elapsed since the plan was last recomputed.
    pub cycles_since_plan: u64,
    /// Steering command issued last cycle (slew-limit anchor).
    pub last_command: f64,
}

/// The MPC-lite controller.
#[derive(Debug, Clone)]
pub struct Mpc {
    config: MpcConfig,
    plan: Vec<f64>,
    cycles_since_plan: usize,
    last_command: f64,
}

impl Mpc {
    /// Creates a controller.
    ///
    /// # Panics
    ///
    /// Panics when `horizon` is zero or `step`/`recompute_every` are not
    /// positive.
    pub fn new(config: MpcConfig) -> Self {
        assert!(config.horizon > 0, "mpc horizon must be positive");
        assert!(config.step > 0.0, "mpc step must be positive");
        assert!(
            config.recompute_every > 0,
            "mpc recompute_every must be positive"
        );
        Mpc {
            plan: vec![0.0; config.horizon],
            cycles_since_plan: config.recompute_every, // force plan on first call
            last_command: 0.0,
            config,
        }
    }

    /// The most recent optimised steering plan.
    pub fn plan(&self) -> &[f64] {
        &self.plan
    }

    /// Captures the controller's mutable state.
    pub fn state(&self) -> MpcState {
        MpcState {
            plan: self.plan.clone(),
            cycles_since_plan: self.cycles_since_plan as u64,
            last_command: self.last_command,
        }
    }

    /// Reinstates a state captured with [`Mpc::state`].
    pub fn restore(&mut self, s: &MpcState) {
        self.plan = s.plan.clone();
        self.cycles_since_plan = s.cycles_since_plan as usize;
        self.last_command = s.last_command;
    }

    /// Rollout cost of a candidate plan from the given estimate.
    ///
    /// The rollout applies the steering-actuator slew limit, so the cost
    /// reflects what the vehicle will actually do — the optimiser cannot
    /// "cheat" with instantaneous wheel swings.
    fn cost(&self, plan: &[f64], est: &Estimate, track: &Track) -> f64 {
        let c = &self.config;
        let mut pos = est.position;
        let mut heading = est.heading;
        let speed = est.speed.max(0.5);
        let max_delta = c.steer_rate_limit * c.step;
        let mut total = 0.0;
        let mut applied = self.last_command;
        for &steer in plan {
            let prev = applied;
            applied += (steer - applied).clamp(-max_delta, max_delta);
            // Kinematic bicycle rollout at constant speed.
            heading = wrap_angle(heading + speed * applied.tan() / c.wheelbase * c.step);
            pos += Vec2::from_angle(heading) * (speed * c.step);
            let proj = track.project(pos);
            let heading_err = wrap_angle(heading - proj.heading);
            total += c.w_cross_track * proj.cross_track * proj.cross_track
                + c.w_heading * heading_err * heading_err
                + c.w_steer * applied * applied
                + c.w_slew * (applied - prev) * (applied - prev);
        }
        total
    }

    fn replan(&mut self, est: &Estimate, track: &Track) {
        let c = self.config;
        // Warm start: shift the previous plan forward one step.
        let mut plan = self.plan.clone();
        plan.rotate_left(1);
        let last = *plan.last().expect("horizon > 0");
        *plan.last_mut().expect("horizon > 0") = last;

        let mut best_cost = self.cost(&plan, est, track);
        let mut delta = c.max_steer / 2.0;
        for _ in 0..c.search_iterations {
            for i in 0..plan.len() {
                for dir in [-1.0, 1.0] {
                    let old = plan[i];
                    let candidate = (old + dir * delta).clamp(-c.max_steer, c.max_steer);
                    if candidate == old {
                        continue;
                    }
                    plan[i] = candidate;
                    let cost = self.cost(&plan, est, track);
                    if cost < best_cost {
                        best_cost = cost;
                    } else {
                        plan[i] = old;
                    }
                }
            }
            delta *= 0.5;
        }
        self.plan = plan;
    }
}

impl Default for Mpc {
    fn default() -> Self {
        Mpc::new(MpcConfig::standard())
    }
}

impl LateralController for Mpc {
    fn steer(&mut self, est: &Estimate, track: &Track, _dt: f64) -> f64 {
        self.cycles_since_plan += 1;
        if self.cycles_since_plan >= self.config.recompute_every {
            self.replan(est, track);
            self.cycles_since_plan = 0;
        }
        self.last_command = self.plan[0];
        self.last_command
    }

    fn reset(&mut self) {
        self.plan.fill(0.0);
        self.cycles_since_plan = self.config.recompute_every;
        self.last_command = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn straight() -> Track {
        Track::line([0.0, 0.0], [300.0, 0.0], 1.0).unwrap()
    }

    fn estimate(x: f64, y: f64, heading: f64, speed: f64) -> Estimate {
        Estimate {
            position: Vec2::new(x, y),
            heading,
            speed,
            yaw_rate: 0.0,
        }
    }

    #[test]
    fn neutral_on_path() {
        let mut mpc = Mpc::default();
        let steer = mpc.steer(&estimate(5.0, 0.0, 0.0, 8.0), &straight(), 0.01);
        assert!(steer.abs() < 0.02, "{steer}");
    }

    #[test]
    fn sign_conventions() {
        let mut mpc = Mpc::default();
        let left = mpc.steer(&estimate(5.0, 2.0, 0.0, 8.0), &straight(), 0.01);
        assert!(left < -0.01, "left offset must steer right: {left}");
        let mut mpc = Mpc::default();
        let right = mpc.steer(&estimate(5.0, -2.0, 0.0, 8.0), &straight(), 0.01);
        assert!(right > 0.01, "right offset must steer left: {right}");
    }

    #[test]
    fn plan_is_held_between_recomputes() {
        let mut mpc = Mpc::default();
        let e = estimate(5.0, 1.0, 0.0, 8.0);
        let first = mpc.steer(&e, &straight(), 0.01);
        for _ in 0..(mpc.config.recompute_every - 1) {
            assert_eq!(mpc.steer(&e, &straight(), 0.01), first);
        }
    }

    #[test]
    fn plan_respects_steering_bound() {
        let mut mpc = Mpc::default();
        mpc.steer(&estimate(5.0, 20.0, 1.0, 10.0), &straight(), 0.01);
        assert!(mpc.plan().iter().all(|s| s.abs() <= 0.55 + 1e-12));
    }

    #[test]
    fn reset_clears_plan() {
        let mut mpc = Mpc::default();
        mpc.steer(&estimate(5.0, 5.0, 0.0, 8.0), &straight(), 0.01);
        mpc.reset();
        assert!(mpc.plan().iter().all(|&s| s == 0.0));
    }

    #[test]
    fn cost_decreases_with_optimisation() {
        let mpc = Mpc::default();
        let e = estimate(5.0, 2.0, 0.0, 8.0);
        let zero_cost = mpc.cost(&[0.0; 8], &e, &straight());
        let mut opt = Mpc::default();
        opt.steer(&e, &straight(), 0.01);
        let opt_cost = opt.cost(opt.plan(), &e, &straight());
        assert!(
            opt_cost < zero_cost,
            "optimised {opt_cost} vs passive {zero_cost}"
        );
    }

    #[test]
    #[should_panic(expected = "horizon")]
    fn zero_horizon_is_rejected() {
        let mut c = MpcConfig::standard();
        c.horizon = 0;
        let _ = Mpc::new(c);
    }

    #[test]
    fn follows_curve_preview() {
        // Approaching a left curve, the optimised plan should steer left
        // in later steps even while the current error is zero.
        let track = Track::from_waypoints(
            [
                [0.0, 0.0],
                [20.0, 0.0],
                [26.0, 2.0],
                [30.0, 6.0],
                [32.0, 12.0],
            ],
            1.0,
            false,
        )
        .unwrap();
        let mut mpc = Mpc::default();
        mpc.steer(&estimate(15.0, 0.0, 0.0, 8.0), &track, 0.01);
        let max_late = mpc.plan()[3..].iter().copied().fold(f64::MIN, f64::max);
        assert!(
            max_late > 0.02,
            "plan should anticipate the left turn: {:?}",
            mpc.plan()
        );
    }
}
