//! **T4 — Extended attack taxonomy (extension)**: detection and diagnosis
//! of the three gain/noise/drift attack variants beyond the standard
//! eleven, including the scenario-dependence of gain faults (an IMU scale
//! fault is invisible until the vehicle turns).
//!
//! Regenerate with:
//! `cargo run --release -p adassure-bench --bin table4_extended_attacks`

use adassure_attacks::campaign::{extended_attacks, AttackSpec};
use adassure_attacks::{Channel, Window};
use adassure_bench::{catalog_for, fmt_mean_std, run_attacked};
use adassure_control::ControllerKind;
use adassure_core::diagnosis::{self, CauseTag};
use adassure_scenarios::{Scenario, ScenarioKind};

fn cause_of(channel: Channel) -> CauseTag {
    match channel {
        Channel::Gnss => CauseTag::GnssChannel,
        Channel::WheelSpeed => CauseTag::WheelSpeedChannel,
        Channel::ImuYaw => CauseTag::ImuYawChannel,
        Channel::Compass => CauseTag::CompassChannel,
    }
}

fn main() {
    let controller = ControllerKind::PurePursuit;
    let seeds = [1u64, 2, 3];
    let extended_names = ["wheel_speed_noise", "imu_yaw_scale", "compass_drift"];

    println!("T4: extended attack taxonomy, per scenario class ({controller} stack, seeds {seeds:?})\n");
    println!(
        "{:<20} {:<12} {:>11} {:>14} {:>8} {:>8}",
        "attack", "scenario", "detected", "latency (s)", "top-1", "top-2"
    );

    for sk in [ScenarioKind::Straight, ScenarioKind::SCurve, ScenarioKind::UrbanLoop] {
        let scenario = Scenario::of_kind(sk).expect("library scenario");
        let cat = catalog_for(&scenario);
        for attack in extended_attacks(scenario.attack_start)
            .into_iter()
            .filter(|a| extended_names.contains(&a.name()))
        {
            let spec = AttackSpec::new(attack.kind, Window::from_start(scenario.attack_start));
            let truth = cause_of(spec.kind.channel());
            let mut latencies = Vec::new();
            let mut top1 = 0usize;
            let mut top2 = 0usize;
            for &seed in &seeds {
                let (_, report) =
                    run_attacked(&scenario, controller, &spec, seed, &cat).expect("run");
                if let Some(latency) = report.detection_latency(spec.window.start) {
                    latencies.push(latency);
                    let verdict = diagnosis::diagnose(&report);
                    top1 += usize::from(verdict.top() == Some(truth));
                    top2 += usize::from(verdict.contains_in_top(truth, 2));
                }
            }
            println!(
                "{:<20} {:<12} {:>8}/{:<2} {:>14} {:>7} {:>8}",
                spec.name(),
                sk.name(),
                latencies.len(),
                seeds.len(),
                fmt_mean_std(&latencies),
                format!("{top1}/{}", latencies.len()),
                format!("{top2}/{}", latencies.len()),
            );
        }
    }
    println!("\n(imu_yaw_scale is a *gain* fault: invisible on straight roads where");
    println!(" there is no yaw to scale, caught within half a second once turning.");
    println!(" compass_drift is the heading analogue of the GNSS drag-away spoof and");
    println!(" shares its stealth: behavioural detection only, tens of seconds in.)");
}
