//! Event sinks: where filtered [`Event`]s go.
//!
//! The checker holds a `Box<dyn EventSink>`, so sinks are object-safe and
//! `Send` (campaign workers each own one). The hot-path contract is that
//! [`EventSink::emit`] must not allocate in steady state — [`JsonlWriter`]
//! serializes into a reusable buffer that warms up after the first few
//! events, and [`VecSink`] pre-reserves.

use crate::event::Event;
use std::fmt;
use std::io::{self, Write};

/// Destination for filtered observability events.
pub trait EventSink: fmt::Debug + Send {
    /// Consumes one event. Must not allocate in steady state.
    fn emit(&mut self, ev: Event);

    /// Flushes any buffered output (no-op for in-memory sinks).
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }

    /// Drains and returns collected events, if this sink retains them
    /// (only [`VecSink`] does).
    fn take_events(&mut self) -> Vec<Event> {
        Vec::new()
    }
}

/// Discards every event. The "observability structurally off" sink used by
/// the differential test as the baseline side.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn emit(&mut self, _ev: Event) {}
}

/// Collects events in memory; campaign workers use one per cell so events
/// can be merged deterministically in cell order afterwards.
#[derive(Debug, Default)]
pub struct VecSink {
    events: Vec<Event>,
}

impl VecSink {
    /// An empty sink with room for `cap` events before reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        VecSink {
            events: Vec::with_capacity(cap),
        }
    }

    /// The events collected so far.
    pub fn events(&self) -> &[Event] {
        &self.events
    }
}

impl EventSink for VecSink {
    fn emit(&mut self, ev: Event) {
        self.events.push(ev);
    }

    fn take_events(&mut self) -> Vec<Event> {
        std::mem::take(&mut self.events)
    }
}

/// Serializes events as JSON Lines into any `io::Write`.
///
/// Each event is formatted into an owned `String` buffer (cleared, not
/// shrunk, between events) and written as one line, so steady-state
/// emission performs no allocation and exactly one `write_all` per event.
pub struct JsonlWriter<W: Write + Send> {
    out: W,
    buf: String,
    lines: u64,
}

impl<W: Write + Send> JsonlWriter<W> {
    /// Wraps `out`, pre-allocating the line buffer.
    pub fn new(out: W) -> Self {
        JsonlWriter {
            out,
            buf: String::with_capacity(256),
            lines: 0,
        }
    }

    /// Lines written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Flushes and returns the underlying writer.
    pub fn into_inner(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

impl<W: Write + Send> fmt::Debug for JsonlWriter<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JsonlWriter")
            .field("lines", &self.lines)
            .finish_non_exhaustive()
    }
}

impl<W: Write + Send> EventSink for JsonlWriter<W> {
    fn emit(&mut self, ev: Event) {
        self.buf.clear();
        ev.write_jsonl(&mut self.buf);
        // Observability must never take the monitor down with it: an
        // unwritable log drops events rather than panicking mid-cycle.
        let _ = self.out.write_all(self.buf.as_bytes());
        self.lines += 1;
    }

    fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Verdict;
    use crate::label::Label;

    fn sample(run: u64) -> Event {
        Event::VerdictFlip {
            run,
            t: 0.5,
            assertion: Label::new("A1"),
            from: Verdict::Pass,
            to: Verdict::Violated,
        }
    }

    #[test]
    fn vec_sink_collects_and_drains() {
        let mut sink = VecSink::with_capacity(4);
        sink.emit(sample(1));
        sink.emit(sample(2));
        assert_eq!(sink.events().len(), 2);
        let drained = sink.take_events();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[1].run(), 2);
        assert!(sink.events().is_empty());
    }

    #[test]
    fn jsonl_writer_emits_one_line_per_event() {
        let mut w = JsonlWriter::new(Vec::new());
        w.emit(sample(0));
        w.emit(sample(0));
        assert_eq!(w.lines(), 2);
        let bytes = w.into_inner().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn null_sink_retains_nothing() {
        let mut sink = NullSink;
        sink.emit(sample(0));
        assert!(sink.take_events().is_empty());
    }

    #[test]
    fn sinks_are_object_safe() {
        let mut boxed: Box<dyn EventSink> = Box::new(VecSink::default());
        boxed.emit(sample(3));
        assert_eq!(boxed.take_events().len(), 1);
    }
}
