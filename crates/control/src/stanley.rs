//! Stanley front-axle lateral controller.
//!
//! `δ = θ_e + atan(k·e / (v + v_soft))` where `θ_e` is the heading error to
//! the path tangent and `e` the cross-track error measured at the *front
//! axle* (the original Stanford formulation). The softening speed keeps the
//! arctangent well behaved near standstill.

use serde::{Deserialize, Serialize};

use adassure_sim::geometry::{wrap_angle, Vec2};
use adassure_sim::track::Track;

use crate::{Estimate, LateralController};

/// Stanley tuning parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StanleyConfig {
    /// Distance from the estimate's reference point to the front axle (m).
    pub front_axle_offset: f64,
    /// Cross-track gain `k` (1/s).
    pub gain: f64,
    /// Softening speed added to the denominator (m/s).
    pub softening: f64,
    /// Hard clamp on the produced steering command (rad).
    pub max_steer: f64,
}

impl StanleyConfig {
    /// Defaults matched to the workspace passenger car.
    pub fn standard() -> Self {
        StanleyConfig {
            front_axle_offset: 1.25,
            gain: 1.2,
            softening: 1.0,
            max_steer: 0.55,
        }
    }
}

impl Default for StanleyConfig {
    fn default() -> Self {
        StanleyConfig::standard()
    }
}

/// The Stanley controller.
#[derive(Debug, Clone)]
pub struct Stanley {
    config: StanleyConfig,
}

impl Stanley {
    /// Creates a controller.
    pub fn new(config: StanleyConfig) -> Self {
        Stanley { config }
    }
}

impl Default for Stanley {
    fn default() -> Self {
        Stanley::new(StanleyConfig::standard())
    }
}

impl LateralController for Stanley {
    fn steer(&mut self, est: &Estimate, track: &Track, _dt: f64) -> f64 {
        let front_axle =
            est.position + Vec2::from_angle(est.heading) * self.config.front_axle_offset;
        let proj = track.project(front_axle);
        let heading_err = wrap_angle(proj.heading - est.heading);
        // Positive cross-track = left of path → steer right (negative).
        let cross_term =
            (self.config.gain * -proj.cross_track / (est.speed + self.config.softening)).atan();
        (heading_err + cross_term).clamp(-self.config.max_steer, self.config.max_steer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn straight() -> Track {
        Track::line([0.0, 0.0], [200.0, 0.0], 1.0).unwrap()
    }

    fn estimate(x: f64, y: f64, heading: f64, speed: f64) -> Estimate {
        Estimate {
            position: Vec2::new(x, y),
            heading,
            speed,
            yaw_rate: 0.0,
        }
    }

    #[test]
    fn aligned_on_path_is_neutral() {
        let mut st = Stanley::default();
        let steer = st.steer(&estimate(5.0, 0.0, 0.0, 8.0), &straight(), 0.01);
        assert!(steer.abs() < 1e-9);
    }

    #[test]
    fn cross_track_sign_convention() {
        let mut st = Stanley::default();
        assert!(st.steer(&estimate(5.0, 1.5, 0.0, 8.0), &straight(), 0.01) < -0.01);
        assert!(st.steer(&estimate(5.0, -1.5, 0.0, 8.0), &straight(), 0.01) > 0.01);
    }

    #[test]
    fn heading_error_feeds_through_directly() {
        let mut st = Stanley::default();
        // Pointing 0.2 rad left of the path tangent, on the path... but note
        // the front axle is then *off* the path, so expect roughly
        // -0.2 plus a small cross-track term.
        let steer = st.steer(&estimate(5.0, 0.0, 0.2, 8.0), &straight(), 0.01);
        assert!(steer < -0.15 && steer > -0.4, "{steer}");
    }

    #[test]
    fn output_is_clamped() {
        let mut st = Stanley::default();
        let steer = st.steer(&estimate(5.0, 50.0, 0.0, 0.0), &straight(), 0.01);
        assert!(steer >= -0.55 - 1e-12);
        let steer = st.steer(&estimate(5.0, -50.0, 0.0, 0.0), &straight(), 0.01);
        assert!(steer <= 0.55 + 1e-12);
    }

    #[test]
    fn low_speed_gain_is_stronger() {
        let mut st = Stanley::default();
        let slow = st.steer(&estimate(5.0, 1.0, 0.0, 1.0), &straight(), 0.01);
        let fast = st.steer(&estimate(5.0, 1.0, 0.0, 20.0), &straight(), 0.01);
        assert!(slow.abs() > fast.abs(), "slow {slow} vs fast {fast}");
    }
}
