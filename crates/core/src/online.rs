//! The incremental (online) assertion checker.
//!
//! [`OnlineChecker`] is designed to run *inside* a control loop: per cycle
//! it takes the new signal samples, evaluates every assertion against the
//! sample-and-hold environment, and advances each assertion's temporal
//! state machine. Memory is bounded (one [`crate::expr::Env`] slot per
//! signal, O(1) state per assertion) and no allocation happens on the
//! steady-state path — the property benchmarked by experiment F3 and
//! enforced by the counting-allocator test in `tests/alloc_steady_state.rs`.
//!
//! On construction the catalog is lowered through [`crate::compile`]: each
//! condition becomes a postfix [`CompiledCondition`] over interned signal
//! slots, with an input [`SlotMask`]. Per cycle the checker tracks which
//! slots were updated; `end_cycle` re-evaluates an assertion only when one
//! of its inputs changed (or its verdict depends on the clock, as
//! [`crate::Condition::Fresh`] does), replaying the cached verdict
//! otherwise. All other conditions are pure functions of stored signal
//! state, so the cache preserves verdicts bit-for-bit.
//!
//! The offline checker ([`crate::checker`]) replays recorded traces through
//! this same type, so online and offline verdicts agree by construction.

use adassure_trace::SignalId;

use crate::assertion::{Assertion, Eval, Temporal};
use crate::compile::{CompiledCondition, SlotMask};
use crate::expr::Env;
use crate::report::CheckReport;
use crate::violation::Violation;

#[derive(Debug)]
struct MonitorState {
    assertion: Assertion,
    /// The condition lowered to postfix ops over interned slots.
    condition: CompiledCondition,
    /// Slots the condition reads; intersected with the cycle's dirty mask.
    inputs: SlotMask,
    /// Verdict of the last evaluation, replayed while no input changes.
    cached: Option<Eval>,
    episode_start: Option<f64>,
    alarmed_this_episode: bool,
    ever_healthy: bool,
    saw_first_sample: bool,
    /// Index into the violation list of this episode's alarm, so recovery
    /// can be stamped when the condition heals.
    open_violation: Option<usize>,
}

/// The incremental checker.
///
/// # Example
///
/// ```
/// use adassure_core::{Assertion, Condition, OnlineChecker, Severity, SignalExpr, Temporal};
///
/// let a = Assertion::new(
///     "A1",
///     "bounded cross-track error",
///     Severity::Critical,
///     Condition::AtMost { expr: SignalExpr::signal("xtrack_err").abs(), limit: 1.0 },
/// );
/// let mut checker = OnlineChecker::new([a]);
/// checker.begin_cycle(0.0);
/// checker.update("xtrack_err", 0.2);
/// assert_eq!(checker.end_cycle(), 0);
/// checker.begin_cycle(0.01);
/// checker.update("xtrack_err", 2.0);
/// assert_eq!(checker.end_cycle(), 1);
/// ```
#[derive(Debug)]
pub struct OnlineChecker {
    env: Env,
    monitors: Vec<MonitorState>,
    /// Slots updated since the last `end_cycle`.
    dirty: SlotMask,
    /// Shared scratch stack for compiled-expression evaluation, sized to
    /// the deepest expression in the catalog so evaluation never allocates.
    stack: Vec<f64>,
    violations: Vec<Violation>,
    cycle_open: bool,
}

impl OnlineChecker {
    /// Creates a checker over an assertion catalog, compiling it into the
    /// interned evaluation plan.
    pub fn new(catalog: impl IntoIterator<Item = Assertion>) -> Self {
        let mut env = Env::new();
        let mut monitors: Vec<MonitorState> = catalog
            .into_iter()
            .map(|assertion| {
                let condition = CompiledCondition::compile(&assertion.condition, &mut env);
                MonitorState {
                    assertion,
                    condition,
                    inputs: SlotMask::with_capacity(0),
                    cached: None,
                    episode_start: None,
                    alarmed_this_episode: false,
                    ever_healthy: false,
                    saw_first_sample: false,
                    open_violation: None,
                }
            })
            .collect();
        // Input masks need the final table width (compiling a later
        // assertion can intern more slots), so size them in a second pass.
        let width = env.table().len();
        let mut max_stack = 0;
        for monitor in &mut monitors {
            let mut mask = SlotMask::with_capacity(width);
            monitor.condition.mark_inputs(&mut mask);
            monitor.inputs = mask;
            max_stack = max_stack.max(monitor.condition.max_stack());
        }
        OnlineChecker {
            env,
            monitors,
            dirty: SlotMask::with_capacity(width),
            stack: Vec::with_capacity(max_stack),
            violations: Vec::new(),
            cycle_open: false,
        }
    }

    /// Number of monitored assertions.
    pub fn assertion_count(&self) -> usize {
        self.monitors.len()
    }

    /// Opens a new control cycle at time `t`. Call before the cycle's
    /// [`OnlineChecker::update`]s.
    pub fn begin_cycle(&mut self, t: f64) {
        self.env.set_time(t);
        self.cycle_open = true;
    }

    /// Ingests one new signal sample for the open cycle.
    #[inline]
    pub fn update(&mut self, signal: impl Into<SignalId>, value: f64) {
        debug_assert!(self.cycle_open, "update outside begin_cycle/end_cycle");
        let signal = signal.into();
        let slot = self.env.resolve(&signal);
        self.env.update_slot(slot, value);
        // Slots beyond the mask were first seen after compilation, so no
        // assertion can read them; `set` ignores them.
        self.dirty.set(slot);
    }

    /// Closes the cycle: evaluates every assertion and advances temporal
    /// state. Returns the number of *new* violations raised this cycle.
    pub fn end_cycle(&mut self) -> usize {
        let t = self.env.now();
        let before = self.violations.len();
        for monitor in &mut self.monitors {
            if t < monitor.assertion.grace {
                continue;
            }
            let eval = if monitor.condition.time_dependent()
                || monitor.cached.is_none()
                || monitor.inputs.intersects(&self.dirty)
            {
                let eval = monitor.condition.eval(&self.env, &mut self.stack);
                monitor.cached = Some(eval);
                eval
            } else {
                // No input changed and the condition ignores the clock:
                // the verdict is unchanged by construction.
                monitor.cached.unwrap_or(Eval::Unknown)
            };
            match eval {
                Eval::Unknown => {
                    // Not enough data yet: treat as neutral, reset episodes.
                    monitor.episode_start = None;
                    monitor.alarmed_this_episode = false;
                    monitor.open_violation = None;
                }
                Eval::Healthy => {
                    if let Some(idx) = monitor.open_violation.take() {
                        self.violations[idx].recovered = Some(t);
                    }
                    monitor.episode_start = None;
                    monitor.alarmed_this_episode = false;
                    monitor.ever_healthy = true;
                    monitor.saw_first_sample = true;
                }
                Eval::Violated(value) => {
                    monitor.saw_first_sample = true;
                    let onset = *monitor.episode_start.get_or_insert(t);
                    let should_alarm = match monitor.assertion.temporal {
                        Temporal::Immediate => !monitor.alarmed_this_episode,
                        Temporal::Sustained(d) => !monitor.alarmed_this_episode && t - onset >= d,
                        Temporal::Eventually => false, // judged at finish()
                    };
                    if should_alarm {
                        monitor.alarmed_this_episode = true;
                        monitor.open_violation = Some(self.violations.len());
                        self.violations.push(Violation {
                            assertion: monitor.assertion.id.clone(),
                            severity: monitor.assertion.severity,
                            onset,
                            detected: t,
                            value,
                            recovered: None,
                        });
                    }
                }
            }
        }
        self.dirty.clear();
        self.cycle_open = false;
        self.violations.len() - before
    }

    /// Violations raised so far, in detection order.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Finalises the run at `end_time`: judges [`Temporal::Eventually`]
    /// assertions (those that never held raise a violation at `end_time`)
    /// and produces the report.
    pub fn finish(mut self, end_time: f64) -> CheckReport {
        for monitor in &mut self.monitors {
            if monitor.assertion.temporal == Temporal::Eventually
                && monitor.saw_first_sample
                && !monitor.ever_healthy
            {
                self.violations.push(Violation {
                    assertion: monitor.assertion.id.clone(),
                    severity: monitor.assertion.severity,
                    onset: monitor.assertion.grace,
                    detected: end_time,
                    value: f64::NAN,
                    recovered: None,
                });
            }
        }
        CheckReport::new(self.violations, end_time, self.monitors.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assertion::{Condition, Severity};
    use crate::expr::SignalExpr;

    fn bound_assertion(limit: f64) -> Assertion {
        Assertion::new(
            "A1",
            "bounded x",
            Severity::Critical,
            Condition::AtMost {
                expr: SignalExpr::signal("x").abs(),
                limit,
            },
        )
    }

    fn drive(checker: &mut OnlineChecker, samples: &[(f64, f64)]) -> usize {
        let mut total = 0;
        for &(t, v) in samples {
            checker.begin_cycle(t);
            checker.update("x", v);
            total += checker.end_cycle();
        }
        total
    }

    #[test]
    fn immediate_fires_once_per_episode() {
        let mut c = OnlineChecker::new([bound_assertion(1.0)]);
        let n = drive(
            &mut c,
            &[(0.0, 0.5), (0.1, 2.0), (0.2, 2.5), (0.3, 0.1), (0.4, 3.0)],
        );
        assert_eq!(n, 2, "two episodes, one alarm each");
        assert_eq!(c.violations()[0].onset, 0.1);
        assert_eq!(c.violations()[1].onset, 0.4);
    }

    #[test]
    fn sustained_debounces_glitches() {
        let a = bound_assertion(1.0).with_temporal(Temporal::Sustained(0.25));
        let mut c = OnlineChecker::new([a]);
        // A 0.1 s glitch must not alarm.
        let n = drive(&mut c, &[(0.0, 2.0), (0.1, 0.0), (0.2, 0.0)]);
        assert_eq!(n, 0);
        // A sustained excursion must.
        let n = drive(&mut c, &[(0.3, 2.0), (0.4, 2.0), (0.5, 2.0), (0.6, 2.0)]);
        assert_eq!(n, 1);
        let v = &c.violations()[0];
        assert_eq!(v.onset, 0.3);
        assert!((v.detected - 0.55).abs() < 0.06, "{}", v.detected);
    }

    #[test]
    fn grace_period_masks_startup() {
        let a = bound_assertion(1.0).with_grace(0.5);
        let mut c = OnlineChecker::new([a]);
        let n = drive(&mut c, &[(0.0, 9.0), (0.4, 9.0)]);
        assert_eq!(n, 0, "violations inside grace are ignored");
        let n = drive(&mut c, &[(0.6, 9.0)]);
        assert_eq!(n, 1);
    }

    #[test]
    fn unknown_signals_do_not_fire() {
        let mut c = OnlineChecker::new([bound_assertion(1.0)]);
        c.begin_cycle(0.0);
        c.update("unrelated", 99.0);
        assert_eq!(c.end_cycle(), 0);
    }

    #[test]
    fn eventually_judged_at_finish() {
        let goal = Assertion::new(
            "A12",
            "goal reached",
            Severity::Warning,
            Condition::AtLeast {
                expr: SignalExpr::signal("progress"),
                limit: 100.0,
            },
        )
        .with_temporal(Temporal::Eventually);

        // Run that reaches the goal: clean.
        let mut c = OnlineChecker::new([goal.clone()]);
        drive_progress(&mut c, &[(0.0, 10.0), (1.0, 120.0)]);
        let report = c.finish(2.0);
        assert!(report.is_clean());

        // Run that never reaches it: violation at end time.
        let mut c = OnlineChecker::new([goal.clone()]);
        drive_progress(&mut c, &[(0.0, 10.0), (1.0, 50.0)]);
        let report = c.finish(2.0);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].detected, 2.0);

        // Run where the signal never appears: neutral, no violation.
        let c = OnlineChecker::new([goal]);
        let report = c.finish(2.0);
        assert!(report.is_clean(), "missing signal must stay neutral");
    }

    fn drive_progress(checker: &mut OnlineChecker, samples: &[(f64, f64)]) {
        for &(t, v) in samples {
            checker.begin_cycle(t);
            checker.update("progress", v);
            checker.end_cycle();
        }
    }

    #[test]
    fn fresh_condition_fires_on_staleness() {
        let a = Assertion::new(
            "A13",
            "gnss fresh",
            Severity::Critical,
            Condition::Fresh {
                signal: "gnss_x".into(),
                max_age: 0.3,
            },
        );
        let mut c = OnlineChecker::new([a]);
        c.begin_cycle(0.0);
        c.update("gnss_x", 1.0);
        assert_eq!(c.end_cycle(), 0);
        // Clock advances without updates; other signals keep cycles coming.
        let mut fired = 0;
        for i in 1..10 {
            c.begin_cycle(f64::from(i) * 0.1);
            c.update("other", 0.0);
            fired += c.end_cycle();
        }
        assert_eq!(fired, 1, "stale fix alarms exactly once per episode");
        assert!(c.violations()[0].detected > 0.3);
    }

    #[test]
    fn multiple_assertions_are_independent() {
        let a1 = bound_assertion(1.0);
        let a2 = Assertion::new(
            "A2",
            "y bounded",
            Severity::Warning,
            Condition::AtMost {
                expr: SignalExpr::signal("y").abs(),
                limit: 5.0,
            },
        );
        let mut c = OnlineChecker::new([a1, a2]);
        c.begin_cycle(0.0);
        c.update("x", 3.0);
        c.update("y", 2.0);
        assert_eq!(c.end_cycle(), 1, "only A1 fires");
        assert_eq!(c.violations()[0].assertion.as_str(), "A1");
    }

    #[test]
    fn recovery_is_stamped_when_the_condition_heals() {
        let mut c = OnlineChecker::new([bound_assertion(1.0)]);
        drive(&mut c, &[(0.0, 5.0), (0.1, 5.0), (0.2, 0.0), (0.3, 5.0)]);
        let violations = c.violations();
        assert_eq!(violations.len(), 2);
        assert_eq!(violations[0].recovered, Some(0.2));
        assert_eq!(violations[1].recovered, None, "second episode still open");
        assert_eq!(violations[0].episode_duration(), Some(0.2));
    }

    #[test]
    fn report_carries_counts() {
        let mut c = OnlineChecker::new([bound_assertion(1.0)]);
        drive(&mut c, &[(0.0, 5.0)]);
        let report = c.finish(1.0);
        assert_eq!(report.assertions_checked, 1);
        assert_eq!(report.end_time, 1.0);
        assert_eq!(report.violations.len(), 1);
    }
}
