//! Property-based tests of the control algorithms' invariants.

use adassure_control::lqr::{Lqr, LqrConfig};
use adassure_control::pid::{Pid, PidConfig};
use adassure_control::pure_pursuit::PurePursuit;
use adassure_control::stanley::Stanley;
use adassure_control::{Estimate, LateralController};
use adassure_sim::geometry::Vec2;
use adassure_sim::track::Track;
use proptest::prelude::*;

fn arbitrary_estimate() -> impl Strategy<Value = Estimate> {
    (-50.0f64..350.0, -30.0f64..30.0, -3.2f64..3.2, 0.0f64..25.0).prop_map(
        |(x, y, heading, speed)| Estimate {
            position: Vec2::new(x, y),
            heading,
            speed,
            yaw_rate: 0.0,
        },
    )
}

proptest! {
    #[test]
    fn stanley_output_is_always_clamped(est in arbitrary_estimate()) {
        let track = Track::line([0.0, 0.0], [300.0, 0.0], 1.0).unwrap();
        let mut c = Stanley::default();
        let steer = c.steer(&est, &track, 0.01);
        prop_assert!(steer.is_finite());
        prop_assert!(steer.abs() <= 0.55 + 1e-12);
    }

    #[test]
    fn lqr_output_is_always_clamped(est in arbitrary_estimate()) {
        let track = Track::line([0.0, 0.0], [300.0, 0.0], 1.0).unwrap();
        let mut c = Lqr::default();
        let steer = c.steer(&est, &track, 0.01);
        prop_assert!(steer.is_finite());
        prop_assert!(steer.abs() <= 0.55 + 1e-12);
    }

    #[test]
    fn pure_pursuit_output_is_finite_and_geometric(est in arbitrary_estimate()) {
        let track = Track::line([0.0, 0.0], [300.0, 0.0], 1.0).unwrap();
        let mut c = PurePursuit::default();
        let steer = c.steer(&est, &track, 0.01);
        prop_assert!(steer.is_finite());
        // atan is bounded by ±π/2 whatever the geometry.
        prop_assert!(steer.abs() <= std::f64::consts::FRAC_PI_2 + 1e-12);
    }

    #[test]
    fn lqr_gains_are_finite_positive_over_the_speed_range(v in 0.0f64..30.0) {
        let k = Lqr::solve_gains(&LqrConfig::standard(), v);
        prop_assert!(k[0].is_finite() && k[1].is_finite());
        prop_assert!(k[0] > 0.0 && k[1] > 0.0, "{k:?}");
    }

    #[test]
    fn pid_output_respects_saturation(
        targets in proptest::collection::vec(-50.0f64..50.0, 1..100),
        measured in proptest::collection::vec(-50.0f64..50.0, 1..100),
    ) {
        let mut pid = Pid::new(PidConfig::speed_control());
        for (t, m) in targets.iter().zip(&measured) {
            let u = pid.update(*t, *m, 0.01);
            prop_assert!((-6.0..=4.0).contains(&u), "output {u} outside bounds");
        }
    }

    #[test]
    fn pid_reset_restores_fresh_behaviour(
        history in proptest::collection::vec(-20.0f64..20.0, 1..50),
        target in -10.0f64..10.0,
        measured in -10.0f64..10.0,
    ) {
        let mut used = Pid::new(PidConfig::speed_control());
        for h in &history {
            used.update(*h, 0.0, 0.01);
        }
        used.reset();
        let mut fresh = Pid::new(PidConfig::speed_control());
        prop_assert_eq!(used.update(target, measured, 0.01), fresh.update(target, measured, 0.01));
    }

    #[test]
    fn steering_sign_opposes_lateral_offset(offset in 0.2f64..10.0) {
        // For a vehicle aligned with a straight path, every controller must
        // steer toward the path — the sign convention that keeps the loop
        // stable.
        let track = Track::line([0.0, 0.0], [300.0, 0.0], 1.0).unwrap();
        let make = |y: f64| Estimate {
            position: Vec2::new(50.0, y),
            heading: 0.0,
            speed: 8.0,
            yaw_rate: 0.0,
        };
        let mut stanley = Stanley::default();
        let mut lqr = Lqr::default();
        let mut pp = PurePursuit::default();
        for c in [&mut stanley as &mut dyn LateralController, &mut lqr, &mut pp] {
            prop_assert!(c.steer(&make(offset), &track, 0.01) < 0.0);
            prop_assert!(c.steer(&make(-offset), &track, 0.01) > 0.0);
        }
    }
}
