//! The signal expression language assertions are written in.
//!
//! Expressions are evaluated against an [`Env`]: the monitor's
//! sample-and-hold view of the newest value of every signal. Evaluation
//! returns `None` until every referenced signal has been seen at least once,
//! so assertions stay silent (rather than firing spuriously) during
//! start-up.

use serde::{Deserialize, Serialize};
use std::fmt;

use adassure_trace::SignalId;

use crate::compile::SignalTable;

/// Sample-and-hold evaluation environment: per signal, the newest value,
/// its timestamp, and the finite-difference derivative of the last two
/// updates.
///
/// Signals are interned into dense slots on first sight (see
/// [`SignalTable`]), so the state lives in a flat `Vec` and the steady-state
/// update path performs no hashing and no allocation. The by-name accessors
/// remain the convenient interface; the `*_at` slot accessors are the hot
/// path used by compiled assertion plans.
#[derive(Debug, Clone, Default)]
pub struct Env {
    now: f64,
    table: SignalTable,
    states: Vec<SignalState>,
}

#[derive(Debug, Clone, Copy)]
struct SignalState {
    seen: bool,
    time: f64,
    value: f64,
    /// `(delta, dt)` of the last two distinct-time updates.
    last_step: Option<(f64, f64)>,
}

/// A slot's sample-and-hold state flattened to plain data for
/// checkpointing: `(seen, time, value, last_step)`.
pub(crate) type SlotState = (bool, f64, f64, Option<(f64, f64)>);

impl Default for SignalState {
    fn default() -> Self {
        SignalState {
            seen: false,
            time: 0.0,
            value: 0.0,
            last_step: None,
        }
    }
}

impl Env {
    /// Creates an empty environment.
    pub fn new() -> Self {
        Env::default()
    }

    /// Advances the clock. Must be called (monotonically) before the
    /// updates of each cycle.
    pub fn set_time(&mut self, t: f64) {
        self.now = t;
    }

    /// The current clock.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Interns `signal`, returning its dense slot. Registers the signal
    /// (unseen, with no value) on first sight; interning is stable, so the
    /// returned slot identifies the signal for the environment's lifetime.
    #[inline]
    pub fn resolve(&mut self, signal: &SignalId) -> u32 {
        let slot = self.table.intern(signal);
        if slot as usize >= self.states.len() {
            self.states.resize_with(slot as usize + 1, Default::default);
        }
        slot
    }

    /// The slot of `signal`, if it has been interned.
    pub fn slot(&self, signal: &SignalId) -> Option<u32> {
        self.table.slot(signal)
    }

    /// The signal table backing this environment.
    pub fn table(&self) -> &SignalTable {
        &self.table
    }

    /// Ingests a new sample of `signal` at the current clock.
    pub fn update(&mut self, signal: &SignalId, value: f64) {
        let slot = self.resolve(signal);
        self.update_slot(slot, value);
    }

    /// Ingests a new sample for an interned slot at the current clock.
    ///
    /// # Panics
    ///
    /// Panics if `slot` was not returned by [`Env::resolve`] on this
    /// environment.
    #[inline]
    pub fn update_slot(&mut self, slot: u32, value: f64) {
        let t = self.now;
        let state = &mut self.states[slot as usize];
        if state.seen {
            if t > state.time {
                state.last_step = Some((value - state.value, t - state.time));
            }
        } else {
            state.seen = true;
        }
        state.time = t;
        state.value = value;
    }

    /// Raw sample-and-hold state of `slot` as
    /// `(seen, time, value, last_step)`, for checkpointing. `None` if the
    /// slot was never interned.
    pub(crate) fn slot_state(&self, slot: u32) -> Option<SlotState> {
        let state = self.states.get(slot as usize)?;
        Some((state.seen, state.time, state.value, state.last_step))
    }

    /// Overwrites the sample-and-hold state of `slot`, growing the state
    /// vector if needed. Restore-path counterpart of [`Env::slot_state`].
    pub(crate) fn restore_slot_state(
        &mut self,
        slot: u32,
        seen: bool,
        time: f64,
        value: f64,
        last_step: Option<(f64, f64)>,
    ) {
        if slot as usize >= self.states.len() {
            self.states.resize_with(slot as usize + 1, Default::default);
        }
        self.states[slot as usize] = SignalState {
            seen,
            time,
            value,
            last_step,
        };
    }

    /// Newest value of `signal`, if seen.
    pub fn value(&self, signal: &SignalId) -> Option<f64> {
        self.slot(signal).and_then(|slot| self.value_at(slot))
    }

    /// Newest value of the signal in `slot`, if seen.
    #[inline]
    pub fn value_at(&self, slot: u32) -> Option<f64> {
        let state = self.states.get(slot as usize)?;
        state.seen.then_some(state.value)
    }

    /// Finite-difference derivative of `signal` over its last two updates.
    pub fn derivative(&self, signal: &SignalId) -> Option<f64> {
        self.slot(signal).and_then(|slot| self.derivative_at(slot))
    }

    /// Finite-difference derivative of the signal in `slot`.
    #[inline]
    pub fn derivative_at(&self, slot: u32) -> Option<f64> {
        let (delta, dt) = self.states.get(slot as usize)?.last_step?;
        Some(delta / dt)
    }

    /// Angle-aware derivative: the per-update delta is wrapped to
    /// `(-pi, pi]` before dividing, so a heading crossing the ±π seam does
    /// not register as a ±2π/dt spike.
    pub fn angular_derivative(&self, signal: &SignalId) -> Option<f64> {
        self.slot(signal)
            .and_then(|slot| self.angular_derivative_at(slot))
    }

    /// Angle-aware derivative of the signal in `slot`.
    #[inline]
    pub fn angular_derivative_at(&self, slot: u32) -> Option<f64> {
        let (delta, dt) = self.states.get(slot as usize)?.last_step?;
        Some(wrap_angle(delta) / dt)
    }

    /// Seconds since `signal` last updated, if it has ever been seen.
    pub fn age(&self, signal: &SignalId) -> Option<f64> {
        self.slot(signal).and_then(|slot| self.age_at(slot))
    }

    /// Seconds since the signal in `slot` last updated, if ever seen.
    #[inline]
    pub fn age_at(&self, slot: u32) -> Option<f64> {
        let state = self.states.get(slot as usize)?;
        state.seen.then_some(self.now - state.time)
    }
}

/// A scalar expression over signals.
///
/// # Example
///
/// ```
/// use adassure_core::expr::{Env, SignalExpr};
///
/// // |gnss_speed - wheel_speed|
/// let expr = SignalExpr::signal("gnss_speed")
///     .sub(SignalExpr::signal("wheel_speed"))
///     .abs();
/// let mut env = Env::new();
/// env.set_time(0.0);
/// env.update(&"gnss_speed".into(), 5.0);
/// env.update(&"wheel_speed".into(), 7.5);
/// assert_eq!(expr.eval(&env), Some(2.5));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SignalExpr {
    /// Newest value of a signal (sample-and-hold).
    Signal(SignalId),
    /// A constant.
    Const(f64),
    /// Finite-difference time derivative of a signal.
    Derivative(SignalId),
    /// Angle-aware time derivative of a signal (delta wrapped to
    /// `(-pi, pi]` — use for headings and other circular quantities).
    AngularDerivative(SignalId),
    /// Absolute value.
    Abs(Box<SignalExpr>),
    /// Negation.
    Neg(Box<SignalExpr>),
    /// Sum.
    Add(Box<SignalExpr>, Box<SignalExpr>),
    /// Difference.
    Sub(Box<SignalExpr>, Box<SignalExpr>),
    /// Product.
    Mul(Box<SignalExpr>, Box<SignalExpr>),
    /// Wrapped angular difference `lhs - rhs` in `(-pi, pi]`.
    AngleDiff(Box<SignalExpr>, Box<SignalExpr>),
    /// Tangent (used by the bicycle-kinematics consistency assertion).
    Tan(Box<SignalExpr>),
}

impl SignalExpr {
    /// The newest value of a signal.
    pub fn signal(name: impl Into<SignalId>) -> Self {
        SignalExpr::Signal(name.into())
    }

    /// A constant expression.
    pub fn constant(value: f64) -> Self {
        SignalExpr::Const(value)
    }

    /// The time derivative of a signal.
    pub fn derivative(name: impl Into<SignalId>) -> Self {
        SignalExpr::Derivative(name.into())
    }

    /// The angle-aware time derivative of a signal.
    pub fn angular_derivative(name: impl Into<SignalId>) -> Self {
        SignalExpr::AngularDerivative(name.into())
    }

    /// `|self|`.
    pub fn abs(self) -> Self {
        SignalExpr::Abs(Box::new(self))
    }

    #[allow(clippy::should_implement_trait)] // DSL builder, not std::ops
    /// `-self`. Negating a constant folds into a negative constant, so the
    /// textual form (`-3.5`) and the built form agree.
    pub fn neg(self) -> Self {
        match self {
            SignalExpr::Const(v) => SignalExpr::Const(-v),
            other => SignalExpr::Neg(Box::new(other)),
        }
    }

    #[allow(clippy::should_implement_trait)] // DSL builder, not std::ops
    /// `self + rhs`.
    pub fn add(self, rhs: SignalExpr) -> Self {
        SignalExpr::Add(Box::new(self), Box::new(rhs))
    }

    #[allow(clippy::should_implement_trait)] // DSL builder, not std::ops
    /// `self - rhs`.
    pub fn sub(self, rhs: SignalExpr) -> Self {
        SignalExpr::Sub(Box::new(self), Box::new(rhs))
    }

    #[allow(clippy::should_implement_trait)] // DSL builder, not std::ops
    /// `self * rhs`.
    pub fn mul(self, rhs: SignalExpr) -> Self {
        SignalExpr::Mul(Box::new(self), Box::new(rhs))
    }

    /// Wrapped angular difference `self - rhs`.
    pub fn angle_diff(self, rhs: SignalExpr) -> Self {
        SignalExpr::AngleDiff(Box::new(self), Box::new(rhs))
    }

    /// `tan(self)`.
    pub fn tan(self) -> Self {
        SignalExpr::Tan(Box::new(self))
    }

    /// Evaluates against an environment. `None` until every referenced
    /// signal has been seen (and, for [`SignalExpr::Derivative`], updated at
    /// least twice).
    pub fn eval(&self, env: &Env) -> Option<f64> {
        match self {
            SignalExpr::Signal(id) => env.value(id),
            SignalExpr::Const(v) => Some(*v),
            SignalExpr::Derivative(id) => env.derivative(id),
            SignalExpr::AngularDerivative(id) => env.angular_derivative(id),
            SignalExpr::Abs(e) => e.eval(env).map(f64::abs),
            SignalExpr::Neg(e) => e.eval(env).map(|v| -v),
            SignalExpr::Add(a, b) => Some(a.eval(env)? + b.eval(env)?),
            SignalExpr::Sub(a, b) => Some(a.eval(env)? - b.eval(env)?),
            SignalExpr::Mul(a, b) => Some(a.eval(env)? * b.eval(env)?),
            SignalExpr::AngleDiff(a, b) => Some(wrap_angle(a.eval(env)? - b.eval(env)?)),
            SignalExpr::Tan(e) => e.eval(env).map(f64::tan),
        }
    }

    /// All signals referenced by the expression.
    pub fn signals(&self) -> Vec<SignalId> {
        let mut out = Vec::new();
        self.collect_signals(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_signals(&self, out: &mut Vec<SignalId>) {
        match self {
            SignalExpr::Signal(id)
            | SignalExpr::Derivative(id)
            | SignalExpr::AngularDerivative(id) => out.push(id.clone()),
            SignalExpr::Const(_) => {}
            SignalExpr::Abs(e) | SignalExpr::Neg(e) | SignalExpr::Tan(e) => e.collect_signals(out),
            SignalExpr::Add(a, b)
            | SignalExpr::Sub(a, b)
            | SignalExpr::Mul(a, b)
            | SignalExpr::AngleDiff(a, b) => {
                a.collect_signals(out);
                b.collect_signals(out);
            }
        }
    }
}

impl fmt::Display for SignalExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignalExpr::Signal(id) => write!(f, "{id}"),
            SignalExpr::Const(v) => write!(f, "{v}"),
            SignalExpr::Derivative(id) => write!(f, "d({id})/dt"),
            SignalExpr::AngularDerivative(id) => write!(f, "dang({id})/dt"),
            SignalExpr::Abs(e) => write!(f, "|{e}|"),
            SignalExpr::Neg(e) => write!(f, "-({e})"),
            SignalExpr::Add(a, b) => write!(f, "({a} + {b})"),
            SignalExpr::Sub(a, b) => write!(f, "({a} - {b})"),
            SignalExpr::Mul(a, b) => write!(f, "({a} * {b})"),
            SignalExpr::AngleDiff(a, b) => write!(f, "angdiff({a}, {b})"),
            SignalExpr::Tan(e) => write!(f, "tan({e})"),
        }
    }
}

pub(crate) fn wrap_angle(angle: f64) -> f64 {
    use std::f64::consts::{PI, TAU};
    let mut a = angle % TAU;
    if a <= -PI {
        a += TAU;
    } else if a > PI {
        a -= TAU;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env_with(pairs: &[(&str, f64)]) -> Env {
        let mut env = Env::new();
        env.set_time(0.0);
        for (name, v) in pairs {
            env.update(&SignalId::new(name), *v);
        }
        env
    }

    #[test]
    fn arithmetic_evaluation() {
        let env = env_with(&[("a", 3.0), ("b", -2.0)]);
        let e = SignalExpr::signal("a").add(SignalExpr::signal("b"));
        assert_eq!(e.eval(&env), Some(1.0));
        let e = SignalExpr::signal("a").mul(SignalExpr::constant(2.0));
        assert_eq!(e.eval(&env), Some(6.0));
        let e = SignalExpr::signal("b").abs();
        assert_eq!(e.eval(&env), Some(2.0));
        let e = SignalExpr::signal("a").neg();
        assert_eq!(e.eval(&env), Some(-3.0));
    }

    #[test]
    fn missing_signal_yields_none() {
        let env = env_with(&[("a", 1.0)]);
        let e = SignalExpr::signal("a").sub(SignalExpr::signal("zzz"));
        assert_eq!(e.eval(&env), None);
    }

    #[test]
    fn derivative_needs_two_updates() {
        let id = SignalId::new("x");
        let mut env = Env::new();
        env.set_time(0.0);
        env.update(&id, 1.0);
        assert_eq!(SignalExpr::derivative("x").eval(&env), None);
        env.set_time(0.1);
        env.update(&id, 2.0);
        let d = SignalExpr::derivative("x").eval(&env).unwrap();
        assert!((d - 10.0).abs() < 1e-9);
    }

    #[test]
    fn sample_and_hold_keeps_old_values() {
        let id = SignalId::new("sparse");
        let mut env = Env::new();
        env.set_time(0.0);
        env.update(&id, 4.0);
        env.set_time(5.0);
        assert_eq!(env.value(&id), Some(4.0));
        assert_eq!(env.age(&id), Some(5.0));
    }

    #[test]
    fn angle_diff_wraps() {
        use std::f64::consts::PI;
        let env = env_with(&[("a", PI - 0.1), ("b", -PI + 0.1)]);
        let e = SignalExpr::signal("a").angle_diff(SignalExpr::signal("b"));
        let v = e.eval(&env).unwrap();
        assert!((v + 0.2).abs() < 1e-9, "{v}");
    }

    #[test]
    fn tan_evaluates() {
        let env = env_with(&[("steer", 0.3)]);
        let v = SignalExpr::signal("steer").tan().eval(&env).unwrap();
        assert!((v - 0.3f64.tan()).abs() < 1e-12);
    }

    #[test]
    fn signals_collects_unique_sorted() {
        let e = SignalExpr::signal("b")
            .sub(SignalExpr::signal("a"))
            .add(SignalExpr::derivative("b"));
        let sigs: Vec<String> = e.signals().iter().map(|s| s.as_str().to_owned()).collect();
        assert_eq!(sigs, ["a", "b"]);
    }

    #[test]
    fn display_is_readable() {
        let e = SignalExpr::signal("gnss_speed")
            .sub(SignalExpr::signal("wheel_speed"))
            .abs();
        assert_eq!(e.to_string(), "|(gnss_speed - wheel_speed)|");
        assert_eq!(SignalExpr::derivative("x").to_string(), "d(x)/dt");
    }

    #[test]
    fn derivative_survives_repeated_timestamps() {
        let id = SignalId::new("x");
        let mut env = Env::new();
        env.set_time(0.0);
        env.update(&id, 1.0);
        env.set_time(0.1);
        env.update(&id, 2.0);
        // Same-time update keeps the previous derivative rather than
        // dividing by zero.
        env.update(&id, 3.0);
        let d = env.derivative(&id).unwrap();
        assert!(d.is_finite());
    }
}
