//! Vehicle dynamics: kinematic and dynamic bicycle models with RK4
//! integration.
//!
//! Both models share the same six-dimensional state so that controllers and
//! the engine are model-agnostic; the kinematic model simply keeps lateral
//! velocity at zero and derives yaw rate from the steering geometry.

use serde::{Deserialize, Serialize};

use crate::geometry::{wrap_angle, Vec2};

/// Physical parameters of the simulated vehicle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VehicleParams {
    /// Wheelbase (m).
    pub wheelbase: f64,
    /// Distance from the centre of gravity to the front axle (m).
    pub cg_to_front: f64,
    /// Vehicle mass (kg).
    pub mass: f64,
    /// Yaw moment of inertia (kg·m²).
    pub yaw_inertia: f64,
    /// Front cornering stiffness (N/rad).
    pub cornering_front: f64,
    /// Rear cornering stiffness (N/rad).
    pub cornering_rear: f64,
    /// Mechanical steering limit (rad).
    pub max_steer: f64,
    /// Maximum forward speed (m/s).
    pub max_speed: f64,
    /// Maximum commanded acceleration magnitude (m/s²).
    pub max_accel: f64,
}

impl VehicleParams {
    /// Parameters approximating a compact passenger car / shuttle.
    pub fn passenger_car() -> Self {
        VehicleParams {
            wheelbase: 2.7,
            cg_to_front: 1.25,
            mass: 1500.0,
            yaw_inertia: 2600.0,
            cornering_front: 80_000.0,
            cornering_rear: 95_000.0,
            max_steer: 0.55,
            max_speed: 25.0,
            max_accel: 4.0,
        }
    }

    /// Distance from the centre of gravity to the rear axle (m).
    pub fn cg_to_rear(&self) -> f64 {
        self.wheelbase - self.cg_to_front
    }

    /// Validates that all parameters are finite and physically meaningful.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first offending parameter.
    pub fn validate(&self) -> Result<(), String> {
        let checks = [
            (self.wheelbase > 0.0, "wheelbase must be positive"),
            (
                self.cg_to_front > 0.0 && self.cg_to_front < self.wheelbase,
                "cg_to_front must lie within the wheelbase",
            ),
            (self.mass > 0.0, "mass must be positive"),
            (self.yaw_inertia > 0.0, "yaw_inertia must be positive"),
            (
                self.cornering_front > 0.0 && self.cornering_rear > 0.0,
                "cornering stiffnesses must be positive",
            ),
            (self.max_steer > 0.0, "max_steer must be positive"),
            (self.max_speed > 0.0, "max_speed must be positive"),
            (self.max_accel > 0.0, "max_accel must be positive"),
        ];
        for (ok, msg) in checks {
            if !ok {
                return Err(msg.to_owned());
            }
        }
        Ok(())
    }
}

impl Default for VehicleParams {
    fn default() -> Self {
        VehicleParams::passenger_car()
    }
}

/// Full dynamic state of the vehicle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct VehicleState {
    /// Position of the centre of gravity (m).
    pub position: Vec2,
    /// Heading / yaw (rad), wrapped to `(-pi, pi]`.
    pub heading: f64,
    /// Longitudinal (body-frame) speed (m/s), non-negative.
    pub speed: f64,
    /// Lateral (body-frame) speed (m/s); zero under the kinematic model.
    pub lateral_speed: f64,
    /// Yaw rate (rad/s).
    pub yaw_rate: f64,
}

impl VehicleState {
    /// A state at rest at `position` facing `heading`.
    pub fn at(position: impl Into<Vec2>, heading: f64) -> Self {
        VehicleState {
            position: position.into(),
            heading: wrap_angle(heading),
            ..VehicleState::default()
        }
    }

    /// Ground-frame velocity vector (m/s).
    pub fn velocity(&self) -> Vec2 {
        let body = Vec2::new(self.speed, self.lateral_speed);
        body.rotated(self.heading)
    }

    /// Whether every component is finite.
    pub fn is_finite(&self) -> bool {
        self.position.is_finite()
            && self.heading.is_finite()
            && self.speed.is_finite()
            && self.lateral_speed.is_finite()
            && self.yaw_rate.is_finite()
    }

    fn to_array(self) -> [f64; 6] {
        [
            self.position.x,
            self.position.y,
            self.heading,
            self.speed,
            self.lateral_speed,
            self.yaw_rate,
        ]
    }

    fn from_array(a: [f64; 6]) -> Self {
        VehicleState {
            position: Vec2::new(a[0], a[1]),
            heading: a[2],
            speed: a[3],
            lateral_speed: a[4],
            yaw_rate: a[5],
        }
    }
}

/// Control inputs applied to the vehicle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Controls {
    /// Front-wheel steering angle (rad), positive left.
    pub steer: f64,
    /// Longitudinal acceleration command (m/s²), negative = braking.
    pub accel: f64,
}

impl Controls {
    /// Creates a control input.
    pub fn new(steer: f64, accel: f64) -> Self {
        Controls { steer, accel }
    }

    /// Controls clamped to the vehicle's physical limits.
    pub fn clamped(self, params: &VehicleParams) -> Controls {
        Controls {
            steer: self.steer.clamp(-params.max_steer, params.max_steer),
            accel: self.accel.clamp(-params.max_accel, params.max_accel),
        }
    }
}

/// Which dynamics formulation the simulator integrates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// Kinematic bicycle: exact geometry, no tire slip. Fast and well
    /// behaved at all speeds.
    #[default]
    Kinematic,
    /// Dynamic bicycle with linear tires: captures understeer and lateral
    /// slip at speed; falls back to kinematic behaviour below walking pace
    /// where the slip-angle formulation is singular.
    Dynamic,
}

/// A vehicle model: parameters plus a dynamics formulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VehicleModel {
    /// Physical parameters.
    pub params: VehicleParams,
    /// Dynamics formulation.
    pub kind: ModelKind,
}

impl VehicleModel {
    /// Creates a model.
    pub fn new(params: VehicleParams, kind: ModelKind) -> Self {
        VehicleModel { params, kind }
    }

    /// A kinematic passenger-car model (the workspace default).
    pub fn kinematic() -> Self {
        VehicleModel::new(VehicleParams::passenger_car(), ModelKind::Kinematic)
    }

    /// A dynamic passenger-car model.
    pub fn dynamic() -> Self {
        VehicleModel::new(VehicleParams::passenger_car(), ModelKind::Dynamic)
    }

    /// Time derivative of the state under `controls`.
    pub fn derivatives(&self, state: &VehicleState, controls: Controls) -> [f64; 6] {
        let c = controls.clamped(&self.params);
        match self.kind {
            ModelKind::Kinematic => self.kinematic_derivatives(state, c),
            ModelKind::Dynamic => {
                // The linear-tire formulation divides by vx; below walking
                // pace use the kinematic geometry instead.
                if state.speed < 0.5 {
                    self.kinematic_derivatives(state, c)
                } else {
                    self.dynamic_derivatives(state, c)
                }
            }
        }
    }

    fn kinematic_derivatives(&self, state: &VehicleState, c: Controls) -> [f64; 6] {
        let v = state.speed;
        let yaw_rate = v * c.steer.tan() / self.params.wheelbase;
        let (sin_h, cos_h) = state.heading.sin_cos();
        [
            v * cos_h,
            v * sin_h,
            yaw_rate,
            c.accel,
            // Relax any residual lateral velocity / yaw-rate mismatch so a
            // model switch (dynamic -> kinematic at low speed) stays smooth.
            -10.0 * state.lateral_speed,
            10.0 * (yaw_rate - state.yaw_rate),
        ]
    }

    fn dynamic_derivatives(&self, state: &VehicleState, c: Controls) -> [f64; 6] {
        let p = &self.params;
        let vx = state.speed;
        let vy = state.lateral_speed;
        let r = state.yaw_rate;
        let lf = p.cg_to_front;
        let lr = p.cg_to_rear();

        let alpha_f = c.steer - ((vy + lf * r) / vx).atan();
        let alpha_r = -((vy - lr * r) / vx).atan();
        let fy_f = p.cornering_front * alpha_f;
        let fy_r = p.cornering_rear * alpha_r;

        let (sin_h, cos_h) = state.heading.sin_cos();
        [
            vx * cos_h - vy * sin_h,
            vx * sin_h + vy * cos_h,
            r,
            c.accel + vy * r,
            (fy_f * c.steer.cos() + fy_r) / p.mass - vx * r,
            (lf * fy_f * c.steer.cos() - lr * fy_r) / p.yaw_inertia,
        ]
    }

    /// Integrates the state forward by `dt` seconds with classical RK4.
    ///
    /// The returned state has its heading wrapped and its speed clamped to
    /// `[0, max_speed]` (the simulator does not model reverse gear).
    pub fn step(&self, state: &VehicleState, controls: Controls, dt: f64) -> VehicleState {
        let y0 = state.to_array();
        let k1 = self.derivatives(state, controls);
        let k2 = self.derivatives(&VehicleState::from_array(add(y0, k1, dt / 2.0)), controls);
        let k3 = self.derivatives(&VehicleState::from_array(add(y0, k2, dt / 2.0)), controls);
        let k4 = self.derivatives(&VehicleState::from_array(add(y0, k3, dt)), controls);

        let mut y = y0;
        for i in 0..6 {
            y[i] += dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
        }
        let mut next = VehicleState::from_array(y);
        next.heading = wrap_angle(next.heading);
        next.speed = next.speed.clamp(0.0, self.params.max_speed);
        if self.kind == ModelKind::Kinematic {
            // The kinematic model has no yaw dynamics: its yaw rate *is*
            // the steering geometry. Keeping it exact (rather than a
            // relaxed pseudo-state) matters to the A8 consistency
            // assertion, which checks exactly this relation on the sensor
            // side.
            let c = controls.clamped(&self.params);
            next.yaw_rate = next.speed * c.steer.tan() / self.params.wheelbase;
            next.lateral_speed = 0.0;
        }
        if next.speed == 0.0 {
            // At rest there is no lateral motion either.
            next.lateral_speed = 0.0;
            next.yaw_rate = 0.0;
        }
        next
    }
}

fn add(y: [f64; 6], k: [f64; 6], h: f64) -> [f64; 6] {
    let mut out = y;
    for i in 0..6 {
        out[i] += h * k[i];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn params_validate() {
        assert!(VehicleParams::passenger_car().validate().is_ok());
        let mut p = VehicleParams::passenger_car();
        p.wheelbase = 0.0;
        assert!(p.validate().is_err());
        let mut p = VehicleParams::passenger_car();
        p.cg_to_front = 5.0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn straight_line_kinematics() {
        let model = VehicleModel::kinematic();
        let mut state = VehicleState::at([0.0, 0.0], 0.0);
        state.speed = 10.0;
        for _ in 0..100 {
            state = model.step(&state, Controls::new(0.0, 0.0), 0.01);
        }
        assert!((state.position.x - 10.0).abs() < 1e-6);
        assert!(state.position.y.abs() < 1e-9);
        assert!((state.speed - 10.0).abs() < 1e-9);
    }

    #[test]
    fn acceleration_integrates_speed_and_distance() {
        let model = VehicleModel::kinematic();
        let mut state = VehicleState::at([0.0, 0.0], 0.0);
        for _ in 0..100 {
            state = model.step(&state, Controls::new(0.0, 2.0), 0.01);
        }
        // v = a t = 2, x = a t^2 / 2 = 1.
        assert!((state.speed - 2.0).abs() < 1e-9);
        assert!((state.position.x - 1.0).abs() < 1e-6);
    }

    #[test]
    fn constant_steer_traces_circle() {
        let model = VehicleModel::kinematic();
        let mut state = VehicleState::at([0.0, 0.0], 0.0);
        state.speed = 5.0;
        let steer: f64 = 0.2;
        let radius = model.params.wheelbase / steer.tan();
        let period = std::f64::consts::TAU * radius / state.speed;
        let dt = 0.001;
        let steps = (period / dt).round() as usize;
        for _ in 0..steps {
            state = model.step(&state, Controls::new(steer, 0.0), dt);
        }
        // After one full period the vehicle returns to the origin.
        assert!(
            state.position.norm() < 0.1,
            "drift {} m after one circle",
            state.position.norm()
        );
    }

    #[test]
    fn speed_never_goes_negative() {
        let model = VehicleModel::kinematic();
        let mut state = VehicleState::at([0.0, 0.0], 0.0);
        state.speed = 1.0;
        for _ in 0..500 {
            state = model.step(&state, Controls::new(0.0, -4.0), 0.01);
        }
        assert_eq!(state.speed, 0.0);
        assert_eq!(state.yaw_rate, 0.0);
    }

    #[test]
    fn speed_saturates_at_max() {
        let model = VehicleModel::kinematic();
        let mut state = VehicleState::at([0.0, 0.0], 0.0);
        for _ in 0..2000 {
            state = model.step(&state, Controls::new(0.0, 100.0), 0.01);
        }
        assert_eq!(state.speed, model.params.max_speed);
    }

    #[test]
    fn controls_clamp_to_limits() {
        let p = VehicleParams::passenger_car();
        let c = Controls::new(10.0, -100.0).clamped(&p);
        assert_eq!(c.steer, p.max_steer);
        assert_eq!(c.accel, -p.max_accel);
    }

    #[test]
    fn heading_stays_wrapped() {
        let model = VehicleModel::kinematic();
        let mut state = VehicleState::at([0.0, 0.0], 0.0);
        state.speed = 10.0;
        for _ in 0..5000 {
            state = model.step(&state, Controls::new(0.3, 0.0), 0.01);
            assert!(state.heading > -PI - 1e-9 && state.heading <= PI + 1e-9);
        }
    }

    #[test]
    fn dynamic_model_tracks_kinematic_at_moderate_speed() {
        // With linear tires and gentle steering the two formulations should
        // agree to first order over a short horizon.
        let kin = VehicleModel::kinematic();
        let dyn_ = VehicleModel::dynamic();
        let mut a = VehicleState::at([0.0, 0.0], 0.0);
        a.speed = 8.0;
        let mut b = a;
        for _ in 0..200 {
            a = kin.step(&a, Controls::new(0.05, 0.0), 0.01);
            b = dyn_.step(&b, Controls::new(0.05, 0.0), 0.01);
        }
        assert!(
            a.position.distance(b.position) < 0.5,
            "divergence {}",
            a.position.distance(b.position)
        );
    }

    #[test]
    fn dynamic_model_is_stable_from_rest() {
        let model = VehicleModel::dynamic();
        let mut state = VehicleState::at([0.0, 0.0], 0.0);
        for _ in 0..1000 {
            state = model.step(&state, Controls::new(0.1, 2.0), 0.01);
            assert!(state.is_finite(), "diverged: {state:?}");
        }
        assert!(state.speed > 5.0);
    }

    #[test]
    fn velocity_vector_respects_heading() {
        let mut state = VehicleState::at([0.0, 0.0], PI / 2.0);
        state.speed = 3.0;
        let v = state.velocity();
        assert!(v.x.abs() < 1e-12);
        assert!((v.y - 3.0).abs() < 1e-12);
    }
}
