//! Sliding-window iteration over series.
//!
//! Temporal assertion operators ("violated continuously for at least `d`
//! seconds", "recovers within `d` seconds") are evaluated over time windows;
//! this module supplies the window arithmetic.

use crate::{Sample, Series};

/// Iterator over fixed-duration sliding windows of a series.
///
/// Each item is the slice of samples with timestamps in
/// `[t_start, t_start + duration]`, advanced one sample at a time. Produced
/// by [`windows_of`].
#[derive(Debug, Clone)]
pub struct Windows<'a> {
    samples: &'a [Sample],
    duration: f64,
    start: usize,
}

impl<'a> Iterator for Windows<'a> {
    type Item = &'a [Sample];

    fn next(&mut self) -> Option<Self::Item> {
        if self.start >= self.samples.len() {
            return None;
        }
        let t0 = self.samples[self.start].time;
        let end = self.samples[self.start..].partition_point(|s| s.time <= t0 + self.duration)
            + self.start;
        let window = &self.samples[self.start..end];
        self.start += 1;
        Some(window)
    }
}

/// Sliding windows of `duration` seconds over `series`, one per sample.
///
/// # Example
///
/// ```
/// use adassure_trace::{Series, window::windows_of};
///
/// # fn main() -> Result<(), adassure_trace::TraceError> {
/// let s = Series::from_samples("x", (0..5).map(|i| (f64::from(i) * 0.1, 0.0)))?;
/// let lengths: Vec<usize> = windows_of(&s, 0.2).map(<[_]>::len).collect();
/// assert_eq!(lengths, [3, 3, 3, 2, 1]);
/// # Ok(())
/// # }
/// ```
pub fn windows_of(series: &Series, duration: f64) -> Windows<'_> {
    Windows {
        samples: series.samples(),
        duration,
        start: 0,
    }
}

/// Longest run (in seconds) for which `predicate` holds continuously over the
/// series, measured between the first and last sample of each run.
///
/// A single isolated sample satisfying the predicate contributes a run of
/// length zero.
pub fn longest_true_run(series: &Series, mut predicate: impl FnMut(f64) -> bool) -> f64 {
    let mut best = 0.0f64;
    let mut run_start: Option<f64> = None;
    for s in series.samples() {
        if predicate(s.value) {
            let start = *run_start.get_or_insert(s.time);
            best = best.max(s.time - start);
        } else {
            run_start = None;
        }
    }
    best
}

/// First time at which `predicate` has held continuously for at least
/// `duration` seconds, or `None` if it never does.
///
/// This is the debounced-detection primitive: the returned instant is the
/// *end* of the first qualifying run (when a monitor would raise the alarm).
pub fn first_sustained(
    series: &Series,
    duration: f64,
    mut predicate: impl FnMut(f64) -> bool,
) -> Option<f64> {
    let mut run_start: Option<f64> = None;
    for s in series.samples() {
        if predicate(s.value) {
            let start = *run_start.get_or_insert(s.time);
            if s.time - start >= duration {
                return Some(s.time);
            }
        } else {
            run_start = None;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series_with(values: &[f64]) -> Series {
        Series::from_samples(
            "w",
            values.iter().enumerate().map(|(i, &v)| (i as f64 * 0.1, v)),
        )
        .unwrap()
    }

    #[test]
    fn windows_cover_every_start() {
        let s = series_with(&[0.0; 4]);
        assert_eq!(windows_of(&s, 0.1).count(), 4);
        let first = windows_of(&s, 0.1).next().unwrap();
        assert_eq!(first.len(), 2);
    }

    #[test]
    fn windows_of_empty_series() {
        let s = Series::new("e");
        assert_eq!(windows_of(&s, 1.0).count(), 0);
    }

    #[test]
    fn longest_run_measures_duration() {
        // true at t=0.1..0.3 (3 samples = 0.2 s) and t=0.5 (isolated).
        let s = series_with(&[0.0, 1.0, 1.0, 1.0, 0.0, 1.0]);
        let run = longest_true_run(&s, |v| v > 0.5);
        assert!((run - 0.2).abs() < 1e-12);
    }

    #[test]
    fn longest_run_zero_when_never_true() {
        let s = series_with(&[0.0, 0.0]);
        assert_eq!(longest_true_run(&s, |v| v > 0.5), 0.0);
    }

    #[test]
    fn first_sustained_finds_debounced_instant() {
        let s = series_with(&[0.0, 1.0, 1.0, 1.0, 1.0, 0.0]);
        // Run starts at t=0.1; 0.25 s sustained first reached at t=0.4.
        let t = first_sustained(&s, 0.25, |v| v > 0.5).unwrap();
        assert!((t - 0.4).abs() < 1e-12);
    }

    #[test]
    fn first_sustained_requires_continuity() {
        let s = series_with(&[1.0, 0.0, 1.0, 0.0, 1.0, 0.0]);
        assert_eq!(first_sustained(&s, 0.15, |v| v > 0.5), None);
    }

    #[test]
    fn first_sustained_zero_duration_fires_immediately() {
        let s = series_with(&[0.0, 1.0]);
        assert_eq!(first_sustained(&s, 0.0, |v| v > 0.5), Some(0.1));
    }
}
