//! Adversarial coverage for the binary ingest path: truncated frames,
//! flipped bytes, bad magic/version, oversize declared lengths, garbage
//! streams and mid-frame disconnects must yield typed errors and counted
//! drops — never a panic, never a hang, never a wedged server.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use adassure_core::{Assertion, Condition, Severity, SignalExpr};
use adassure_fleet::{
    wire, Fleet, FleetConfig, FrameDecoder, IngestConfig, IngestListener, IngestServer,
    IngestStatsSnapshot, ProducerConfig, SampleBatch, StreamId, WireError,
};

fn catalog() -> Vec<Assertion> {
    vec![Assertion::new(
        "R1",
        "bounded x",
        Severity::Critical,
        Condition::AtMost {
            expr: SignalExpr::signal("x").abs(),
            limit: 1.0,
        },
    )]
}

fn spawn_server() -> IngestServer {
    let fleet = Arc::new(Mutex::new(Fleet::new(catalog(), FleetConfig::default())));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    IngestServer::spawn(
        fleet,
        IngestListener::Tcp(listener),
        IngestConfig::default(),
    )
    .expect("spawn server")
}

/// A realistic multi-frame byte string: hello, open, two batches, close.
fn valid_session_bytes() -> Vec<u8> {
    let mut bytes = Vec::new();
    wire::encode_hello(&mut bytes);
    wire::encode_open_stream(&mut bytes, 1);
    let id = StreamId::from_raw(0, 0, 1);
    let mut batch = SampleBatch::new(id);
    batch.push(0.1, "x", 0.4);
    batch.push(0.1, "y", -2.0);
    batch.push(0.2, "x", 1.8);
    wire::encode_sample_batch(&mut bytes, 2, &batch).expect("encode batch");
    let mut batch = SampleBatch::new(id);
    batch.push(0.3, "x", 0.0);
    wire::encode_sample_batch(&mut bytes, 3, &batch).expect("encode batch");
    wire::encode_close_stream(&mut bytes, 4, id);
    bytes
}

fn drain_all(decoder: &mut FrameDecoder) -> Result<usize, WireError> {
    let mut n = 0;
    while decoder.next_frame()?.is_some() {
        n += 1;
    }
    Ok(n)
}

/// Every prefix of a valid byte stream decodes cleanly: complete frames
/// come out, the truncated tail waits for more bytes, and nothing errors.
#[test]
fn every_truncation_point_is_need_more_bytes_not_an_error() {
    let bytes = valid_session_bytes();
    let mut full = FrameDecoder::new(wire::DEFAULT_MAX_FRAME_LEN);
    full.feed(&bytes);
    let total = drain_all(&mut full).expect("the untruncated stream is valid");
    assert_eq!(total, 5);

    for cut in 0..bytes.len() {
        let mut decoder = FrameDecoder::new(wire::DEFAULT_MAX_FRAME_LEN);
        decoder.feed(&bytes[..cut]);
        let got = drain_all(&mut decoder)
            .unwrap_or_else(|e| panic!("prefix of {cut} bytes errored: {e}"));
        assert!(got <= total);
        // Feeding the remainder always completes the session.
        decoder.feed(&bytes[cut..]);
        let rest = drain_all(&mut decoder).expect("suffix completes cleanly");
        assert_eq!(got + rest, total, "reassembly at cut {cut} lost frames");
    }
}

/// Flipping any single byte must produce either a still-parseable stream
/// or a typed `WireError` — never a panic. (Step 1: every position.)
#[test]
fn single_byte_corruption_never_panics() {
    let bytes = valid_session_bytes();
    for at in 0..bytes.len() {
        for flip in [0xFFu8, 0x80, 0x01] {
            let mut corrupt = bytes.clone();
            corrupt[at] ^= flip;
            let mut decoder = FrameDecoder::new(wire::DEFAULT_MAX_FRAME_LEN);
            decoder.feed(&corrupt);
            // Either outcome is fine; what matters is it returns.
            let _ = drain_all(&mut decoder);
        }
    }
}

/// A declared body length beyond the cap is rejected *before* buffering,
/// and the decoder stays poisoned afterwards.
#[test]
fn oversize_declared_length_is_rejected_up_front() {
    let mut decoder = FrameDecoder::new(1024);
    decoder.feed(&(u32::MAX).to_le_bytes());
    match decoder.next_frame() {
        Err(WireError::FrameTooLong { len, max }) => {
            assert_eq!(len, u32::MAX as usize);
            assert_eq!(max, 1024);
        }
        other => panic!("expected FrameTooLong, got {other:?}"),
    }
    decoder.feed(b"more bytes after the fault");
    assert!(decoder.next_frame().is_err(), "the decoder stays poisoned");
}

/// Pseudo-random garbage never panics or hangs the decoder.
#[test]
fn random_garbage_fuzz_never_panics() {
    let mut state = 0x243F6A8885A308D3u64;
    for round in 0..64 {
        let mut decoder = FrameDecoder::new(64 * 1024);
        let mut bytes = Vec::with_capacity(512);
        for _ in 0..(64 + round * 8) {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            bytes.extend_from_slice(&state.to_le_bytes());
        }
        decoder.feed(&bytes);
        let _ = drain_all(&mut decoder);
    }
}

fn wait_for(server: &IngestServer, what: &str, pred: impl Fn(&IngestStatsSnapshot) -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if pred(&server.stats()) {
            return;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn connect(server: &IngestServer) -> TcpStream {
    let addr = server.local_addr().expect("tcp server has an addr");
    let conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    conn
}

/// Reads until EOF (server closed the connection) or timeout.
fn read_to_close(conn: &mut TcpStream) -> Vec<u8> {
    let mut out = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match conn.read(&mut buf) {
            Ok(0) => return out,
            Ok(n) => out.extend_from_slice(&buf[..n]),
            Err(_) => return out,
        }
    }
}

/// Garbage on a live connection: the server nacks `Malformed`, closes the
/// connection, counts the drop — and keeps serving new connections.
#[test]
fn live_server_survives_garbage_and_keeps_serving() {
    let server = spawn_server();

    let mut conn = connect(&server);
    conn.write_all(b"GET / HTTP/1.1\r\nHost: not-a-frame\r\n\r\n")
        .expect("write garbage");
    let response = read_to_close(&mut conn);
    drop(conn);
    // The nack is itself a valid frame carrying NackReason::Malformed.
    let mut decoder = FrameDecoder::new(wire::DEFAULT_MAX_FRAME_LEN);
    decoder.feed(&response);
    match decoder.next_frame() {
        Ok(Some(wire::Frame::Nack { reason, .. })) => {
            assert_eq!(reason, adassure_fleet::NackReason::Malformed)
        }
        other => panic!("expected a Malformed nack, got {other:?}"),
    }
    wait_for(&server, "malformed count", |s| s.malformed >= 1);

    // A fresh, well-behaved connection still works end to end.
    let mut producer = adassure_fleet::ingest::connect_tcp(
        server.local_addr().unwrap(),
        ProducerConfig::default(),
    )
    .expect("reconnect after garbage");
    let id = producer.open_stream().expect("open");
    let mut batch = SampleBatch::new(id);
    batch.push(0.1, "x", 0.2);
    producer.submit(&batch).expect("submit");
    let report = producer.close_stream(id).expect("close");
    assert!(report.starts_with(b"{"), "close returned report JSON");
    server.shutdown();
}

/// A producer that dies mid-frame is counted as truncated; the server
/// neither panics nor hangs, and the stream machinery stays healthy.
#[test]
fn mid_frame_disconnect_is_counted_as_truncated() {
    let server = spawn_server();

    let mut bytes = Vec::new();
    wire::encode_hello(&mut bytes);
    let id = StreamId::from_raw(0, 0, 1);
    let mut batch = SampleBatch::new(id);
    for k in 0..64 {
        batch.push(0.1 * (k + 1) as f64, "x", 0.5);
    }
    wire::encode_sample_batch(&mut bytes, 1, &batch).expect("encode");

    let mut conn = connect(&server);
    // Send the hello plus half of the batch frame, then vanish.
    let cut = bytes.len() - 40;
    conn.write_all(&bytes[..cut]).expect("write partial");
    conn.flush().unwrap();
    drop(conn);

    wait_for(&server, "truncated count", |s| s.truncated >= 1);
    let snapshot = server.stats();
    assert_eq!(snapshot.batches, 0, "the half-frame was never applied");

    // Server is still alive for the next producer.
    let mut producer = adassure_fleet::ingest::connect_tcp(
        server.local_addr().unwrap(),
        ProducerConfig::default(),
    )
    .expect("reconnect after disconnect");
    let id = producer.open_stream().expect("open");
    producer.close_stream(id).expect("close");
    let stats = server.shutdown();
    assert_eq!(stats.truncated, 1);
    assert_eq!(stats.connections, 2);
}

/// Wrong magic and unsupported version are refused with typed nacks.
#[test]
fn bad_magic_and_bad_version_are_refused() {
    let server = spawn_server();

    // Hand-built hello with wrong magic.
    let mut conn = connect(&server);
    let mut frame = vec![0u8; 4];
    frame.push(0x01); // TYPE_HELLO
    frame.extend_from_slice(b"BADMAG");
    frame.push(wire::VERSION);
    frame.push(wire::LITTLE_ENDIAN);
    let body_len = (frame.len() - 4) as u32;
    frame[..4].copy_from_slice(&body_len.to_le_bytes());
    conn.write_all(&frame).expect("write");
    let response = read_to_close(&mut conn);
    let mut decoder = FrameDecoder::new(wire::DEFAULT_MAX_FRAME_LEN);
    decoder.feed(&response);
    assert!(
        matches!(
            decoder.next_frame(),
            Ok(Some(wire::Frame::Nack {
                reason: adassure_fleet::NackReason::Malformed,
                ..
            }))
        ),
        "wrong magic draws a Malformed nack"
    );

    // Correct magic, future version.
    let mut conn = connect(&server);
    let mut frame = vec![0u8; 4];
    frame.push(0x01);
    frame.extend_from_slice(wire::MAGIC);
    frame.push(wire::VERSION + 9);
    frame.push(wire::LITTLE_ENDIAN);
    let body_len = (frame.len() - 4) as u32;
    frame[..4].copy_from_slice(&body_len.to_le_bytes());
    conn.write_all(&frame).expect("write");
    let response = read_to_close(&mut conn);
    let mut decoder = FrameDecoder::new(wire::DEFAULT_MAX_FRAME_LEN);
    decoder.feed(&response);
    assert!(
        matches!(
            decoder.next_frame(),
            Ok(Some(wire::Frame::Nack {
                reason: adassure_fleet::NackReason::Unsupported,
                ..
            }))
        ),
        "future version draws an Unsupported nack"
    );

    wait_for(&server, "rejections counted", |s| s.malformed >= 1);
    server.shutdown();
}

/// A batch addressed to a shard the fleet doesn't have is a typed,
/// counted rejection — and the connection keeps working afterwards.
#[test]
fn unknown_shard_is_nacked_and_counted() {
    let server = spawn_server();
    let mut producer = adassure_fleet::ingest::connect_tcp(
        server.local_addr().unwrap(),
        ProducerConfig::default(),
    )
    .expect("connect");

    let forged = StreamId::from_raw(9999, 0, 1);
    let mut batch = SampleBatch::new(forged);
    batch.push(0.1, "x", 0.0);
    let err = producer
        .submit(&batch)
        .and_then(|()| producer.flush())
        .expect_err("forged shard must be rejected");
    assert!(
        matches!(
            err,
            adassure_fleet::ProducerError::Rejected {
                reason: adassure_fleet::NackReason::UnknownShard,
                ..
            }
        ),
        "got {err:?}"
    );

    let stats = server.shutdown();
    assert_eq!(stats.rejected_unknown_shard, 1);
}
