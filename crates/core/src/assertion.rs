//! Assertion definitions: a healthy-state condition plus temporal semantics.

use serde::{Deserialize, Serialize};
use std::fmt;

use adassure_trace::SignalId;

use crate::expr::{Env, SignalExpr};

/// Identifier of an assertion (e.g. `"A6"`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AssertionId(String);

impl AssertionId {
    /// Creates an id.
    pub fn new(id: impl Into<String>) -> Self {
        AssertionId(id.into())
    }

    /// The id as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for AssertionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for AssertionId {
    fn from(s: &str) -> Self {
        AssertionId::new(s)
    }
}

impl std::borrow::Borrow<str> for AssertionId {
    fn borrow(&self) -> &str {
        self.as_str()
    }
}

/// How serious a violation of the assertion is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// Worth logging; the vehicle is still safe.
    Info,
    /// Degraded operation; debugging should start.
    Warning,
    /// Safety-relevant misbehaviour.
    Critical,
}

/// The *healthy-state* condition of an assertion. A violation is any cycle
/// where the condition evaluates to `false`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Condition {
    /// `expr <= limit`.
    AtMost {
        /// Monitored expression.
        expr: SignalExpr,
        /// Upper bound.
        limit: f64,
    },
    /// `expr >= limit`.
    AtLeast {
        /// Monitored expression.
        expr: SignalExpr,
        /// Lower bound.
        limit: f64,
    },
    /// The signal has updated within the last `max_age` seconds. Evaluated
    /// only once the signal has been seen at least once.
    Fresh {
        /// Monitored signal.
        signal: SignalId,
        /// Maximum tolerated staleness (s).
        max_age: f64,
    },
}

/// Outcome of evaluating a condition at one instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Eval {
    /// Condition holds.
    Healthy,
    /// Condition violated; carries the offending expression value.
    Violated(f64),
    /// Not all referenced signals have been seen yet.
    Unknown,
    /// The monitor's telemetry is degraded — inputs poisoned by non-finite
    /// samples or stale beyond the health horizon — so neither a healthy
    /// nor a violated verdict can be trusted. [`Condition::eval`] never
    /// produces this; it is raised by the checker's health layer
    /// (see [`crate::online::HealthState`]).
    Inconclusive,
}

impl Condition {
    /// Evaluates the condition against an environment.
    pub fn eval(&self, env: &Env) -> Eval {
        match self {
            Condition::AtMost { expr, limit } => match expr.eval(env) {
                Some(v) if v <= *limit => Eval::Healthy,
                Some(v) => Eval::Violated(v),
                None => Eval::Unknown,
            },
            Condition::AtLeast { expr, limit } => match expr.eval(env) {
                Some(v) if v >= *limit => Eval::Healthy,
                Some(v) => Eval::Violated(v),
                None => Eval::Unknown,
            },
            Condition::Fresh { signal, max_age } => match env.age(signal) {
                Some(age) if age <= *max_age => Eval::Healthy,
                Some(age) => Eval::Violated(age),
                None => Eval::Unknown,
            },
        }
    }

    /// The threshold parameter of the condition (bound or max age).
    pub fn threshold(&self) -> f64 {
        match self {
            Condition::AtMost { limit, .. } | Condition::AtLeast { limit, .. } => *limit,
            Condition::Fresh { max_age, .. } => *max_age,
        }
    }

    /// Returns a copy with the threshold replaced.
    pub fn with_threshold(&self, value: f64) -> Condition {
        match self {
            Condition::AtMost { expr, .. } => Condition::AtMost {
                expr: expr.clone(),
                limit: value,
            },
            Condition::AtLeast { expr, .. } => Condition::AtLeast {
                expr: expr.clone(),
                limit: value,
            },
            Condition::Fresh { signal, .. } => Condition::Fresh {
                signal: signal.clone(),
                max_age: value,
            },
        }
    }

    /// Signals referenced by the condition.
    pub fn signals(&self) -> Vec<SignalId> {
        match self {
            Condition::AtMost { expr, .. } | Condition::AtLeast { expr, .. } => expr.signals(),
            Condition::Fresh { signal, .. } => vec![signal.clone()],
        }
    }
}

/// Temporal semantics: how long a violating condition must persist before
/// the monitor raises an alarm.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Temporal {
    /// Alarm on the first violating cycle.
    Immediate,
    /// Alarm once the condition has been violated continuously for at least
    /// this many seconds (debouncing).
    Sustained(f64),
    /// The condition must hold at least once before the run ends; the alarm
    /// (if any) is raised at finalisation time.
    Eventually,
}

/// A complete assertion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Assertion {
    /// Stable identifier (`"A1"`..).
    pub id: AssertionId,
    /// Human-readable description of the invariant.
    pub description: String,
    /// Severity of a violation.
    pub severity: Severity,
    /// Healthy-state condition.
    pub condition: Condition,
    /// Temporal semantics.
    pub temporal: Temporal,
    /// Start-up grace period (s): the monitor ignores the assertion while
    /// `t < grace`, masking launch transients.
    pub grace: f64,
}

impl Assertion {
    /// Creates an assertion with [`Temporal::Immediate`] semantics and no
    /// grace period; use the builder methods to refine.
    pub fn new(
        id: impl Into<AssertionId>,
        description: impl Into<String>,
        severity: Severity,
        condition: Condition,
    ) -> Self
    where
        AssertionId: From<&'static str>,
    {
        Assertion {
            id: id.into(),
            description: description.into(),
            severity,
            condition,
            temporal: Temporal::Immediate,
            grace: 0.0,
        }
    }

    /// Sets the temporal operator.
    pub fn with_temporal(mut self, temporal: Temporal) -> Self {
        self.temporal = temporal;
        self
    }

    /// Sets the start-up grace period.
    pub fn with_grace(mut self, grace: f64) -> Self {
        self.grace = grace;
        self
    }

    /// Signals the assertion's condition reads — the inputs the compiled
    /// evaluation plan interns and tracks for dirty-skipping.
    pub fn signals(&self) -> Vec<SignalId> {
        self.condition.signals()
    }

    /// Returns a copy with the condition threshold scaled by `factor`
    /// (used by the threshold-sensitivity ablation).
    pub fn with_scaled_threshold(&self, factor: f64) -> Assertion {
        let mut out = self.clone();
        out.condition = self
            .condition
            .with_threshold(self.condition.threshold() * factor);
        out
    }
}

impl From<String> for AssertionId {
    fn from(s: String) -> Self {
        AssertionId::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env_with(pairs: &[(&str, f64)]) -> Env {
        let mut env = Env::new();
        env.set_time(1.0);
        for (name, v) in pairs {
            env.update(&SignalId::new(name), *v);
        }
        env
    }

    #[test]
    fn at_most_semantics() {
        let c = Condition::AtMost {
            expr: SignalExpr::signal("x").abs(),
            limit: 2.0,
        };
        assert_eq!(c.eval(&env_with(&[("x", -1.5)])), Eval::Healthy);
        assert_eq!(c.eval(&env_with(&[("x", 3.0)])), Eval::Violated(3.0));
        assert_eq!(c.eval(&env_with(&[])), Eval::Unknown);
    }

    #[test]
    fn at_least_semantics() {
        let c = Condition::AtLeast {
            expr: SignalExpr::signal("x"),
            limit: 0.0,
        };
        assert_eq!(c.eval(&env_with(&[("x", 0.0)])), Eval::Healthy);
        assert_eq!(c.eval(&env_with(&[("x", -0.1)])), Eval::Violated(-0.1));
    }

    #[test]
    fn fresh_semantics() {
        let c = Condition::Fresh {
            signal: SignalId::new("gnss_x"),
            max_age: 0.5,
        };
        let mut env = Env::new();
        env.set_time(0.0);
        assert_eq!(c.eval(&env), Eval::Unknown, "never seen: unknown");
        env.update(&SignalId::new("gnss_x"), 1.0);
        env.set_time(0.3);
        assert_eq!(c.eval(&env), Eval::Healthy);
        env.set_time(1.0);
        assert_eq!(c.eval(&env), Eval::Violated(1.0));
    }

    #[test]
    fn threshold_accessors() {
        let c = Condition::AtMost {
            expr: SignalExpr::signal("x"),
            limit: 2.0,
        };
        assert_eq!(c.threshold(), 2.0);
        assert_eq!(c.with_threshold(5.0).threshold(), 5.0);
        let f = Condition::Fresh {
            signal: SignalId::new("s"),
            max_age: 0.5,
        };
        assert_eq!(f.with_threshold(1.5).threshold(), 1.5);
    }

    #[test]
    fn builder_sets_fields() {
        let a = Assertion::new(
            "A1",
            "bounded cross-track error",
            Severity::Critical,
            Condition::AtMost {
                expr: SignalExpr::signal("xtrack_err").abs(),
                limit: 1.5,
            },
        )
        .with_temporal(Temporal::Sustained(0.3))
        .with_grace(5.0);
        assert_eq!(a.id.as_str(), "A1");
        assert_eq!(a.temporal, Temporal::Sustained(0.3));
        assert_eq!(a.grace, 5.0);
    }

    #[test]
    fn scaled_threshold_copies() {
        let a = Assertion::new(
            "A1",
            "x",
            Severity::Warning,
            Condition::AtMost {
                expr: SignalExpr::signal("x"),
                limit: 2.0,
            },
        );
        let scaled = a.with_scaled_threshold(0.5);
        assert_eq!(scaled.condition.threshold(), 1.0);
        assert_eq!(a.condition.threshold(), 2.0, "original untouched");
    }

    #[test]
    fn severities_order() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Critical);
    }
}
