//! Signal and trace recording substrate for the ADAssure debugging
//! methodology.
//!
//! An autonomous-driving control loop produces, every cycle, a set of scalar
//! *signals*: ground-truth pose components, sensor readings, estimator
//! outputs, controller error terms and actuator commands. ADAssure's
//! assertions are predicates over these signals, so everything in this crate
//! exists to record them faithfully and query them efficiently:
//!
//! * [`SignalId`] — cheap, hashable signal names (plus the [`well_known`]
//!   catalog used by the rest of the workspace);
//! * [`Series`] — a single signal sampled over time, with interpolation and
//!   finite-difference queries;
//! * [`Trace`] — a set of series recorded from one run, the unit that the
//!   offline assertion checker consumes;
//! * [`stats`] — summary statistics used by assertion mining;
//! * [`window`] — sliding-window iteration used by temporal operators;
//! * [`csv`] — flat-file import frontend so externally authored traces can
//!   be ingested (and traces inspected outside Rust);
//! * [`columnar`] — the `.adt` binary trace store ([`ColumnarTrace`]), the
//!   shape the batch checker consumes.
//!
//! # Example
//!
//! ```
//! use adassure_trace::{Trace, SignalId};
//!
//! let mut trace = Trace::new();
//! for step in 0..100u32 {
//!     let t = f64::from(step) * 0.01;
//!     trace.record("speed", t, 5.0 + t);
//!     trace.record("xtrack_err", t, 0.02 * (t * 3.0).sin());
//! }
//! let speed = trace.series(&SignalId::new("speed")).unwrap();
//! assert_eq!(speed.len(), 100);
//! assert!((speed.value_at(0.505).unwrap() - 5.505).abs() < 1e-9);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod columnar;
pub mod csv;
mod error;
mod series;
mod signal;
pub mod stats;
mod trace;
pub mod window;

pub use columnar::ColumnarTrace;
pub use error::TraceError;
pub use series::{Sample, Series};
pub use signal::{well_known, SignalId};
pub use trace::Trace;
