//! Network ingest soak: drives synthetic vehicle streams through the
//! binary wire protocol over loopback TCP — real frames, real sockets,
//! real go-back-N backpressure — and records the sustained numbers to
//! `BENCH_ingest.json`.
//!
//! The harness spawns an [`adassure_fleet::IngestServer`] on an ephemeral
//! loopback port and `--producers` connection threads, each owning an
//! equal slice of the streams. Every stream is the same seeded LCG
//! telemetry synthesizer as `fleet_soak`, so the workload is reproducible
//! and directly comparable with the in-process soak: the delta between
//! `BENCH_fleet.json` and `BENCH_ingest.json` *is* the wire tax
//! (encode + syscalls + decode + acks).
//!
//! Nothing is allowed to be lost: after the soak the fleet's cycle count
//! must equal `streams x cycles` exactly — saturation nacks and rewinds
//! included — or the run aborts.
//!
//! ```text
//! net_soak [--streams N] [--cycles N] [--shards N] [--batch N]
//!          [--producers N] [--smoke] [--out PATH]
//! ```
//!
//! `--smoke` is the CI mode: a short burst proving the wire path works
//! end to end under concurrency. Regenerate the committed numbers with:
//! `cargo run --release -p adassure-bench --bin net_soak`

use std::net::TcpListener;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use adassure_core::{Assertion, Condition, Severity, SignalExpr};
use adassure_exp::Runtime;
use adassure_fleet::ingest::connect_tcp;
use adassure_fleet::{
    Fleet, FleetConfig, IngestConfig, IngestListener, IngestServer, ProducerConfig, SampleBatch,
    StreamId,
};
use serde::Serialize;

#[derive(Serialize)]
struct Report {
    benchmark: &'static str,
    regenerate: &'static str,
    transport: &'static str,
    producers: usize,
    streams: usize,
    shards: usize,
    workers: usize,
    cycles_per_stream: usize,
    cycles: u64,
    samples: u64,
    violations: u64,
    bytes_rx: u64,
    wall_s: f64,
    samples_per_sec: f64,
    cycles_per_sec: f64,
    mib_per_sec: f64,
    /// `Saturated` nacks the server issued (each batch later re-sent).
    saturated_nacks: u64,
    /// `Superseded` nacks issued during go-back-N rewinds.
    superseded_nacks: u64,
    /// Frames producers re-sent while rewinding.
    resent_frames: u64,
    /// Sampled wire-frame decode latency (log₂ buckets: quantiles are
    /// upper bounds with one-octave relative error).
    decode_p50_ns: f64,
    decode_p99_ns: f64,
    /// Sampled per-cycle checker latency, same fleet series as
    /// `fleet_soak`.
    cycle_p50_ns: f64,
    cycle_p99_ns: f64,
}

struct Args {
    streams: usize,
    cycles: usize,
    shards: usize,
    batch: usize,
    producers: usize,
    smoke: bool,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        streams: 0,
        cycles: 0,
        shards: 8,
        batch: 32,
        producers: 4,
        smoke: false,
        out: String::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut grab = |name: &str| -> usize {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{name} needs a numeric value"))
        };
        match flag.as_str() {
            "--streams" => args.streams = grab("--streams"),
            "--cycles" => args.cycles = grab("--cycles"),
            "--shards" => args.shards = grab("--shards"),
            "--batch" => args.batch = grab("--batch").max(1),
            "--producers" => args.producers = grab("--producers").max(1),
            "--smoke" => args.smoke = true,
            "--out" => args.out = it.next().expect("--out needs a path"),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    if args.streams == 0 {
        args.streams = if args.smoke { 64 } else { 1_024 };
    }
    if args.cycles == 0 {
        args.cycles = if args.smoke { 48 } else { 1_200 };
    }
    if args.out.is_empty() {
        args.out = "BENCH_ingest.json".into();
    }
    // Every producer owns an equal slice of the streams.
    args.streams = args.streams.next_multiple_of(args.producers);
    args
}

fn catalog() -> Vec<Assertion> {
    vec![
        Assertion::new(
            "N1",
            "bounded cross-track error",
            Severity::Critical,
            Condition::AtMost {
                expr: SignalExpr::signal("xtrack").abs(),
                limit: 1.0,
            },
        ),
        Assertion::new(
            "N2",
            "speed stays non-negative",
            Severity::Warning,
            Condition::AtLeast {
                expr: SignalExpr::signal("speed"),
                limit: 0.0,
            },
        ),
        Assertion::new(
            "N3",
            "gnss fix is fresh",
            Severity::Critical,
            Condition::Fresh {
                signal: "gnss_x".into(),
                max_age: 0.5,
            },
        ),
    ]
}

/// Seeded per-stream telemetry synthesizer — identical constants to
/// `fleet_soak`, so both soaks check the same fleet-wide workload.
struct Synth {
    state: u64,
    t: f64,
}

impl Synth {
    fn new(seed: u64) -> Self {
        Synth {
            state: seed.wrapping_mul(2654435761).wrapping_add(12345),
            t: 0.0,
        }
    }

    fn next(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.state >> 11
    }

    fn uniform(&mut self) -> f64 {
        (self.next() % 1_000_000) as f64 / 1_000_000.0
    }

    fn cycle_into(&mut self, batch: &mut SampleBatch) {
        self.t += 0.05;
        let roll = self.uniform();
        let xtrack = if roll < 0.02 {
            1.0 + self.uniform() * 2.0
        } else {
            self.uniform() * 0.9
        };
        batch.push(self.t, "xtrack", xtrack);
        batch.push(self.t, "speed", 4.0 + self.uniform());
        if self.uniform() > 0.2 {
            batch.push(self.t, "gnss_x", self.uniform() * 50.0);
        }
    }
}

fn main() {
    let args = parse_args();
    let runtime = Runtime::global();
    let fleet = Arc::new(Mutex::new(Fleet::new(
        catalog(),
        FleetConfig {
            shards: args.shards,
            runtime,
            ..FleetConfig::default()
        },
    )));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let server = IngestServer::spawn(
        Arc::clone(&fleet),
        IngestListener::Tcp(listener),
        IngestConfig::default(),
    )
    .expect("spawn ingest server");

    let per_producer = args.streams / args.producers;
    let start = Instant::now();
    let producer_stats: Vec<adassure_fleet::ProducerStats> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for p in 0..args.producers {
            let args = &args;
            handles.push(scope.spawn(move || {
                let mut producer =
                    connect_tcp(addr, ProducerConfig::default()).expect("connect producer");
                let ids: Vec<StreamId> = (0..per_producer)
                    .map(|_| producer.open_stream().expect("open stream"))
                    .collect();
                let mut synths: Vec<Synth> = (0..per_producer)
                    .map(|k| Synth::new((p * per_producer + k) as u64))
                    .collect();
                let waves = args.cycles.div_ceil(args.batch);
                for wave in 0..waves {
                    let cycles_this_wave = args.batch.min(args.cycles - wave * args.batch);
                    for (id, synth) in ids.iter().zip(synths.iter_mut()) {
                        let mut batch = SampleBatch::new(*id);
                        for _ in 0..cycles_this_wave {
                            synth.cycle_into(&mut batch);
                        }
                        // Saturation retry is inside the producer: a
                        // Saturated nack rewinds and re-sends the window.
                        producer.submit(&batch).expect("submit batch");
                    }
                }
                for id in &ids {
                    producer.close_stream(*id).expect("close stream");
                }
                let (_, stats) = producer.into_parts();
                stats
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("producer thread"))
            .collect()
    });
    let wall_s = start.elapsed().as_secs_f64();
    let ingest = server.shutdown();

    let fleet = fleet.lock().expect("fleet lock");
    let stats = fleet.stats();
    let expected_cycles = (args.streams * args.cycles) as u64;
    assert_eq!(
        stats.cycles, expected_cycles,
        "every cycle submitted over the wire must be checked exactly once"
    );
    assert_eq!(ingest.samples, stats.samples, "wire samples all applied");
    assert_eq!(stats.bad_cycles, 0, "synth timestamps are monotone");
    assert_eq!(stats.stale_batches, 0, "no batch outlived its stream");
    assert_eq!(stats.closed_streams, args.streams as u64);
    assert_eq!(ingest.truncated, 0);
    assert_eq!(ingest.malformed, 0);

    let resent_frames: u64 = producer_stats.iter().map(|s| s.resent_frames).sum();
    let latency = fleet.cycle_latency();
    let report = Report {
        benchmark: "net_soak",
        regenerate: "cargo run --release -p adassure-bench --bin net_soak",
        transport: "loopback-tcp",
        producers: args.producers,
        streams: args.streams,
        shards: args.shards,
        workers: runtime.workers(),
        cycles_per_stream: args.cycles,
        cycles: stats.cycles,
        samples: stats.samples,
        violations: stats.violations,
        bytes_rx: ingest.bytes_rx,
        wall_s,
        samples_per_sec: stats.samples as f64 / wall_s,
        cycles_per_sec: stats.cycles as f64 / wall_s,
        mib_per_sec: ingest.bytes_rx as f64 / wall_s / (1024.0 * 1024.0),
        saturated_nacks: ingest.saturated_nacks,
        superseded_nacks: ingest.superseded_nacks,
        resent_frames,
        decode_p50_ns: ingest.decode_ns.p50().unwrap_or(0.0),
        decode_p99_ns: ingest.decode_ns.p99().unwrap_or(0.0),
        cycle_p50_ns: latency.p50().unwrap_or(0.0),
        cycle_p99_ns: latency.p99().unwrap_or(0.0),
    };

    println!(
        "soak   : {} producers x {} streams x {} cycles over {} in {:.2} s",
        report.producers, per_producer, report.cycles_per_stream, report.transport, report.wall_s
    );
    println!(
        "ingest : {:.0} samples/sec, {:.0} cycles/sec, {:.1} MiB/s on the wire",
        report.samples_per_sec, report.cycles_per_sec, report.mib_per_sec
    );
    println!(
        "nacks  : {} saturated, {} superseded, {} frames re-sent (zero lost)",
        report.saturated_nacks, report.superseded_nacks, report.resent_frames
    );
    println!(
        "latency: decode p50 <= {:.0} ns / p99 <= {:.0} ns; cycle p50 <= {:.0} ns / p99 <= {:.0} ns",
        report.decode_p50_ns, report.decode_p99_ns, report.cycle_p50_ns, report.cycle_p99_ns
    );

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&args.out, json + "\n").unwrap_or_else(|e| panic!("write {}: {e}", args.out));
    println!("wrote {}", args.out);
}
