//! **T1 — Detection matrix**: which assertion fires under which attack.
//!
//! Rows: the eleven standard attacks. Columns: the catalog assertions.
//! A `x` marks "fired in at least one run" over three scenarios (straight,
//! s-curve, urban loop) with the Pure Pursuit stack.
//!
//! Regenerate with:
//! `cargo run --release -p adassure-bench --bin table1_detection_matrix`

use std::collections::BTreeSet;

use adassure_control::ControllerKind;
use adassure_exp::{AttackSet, Campaign, Grid};
use adassure_scenarios::ScenarioKind;

fn main() {
    let controller = ControllerKind::PurePursuit;
    let seed = 1u64;
    let grid = Grid::new()
        .scenarios([
            ScenarioKind::Straight,
            ScenarioKind::SCurve,
            ScenarioKind::UrbanLoop,
        ])
        .controllers([controller])
        .attacks(AttackSet::Standard)
        .include_clean(true)
        .seeds([seed]);
    let report = Campaign::new("t1_detection_matrix", grid)
        .run()
        .expect("campaign");

    let assertion_ids: Vec<String> = (1..=16).map(|i| format!("A{i}")).collect();

    println!("T1: detection matrix (attack x assertion), {controller} stack, seed {seed}");
    println!("scenarios: straight, s_curve, urban_loop; x = fired in >=1 run\n");
    print!("{:<20}", "attack \\ assertion");
    for id in &assertion_ids {
        print!("{id:>5}");
    }
    println!();

    // Clean baseline row: must be empty.
    let clean_fired: BTreeSet<&str> = report
        .select(|r| r.attack.is_none())
        .iter()
        .flat_map(|r| r.violated.iter().map(String::as_str))
        .collect();
    print!("{:<20}", "(clean)");
    for id in &assertion_ids {
        print!(
            "{:>5}",
            if clean_fired.contains(id.as_str()) {
                "x"
            } else {
                "."
            }
        );
    }
    println!();

    for attack in AttackSet::Standard.specs(0.0) {
        // Only count violations detected after attack onset.
        let fired: BTreeSet<&str> = report
            .select(|r| r.attack.as_deref() == Some(attack.name()))
            .iter()
            .flat_map(|r| r.violated_after_start.iter().map(String::as_str))
            .collect();
        print!("{:<20}", attack.name());
        for id in &assertion_ids {
            print!(
                "{:>5}",
                if fired.contains(id.as_str()) {
                    "x"
                } else {
                    "."
                }
            );
        }
        println!();
    }
    println!("\n(A12 'goal eventually reached' only exists on open routes; the urban");
    println!(" loop is closed, so its column reflects the two open scenarios.)");

    let path = report.write_json("results").expect("write results json");
    eprintln!("wrote {}", path.display());
}
