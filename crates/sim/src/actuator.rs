//! Actuator models: first-order lag with rate and range saturation.
//!
//! Controllers command an ideal steering angle / acceleration; the physical
//! actuator follows with lag and limited slew. The gap between command and
//! actuation matters to ADAssure because assertion A5 (steering-rate bound)
//! is stated over the *command*, while the vehicle responds to the *actual*
//! value — an attack that saturates the actuator shows up as a growing gap.

use serde::{Deserialize, Serialize};

/// Configuration of a first-order actuator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActuatorParams {
    /// First-order time constant (s). Zero means the actuator follows the
    /// command instantly (subject to rate/range limits).
    pub time_constant: f64,
    /// Maximum slew rate (units/s).
    pub rate_limit: f64,
    /// Lower output bound.
    pub min: f64,
    /// Upper output bound.
    pub max: f64,
}

impl ActuatorParams {
    /// Typical steering actuator: 80 ms lag, 0.7 rad/s slew, ±0.55 rad.
    pub fn steering() -> Self {
        ActuatorParams {
            time_constant: 0.08,
            rate_limit: 0.7,
            min: -0.55,
            max: 0.55,
        }
    }

    /// Typical drivetrain/brake actuator: 150 ms lag, 8 (m/s²)/s slew,
    /// accelerations in [-6, 4] m/s².
    pub fn drivetrain() -> Self {
        ActuatorParams {
            time_constant: 0.15,
            rate_limit: 8.0,
            min: -6.0,
            max: 4.0,
        }
    }

    /// An ideal actuator with the given range (no lag, unlimited slew).
    pub fn ideal(min: f64, max: f64) -> Self {
        ActuatorParams {
            time_constant: 0.0,
            rate_limit: f64::INFINITY,
            min,
            max,
        }
    }
}

/// A stateful first-order actuator.
///
/// # Example
///
/// ```
/// use adassure_sim::actuator::{Actuator, ActuatorParams};
///
/// let mut act = Actuator::new(ActuatorParams::ideal(-1.0, 1.0));
/// assert_eq!(act.step(0.5, 0.01), 0.5);   // ideal: follows immediately
/// assert_eq!(act.step(9.0, 0.01), 1.0);   // range saturation
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Actuator {
    params: ActuatorParams,
    value: f64,
}

impl Actuator {
    /// Creates an actuator at output zero (clamped into range).
    pub fn new(params: ActuatorParams) -> Self {
        Actuator {
            params,
            value: 0.0f64.clamp(params.min, params.max),
        }
    }

    /// Current output value.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// The actuator's configuration.
    pub fn params(&self) -> &ActuatorParams {
        &self.params
    }

    /// Advances the actuator by `dt` seconds toward `command`, returning the
    /// new output.
    ///
    /// Non-finite commands are treated as "hold the previous command", so a
    /// misbehaving controller cannot poison the physics.
    pub fn step(&mut self, command: f64, dt: f64) -> f64 {
        let target = if command.is_finite() {
            command.clamp(self.params.min, self.params.max)
        } else {
            self.value
        };
        let desired = if self.params.time_constant > 0.0 {
            // Exact discretisation of dv/dt = (target - v) / tau.
            let alpha = 1.0 - (-dt / self.params.time_constant).exp();
            self.value + alpha * (target - self.value)
        } else {
            target
        };
        let max_delta = self.params.rate_limit * dt;
        let delta = (desired - self.value).clamp(-max_delta, max_delta);
        self.value = (self.value + delta).clamp(self.params.min, self.params.max);
        self.value
    }

    /// Resets the actuator output (clamped into range).
    pub fn reset(&mut self, value: f64) {
        self.value = value.clamp(self.params.min, self.params.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_actuator_follows_and_saturates() {
        let mut a = Actuator::new(ActuatorParams::ideal(-1.0, 1.0));
        assert_eq!(a.step(0.3, 0.01), 0.3);
        assert_eq!(a.step(-5.0, 0.01), -1.0);
    }

    #[test]
    fn lag_approaches_target_exponentially() {
        let params = ActuatorParams {
            time_constant: 0.1,
            rate_limit: f64::INFINITY,
            min: -10.0,
            max: 10.0,
        };
        let mut a = Actuator::new(params);
        // After one time constant the output reaches ~63% of the step.
        let mut t = 0.0;
        while t < 0.1 - 1e-9 {
            a.step(1.0, 0.001);
            t += 0.001;
        }
        assert!((a.value() - 0.632).abs() < 0.01, "{}", a.value());
    }

    #[test]
    fn rate_limit_bounds_slew() {
        let params = ActuatorParams {
            time_constant: 0.0,
            rate_limit: 1.0,
            min: -10.0,
            max: 10.0,
        };
        let mut a = Actuator::new(params);
        let out = a.step(5.0, 0.1);
        assert!((out - 0.1).abs() < 1e-12);
        // Slew is symmetric.
        a.reset(0.0);
        let out = a.step(-5.0, 0.1);
        assert!((out + 0.1).abs() < 1e-12);
    }

    #[test]
    fn non_finite_command_holds_position() {
        let mut a = Actuator::new(ActuatorParams::ideal(-1.0, 1.0));
        a.step(0.5, 0.01);
        assert_eq!(a.step(f64::NAN, 0.01), 0.5);
        assert_eq!(a.step(f64::INFINITY, 0.01), 0.5);
    }

    #[test]
    fn reset_clamps_into_range() {
        let mut a = Actuator::new(ActuatorParams::ideal(-1.0, 1.0));
        a.reset(7.0);
        assert_eq!(a.value(), 1.0);
    }

    #[test]
    fn new_starts_inside_range() {
        let a = Actuator::new(ActuatorParams::ideal(2.0, 3.0));
        assert_eq!(a.value(), 2.0);
    }

    #[test]
    fn steering_defaults_are_sane() {
        let p = ActuatorParams::steering();
        assert!(p.min < 0.0 && p.max > 0.0 && p.rate_limit > 0.0);
        let p = ActuatorParams::drivetrain();
        assert!(p.min < 0.0 && p.max > 0.0);
    }
}
