//! **T2 — Detection rate and latency per attack × controller.**
//!
//! For every attack class and each of the four lateral controllers:
//! detection rate over (2 scenarios × 3 seeds) and mean ± std detection
//! latency of the detected runs.
//!
//! Regenerate with:
//! `cargo run --release -p adassure-bench --bin table2_detection_latency`

use adassure_attacks::campaign::AttackSpec;
use adassure_attacks::Window;
use adassure_bench::{attacks_for, catalog_for, fmt_mean_std, run_attacked};
use adassure_control::ControllerKind;
use adassure_scenarios::{Scenario, ScenarioKind};

fn main() {
    let scenarios: Vec<Scenario> = [ScenarioKind::Straight, ScenarioKind::SCurve]
        .iter()
        .map(|&k| Scenario::of_kind(k).expect("library scenario"))
        .collect();
    let seeds = [1u64, 2, 3];
    let runs_per_cell = scenarios.len() * seeds.len();

    println!(
        "T2: detection rate (of {runs_per_cell} runs) and latency (s, mean±std) per attack x controller"
    );
    println!("scenarios: straight + s_curve; seeds {seeds:?}\n");
    print!("{:<20}", "attack");
    for c in ControllerKind::ALL {
        print!("{:>24}", c.name());
    }
    println!();

    for attack in attacks_for(&scenarios[0]) {
        print!("{:<20}", attack.name());
        for controller in ControllerKind::ALL {
            let mut latencies = Vec::new();
            let mut detected = 0usize;
            for scenario in &scenarios {
                let cat = catalog_for(scenario);
                let spec =
                    AttackSpec::new(attack.kind, Window::from_start(scenario.attack_start));
                for &seed in &seeds {
                    let (_, report) = run_attacked(scenario, controller, &spec, seed, &cat)
                        .expect("attacked run");
                    if let Some(latency) = report.detection_latency(spec.window.start) {
                        detected += 1;
                        latencies.push(latency);
                    }
                }
            }
            print!(
                "{:>24}",
                format!("{detected}/{runs_per_cell} {}", fmt_mean_std(&latencies))
            );
        }
        println!();
    }
    println!("\n(gnss_drift and wheel_speed_freeze are the stealthy tail: they evade");
    println!(" the cross-consistency checks and surface only behaviourally, tens of");
    println!(" seconds later — the expected shape for slow-drag attacks.)");
}
