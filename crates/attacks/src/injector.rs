use std::collections::VecDeque;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use adassure_sim::engine::SensorTap;
use adassure_sim::geometry::{wrap_angle, Vec2};
use adassure_sim::noise::Gaussian;
use adassure_sim::sensor::SensorFrame;
use adassure_sim::vehicle::VehicleState;

use crate::{AttackKind, Window};

/// A stateful injector applying one [`AttackKind`] during a [`Window`].
///
/// Implements [`SensorTap`], so it plugs directly into
/// [`adassure_sim::engine::Engine::run_with_tap`]. Stateful attacks (freeze,
/// delay) keep their buffers here; the injector is deterministic for a given
/// seed.
#[derive(Debug, Clone)]
pub struct AttackInjector {
    kind: AttackKind,
    window: Window,
    rng: SmallRng,
    frozen_fix: Option<Vec2>,
    frozen_speed: Option<f64>,
    delay_buffer: VecDeque<(f64, Vec2)>,
}

impl AttackInjector {
    /// Creates an injector. `seed` drives any stochastic attack (currently
    /// only [`AttackKind::GnssNoise`]).
    pub fn new(kind: AttackKind, window: Window, seed: u64) -> Self {
        AttackInjector {
            kind,
            window,
            rng: SmallRng::seed_from_u64(seed ^ 0xADA55_u64),
            frozen_fix: None,
            frozen_speed: None,
            delay_buffer: VecDeque::new(),
        }
    }

    /// The injected attack.
    pub fn kind(&self) -> &AttackKind {
        &self.kind
    }

    /// The activation window.
    pub fn window(&self) -> &Window {
        &self.window
    }

    /// Captures the injector's mutable state (RNG words, freeze anchors,
    /// delay history) as plain data for mid-run checkpoints.
    pub fn state(&self) -> InjectorState {
        InjectorState {
            rng: self.rng.state(),
            frozen_fix: self.frozen_fix,
            frozen_speed: self.frozen_speed,
            delay_buffer: self.delay_buffer.iter().copied().collect(),
        }
    }

    /// Reinstates a state captured with [`AttackInjector::state`]. The
    /// injector must have been built from the same kind/window/seed.
    pub fn restore(&mut self, s: &InjectorState) {
        self.rng = SmallRng::from_state(s.rng);
        self.frozen_fix = s.frozen_fix;
        self.frozen_speed = s.frozen_speed;
        self.delay_buffer = s.delay_buffer.iter().copied().collect();
    }
}

/// Plain-data snapshot of an [`AttackInjector`]'s mutable state.
#[derive(Debug, Clone, PartialEq)]
pub struct InjectorState {
    /// Attack RNG state (xoshiro256++ words).
    pub rng: [u64; 4],
    /// First fix seen by an active freeze attack, if any.
    pub frozen_fix: Option<Vec2>,
    /// First wheel speed seen by an active freeze attack, if any.
    pub frozen_speed: Option<f64>,
    /// Buffered `(time, fix)` history of a delay attack.
    pub delay_buffer: Vec<(f64, Vec2)>,
}

impl SensorTap for AttackInjector {
    fn tap(&mut self, frame: &mut SensorFrame, _truth: &VehicleState) {
        let t = frame.time;

        // The delay attack records fixes even before activation so it has
        // history to replay from the first active cycle.
        if let AttackKind::GnssDelay { delay } = self.kind {
            if let Some(fix) = frame.gnss {
                self.delay_buffer.push_back((t, fix));
            }
            // Trim anything older than needed.
            while let Some(&(t0, _)) = self.delay_buffer.front() {
                if t - t0 > delay + 1.0 {
                    self.delay_buffer.pop_front();
                } else {
                    break;
                }
            }
        }

        if !self.window.contains(t) {
            return;
        }

        match self.kind {
            AttackKind::GnssBias { offset } | AttackKind::GnssJump { offset } => {
                if let Some(fix) = frame.gnss.as_mut() {
                    *fix += offset;
                }
            }
            AttackKind::GnssDrift { rate } => {
                if let Some(fix) = frame.gnss.as_mut() {
                    *fix += rate * self.window.elapsed(t);
                }
            }
            AttackKind::GnssNoise { std_dev } => {
                if let Some(fix) = frame.gnss.as_mut() {
                    let noise = Gaussian::new(0.0, std_dev);
                    *fix += Vec2::new(noise.sample(&mut self.rng), noise.sample(&mut self.rng));
                }
            }
            AttackKind::GnssFreeze => {
                if let Some(fix) = frame.gnss {
                    let frozen = *self.frozen_fix.get_or_insert(fix);
                    frame.gnss = Some(frozen);
                }
            }
            AttackKind::GnssDropout => {
                frame.gnss = None;
            }
            AttackKind::GnssDelay { delay } => {
                if frame.gnss.is_some() {
                    // Replace the fix with the newest buffered fix at least
                    // `delay` old; drop the fix if no history is old enough.
                    let replay = self
                        .delay_buffer
                        .iter()
                        .rev()
                        .find(|&&(t0, _)| t - t0 >= delay)
                        .map(|&(_, fix)| fix);
                    frame.gnss = replay;
                }
            }
            AttackKind::WheelSpeedScale { factor } => {
                frame.wheel_speed = (frame.wheel_speed * factor).max(0.0);
            }
            AttackKind::WheelSpeedFreeze => {
                let frozen = *self.frozen_speed.get_or_insert(frame.wheel_speed);
                frame.wheel_speed = frozen;
            }
            AttackKind::WheelSpeedNoise { std_dev } => {
                let noise = Gaussian::new(0.0, std_dev);
                frame.wheel_speed = (frame.wheel_speed + noise.sample(&mut self.rng)).max(0.0);
            }
            AttackKind::ImuYawBias { bias } => {
                frame.imu_yaw_rate += bias;
            }
            AttackKind::ImuYawScale { factor } => {
                frame.imu_yaw_rate *= factor;
            }
            AttackKind::CompassBias { bias } => {
                frame.compass = wrap_angle(frame.compass + bias);
            }
            AttackKind::CompassDrift { rate } => {
                frame.compass = wrap_angle(frame.compass + rate * self.window.elapsed(t));
            }
        }
    }
}

// The campaign engine fans injectors out across worker threads, one per
// run; all state is owned (rng, freeze/delay buffers), so this holds by
// construction and must keep holding.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<AttackInjector>();
    assert_send_sync::<crate::campaign::AttackSpec>();
};

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(t: f64, gnss: Option<Vec2>) -> SensorFrame {
        SensorFrame {
            time: t,
            gnss,
            wheel_speed: 5.0,
            imu_yaw_rate: 0.1,
            imu_accel: 0.0,
            compass: 0.2,
        }
    }

    fn truth() -> VehicleState {
        VehicleState::at([0.0, 0.0], 0.0)
    }

    fn apply(injector: &mut AttackInjector, f: SensorFrame) -> SensorFrame {
        let mut f = f;
        injector.tap(&mut f, &truth());
        f
    }

    #[test]
    fn attack_respects_window() {
        let mut inj = AttackInjector::new(
            AttackKind::GnssBias {
                offset: Vec2::new(10.0, 0.0),
            },
            Window::new(1.0, 2.0),
            0,
        );
        let before = apply(&mut inj, frame(0.5, Some(Vec2::ZERO)));
        assert_eq!(before.gnss, Some(Vec2::ZERO));
        let during = apply(&mut inj, frame(1.5, Some(Vec2::ZERO)));
        assert_eq!(during.gnss, Some(Vec2::new(10.0, 0.0)));
        let after = apply(&mut inj, frame(2.5, Some(Vec2::ZERO)));
        assert_eq!(after.gnss, Some(Vec2::ZERO));
    }

    #[test]
    fn drift_grows_linearly_from_activation() {
        let mut inj = AttackInjector::new(
            AttackKind::GnssDrift {
                rate: Vec2::new(1.0, 0.0),
            },
            Window::from_start(10.0),
            0,
        );
        let f = apply(&mut inj, frame(13.0, Some(Vec2::ZERO)));
        assert_eq!(f.gnss, Some(Vec2::new(3.0, 0.0)));
    }

    #[test]
    fn freeze_repeats_first_active_fix() {
        let mut inj = AttackInjector::new(AttackKind::GnssFreeze, Window::from_start(1.0), 0);
        apply(&mut inj, frame(0.5, Some(Vec2::new(1.0, 1.0)))); // pre-attack
        let f1 = apply(&mut inj, frame(1.0, Some(Vec2::new(2.0, 2.0))));
        let f2 = apply(&mut inj, frame(1.1, Some(Vec2::new(9.0, 9.0))));
        assert_eq!(f1.gnss, Some(Vec2::new(2.0, 2.0)));
        assert_eq!(f2.gnss, Some(Vec2::new(2.0, 2.0)));
    }

    #[test]
    fn dropout_removes_fixes() {
        let mut inj = AttackInjector::new(AttackKind::GnssDropout, Window::always(), 0);
        let f = apply(&mut inj, frame(0.0, Some(Vec2::ZERO)));
        assert_eq!(f.gnss, None);
    }

    #[test]
    fn delay_replays_old_fixes() {
        let mut inj = AttackInjector::new(
            AttackKind::GnssDelay { delay: 0.5 },
            Window::from_start(1.0),
            0,
        );
        // Build history at 0.1 s cadence.
        for i in 0..20 {
            let t = f64::from(i) * 0.1;
            apply(&mut inj, frame(t, Some(Vec2::new(t, 0.0))));
        }
        let f = apply(&mut inj, frame(2.0, Some(Vec2::new(2.0, 0.0))));
        let fix = f.gnss.unwrap();
        assert!((fix.x - 1.5).abs() < 1e-9, "replayed {fix:?}");
    }

    #[test]
    fn delay_without_history_drops_fix() {
        let mut inj =
            AttackInjector::new(AttackKind::GnssDelay { delay: 10.0 }, Window::always(), 0);
        let f = apply(&mut inj, frame(0.0, Some(Vec2::ZERO)));
        assert_eq!(f.gnss, None);
    }

    #[test]
    fn wheel_attacks() {
        let mut inj = AttackInjector::new(
            AttackKind::WheelSpeedScale { factor: 0.5 },
            Window::always(),
            0,
        );
        assert_eq!(apply(&mut inj, frame(0.0, None)).wheel_speed, 2.5);

        let mut inj = AttackInjector::new(AttackKind::WheelSpeedFreeze, Window::always(), 0);
        assert_eq!(apply(&mut inj, frame(0.0, None)).wheel_speed, 5.0);
        let mut f = frame(0.1, None);
        f.wheel_speed = 9.0;
        assert_eq!(apply(&mut inj, f).wheel_speed, 5.0);
    }

    #[test]
    fn wheel_noise_is_zero_mean_and_clamped() {
        let mut inj = AttackInjector::new(
            AttackKind::WheelSpeedNoise { std_dev: 1.0 },
            Window::always(),
            3,
        );
        let mut sum = 0.0;
        for i in 0..2000 {
            let f = apply(&mut inj, frame(f64::from(i) * 0.01, None));
            assert!(f.wheel_speed >= 0.0);
            sum += f.wheel_speed - 5.0;
        }
        assert!((sum / 2000.0).abs() < 0.1, "biased noise: {}", sum / 2000.0);
    }

    #[test]
    fn imu_yaw_scale_multiplies() {
        let mut inj =
            AttackInjector::new(AttackKind::ImuYawScale { factor: 2.0 }, Window::always(), 0);
        assert!((apply(&mut inj, frame(0.0, None)).imu_yaw_rate - 0.2).abs() < 1e-12);
    }

    #[test]
    fn compass_drift_grows_from_activation() {
        let mut inj = AttackInjector::new(
            AttackKind::CompassDrift { rate: 0.1 },
            Window::from_start(10.0),
            0,
        );
        let before = apply(&mut inj, frame(5.0, None));
        assert!((before.compass - 0.2).abs() < 1e-12);
        let later = apply(&mut inj, frame(15.0, None));
        assert!((later.compass - 0.7).abs() < 1e-12, "{}", later.compass);
    }

    #[test]
    fn imu_and_compass_bias() {
        let mut inj =
            AttackInjector::new(AttackKind::ImuYawBias { bias: 0.2 }, Window::always(), 0);
        assert!((apply(&mut inj, frame(0.0, None)).imu_yaw_rate - 0.3).abs() < 1e-12);

        let mut inj =
            AttackInjector::new(AttackKind::CompassBias { bias: 0.5 }, Window::always(), 0);
        assert!((apply(&mut inj, frame(0.0, None)).compass - 0.7).abs() < 1e-12);
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let run = |seed| {
            let mut inj = AttackInjector::new(
                AttackKind::GnssNoise { std_dev: 2.0 },
                Window::always(),
                seed,
            );
            (0..10)
                .map(|i| {
                    apply(&mut inj, frame(f64::from(i) * 0.1, Some(Vec2::ZERO)))
                        .gnss
                        .unwrap()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn untouched_channels_pass_through() {
        let mut inj = AttackInjector::new(AttackKind::GnssDropout, Window::always(), 0);
        let f = apply(&mut inj, frame(0.0, Some(Vec2::ZERO)));
        assert_eq!(f.wheel_speed, 5.0);
        assert_eq!(f.imu_yaw_rate, 0.1);
        assert_eq!(f.compass, 0.2);
    }
}
