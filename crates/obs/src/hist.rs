//! Fixed-bucket log₂ latency histograms.
//!
//! HDR-style: bucket `i` covers `[lo·2^i, lo·2^(i+1))`, so a handful of
//! buckets span nanoseconds to seconds with bounded relative error (one
//! octave). The bucket array is sized at construction and never grows —
//! recording on the hot path is an exponent extraction and one counter
//! increment, with no allocation.

use serde::{Deserialize, Serialize};

/// A log₂-bucketed histogram over non-negative finite values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Lower bound of bucket 0; bucket `i` covers `[lo·2^i, lo·2^(i+1))`.
    pub lo: f64,
    /// Per-bucket counts.
    pub buckets: Vec<u64>,
    /// Values below `lo` (counted in `count`/`sum` but not bucketed).
    pub underflow: u64,
    /// Values at or above the last bucket's upper bound.
    pub overflow: u64,
    /// Non-finite values, dropped entirely.
    pub rejected: u64,
    /// Number of recorded (finite) values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: f64,
    /// Largest recorded value (`0.0` while empty).
    pub max: f64,
}

impl Histogram {
    /// A histogram with `buckets` log₂ buckets starting at `lo` (> 0,
    /// finite).
    pub fn new(lo: f64, buckets: usize) -> Self {
        assert!(lo > 0.0 && lo.is_finite(), "histogram lo must be positive");
        Histogram {
            lo,
            buckets: vec![0; buckets],
            underflow: 0,
            overflow: 0,
            rejected: 0,
            count: 0,
            sum: 0.0,
            max: 0.0,
        }
    }

    /// Nanosecond layout: 40 octaves from 16 ns to ~4.8 h — cycle
    /// evaluation times land in the low octaves with headroom above.
    pub fn nanos() -> Self {
        Histogram::new(16.0, 40)
    }

    /// Seconds layout: 28 octaves from 1 ms up — detection latencies are
    /// fractions of a second to tens of seconds.
    pub fn seconds() -> Self {
        Histogram::new(1e-3, 28)
    }

    /// Records one value. Non-finite values are rejected; negatives and
    /// values below `lo` count as underflow. Never allocates.
    #[inline]
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() {
            self.rejected += 1;
            return;
        }
        self.count += 1;
        self.sum += v;
        if v > self.max {
            self.max = v;
        }
        let ratio = v / self.lo;
        if ratio < 1.0 {
            self.underflow += 1;
            return;
        }
        // floor(log₂ ratio) via IEEE-754 exponent extraction: ratio >= 1 here,
        // so the biased exponent is >= 1023 and the subtraction cannot wrap.
        let octave = ((ratio.to_bits() >> 52) & 0x7ff) as usize - 1023;
        match self.buckets.get_mut(octave) {
            Some(bucket) => *bucket += 1,
            None => self.overflow += 1,
        }
    }

    /// Whether nothing (not even a rejected value) was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0 && self.rejected == 0
    }

    /// The exclusive upper bound of bucket `i`.
    pub fn upper_bound(&self, i: usize) -> f64 {
        self.lo * 2f64.powi(i as i32 + 1)
    }

    /// Mean of the recorded values (`None` while empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Upper-bound estimate of the `q`-quantile (`q` in `[0, 1]`): the
    /// upper edge of the bucket containing the rank. `None` while empty;
    /// `max` when the rank lands in the overflow region.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = self.underflow;
        if rank <= seen {
            return Some(self.lo);
        }
        for (i, &bucket) in self.buckets.iter().enumerate() {
            seen += bucket;
            if rank <= seen {
                return Some(self.upper_bound(i));
            }
        }
        Some(self.max)
    }

    /// Median estimate — [`Histogram::quantile`] at `q = 0.5`.
    ///
    /// # Error bounds
    ///
    /// Log₂ buckets bound the *relative* error at one octave: the true
    /// quantile lies in `[p/2, p]` where `p` is the returned bucket upper
    /// edge (a value can be at most 2× smaller than its bucket's upper
    /// bound). Two degenerate ranks are exact-ish instead: a rank in the
    /// underflow region returns `lo` (true value is below it), and a rank
    /// in the overflow region returns the recorded `max` (exact).
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// 99th-percentile estimate — [`Histogram::quantile`] at `q = 0.99`.
    /// Same one-octave relative error bound as [`Histogram::p50`].
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// Adds `other`'s counts into `self`. Both sides must share a layout
    /// (same `lo`, same bucket count).
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.lo == other.lo && self.buckets.len() == other.buckets.len(),
            "merging histograms with different layouts"
        );
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.rejected += other.rejected;
        self.count += other.count;
        self.sum += other.sum;
        if other.max > self.max {
            self.max = other.max;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_by_octave() {
        let mut h = Histogram::new(1.0, 4);
        for v in [1.0, 1.5, 2.0, 3.9, 4.0, 8.0, 15.9] {
            h.record(v);
        }
        assert_eq!(h.buckets, vec![2, 2, 1, 2]);
        assert_eq!(h.count, 7);
        assert_eq!(h.max, 15.9);
    }

    #[test]
    fn underflow_overflow_rejected() {
        let mut h = Histogram::new(1.0, 2);
        h.record(0.5);
        h.record(-3.0);
        h.record(4.0); // beyond bucket 1's upper bound
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.underflow, 2);
        assert_eq!(h.overflow, 1);
        assert_eq!(h.rejected, 2);
        assert_eq!(h.count, 3, "rejected values are not counted");
    }

    #[test]
    fn exact_powers_land_in_their_own_bucket() {
        let mut h = Histogram::new(1.0, 8);
        h.record(1.0);
        h.record(2.0);
        h.record(4.0);
        assert_eq!(&h.buckets[..3], &[1, 1, 1]);
    }

    #[test]
    fn quantile_estimates_from_bucket_edges() {
        let mut h = Histogram::new(1.0, 8);
        for _ in 0..90 {
            h.record(1.5); // bucket 0, upper bound 2
        }
        for _ in 0..10 {
            h.record(100.0); // bucket 6, upper bound 128
        }
        assert_eq!(h.quantile(0.5), Some(2.0));
        assert_eq!(h.quantile(0.99), Some(128.0));
        assert_eq!(Histogram::new(1.0, 2).quantile(0.5), None);
    }

    #[test]
    fn p50_p99_within_one_octave_of_truth() {
        let mut h = Histogram::nanos();
        let mut values: Vec<f64> = (1..=1000).map(|i| 40.0 * i as f64).collect();
        for &v in &values {
            h.record(v);
        }
        values.sort_by(f64::total_cmp);
        let true_p50 = values[499];
        let true_p99 = values[989];
        let (p50, p99) = (h.p50().unwrap(), h.p99().unwrap());
        assert!(
            p50 >= true_p50 && p50 <= true_p50 * 2.0,
            "{p50} vs {true_p50}"
        );
        assert!(
            p99 >= true_p99 && p99 <= true_p99 * 2.0,
            "{p99} vs {true_p99}"
        );
        assert_eq!(Histogram::nanos().p50(), None);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new(1.0, 4);
        let mut b = Histogram::new(1.0, 4);
        a.record(1.0);
        b.record(2.0);
        b.record(9.0);
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.buckets, vec![1, 1, 0, 1]);
        assert_eq!(a.max, 9.0);
    }

    #[test]
    #[should_panic(expected = "different layouts")]
    fn merge_rejects_mismatched_layouts() {
        let mut a = Histogram::new(1.0, 4);
        a.merge(&Histogram::new(2.0, 4));
    }

    #[test]
    fn standard_layouts_cover_expected_ranges() {
        let ns = Histogram::nanos();
        assert!(
            ns.upper_bound(ns.buckets.len() - 1) > 1e12,
            "covers > 16 min"
        );
        let s = Histogram::seconds();
        assert!(s.upper_bound(s.buckets.len() - 1) > 1e5);
    }

    #[test]
    fn round_trips_through_json() {
        let mut h = Histogram::seconds();
        h.record(0.25);
        h.record(3.0);
        let json = serde_json::to_string(&h).unwrap();
        let back: Histogram = serde_json::from_str(&json).unwrap();
        assert_eq!(back, h);
    }
}
