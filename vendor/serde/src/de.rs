//! Deserialization half.
//!
//! Simplified relative to real serde: a [`Deserializer`] produces a parsed
//! [`Content`] tree and [`Deserialize`] impls pattern-match on it. Manual
//! impls written against the real serde signatures
//! (`fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error>`)
//! compile unchanged.

use std::fmt::Display;
use std::marker::PhantomData;

/// Error raised by a deserializer.
pub trait Error: Sized + std::error::Error {
    /// Builds an error from an arbitrary message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A self-describing parsed value (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer.
    U64(u64),
    /// A float.
    F64(f64),
    /// A string.
    String(String),
    /// An array.
    Seq(Vec<Content>),
    /// An object (insertion-ordered).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// A short description of the content's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::I64(_) | Content::U64(_) => "integer",
            Content::F64(_) => "float",
            Content::String(_) => "string",
            Content::Seq(_) => "array",
            Content::Map(_) => "object",
        }
    }
}

/// A data-format backend: hands over the parsed content tree.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: Error;

    /// Consumes the deserializer, yielding its parsed [`Content`].
    fn deserialize_content(self) -> Result<Content, Self::Error>;
}

/// A value constructible from any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Deserializes `Self` from `deserializer`.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// Values deserializable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

/// A [`Deserializer`] over an already-parsed [`Content`] tree; used by
/// derive-generated code to recurse into fields and elements.
pub struct ContentDeserializer<E> {
    content: Content,
    marker: PhantomData<fn() -> E>,
}

impl<E> ContentDeserializer<E> {
    /// Wraps a content tree.
    pub fn new(content: Content) -> Self {
        ContentDeserializer {
            content,
            marker: PhantomData,
        }
    }
}

impl<'de, E: Error> Deserializer<'de> for ContentDeserializer<E> {
    type Error = E;

    fn deserialize_content(self) -> Result<Content, E> {
        Ok(self.content)
    }
}

/// Deserializes a `T` from a content subtree (derive helper).
pub fn from_content<'de, T: Deserialize<'de>, E: Error>(content: Content) -> Result<T, E> {
    T::deserialize(ContentDeserializer::<E>::new(content))
}

/// Removes and returns a named field from an object's entry list, or
/// [`Content::Null`] when absent (derive helper; `Option` fields treat the
/// `Null` as `None`).
pub fn take_field(entries: &mut Vec<(String, Content)>, name: &str) -> Content {
    entries
        .iter()
        .position(|(k, _)| k == name)
        .map(|i| entries.remove(i).1)
        .unwrap_or(Content::Null)
}

fn unexpected<T, E: Error>(expected: &str, got: &Content) -> Result<T, E> {
    Err(E::custom(format_args!(
        "expected {expected}, found {}",
        got.kind()
    )))
}

macro_rules! impl_deserialize_int {
    ($($ty:ty),* $(,)?) => {
        $(impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let c = deserializer.deserialize_content()?;
                let out = match &c {
                    Content::I64(v) => <$ty>::try_from(*v).ok(),
                    Content::U64(v) => <$ty>::try_from(*v).ok(),
                    _ => return unexpected(stringify!($ty), &c),
                };
                out.ok_or_else(|| Error::custom(concat!("integer out of range for ", stringify!($ty))))
            }
        })*
    };
}

impl_deserialize_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Bool(v) => Ok(v),
            other => unexpected("bool", &other),
        }
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::F64(v) => Ok(v),
            Content::I64(v) => Ok(v as f64),
            Content::U64(v) => Ok(v as f64),
            other => unexpected("number", &other),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        f64::deserialize(deserializer).map(|v| v as f32)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::String(s) => Ok(s),
            other => unexpected("string", &other),
        }
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Null => Ok(()),
            other => unexpected("null", &other),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Null => Ok(None),
            other => from_content(other).map(Some),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Seq(items) => items.into_iter().map(from_content).collect(),
            other => unexpected("array", &other),
        }
    }
}

impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for std::collections::BTreeSet<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Vec::<T>::deserialize(deserializer).map(|v| v.into_iter().collect())
    }
}

impl<'de, K, V> Deserialize<'de> for std::collections::BTreeMap<K, V>
where
    K: Deserialize<'de> + Ord,
    V: Deserialize<'de>,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Map(entries) => entries
                .into_iter()
                .map(|(k, v)| Ok((from_content(Content::String(k))?, from_content(v)?)))
                .collect(),
            other => unexpected("object", &other),
        }
    }
}

macro_rules! impl_deserialize_tuple {
    ($(($($name:ident),+))*) => {
        $(impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<De: Deserializer<'de>>(deserializer: De) -> Result<Self, De::Error> {
                match deserializer.deserialize_content()? {
                    Content::Seq(items) => {
                        let expected = impl_deserialize_tuple!(@count $($name)+);
                        if items.len() != expected {
                            return Err(Error::custom(format_args!(
                                "expected array of {expected}, found {}",
                                items.len()
                            )));
                        }
                        let mut iter = items.into_iter();
                        Ok(($(from_content::<$name, De::Error>(
                            iter.next().expect("length checked"),
                        )?,)+))
                    }
                    other => unexpected("array", &other),
                }
            }
        })*
    };
    (@count $($name:ident)+) => { [$(impl_deserialize_tuple!(@one $name)),+].len() };
    (@one $name:ident) => { () };
}

impl_deserialize_tuple! {
    (T0)
    (T0, T1)
    (T0, T1, T2)
    (T0, T1, T2, T3)
}
