//! Network ingestion: the connection-per-producer server loop feeding the
//! sharded fleet, and the reusable client-side producer.
//!
//! The server accepts TCP or Unix-domain connections, runs the
//! [`crate::wire`] protocol on each (one thread per producer — plain
//! `std::net`, no async runtime), decodes frames into the fleet's
//! bounded shard queues through a lock-free [`crate::FleetHandle`], and
//! drains the shards on a dedicated thread. Backpressure is end-to-end
//! and typed: a saturated shard queue surfaces to the producer as a
//! [`NackReason::Saturated`] with a retry-after hint — nothing is
//! silently dropped, and every rejection is counted in [`IngestStats`].
//!
//! # Ordering under backpressure (go-back-N)
//!
//! Per-stream batch order is what the checker's determinism rests on, so
//! the connection enforces a sequence discipline: every post-handshake
//! frame carries a `u64` sequence number and the server only applies the
//! next expected one. When a batch is refused as `Saturated`, the
//! expected sequence *stays put*; frames already in flight behind it are
//! answered `Superseded` (counted, never applied) and the producer
//! rewinds — re-sending its unacknowledged window from the refused
//! sequence on. The result is exactly-once, in-order application of
//! every batch, which is what makes wire-path output bit-identical to
//! in-process submission (pinned by `tests/ingest_differential.rs`).

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use adassure_obs::Histogram;

use crate::fleet::{Fleet, FleetHandle, SubmitError};
use crate::shard::StreamError;
use crate::stream::{SampleBatch, StreamId};
use crate::wire::{
    encode_ack, encode_close_stream, encode_get_metrics, encode_hello, encode_nack,
    encode_open_stream, encode_sample_batch, AckBody, Frame, FrameDecoder, NackReason, WireError,
    DEFAULT_MAX_FRAME_LEN, VERSION,
};

/// Sample the per-frame decode latency every `DECODE_TIMING_MASK + 1`
/// frames — the same stride philosophy as the shard's cycle timing.
const DECODE_TIMING_MASK: u64 = 7;

/// Ingest server tuning.
#[derive(Debug, Clone, Copy)]
pub struct IngestConfig {
    /// Cap on a frame body; a declared length beyond it closes the
    /// connection with a typed error before any buffering.
    pub max_frame_len: usize,
    /// Retry hint (µs) carried by `Saturated` nacks.
    pub retry_after_us: u32,
    /// Drain-thread cadence: 0 polls eagerly (parking briefly when
    /// idle); a positive value sleeps that many µs between polls —
    /// useful in tests to force queue saturation.
    pub poll_interval_us: u64,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            retry_after_us: 100,
            poll_interval_us: 0,
        }
    }
}

/// The transport the server listens on.
#[derive(Debug)]
pub enum IngestListener {
    /// Loopback/LAN TCP.
    Tcp(TcpListener),
    /// Unix-domain socket (same protocol, no TCP stack).
    #[cfg(unix)]
    Unix(UnixListener),
}

/// Live ingestion counters, shared across connection threads.
#[derive(Debug)]
pub struct IngestStats {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Frames decoded (all types).
    pub frames: AtomicU64,
    /// Sample batches applied to shard queues.
    pub batches: AtomicU64,
    /// Samples inside applied batches.
    pub samples: AtomicU64,
    /// Streams opened over the wire.
    pub opens: AtomicU64,
    /// Streams closed over the wire.
    pub closes: AtomicU64,
    /// Batches refused with `Saturated` (each later re-sent by its
    /// producer).
    pub saturated_nacks: AtomicU64,
    /// Frames refused as `Superseded` during a rewind.
    pub superseded_nacks: AtomicU64,
    /// Batches addressed to a shard the fleet does not have.
    pub rejected_unknown_shard: AtomicU64,
    /// Close requests for stale or unknown streams.
    pub rejected_stale: AtomicU64,
    /// Protocol-level rejections: malformed or oversized frames, bad
    /// magic, unsupported versions, pre-handshake traffic.
    pub malformed: AtomicU64,
    /// Connections that disconnected mid-frame.
    pub truncated: AtomicU64,
    /// Raw bytes received.
    pub bytes_rx: AtomicU64,
    /// Sampled wall-clock frame decode latency (1-in-8 frames).
    pub decode_ns: Mutex<Histogram>,
}

impl Default for IngestStats {
    fn default() -> Self {
        IngestStats {
            connections: AtomicU64::new(0),
            frames: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            samples: AtomicU64::new(0),
            opens: AtomicU64::new(0),
            closes: AtomicU64::new(0),
            saturated_nacks: AtomicU64::new(0),
            superseded_nacks: AtomicU64::new(0),
            rejected_unknown_shard: AtomicU64::new(0),
            rejected_stale: AtomicU64::new(0),
            malformed: AtomicU64::new(0),
            truncated: AtomicU64::new(0),
            bytes_rx: AtomicU64::new(0),
            decode_ns: Mutex::new(Histogram::nanos()),
        }
    }
}

/// A point-in-time copy of [`IngestStats`].
#[derive(Debug, Clone)]
pub struct IngestStatsSnapshot {
    /// Connections accepted.
    pub connections: u64,
    /// Frames decoded.
    pub frames: u64,
    /// Batches applied.
    pub batches: u64,
    /// Samples applied.
    pub samples: u64,
    /// Streams opened over the wire.
    pub opens: u64,
    /// Streams closed over the wire.
    pub closes: u64,
    /// `Saturated` nacks sent.
    pub saturated_nacks: u64,
    /// `Superseded` nacks sent.
    pub superseded_nacks: u64,
    /// Unknown-shard rejections.
    pub rejected_unknown_shard: u64,
    /// Stale/unknown-stream rejections.
    pub rejected_stale: u64,
    /// Protocol-level rejections (malformed frames, bad magic,
    /// unsupported version, pre-handshake traffic).
    pub malformed: u64,
    /// Mid-frame disconnects.
    pub truncated: u64,
    /// Raw bytes received.
    pub bytes_rx: u64,
    /// Sampled frame decode latency.
    pub decode_ns: Histogram,
}

impl IngestStats {
    /// Copies every counter (and the decode histogram) at once.
    pub fn snapshot(&self) -> IngestStatsSnapshot {
        IngestStatsSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            frames: self.frames.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            samples: self.samples.load(Ordering::Relaxed),
            opens: self.opens.load(Ordering::Relaxed),
            closes: self.closes.load(Ordering::Relaxed),
            saturated_nacks: self.saturated_nacks.load(Ordering::Relaxed),
            superseded_nacks: self.superseded_nacks.load(Ordering::Relaxed),
            rejected_unknown_shard: self.rejected_unknown_shard.load(Ordering::Relaxed),
            rejected_stale: self.rejected_stale.load(Ordering::Relaxed),
            malformed: self.malformed.load(Ordering::Relaxed),
            truncated: self.truncated.load(Ordering::Relaxed),
            bytes_rx: self.bytes_rx.load(Ordering::Relaxed),
            decode_ns: self.decode_ns.lock().expect("decode hist lock").clone(),
        }
    }
}

/// The ingest server: accept loop, one protocol thread per producer
/// connection, and a drain thread turning queued batches into checker
/// cycles.
///
/// The fleet is shared (`Arc<Mutex<Fleet>>`) so a metrics endpoint — or
/// the embedding `monitor-server` — can serve exporter snapshots from
/// the same instance the wire path feeds. Batches themselves bypass the
/// mutex entirely via [`FleetHandle`]; the lock is only taken for
/// opens, closes, metrics reads and shard drains.
#[derive(Debug)]
pub struct IngestServer {
    fleet: Arc<Mutex<Fleet>>,
    stats: Arc<IngestStats>,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
    local_addr: Option<SocketAddr>,
}

impl IngestServer {
    /// Starts serving `listener` against `fleet`. Returns immediately;
    /// accept/drain threads run until [`IngestServer::shutdown`].
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] when the listener cannot be switched to
    /// non-blocking accept mode.
    pub fn spawn(
        fleet: Arc<Mutex<Fleet>>,
        listener: IngestListener,
        config: IngestConfig,
    ) -> std::io::Result<Self> {
        let stats = Arc::new(IngestStats::default());
        let stop = Arc::new(AtomicBool::new(false));
        let conn_threads = Arc::new(Mutex::new(Vec::new()));
        let local_addr = match &listener {
            IngestListener::Tcp(l) => Some(l.local_addr()?),
            #[cfg(unix)]
            IngestListener::Unix(_) => None,
        };

        let mut threads = Vec::new();
        {
            let fleet = Arc::clone(&fleet);
            let stats = Arc::clone(&stats);
            let stop = Arc::clone(&stop);
            let conn_threads = Arc::clone(&conn_threads);
            match listener {
                IngestListener::Tcp(l) => {
                    l.set_nonblocking(true)?;
                    threads.push(std::thread::spawn(move || {
                        accept_tcp(&l, &fleet, &stats, &stop, &conn_threads, config);
                    }));
                }
                #[cfg(unix)]
                IngestListener::Unix(l) => {
                    l.set_nonblocking(true)?;
                    threads.push(std::thread::spawn(move || {
                        accept_unix(&l, &fleet, &stats, &stop, &conn_threads, config);
                    }));
                }
            }
        }
        {
            let fleet = Arc::clone(&fleet);
            let stop = Arc::clone(&stop);
            threads.push(std::thread::spawn(move || {
                drain_loop(&fleet, &stop, config)
            }));
        }

        Ok(IngestServer {
            fleet,
            stats,
            stop,
            threads,
            conn_threads,
            local_addr,
        })
    }

    /// The bound TCP address (`None` for Unix-domain listeners). Useful
    /// after binding port 0.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.local_addr
    }

    /// The shared fleet this server feeds.
    pub fn fleet(&self) -> &Arc<Mutex<Fleet>> {
        &self.fleet
    }

    /// A point-in-time copy of the ingestion counters.
    pub fn stats(&self) -> IngestStatsSnapshot {
        self.stats.snapshot()
    }

    /// Stops accepting, waits for every connection and drain thread, and
    /// returns the final counters. Queued batches are drained before the
    /// drain thread exits.
    pub fn shutdown(mut self) -> IngestStatsSnapshot {
        self.stop.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        let conns: Vec<_> = self
            .conn_threads
            .lock()
            .expect("conn thread list lock")
            .drain(..)
            .collect();
        for t in conns {
            let _ = t.join();
        }
        // One final drain so nothing submitted in the last instants of a
        // connection is left queued.
        self.fleet.lock().expect("fleet lock").poll();
        self.stats.snapshot()
    }
}

fn accept_tcp(
    listener: &TcpListener,
    fleet: &Arc<Mutex<Fleet>>,
    stats: &Arc<IngestStats>,
    stop: &Arc<AtomicBool>,
    conn_threads: &Arc<Mutex<Vec<JoinHandle<()>>>>,
    config: IngestConfig,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((conn, _)) => {
                let _ = conn.set_nodelay(true);
                let _ = conn.set_read_timeout(Some(Duration::from_millis(20)));
                spawn_conn(conn, fleet, stats, stop, conn_threads, config);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => break,
        }
    }
}

#[cfg(unix)]
fn accept_unix(
    listener: &UnixListener,
    fleet: &Arc<Mutex<Fleet>>,
    stats: &Arc<IngestStats>,
    stop: &Arc<AtomicBool>,
    conn_threads: &Arc<Mutex<Vec<JoinHandle<()>>>>,
    config: IngestConfig,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((conn, _)) => {
                let _ = conn.set_read_timeout(Some(Duration::from_millis(20)));
                spawn_conn(conn, fleet, stats, stop, conn_threads, config);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => break,
        }
    }
}

fn spawn_conn<C: Read + Write + Send + 'static>(
    conn: C,
    fleet: &Arc<Mutex<Fleet>>,
    stats: &Arc<IngestStats>,
    stop: &Arc<AtomicBool>,
    conn_threads: &Arc<Mutex<Vec<JoinHandle<()>>>>,
    config: IngestConfig,
) {
    stats.connections.fetch_add(1, Ordering::Relaxed);
    let fleet = Arc::clone(fleet);
    let stats = Arc::clone(stats);
    let stop = Arc::clone(stop);
    let handle = std::thread::spawn(move || serve_conn(conn, &fleet, &stats, &stop, config));
    conn_threads
        .lock()
        .expect("conn thread list lock")
        .push(handle);
}

fn drain_loop(fleet: &Arc<Mutex<Fleet>>, stop: &Arc<AtomicBool>, config: IngestConfig) {
    loop {
        let polled = fleet.lock().expect("fleet lock").poll();
        if stop.load(Ordering::SeqCst) {
            break;
        }
        if config.poll_interval_us > 0 {
            std::thread::sleep(Duration::from_micros(config.poll_interval_us));
        } else if polled.batches == 0 {
            std::thread::sleep(Duration::from_micros(100));
        }
    }
    // Final sweep after stop so late submissions still get checked.
    fleet.lock().expect("fleet lock").poll();
}

/// Per-connection protocol state.
struct Conn {
    handshaken: bool,
    expected_seq: u64,
    frame_counter: u64,
}

enum Step {
    Continue,
    Close,
}

fn serve_conn<C: Read + Write>(
    mut conn: C,
    fleet: &Arc<Mutex<Fleet>>,
    stats: &Arc<IngestStats>,
    stop: &Arc<AtomicBool>,
    config: IngestConfig,
) {
    let handle = fleet.lock().expect("fleet lock").handle();
    let mut decoder = FrameDecoder::new(config.max_frame_len);
    let mut state = Conn {
        handshaken: false,
        // Sequence numbers start at 1; 0 is reserved for the handshake
        // ack so it can never collide with a windowed frame.
        expected_seq: 1,
        frame_counter: 0,
    };
    let mut rbuf = vec![0u8; 64 * 1024];
    let mut out: Vec<u8> = Vec::with_capacity(4096);

    'conn: loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let n = match conn.read(&mut rbuf) {
            Ok(0) => {
                if decoder.pending() > 0 {
                    stats.truncated.fetch_add(1, Ordering::Relaxed);
                }
                break;
            }
            Ok(n) => n,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                continue;
            }
            Err(_) => {
                // Reset mid-frame is the same loss as a clean EOF mid-frame.
                if decoder.pending() > 0 {
                    stats.truncated.fetch_add(1, Ordering::Relaxed);
                }
                break;
            }
        };
        stats.bytes_rx.fetch_add(n as u64, Ordering::Relaxed);
        decoder.feed(&rbuf[..n]);
        loop {
            let timed = (state.frame_counter & DECODE_TIMING_MASK == 0).then(Instant::now);
            match decoder.next_frame() {
                Ok(None) => break,
                Ok(Some(frame)) => {
                    if let Some(t0) = timed {
                        stats
                            .decode_ns
                            .lock()
                            .expect("decode hist lock")
                            .record(t0.elapsed().as_nanos() as f64);
                    }
                    state.frame_counter += 1;
                    stats.frames.fetch_add(1, Ordering::Relaxed);
                    match handle_frame(frame, &mut state, fleet, &handle, stats, config, &mut out) {
                        Step::Continue => {}
                        Step::Close => {
                            let _ = conn.write_all(&out);
                            let _ = conn.flush();
                            break 'conn;
                        }
                    }
                }
                Err(_) => {
                    stats.malformed.fetch_add(1, Ordering::Relaxed);
                    encode_nack(&mut out, state.expected_seq, NackReason::Malformed, 0);
                    let _ = conn.write_all(&out);
                    let _ = conn.flush();
                    break 'conn;
                }
            }
        }
        if !out.is_empty() {
            if conn.write_all(&out).is_err() {
                if decoder.pending() > 0 {
                    stats.truncated.fetch_add(1, Ordering::Relaxed);
                }
                break;
            }
            let _ = conn.flush();
            out.clear();
        }
    }
}

fn handle_frame(
    frame: Frame,
    state: &mut Conn,
    fleet: &Arc<Mutex<Fleet>>,
    handle: &FleetHandle,
    stats: &Arc<IngestStats>,
    config: IngestConfig,
    out: &mut Vec<u8>,
) -> Step {
    match frame {
        Frame::Hello { version } => {
            if state.handshaken || version != VERSION {
                stats.malformed.fetch_add(1, Ordering::Relaxed);
                encode_nack(out, 0, NackReason::Unsupported, 0);
                return Step::Close;
            }
            state.handshaken = true;
            encode_ack(out, 0, &AckBody::Hello { version: VERSION });
            Step::Continue
        }
        _ if !state.handshaken => {
            stats.malformed.fetch_add(1, Ordering::Relaxed);
            encode_nack(out, 0, NackReason::Malformed, 0);
            Step::Close
        }
        Frame::OpenStream { seq, flags } => {
            if seq != state.expected_seq {
                stats.superseded_nacks.fetch_add(1, Ordering::Relaxed);
                encode_nack(out, seq, NackReason::Superseded, 0);
                return Step::Continue;
            }
            if flags != 0 {
                stats.malformed.fetch_add(1, Ordering::Relaxed);
                encode_nack(out, seq, NackReason::Unsupported, 0);
                return Step::Close;
            }
            state.expected_seq += 1;
            let stream = fleet.lock().expect("fleet lock").open_stream();
            stats.opens.fetch_add(1, Ordering::Relaxed);
            encode_ack(out, seq, &AckBody::StreamOpened { stream });
            Step::Continue
        }
        Frame::SampleBatch { seq, batch } => {
            if seq != state.expected_seq {
                stats.superseded_nacks.fetch_add(1, Ordering::Relaxed);
                encode_nack(out, seq, NackReason::Superseded, 0);
                return Step::Continue;
            }
            let samples = batch.samples.len() as u64;
            match handle.submit(batch) {
                Ok(()) => {
                    state.expected_seq += 1;
                    stats.batches.fetch_add(1, Ordering::Relaxed);
                    stats.samples.fetch_add(samples, Ordering::Relaxed);
                    encode_ack(out, seq, &AckBody::BatchApplied);
                    Step::Continue
                }
                Err(SubmitError::Saturated { .. }) => {
                    // Expected sequence stays put: the producer rewinds to
                    // this batch, so order is preserved end to end.
                    stats.saturated_nacks.fetch_add(1, Ordering::Relaxed);
                    encode_nack(out, seq, NackReason::Saturated, config.retry_after_us);
                    Step::Continue
                }
                Err(SubmitError::UnknownShard { .. }) => {
                    state.expected_seq += 1;
                    stats.rejected_unknown_shard.fetch_add(1, Ordering::Relaxed);
                    encode_nack(out, seq, NackReason::UnknownShard, 0);
                    Step::Continue
                }
                Err(SubmitError::Disconnected { .. }) => {
                    encode_nack(out, seq, NackReason::ShuttingDown, 0);
                    Step::Close
                }
            }
        }
        Frame::CloseStream { seq, stream } => {
            if seq != state.expected_seq {
                stats.superseded_nacks.fetch_add(1, Ordering::Relaxed);
                encode_nack(out, seq, NackReason::Superseded, 0);
                return Step::Continue;
            }
            state.expected_seq += 1;
            let closed = fleet.lock().expect("fleet lock").close_stream(stream);
            match closed {
                Ok((report, _snapshot)) => {
                    let report_json = serde_json::to_vec(&report).expect("report serializes");
                    stats.closes.fetch_add(1, Ordering::Relaxed);
                    encode_ack(out, seq, &AckBody::StreamClosed { report_json });
                }
                Err(StreamError::StaleGeneration) => {
                    stats.rejected_stale.fetch_add(1, Ordering::Relaxed);
                    encode_nack(out, seq, NackReason::StaleGeneration, 0);
                }
                Err(StreamError::UnknownSlot) => {
                    stats.rejected_stale.fetch_add(1, Ordering::Relaxed);
                    encode_nack(out, seq, NackReason::UnknownSlot, 0);
                }
            }
            Step::Continue
        }
        Frame::GetMetrics { seq } => {
            if seq != state.expected_seq {
                stats.superseded_nacks.fetch_add(1, Ordering::Relaxed);
                encode_nack(out, seq, NackReason::Superseded, 0);
                return Step::Continue;
            }
            state.expected_seq += 1;
            let summary = fleet.lock().expect("fleet lock").metrics().summary();
            let summary_json = serde_json::to_vec(&summary).expect("summary serializes");
            encode_ack(out, seq, &AckBody::Metrics { summary_json });
            Step::Continue
        }
        Frame::Ack { .. } | Frame::Nack { .. } => {
            // Server-to-client frames arriving at the server are a
            // protocol violation.
            stats.malformed.fetch_add(1, Ordering::Relaxed);
            encode_nack(out, state.expected_seq, NackReason::Malformed, 0);
            Step::Close
        }
    }
}

// ---------------------------------------------------------------------------
// Producer
// ---------------------------------------------------------------------------

/// Producer-side failures.
#[derive(Debug)]
pub enum ProducerError {
    /// Transport failure.
    Io(std::io::Error),
    /// The server sent bytes that do not decode.
    Wire(WireError),
    /// The server refused a frame for a non-retryable reason.
    Rejected {
        /// The refused frame's sequence number.
        seq: u64,
        /// The server's typed reason.
        reason: NackReason,
    },
    /// The server violated the protocol (wrong ack kind, unexpected
    /// frame).
    Protocol(String),
    /// The connection closed while responses were still outstanding.
    Disconnected,
}

impl std::fmt::Display for ProducerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProducerError::Io(e) => write!(f, "transport error: {e}"),
            ProducerError::Wire(e) => write!(f, "undecodable server bytes: {e}"),
            ProducerError::Rejected { seq, reason } => {
                write!(f, "frame {seq} rejected: {reason}")
            }
            ProducerError::Protocol(m) => write!(f, "protocol violation: {m}"),
            ProducerError::Disconnected => write!(f, "server disconnected"),
        }
    }
}

impl std::error::Error for ProducerError {}

impl From<std::io::Error> for ProducerError {
    fn from(e: std::io::Error) -> Self {
        ProducerError::Io(e)
    }
}

impl From<WireError> for ProducerError {
    fn from(e: WireError) -> Self {
        ProducerError::Wire(e)
    }
}

/// Producer tuning.
#[derive(Debug, Clone, Copy)]
pub struct ProducerConfig {
    /// Maximum unacknowledged frames in flight before
    /// [`IngestProducer::submit`] blocks on acks. Also bounds rewind
    /// memory: the producer retains every unacked frame for re-send.
    pub window: usize,
    /// Decoder cap for server responses.
    pub max_frame_len: usize,
}

impl Default for ProducerConfig {
    fn default() -> Self {
        ProducerConfig {
            window: 64,
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
        }
    }
}

/// Lifetime counters for one producer connection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProducerStats {
    /// Batches acknowledged as applied.
    pub acked_batches: u64,
    /// `Saturated` nacks received (each triggered a rewind).
    pub saturated_nacks: u64,
    /// `Superseded` nacks received (in-flight frames the rewind already
    /// covered).
    pub superseded_nacks: u64,
    /// Frames re-sent during rewinds.
    pub resent_frames: u64,
}

/// One in-flight (sent, unacknowledged) frame, retained for rewinds.
#[derive(Debug)]
struct InFlight {
    seq: u64,
    bytes: Vec<u8>,
}

/// The client side of the ingest protocol: frame encoding with buffer
/// reuse, a bounded in-flight window, and transparent retry on
/// saturation.
///
/// Works over any `Read + Write` transport — `TcpStream`, `UnixStream`,
/// or an in-memory pipe in tests. The transport must be in blocking
/// mode.
#[derive(Debug)]
pub struct IngestProducer<C: Read + Write> {
    conn: C,
    decoder: FrameDecoder,
    config: ProducerConfig,
    /// Encoded-but-unacknowledged frames, oldest first.
    window: VecDeque<InFlight>,
    /// Recycled frame buffers ([`ProducerConfig::window`]-bounded).
    spare: Vec<Vec<u8>>,
    /// Outbound coalescing buffer, flushed before every read.
    obuf: Vec<u8>,
    rbuf: Vec<u8>,
    next_seq: u64,
    stats: ProducerStats,
    /// The ack body captured for the sequence number a waiter asked for.
    captured: Option<(u64, AckBody)>,
}

impl<C: Read + Write> IngestProducer<C> {
    /// Performs the handshake on `conn` and returns the ready producer.
    ///
    /// # Errors
    ///
    /// [`ProducerError`] when the transport fails or the server refuses
    /// the protocol version.
    pub fn connect(conn: C, config: ProducerConfig) -> Result<Self, ProducerError> {
        let mut producer = IngestProducer {
            conn,
            decoder: FrameDecoder::new(config.max_frame_len),
            config,
            window: VecDeque::new(),
            spare: Vec::new(),
            obuf: Vec::with_capacity(256 * 1024),
            rbuf: vec![0u8; 64 * 1024],
            next_seq: 1,
            stats: ProducerStats::default(),
            captured: None,
        };
        let mut hello = Vec::new();
        encode_hello(&mut hello);
        producer.obuf.extend_from_slice(&hello);
        match producer.wait_ack(0)? {
            AckBody::Hello { .. } => Ok(producer),
            other => Err(ProducerError::Protocol(format!(
                "expected hello ack, got {other:?}"
            ))),
        }
    }

    /// Lifetime counters.
    pub fn stats(&self) -> ProducerStats {
        self.stats
    }

    /// Opens a stream on the server and returns its wire id.
    ///
    /// # Errors
    ///
    /// [`ProducerError`] on transport failure or server rejection.
    pub fn open_stream(&mut self) -> Result<StreamId, ProducerError> {
        let seq = self.send_frame(|out, seq| {
            encode_open_stream(out, seq);
            Ok(())
        })?;
        match self.wait_ack(seq)? {
            AckBody::StreamOpened { stream } => Ok(stream),
            other => Err(ProducerError::Protocol(format!(
                "expected stream-opened ack, got {other:?}"
            ))),
        }
    }

    /// Queues `batch` for transmission. Blocks only when the in-flight
    /// window is full (reading acks until space frees up); saturation
    /// rewinds happen transparently inside that wait.
    ///
    /// # Errors
    ///
    /// [`ProducerError`] on transport failure or a non-retryable
    /// rejection.
    pub fn submit(&mut self, batch: &SampleBatch) -> Result<(), ProducerError> {
        self.send_frame(|out, seq| encode_sample_batch(out, seq, batch).map_err(Into::into))?;
        Ok(())
    }

    /// Closes `stream` and returns its final
    /// [`adassure_core::CheckReport`] as JSON bytes.
    ///
    /// # Errors
    ///
    /// [`ProducerError::Rejected`] with [`NackReason::StaleGeneration`] /
    /// [`NackReason::UnknownSlot`] for an already-closed or foreign id.
    pub fn close_stream(&mut self, stream: StreamId) -> Result<Vec<u8>, ProducerError> {
        let seq = self.send_frame(|out, seq| {
            encode_close_stream(out, seq, stream);
            Ok(())
        })?;
        match self.wait_ack(seq)? {
            AckBody::StreamClosed { report_json } => Ok(report_json),
            other => Err(ProducerError::Protocol(format!(
                "expected stream-closed ack, got {other:?}"
            ))),
        }
    }

    /// Fetches the fleet-wide deterministic metrics summary as JSON
    /// bytes.
    ///
    /// # Errors
    ///
    /// [`ProducerError`] on transport failure or rejection.
    pub fn fetch_metrics(&mut self) -> Result<Vec<u8>, ProducerError> {
        let seq = self.send_frame(|out, seq| {
            encode_get_metrics(out, seq);
            Ok(())
        })?;
        match self.wait_ack(seq)? {
            AckBody::Metrics { summary_json } => Ok(summary_json),
            other => Err(ProducerError::Protocol(format!(
                "expected metrics ack, got {other:?}"
            ))),
        }
    }

    /// Blocks until every in-flight frame is acknowledged.
    ///
    /// # Errors
    ///
    /// [`ProducerError`] on transport failure or rejection.
    pub fn flush(&mut self) -> Result<(), ProducerError> {
        while !self.window.is_empty() {
            self.pump()?;
        }
        self.flush_obuf()?;
        Ok(())
    }

    /// Returns the transport and final stats, consuming the producer.
    pub fn into_parts(self) -> (C, ProducerStats) {
        (self.conn, self.stats)
    }

    /// Encodes one frame (via `encode`), windows it and queues its bytes.
    fn send_frame(
        &mut self,
        encode: impl FnOnce(&mut Vec<u8>, u64) -> Result<(), ProducerError>,
    ) -> Result<u64, ProducerError> {
        while self.window.len() >= self.config.window {
            self.pump()?;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let mut bytes = self.spare.pop().unwrap_or_default();
        bytes.clear();
        encode(&mut bytes, seq)?;
        self.obuf.extend_from_slice(&bytes);
        self.window.push_back(InFlight { seq, bytes });
        if self.obuf.len() >= 128 * 1024 {
            self.flush_obuf()?;
        }
        Ok(seq)
    }

    /// Blocks until the response for `seq` arrives and returns its body.
    fn wait_ack(&mut self, seq: u64) -> Result<AckBody, ProducerError> {
        loop {
            if self.captured.as_ref().is_some_and(|(got, _)| *got == seq) {
                let (_, body) = self.captured.take().expect("matched above");
                return Ok(body);
            }
            if seq > 0 && !self.window.iter().any(|f| f.seq == seq) && self.next_seq > seq {
                // Already acknowledged without capture — protocol bug on
                // our side rather than the server's.
                return Err(ProducerError::Protocol(format!(
                    "response for frame {seq} was consumed without a waiter"
                )));
            }
            self.pump()?;
        }
    }

    fn flush_obuf(&mut self) -> Result<(), ProducerError> {
        if !self.obuf.is_empty() {
            self.conn.write_all(&self.obuf)?;
            self.conn.flush()?;
            self.obuf.clear();
        }
        Ok(())
    }

    /// Flushes outbound bytes, reads one chunk of responses and applies
    /// them to the window.
    fn pump(&mut self) -> Result<(), ProducerError> {
        self.flush_obuf()?;
        while let Some(frame) = self.decoder.next_frame()? {
            self.apply_response(frame)?;
        }
        let n = self.conn.read(&mut self.rbuf)?;
        if n == 0 {
            return Err(ProducerError::Disconnected);
        }
        self.decoder.feed(&self.rbuf[..n]);
        while let Some(frame) = self.decoder.next_frame()? {
            self.apply_response(frame)?;
        }
        Ok(())
    }

    fn apply_response(&mut self, frame: Frame) -> Result<(), ProducerError> {
        match frame {
            Frame::Ack { seq, body } => {
                let was_batch = matches!(body, AckBody::BatchApplied);
                self.settle(seq);
                if was_batch {
                    self.stats.acked_batches += 1;
                } else {
                    self.captured = Some((seq, body));
                }
                Ok(())
            }
            Frame::Nack {
                seq,
                reason: NackReason::Saturated,
                retry_after_us,
            } => {
                self.stats.saturated_nacks += 1;
                if retry_after_us > 0 {
                    std::thread::sleep(Duration::from_micros(u64::from(retry_after_us)));
                }
                // Go-back-N rewind: re-send every unacknowledged frame
                // from the refused one on, in order. Frames before `seq`
                // were already acknowledged, so the window starts at it.
                for inflight in &self.window {
                    debug_assert!(inflight.seq >= seq);
                    self.obuf.extend_from_slice(&inflight.bytes);
                    self.stats.resent_frames += 1;
                }
                self.flush_obuf()?;
                Ok(())
            }
            Frame::Nack {
                reason: NackReason::Superseded,
                ..
            } => {
                // In-flight across a rewind; already re-sent. Count and
                // move on.
                self.stats.superseded_nacks += 1;
                Ok(())
            }
            Frame::Nack { seq, reason, .. } => {
                self.settle(seq);
                Err(ProducerError::Rejected { seq, reason })
            }
            other => Err(ProducerError::Protocol(format!(
                "unexpected server frame {other:?}"
            ))),
        }
    }

    /// Retires `seq` (and anything older) from the window, recycling
    /// buffers.
    fn settle(&mut self, seq: u64) {
        while let Some(front) = self.window.front() {
            if front.seq > seq {
                break;
            }
            let retired = self.window.pop_front().expect("front checked");
            if self.spare.len() < self.config.window {
                self.spare.push(retired.bytes);
            }
        }
    }
}

/// Convenience: connects a TCP producer with [`ProducerConfig`] defaults
/// and `TCP_NODELAY` set.
///
/// # Errors
///
/// [`ProducerError`] on connect or handshake failure.
pub fn connect_tcp(
    addr: SocketAddr,
    config: ProducerConfig,
) -> Result<IngestProducer<TcpStream>, ProducerError> {
    let conn = TcpStream::connect(addr)?;
    conn.set_nodelay(true)?;
    IngestProducer::connect(conn, config)
}

/// Convenience: connects a Unix-domain producer.
///
/// # Errors
///
/// [`ProducerError`] on connect or handshake failure.
#[cfg(unix)]
pub fn connect_unix(
    path: &std::path::Path,
    config: ProducerConfig,
) -> Result<IngestProducer<UnixStream>, ProducerError> {
    let conn = UnixStream::connect(path)?;
    IngestProducer::connect(conn, config)
}
