//! The closed-loop simulation engine.
//!
//! Each fixed-length cycle performs, in order:
//!
//! 1. **sense** — the [`crate::sensor::SensorSuite`] produces a
//!    [`SensorFrame`] from ground truth;
//! 2. **attack** — an optional [`SensorTap`] mutates the frame in place
//!    (this is where `adassure-attacks` hooks in);
//! 3. **control** — the [`Driver`] computes [`Controls`] from the (possibly
//!    corrupted) frame, recording its internal signals into the trace;
//! 4. **actuate** — first-order actuators chase the commands;
//! 5. **integrate** — the vehicle model steps the physics.
//!
//! Ground-truth, sensor and command signals are recorded every cycle under
//! the [`adassure_trace::well_known`] names, all on the same time grid, so
//! the resulting [`Trace`] is aligned by construction.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use adassure_trace::{well_known as sig, Trace};

use crate::actuator::{Actuator, ActuatorParams};
use crate::geometry::Vec2;
use crate::sensor::{SensorConfig, SensorFrame, SensorSuite};
use crate::track::Track;
use crate::vehicle::{Controls, VehicleModel, VehicleState};
use crate::SimError;

/// Context handed to the driver every control cycle.
#[derive(Debug)]
pub struct DriveCtx<'a> {
    /// Current simulation time (s).
    pub time: f64,
    /// Control-cycle length (s).
    pub dt: f64,
    /// Sensor readings for this cycle, after attack taps.
    pub frame: &'a SensorFrame,
}

/// A control algorithm under debug.
///
/// The driver sees only the sensor frame — never ground truth — and may
/// record its internal signals (estimates, error terms) into the trace.
pub trait Driver {
    /// Computes the controls for this cycle.
    fn control(&mut self, ctx: &DriveCtx<'_>, trace: &mut Trace) -> Controls;
}

impl<F: FnMut(&DriveCtx<'_>, &mut Trace) -> Controls> Driver for F {
    fn control(&mut self, ctx: &DriveCtx<'_>, trace: &mut Trace) -> Controls {
        self(ctx, trace)
    }
}

/// A hook that may mutate sensor frames before the driver sees them.
///
/// Attack injectors implement this trait; the no-op default corresponds to a
/// clean (golden) run.
pub trait SensorTap {
    /// Mutates `frame` in place. `truth` is provided so taps can make
    /// physically plausible modifications (e.g. drift relative to the true
    /// position).
    fn tap(&mut self, frame: &mut SensorFrame, truth: &VehicleState);
}

/// The identity tap: leaves every frame untouched.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoTap;

impl SensorTap for NoTap {
    fn tap(&mut self, _frame: &mut SensorFrame, _truth: &VehicleState) {}
}

/// Configuration of a simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Control-cycle length (s).
    pub dt: f64,
    /// Maximum simulated duration (s).
    pub duration: f64,
    /// RNG seed driving all sensor noise.
    pub seed: u64,
    /// Vehicle model to integrate.
    pub model: VehicleModel,
    /// Sensor noise/rate configuration.
    pub sensors: SensorConfig,
    /// Steering actuator.
    pub steering: ActuatorParams,
    /// Drivetrain actuator.
    pub drivetrain: ActuatorParams,
    /// Initial vehicle state; `None` places the vehicle at the start of the
    /// track, aligned with its tangent, at rest.
    pub initial_state: Option<VehicleState>,
    /// For open tracks: stop once the vehicle is within
    /// [`SimConfig::goal_tolerance`] of the end.
    pub stop_at_goal: bool,
    /// Distance from the track end that counts as "goal reached" (m).
    pub goal_tolerance: f64,
}

impl SimConfig {
    /// A 100 Hz run of `duration` seconds with default vehicle, sensors and
    /// actuators, seed 0.
    pub fn new(duration: f64) -> Self {
        SimConfig {
            dt: 0.01,
            duration,
            seed: 0,
            model: VehicleModel::kinematic(),
            sensors: SensorConfig::automotive(),
            steering: ActuatorParams::steering(),
            drivetrain: ActuatorParams::drivetrain(),
            initial_state: None,
            stop_at_goal: true,
            goal_tolerance: 2.0,
        }
    }

    /// Replaces the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the vehicle model.
    pub fn with_model(mut self, model: VehicleModel) -> Self {
        self.model = model;
        self
    }

    /// Replaces the sensor configuration.
    pub fn with_sensors(mut self, sensors: SensorConfig) -> Self {
        self.sensors = sensors;
        self
    }

    /// Replaces the initial state.
    pub fn with_initial_state(mut self, state: VehicleState) -> Self {
        self.initial_state = Some(state);
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for non-positive `dt`/`duration`
    /// or invalid vehicle parameters.
    pub fn validate(&self) -> Result<(), SimError> {
        if !(self.dt.is_finite() && self.dt > 0.0) {
            return Err(SimError::InvalidConfig(format!(
                "dt must be positive, got {}",
                self.dt
            )));
        }
        if !(self.duration.is_finite() && self.duration > 0.0) {
            return Err(SimError::InvalidConfig(format!(
                "duration must be positive, got {}",
                self.duration
            )));
        }
        self.model
            .params
            .validate()
            .map_err(SimError::InvalidConfig)?;
        Ok(())
    }
}

/// Result of a simulation run.
#[derive(Debug, Clone)]
pub struct SimOutput {
    /// All recorded signals, time-aligned at the control rate.
    pub trace: Trace,
    /// Vehicle state when the run ended.
    pub final_state: VehicleState,
    /// Number of executed control cycles.
    pub steps: usize,
    /// Whether an open-track run reached the goal before the time budget.
    pub reached_goal: bool,
}

/// The closed-loop simulator.
#[derive(Debug, Clone)]
pub struct Engine {
    config: SimConfig,
    track: Track,
}

impl Engine {
    /// Creates an engine for a configuration and reference track.
    pub fn new(config: SimConfig, track: Track) -> Self {
        Engine { config, track }
    }

    /// The engine's reference track.
    pub fn track(&self) -> &Track {
        &self.track
    }

    /// The engine's configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Runs the loop with no attack tap (a golden run).
    ///
    /// # Errors
    ///
    /// See [`Engine::run_with_tap`].
    pub fn run(&self, driver: &mut dyn Driver) -> Result<SimOutput, SimError> {
        self.run_with_tap(driver, &mut NoTap)
    }

    /// Runs the loop, passing every sensor frame through `tap`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for a bad configuration and
    /// [`SimError::NumericalDivergence`] if the physics state stops being
    /// finite (e.g. a driver returned NaN controls that survived clamping).
    pub fn run_with_tap(
        &self,
        driver: &mut dyn Driver,
        tap: &mut dyn SensorTap,
    ) -> Result<SimOutput, SimError> {
        let mut session = self.session()?;
        while session.step(driver, tap)? {}
        Ok(session.finish())
    }

    /// Opens a steppable session over this engine: the same loop
    /// [`Engine::run_with_tap`] drives, but advanced one cycle at a time
    /// by the caller, with the mid-run state observable and
    /// checkpointable between cycles.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for a bad configuration.
    pub fn session(&self) -> Result<SimSession, SimError> {
        self.config.validate()?;
        let cfg = &self.config;
        let state = cfg.initial_state.unwrap_or_else(|| {
            let start = self.track.point_at(0.0);
            VehicleState::at(start, self.track.heading_at(0.0))
        });
        let last_station = self.track.project(state.position).station;
        Ok(SimSession {
            config: cfg.clone(),
            track: self.track.clone(),
            rng: SmallRng::seed_from_u64(cfg.seed),
            sensors: SensorSuite::new(cfg.sensors, cfg.dt),
            steering: Actuator::new(cfg.steering),
            drivetrain: Actuator::new(cfg.drivetrain),
            trace: Trace::new(),
            state,
            total_steps: (cfg.duration / cfg.dt).round() as usize,
            last_fix: None,
            fix_history: std::collections::VecDeque::new(),
            wheel_history: std::collections::VecDeque::new(),
            wheel_jitter: 0.0,
            last_wheel: None,
            jitter_alpha: 1.0 - (-cfg.dt / 0.2).exp(),
            actual_accel: 0.0,
            true_progress: 0.0,
            last_station,
            reached_goal: false,
            steps: 0,
        })
    }
}

// GNSS speed is derived over a ~1 s baseline (as receivers smooth
// position-derived velocity); fix-to-fix differencing would turn
// 0.3 m position noise into ±6 m/s speed noise.
const GNSS_SPEED_BASELINE: f64 = 1.0;
// Wheel acceleration is likewise derived over a short baseline so
// quantisation noise does not swamp it.
const WHEEL_ACCEL_BASELINE: f64 = 0.5;

/// A complete snapshot of a [`SimSession`] between two cycles: restoring
/// it into a fresh session (same [`SimConfig`], same track) and stepping
/// on reproduces the uninterrupted run bit for bit.
///
/// All fields are plain data; the trace is carried as a full [`Trace`]
/// clone so the resumed session keeps appending to identical history.
#[derive(Debug, Clone)]
pub struct SimSnapshot {
    /// Sensor-noise RNG state (xoshiro256++ words).
    pub rng: [u64; 4],
    /// Cycles sensed so far (GNSS decimation phase).
    pub sensor_cycle: u64,
    /// Steering actuator position.
    pub steering: f64,
    /// Drivetrain actuator position.
    pub drivetrain: f64,
    /// Vehicle ground-truth state.
    pub state: VehicleState,
    /// Last GNSS fix seen, if any.
    pub last_fix: Option<(f64, Vec2)>,
    /// GNSS fixes inside the speed-derivation baseline.
    pub fix_history: Vec<(f64, Vec2)>,
    /// Wheel samples inside the acceleration-derivation baseline.
    pub wheel_history: Vec<(f64, f64)>,
    /// EWMA of per-cycle wheel-speed change magnitude.
    pub wheel_jitter: f64,
    /// Previous cycle's wheel speed, if any.
    pub last_wheel: Option<f64>,
    /// Longitudinal acceleration applied last cycle.
    pub actual_accel: f64,
    /// Unwrapped track progress (m).
    pub true_progress: f64,
    /// Track station at the previous cycle.
    pub last_station: f64,
    /// Whether an open-track run already reached its goal.
    pub reached_goal: bool,
    /// Completed cycles.
    pub steps: u64,
    /// Everything recorded so far.
    pub trace: Trace,
}

/// A mid-run simulation: the engine loop with its state held between
/// cycles instead of locked inside [`Engine::run_with_tap`].
///
/// Drive it with [`SimSession::step`] until it returns `Ok(false)`, then
/// collect the [`SimOutput`] with [`SimSession::finish`]. Between steps
/// the full loop state can be captured with [`SimSession::snapshot`] and
/// later reinstated with [`SimSession::restore`] — the basis of the
/// time-travel debugger's checkpoints.
#[derive(Debug, Clone)]
pub struct SimSession {
    config: SimConfig,
    track: Track,
    rng: SmallRng,
    sensors: SensorSuite,
    steering: Actuator,
    drivetrain: Actuator,
    trace: Trace,
    state: VehicleState,
    total_steps: usize,
    last_fix: Option<(f64, Vec2)>,
    fix_history: std::collections::VecDeque<(f64, Vec2)>,
    wheel_history: std::collections::VecDeque<(f64, f64)>,
    wheel_jitter: f64,
    last_wheel: Option<f64>,
    jitter_alpha: f64,
    actual_accel: f64,
    true_progress: f64,
    last_station: f64,
    reached_goal: bool,
    steps: usize,
}

impl SimSession {
    /// Completed cycles so far (also the index of the next cycle to run).
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// The timestamp the next cycle will carry.
    pub fn time(&self) -> f64 {
        self.steps as f64 * self.config.dt
    }

    /// Cycles the run will execute at most (duration / dt).
    pub fn total_steps(&self) -> usize {
        self.total_steps
    }

    /// Whether the loop has ended (time budget spent or goal reached).
    pub fn is_done(&self) -> bool {
        self.steps >= self.total_steps || self.reached_goal
    }

    /// The vehicle's current ground-truth state.
    pub fn state(&self) -> &VehicleState {
        &self.state
    }

    /// Everything recorded so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Runs one sense → attack → control → actuate → integrate cycle.
    /// Returns `Ok(false)` once the run is over (nothing was executed).
    ///
    /// # Errors
    ///
    /// [`SimError::NumericalDivergence`] if the physics state stops being
    /// finite.
    pub fn step(
        &mut self,
        driver: &mut dyn Driver,
        tap: &mut dyn SensorTap,
    ) -> Result<bool, SimError> {
        if self.is_done() {
            return Ok(false);
        }
        let cfg = &self.config;
        let t = self.steps as f64 * cfg.dt;

        // 1-2. Sense, then attack.
        let mut frame = self
            .sensors
            .sense(&self.state, self.actual_accel, t, &mut self.rng);
        tap.tap(&mut frame, &self.state);

        // Record sensor channels (post-attack: this is what the stack saw).
        let trace = &mut self.trace;
        if let Some(fix) = frame.gnss {
            trace.record(sig::GNSS_X, t, fix.x);
            trace.record(sig::GNSS_Y, t, fix.y);
            if let Some((_, p0)) = self.last_fix {
                trace.record(sig::GNSS_JUMP, t, fix.distance(p0));
            }
            self.last_fix = Some((t, fix));
            self.fix_history.push_back((t, fix));
            while self
                .fix_history
                .front()
                .is_some_and(|&(t0, _)| t - t0 > GNSS_SPEED_BASELINE + 0.05)
            {
                self.fix_history.pop_front();
            }
            if let Some(&(t0, p0)) = self.fix_history.front() {
                if t - t0 >= GNSS_SPEED_BASELINE * 0.5 {
                    trace.record(sig::GNSS_SPEED, t, fix.distance(p0) / (t - t0));
                }
            }
        }
        trace.record(sig::WHEEL_SPEED, t, frame.wheel_speed);
        self.wheel_history.push_back((t, frame.wheel_speed));
        while self
            .wheel_history
            .front()
            .is_some_and(|&(t0, _)| t - t0 > WHEEL_ACCEL_BASELINE + cfg.dt / 2.0)
        {
            self.wheel_history.pop_front();
        }
        if let Some(&(t0, v0)) = self.wheel_history.front() {
            if t - t0 >= WHEEL_ACCEL_BASELINE * 0.5 {
                trace.record(sig::WHEEL_ACCEL, t, (frame.wheel_speed - v0) / (t - t0));
            }
        }
        if let Some(prev) = self.last_wheel {
            self.wheel_jitter +=
                self.jitter_alpha * ((frame.wheel_speed - prev).abs() - self.wheel_jitter);
            trace.record(sig::WHEEL_JITTER, t, self.wheel_jitter);
        }
        self.last_wheel = Some(frame.wheel_speed);
        trace.record(sig::IMU_YAW_RATE, t, frame.imu_yaw_rate);
        trace.record(sig::IMU_ACCEL, t, frame.imu_accel);
        trace.record(sig::COMPASS_HEADING, t, frame.compass);

        // Record ground truth for this cycle.
        let proj = self.track.project(self.state.position);
        let delta_s = if self.track.is_closed() {
            // Unwrap station deltas across the loop seam.
            let len = self.track.length();
            let mut d = proj.station - self.last_station;
            if d > len / 2.0 {
                d -= len;
            } else if d < -len / 2.0 {
                d += len;
            }
            d
        } else {
            proj.station - self.last_station
        };
        self.true_progress += delta_s;
        self.last_station = proj.station;
        trace.record(sig::TRUE_X, t, self.state.position.x);
        trace.record(sig::TRUE_Y, t, self.state.position.y);
        trace.record(sig::TRUE_HEADING, t, self.state.heading);
        trace.record(sig::TRUE_SPEED, t, self.state.speed);
        trace.record(sig::TRUE_YAW_RATE, t, self.state.yaw_rate);
        trace.record(sig::TRUE_XTRACK_ERR, t, proj.cross_track);
        trace.record(sig::TRUE_PROGRESS, t, self.true_progress);
        trace.record(sig::LAT_ACCEL, t, self.state.speed * self.state.yaw_rate);

        // 3. Control.
        let ctx = DriveCtx {
            time: t,
            dt: cfg.dt,
            frame: &frame,
        };
        let controls = driver.control(&ctx, trace);
        trace.record(sig::STEER_CMD, t, controls.steer);
        trace.record(sig::ACCEL_CMD, t, controls.accel);

        // 4. Actuate.
        let steer_actual = self.steering.step(controls.steer, cfg.dt);
        let accel_actual = self.drivetrain.step(controls.accel, cfg.dt);
        trace.record(sig::STEER_ACTUAL, t, steer_actual);

        // 5. Integrate.
        let speed_before = self.state.speed;
        self.state = cfg.model.step(
            &self.state,
            Controls::new(steer_actual, accel_actual),
            cfg.dt,
        );
        if !self.state.is_finite() {
            return Err(SimError::NumericalDivergence { time: t });
        }
        self.actual_accel = (self.state.speed - speed_before) / cfg.dt;

        self.steps += 1;
        if cfg.stop_at_goal
            && !self.track.is_closed()
            && self.track.length() - proj.station <= cfg.goal_tolerance
        {
            self.reached_goal = true;
        }
        Ok(true)
    }

    /// Closes the session into the run result.
    pub fn finish(self) -> SimOutput {
        SimOutput {
            trace: self.trace,
            final_state: self.state,
            steps: self.steps,
            reached_goal: self.reached_goal,
        }
    }

    /// Captures the complete between-cycles loop state.
    pub fn snapshot(&self) -> SimSnapshot {
        SimSnapshot {
            rng: self.rng.state(),
            sensor_cycle: self.sensors.cycle() as u64,
            steering: self.steering.value(),
            drivetrain: self.drivetrain.value(),
            state: self.state,
            last_fix: self.last_fix,
            fix_history: self.fix_history.iter().copied().collect(),
            wheel_history: self.wheel_history.iter().copied().collect(),
            wheel_jitter: self.wheel_jitter,
            last_wheel: self.last_wheel,
            actual_accel: self.actual_accel,
            true_progress: self.true_progress,
            last_station: self.last_station,
            reached_goal: self.reached_goal,
            steps: self.steps as u64,
            trace: self.trace.clone(),
        }
    }

    /// Reinstates a snapshot taken from a session over the same engine.
    /// Stepping on from here is bit-identical to the uninterrupted run
    /// (pinned by `checkpoint_resume_matches_straight_run`).
    pub fn restore(&mut self, snap: &SimSnapshot) {
        self.rng = SmallRng::from_state(snap.rng);
        self.sensors.restore_cycle(snap.sensor_cycle as usize);
        self.steering.reset(snap.steering);
        self.drivetrain.reset(snap.drivetrain);
        self.state = snap.state;
        self.last_fix = snap.last_fix;
        self.fix_history = snap.fix_history.iter().copied().collect();
        self.wheel_history = snap.wheel_history.iter().copied().collect();
        self.wheel_jitter = snap.wheel_jitter;
        self.last_wheel = snap.last_wheel;
        self.actual_accel = snap.actual_accel;
        self.true_progress = snap.true_progress;
        self.last_station = snap.last_station;
        self.reached_goal = snap.reached_goal;
        self.steps = snap.steps as usize;
        self.trace = snap.trace.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adassure_trace::well_known as sig;

    struct Cruise {
        accel: f64,
    }

    impl Driver for Cruise {
        fn control(&mut self, _ctx: &DriveCtx<'_>, _trace: &mut Trace) -> Controls {
            Controls::new(0.0, self.accel)
        }
    }

    fn line_track() -> Track {
        Track::line([0.0, 0.0], [500.0, 0.0], 1.0).unwrap()
    }

    #[test]
    fn config_validation() {
        let mut cfg = SimConfig::new(1.0);
        cfg.dt = 0.0;
        assert!(matches!(cfg.validate(), Err(SimError::InvalidConfig(_))));
        let mut cfg = SimConfig::new(1.0);
        cfg.duration = -1.0;
        assert!(matches!(cfg.validate(), Err(SimError::InvalidConfig(_))));
        assert!(SimConfig::new(1.0).validate().is_ok());
    }

    #[test]
    fn cruise_run_records_expected_signals() {
        let engine = Engine::new(SimConfig::new(2.0).with_seed(1), line_track());
        let out = engine.run(&mut Cruise { accel: 2.0 }).unwrap();
        assert_eq!(out.steps, 200);
        let trace = &out.trace;
        for name in [
            sig::TRUE_X,
            sig::TRUE_SPEED,
            sig::WHEEL_SPEED,
            sig::IMU_YAW_RATE,
            sig::STEER_CMD,
            sig::ACCEL_CMD,
            sig::STEER_ACTUAL,
            sig::TRUE_PROGRESS,
            sig::TRUE_XTRACK_ERR,
        ] {
            assert_eq!(
                trace.require(name).unwrap().len(),
                200,
                "signal {name} should be recorded every cycle"
            );
        }
        // GNSS is decimated to 10 Hz.
        assert_eq!(trace.require(sig::GNSS_X).unwrap().len(), 20);
        // With drivetrain lag the vehicle ends a bit below the ideal 4 m/s.
        assert!(out.final_state.speed > 3.0 && out.final_state.speed <= 4.0);
    }

    #[test]
    fn gnss_speed_approximates_true_speed() {
        let config = SimConfig::new(5.0)
            .with_seed(3)
            .with_sensors(SensorConfig::ideal());
        let engine = Engine::new(config, line_track());
        let out = engine.run(&mut Cruise { accel: 2.0 }).unwrap();
        let gnss_speed = out.trace.require(sig::GNSS_SPEED).unwrap();
        let true_speed = out.trace.require(sig::TRUE_SPEED).unwrap();
        let last = gnss_speed.last().unwrap();
        // GNSS speed is a backward difference over a ~1 s baseline, so it
        // approximates the true speed half a baseline ago.
        let truth = true_speed.value_at(last.time - 0.5).unwrap();
        assert!(
            (last.value - truth).abs() < 0.3,
            "{} vs {truth}",
            last.value
        );
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let run = |seed| {
            let engine = Engine::new(SimConfig::new(1.0).with_seed(seed), line_track());
            engine.run(&mut Cruise { accel: 1.0 }).unwrap().trace
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn trace_is_aligned_for_csv() {
        let engine = Engine::new(SimConfig::new(0.5).with_seed(0), line_track());
        let out = engine.run(&mut Cruise { accel: 1.0 }).unwrap();
        // GNSS columns are sparse, so full alignment doesn't hold, but the
        // dense signals share the grid.
        let dense = [sig::TRUE_X, sig::WHEEL_SPEED, sig::STEER_CMD];
        let lens: Vec<usize> = dense
            .iter()
            .map(|n| out.trace.require(n).unwrap().len())
            .collect();
        assert!(lens.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn attack_tap_modifies_what_driver_sees() {
        struct SpeedTap;
        impl SensorTap for SpeedTap {
            fn tap(&mut self, frame: &mut SensorFrame, _truth: &VehicleState) {
                frame.wheel_speed = 99.0;
            }
        }
        let engine = Engine::new(SimConfig::new(0.2).with_seed(0), line_track());
        let mut seen = Vec::new();
        let mut driver = |ctx: &DriveCtx<'_>, _trace: &mut Trace| {
            seen.push(ctx.frame.wheel_speed);
            Controls::default()
        };
        let out = engine.run_with_tap(&mut driver, &mut SpeedTap).unwrap();
        assert!(seen.iter().all(|&v| v == 99.0));
        // The recorded sensor signal reflects the attack too.
        assert!(out
            .trace
            .require(sig::WHEEL_SPEED)
            .unwrap()
            .values()
            .all(|v| v == 99.0));
    }

    #[test]
    fn goal_stop_on_open_track() {
        let track = Track::line([0.0, 0.0], [20.0, 0.0], 1.0).unwrap();
        let mut config = SimConfig::new(60.0).with_seed(0);
        config.initial_state = Some({
            let mut s = VehicleState::at([0.0, 0.0], 0.0);
            s.speed = 10.0;
            s
        });
        let engine = Engine::new(config, track);
        let out = engine.run(&mut Cruise { accel: 0.0 }).unwrap();
        assert!(out.reached_goal);
        assert!(out.steps < 6000, "stopped early at {} steps", out.steps);
    }

    #[test]
    fn diverging_driver_is_reported() {
        // NaN controls are sanitised by the actuators, so divergence should
        // NOT occur; this guards the sanitisation path.
        let engine = Engine::new(SimConfig::new(0.5).with_seed(0), line_track());
        let mut driver =
            |_ctx: &DriveCtx<'_>, _trace: &mut Trace| Controls::new(f64::NAN, f64::NAN);
        let out = engine.run(&mut driver).unwrap();
        assert!(out.final_state.is_finite());
    }

    #[test]
    fn closed_track_progress_unwraps() {
        let track = Track::circle([0.0, 0.0], 15.0, 1.0).unwrap();
        let mut config = SimConfig::new(30.0).with_seed(2);
        let start = track.point_at(0.0);
        let mut init = VehicleState::at(start, track.heading_at(0.0));
        init.speed = 8.0;
        config.initial_state = Some(init);
        let engine = Engine::new(config, track);
        // Steer to roughly follow the circle (radius 15 → steer ≈ atan(L/R)).
        let steer = (2.7f64 / 15.0).atan();
        let out = engine
            .run(&mut move |_ctx: &DriveCtx<'_>, _t: &mut Trace| Controls::new(steer, 0.0))
            .unwrap();
        let progress = out.trace.require(sig::TRUE_PROGRESS).unwrap();
        let total = progress.last().unwrap().value;
        // 8 m/s for 30 s ≈ 240 m travelled; progress must accumulate past
        // one 94 m lap rather than wrapping.
        assert!(total > 150.0, "unwrapped progress {total}");
        // And it should be (weakly) monotone for a forward-driving car.
        let mut prev = f64::NEG_INFINITY;
        for v in progress.values() {
            assert!(v >= prev - 0.5, "progress regressed: {v} after {prev}");
            prev = v;
        }
    }
}
