//! Parallel offline checking: fan a batch of recorded traces across the
//! deterministic campaign executor.
//!
//! Scenario-replay pipelines check thousands of traces against the same
//! catalog; each check is independent, so the batch parallelises perfectly
//! on [`par::map`]. Reports come back in input order and are bit-identical
//! to a serial loop for any worker count.

use adassure_core::{checker, Assertion, CheckReport};
use adassure_trace::Trace;

use crate::par;

/// Checks every trace against `catalog` on the campaign thread pool.
pub fn check_traces(catalog: &[Assertion], traces: &[Trace]) -> Vec<CheckReport> {
    par::map(traces, |trace| checker::check(catalog, trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use adassure_core::assertion::{Condition, Severity};
    use adassure_core::SignalExpr;

    fn bound(limit: f64) -> Assertion {
        Assertion::new(
            "A1",
            "bounded x",
            Severity::Critical,
            Condition::AtMost {
                expr: SignalExpr::signal("x").abs(),
                limit,
            },
        )
    }

    fn trace_with_peak(peak: f64) -> Trace {
        let mut t = Trace::new();
        for i in 0..50 {
            let time = f64::from(i) * 0.01;
            t.record("x", time, if i == 25 { peak } else { 0.0 });
        }
        t
    }

    #[test]
    fn parallel_batch_matches_serial_checks() {
        let catalog = [bound(1.0)];
        let traces: Vec<Trace> = (0..8).map(|i| trace_with_peak(f64::from(i))).collect();
        let parallel = check_traces(&catalog, &traces);
        let serial: Vec<CheckReport> = traces.iter().map(|t| checker::check(&catalog, t)).collect();
        assert_eq!(parallel, serial);
        // Peaks 2..8 violate the |x| <= 1 bound; 0 and 1 do not.
        assert_eq!(parallel.iter().filter(|r| !r.is_clean()).count(), 6);
    }

    #[test]
    fn empty_batch_yields_no_reports() {
        assert!(check_traces(&[bound(1.0)], &[]).is_empty());
    }
}
