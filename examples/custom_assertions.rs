//! Author project-specific assertions in the textual spec language instead
//! of Rust, and debug a run against them.
//!
//! Run with: `cargo run --release --example custom_assertions`

use adassure::attacks::{campaign::AttackSpec, AttackKind, Window};
use adassure::control::ControllerKind;
use adassure::core::{checker, spec};
use adassure::scenarios::{run, Scenario, ScenarioKind};

/// A user-authored catalog: the kind of file that would live next to the
/// vehicle configuration. Severities, temporal operators and grace periods
/// are all part of the one-line syntax.
const CUSTOM_CATALOG: &str = "
# --- fleet-specific safety envelope (tighter than the defaults) ----------
SAFE1 critical: |xtrack_err| <= 1.0 sustained 0.5 grace 8 -- fleet lane-keeping envelope
SAFE2 warning:  |est_speed - target_speed| <= 2.0 sustained 1.5 grace 8 -- speed discipline

# --- the consistency core, spelled out by hand ---------------------------
CONS1 critical: |gnss_speed - wheel_speed| <= 3.0 sustained 0.25 grace 5 -- speed cross-check
CONS2 critical: fresh(gnss_x) <= 0.5 grace 3 -- GNSS must keep fixing
CONS3 critical: |dang(compass_heading)/dt - imu_yaw_rate| <= 8 grace 3 -- heading-rate cross-check

# --- mission clause -------------------------------------------------------
GOAL1 warning:  progress >= 270 eventually -- reach the end of the route
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let catalog = spec::parse_catalog(CUSTOM_CATALOG)?;
    println!("parsed {} user assertions:", catalog.len());
    for line in spec::format_catalog(&catalog).lines() {
        println!("  {line}");
    }

    let scenario = Scenario::of_kind(ScenarioKind::SCurve)?;

    // Clean run: the custom envelope should hold.
    let golden = run::clean(&scenario, ControllerKind::Lqr, 5)?;
    let report = checker::check(&catalog, &golden.trace);
    println!("\nclean run: {} violations", report.violations.len());

    // A GNSS dropout trips the user's freshness clause.
    let attack = AttackSpec::new(
        AttackKind::GnssDropout,
        Window::from_start(scenario.attack_start),
    );
    let mut injector = attack.injector(5);
    let attacked = run::with_tap(&scenario, ControllerKind::Lqr, 5, &mut injector)?;
    let report = checker::check(&catalog, &attacked.trace);
    println!("\nunder {}:", attack.name());
    print!("{}", report.summary());
    assert!(
        report.violations_of("CONS2").next().is_some(),
        "the user-authored freshness clause must fire"
    );
    Ok(())
}
