//! Reconnecting producer: wraps [`IngestProducer`] with transparent
//! session resumption on transport failure.
//!
//! [`ResilientProducer`] owns a *connect factory* instead of a socket.
//! When a send or an ack wait dies mid-operation, it tears the producer
//! down into its [`crate::ingest::RecoveryState`], dials a fresh
//! transport through the factory (capped exponential backoff with
//! deterministic jitter), resumes the session, and finishes the
//! interrupted operation — re-awaiting the replayed response when the
//! frame's sequence number was already consumed, re-issuing the frame
//! when it was not. Callers see exactly-once semantics across
//! connection cuts and server restarts; only a refusal the protocol
//! marks terminal (unknown session, resume gap, exhausted replay
//! retention) or an exhausted retry budget surfaces as an error.

use std::io::{Read, Write};
use std::time::Duration;

use crate::ingest::{IngestProducer, ProducerConfig, ProducerError, ProducerStats};
use crate::stream::{SampleBatch, StreamId};
use crate::wire::{AckBody, NackReason};

/// Object-safe transport bound: anything `Read + Write + Send` — a
/// `TcpStream`, a `UnixStream`, or a fault-injecting wrapper like
/// [`crate::chaos::ChaosTransport`].
pub trait Transport: Read + Write + Send {}

impl<T: Read + Write + Send> Transport for T {}

/// Backoff policy for reconnection attempts.
#[derive(Debug, Clone, Copy)]
pub struct ReconnectPolicy {
    /// Dial attempts per reconnection before giving up.
    pub max_attempts: u32,
    /// First retry delay; doubles per attempt.
    pub base_delay: Duration,
    /// Delay ceiling.
    pub max_delay: Duration,
    /// Seed for the deterministic jitter (each delay is scaled into
    /// `[0.5, 1.0)` of its nominal value).
    pub seed: u64,
}

impl Default for ReconnectPolicy {
    fn default() -> Self {
        ReconnectPolicy {
            max_attempts: 8,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_secs(2),
            seed: 0x5eed,
        }
    }
}

/// Failures surfaced by [`ResilientProducer`].
#[derive(Debug)]
pub enum ResilientError {
    /// The server refused this specific operation (stale stream id,
    /// unknown shard, …). The session itself is fine.
    Rejected {
        /// The refused frame's sequence number.
        seq: u64,
        /// The server's typed reason.
        reason: NackReason,
    },
    /// Every reconnection attempt failed; the session may still be
    /// resumable later by a new producer.
    GaveUp {
        /// Attempts made before giving up.
        attempts: u32,
        /// The last failure seen.
        last: ProducerError,
    },
    /// The session cannot be resumed (unknown/expired session, resume
    /// gap, exhausted replay retention, protocol violation).
    Fatal(ProducerError),
}

impl std::fmt::Display for ResilientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResilientError::Rejected { seq, reason } => {
                write!(f, "frame {seq} rejected: {reason}")
            }
            ResilientError::GaveUp { attempts, last } => {
                write!(f, "gave up after {attempts} reconnect attempts: {last}")
            }
            ResilientError::Fatal(e) => write!(f, "unrecoverable: {e}"),
        }
    }
}

impl std::error::Error for ResilientError {}

type BoxedConnect = Box<dyn FnMut(u32) -> std::io::Result<Box<dyn Transport>> + Send>;

/// A producer that survives its transport: dial failures, connection
/// cuts, and server restarts (from a checkpoint) are absorbed by
/// reconnect-and-resume; the operation in flight completes exactly once.
pub struct ResilientProducer {
    inner: Option<IngestProducer<Box<dyn Transport>>>,
    connect: BoxedConnect,
    config: ProducerConfig,
    policy: ReconnectPolicy,
    rng: u64,
}

impl std::fmt::Debug for ResilientProducer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResilientProducer")
            .field("connected", &self.inner.is_some())
            .field("config", &self.config)
            .field("policy", &self.policy)
            .finish_non_exhaustive()
    }
}

/// Transient failures trigger a reconnect; anything else surfaces.
fn transient(e: &ProducerError) -> bool {
    matches!(
        e,
        ProducerError::Io(_)
            | ProducerError::Disconnected
            | ProducerError::Wire(_)
            | ProducerError::Rejected {
                reason: NackReason::ConnectionLimit | NackReason::Saturated,
                ..
            }
    )
}

/// Failures that end the session for good — retrying cannot help.
fn terminal(e: &ProducerError) -> bool {
    matches!(
        e,
        ProducerError::Protocol(_)
            | ProducerError::ReplayExhausted { .. }
            | ProducerError::Rejected {
                reason: NackReason::UnknownSession | NackReason::ResumeGap,
                ..
            }
    )
}

impl ResilientProducer {
    /// Dials the first connection through `connect` (with the same
    /// backoff as later reconnects) and performs the handshake.
    ///
    /// `connect` receives the attempt index (0-based within each dial
    /// burst) and returns a fresh blocking transport; it is retained and
    /// re-invoked on every reconnection.
    ///
    /// # Errors
    ///
    /// [`ResilientError::GaveUp`] when no attempt produced a working
    /// connection, [`ResilientError::Fatal`] on a protocol-level
    /// refusal.
    pub fn connect(
        mut connect: BoxedConnect,
        config: ProducerConfig,
        policy: ReconnectPolicy,
    ) -> Result<Self, ResilientError> {
        let mut rng = policy.seed | 1;
        let mut last = ProducerError::Disconnected;
        for attempt in 0..policy.max_attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(backoff(&policy, &mut rng, attempt - 1));
            }
            let conn = match connect(attempt) {
                Ok(c) => c,
                Err(e) => {
                    last = ProducerError::Io(e);
                    continue;
                }
            };
            match IngestProducer::connect(conn, config) {
                Ok(inner) => {
                    return Ok(ResilientProducer {
                        inner: Some(inner),
                        connect,
                        config,
                        policy,
                        rng,
                    })
                }
                Err(e) if transient(&e) => last = e,
                Err(e) => return Err(ResilientError::Fatal(e)),
            }
        }
        Err(ResilientError::GaveUp {
            attempts: policy.max_attempts.max(1),
            last,
        })
    }

    /// Lifetime counters (carried across reconnects).
    pub fn stats(&self) -> ProducerStats {
        self.inner
            .as_ref()
            .map(IngestProducer::stats)
            .unwrap_or_default()
    }

    /// The session token, stable across reconnects.
    pub fn session(&self) -> u64 {
        self.inner.as_ref().map_or(0, IngestProducer::session)
    }

    /// Opens a stream; survives transport failure mid-operation.
    ///
    /// # Errors
    ///
    /// See [`ResilientError`].
    pub fn open_stream(&mut self) -> Result<StreamId, ResilientError> {
        self.run_op(IngestProducer::open_stream, |body| match body {
            AckBody::StreamOpened { stream } => Ok(stream),
            other => Err(ProducerError::Protocol(format!(
                "expected stream-opened ack, got {other:?}"
            ))),
        })
    }

    /// Closes `stream` and returns its final report as JSON bytes;
    /// survives transport failure mid-operation.
    ///
    /// # Errors
    ///
    /// See [`ResilientError`]; [`ResilientError::Rejected`] for stale or
    /// unknown ids.
    pub fn close_stream(&mut self, stream: StreamId) -> Result<Vec<u8>, ResilientError> {
        self.run_op(
            move |p| p.close_stream(stream),
            |body| match body {
                AckBody::StreamClosed { report_json } => Ok(report_json),
                other => Err(ProducerError::Protocol(format!(
                    "expected stream-closed ack, got {other:?}"
                ))),
            },
        )
    }

    /// Fetches the fleet metrics summary as JSON bytes; survives
    /// transport failure mid-operation.
    ///
    /// # Errors
    ///
    /// See [`ResilientError`].
    pub fn fetch_metrics(&mut self) -> Result<Vec<u8>, ResilientError> {
        self.run_op(IngestProducer::fetch_metrics, |body| match body {
            AckBody::Metrics { summary_json } => Ok(summary_json),
            other => Err(ProducerError::Protocol(format!(
                "expected metrics ack, got {other:?}"
            ))),
        })
    }

    /// Queues `batch`; a cut after the frame was windowed is absorbed by
    /// the resume replay, so the batch is applied exactly once either
    /// way.
    ///
    /// # Errors
    ///
    /// See [`ResilientError`].
    pub fn submit(&mut self, batch: &SampleBatch) -> Result<(), ResilientError> {
        loop {
            let p = self.producer()?;
            let before = p.next_seq();
            let err = match p.submit(batch) {
                Ok(()) => return Ok(()),
                Err(e) => e,
            };
            let windowed = self.inner.as_ref().is_some_and(|p| p.next_seq() > before);
            self.absorb(err)?;
            if windowed {
                // The resume already replayed (or re-awaits) the frame.
                return Ok(());
            }
        }
    }

    /// Blocks until every in-flight frame is acknowledged, reconnecting
    /// as needed.
    ///
    /// # Errors
    ///
    /// See [`ResilientError`].
    pub fn flush(&mut self) -> Result<(), ResilientError> {
        loop {
            let err = match self.producer()?.flush() {
                Ok(()) => return Ok(()),
                Err(e) => e,
            };
            self.absorb(err)?;
        }
    }

    /// One request/response operation with mid-operation recovery: when
    /// the failure struck after the frame's sequence was consumed, the
    /// retry re-awaits that sequence's (replayed) response instead of
    /// re-issuing the frame.
    fn run_op<T>(
        &mut self,
        mut issue: impl FnMut(&mut IngestProducer<Box<dyn Transport>>) -> Result<T, ProducerError>,
        claim: impl Fn(AckBody) -> Result<T, ProducerError>,
    ) -> Result<T, ResilientError> {
        let mut pending: Option<u64> = None;
        loop {
            let p = self.producer()?;
            let err = match pending {
                Some(seq) => match p.wait_response(seq).and_then(&claim) {
                    Ok(v) => return Ok(v),
                    Err(e) => e,
                },
                None => {
                    let before = p.next_seq();
                    match issue(p) {
                        Ok(v) => return Ok(v),
                        Err(e) => {
                            if self.inner.as_ref().is_some_and(|p| p.next_seq() > before) {
                                pending = Some(before);
                            }
                            e
                        }
                    }
                }
            };
            self.absorb(err)?;
        }
    }

    fn producer(&mut self) -> Result<&mut IngestProducer<Box<dyn Transport>>, ResilientError> {
        self.inner
            .as_mut()
            .ok_or(ResilientError::Fatal(ProducerError::Disconnected))
    }

    /// Classifies a failure: transient → reconnect and resume (Ok),
    /// operation-level rejection → [`ResilientError::Rejected`],
    /// anything else → [`ResilientError::Fatal`].
    fn absorb(&mut self, err: ProducerError) -> Result<(), ResilientError> {
        match err {
            e if transient(&e) => self.reconnect(e),
            ProducerError::Rejected { seq, reason } => {
                Err(ResilientError::Rejected { seq, reason })
            }
            e => Err(ResilientError::Fatal(e)),
        }
    }

    fn reconnect(&mut self, cause: ProducerError) -> Result<(), ResilientError> {
        let Some(dead) = self.inner.take() else {
            return Err(ResilientError::Fatal(ProducerError::Disconnected));
        };
        let mut recovery = dead.into_recovery();
        let mut last = cause;
        let attempts = self.policy.max_attempts.max(1);
        for attempt in 0..attempts {
            std::thread::sleep(backoff(&self.policy, &mut self.rng, attempt));
            let conn = match (self.connect)(attempt) {
                Ok(c) => c,
                Err(e) => {
                    last = ProducerError::Io(e);
                    continue;
                }
            };
            match IngestProducer::resume(conn, self.config, recovery) {
                Ok(p) => {
                    self.inner = Some(p);
                    return Ok(());
                }
                Err((r, e)) => {
                    recovery = r;
                    if terminal(&e) {
                        return Err(ResilientError::Fatal(*e));
                    }
                    last = *e;
                }
            }
        }
        Err(ResilientError::GaveUp { attempts, last })
    }
}

/// Capped exponential delay with deterministic jitter in `[0.5, 1.0)` of
/// nominal.
fn backoff(policy: &ReconnectPolicy, rng: &mut u64, attempt: u32) -> Duration {
    *rng = rng
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    // Top 31 bits of the LCG state, scaled into [0, 1).
    let frac = (*rng >> 33) as f64 / (1u64 << 31) as f64;
    let nominal = policy.base_delay.as_secs_f64() * 2f64.powi(attempt.min(20) as i32);
    let capped = nominal.min(policy.max_delay.as_secs_f64());
    Duration::from_secs_f64(capped * frac.mul_add(0.5, 0.5))
}
