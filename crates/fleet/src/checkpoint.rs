//! Versioned binary checkpoints of fleet state.
//!
//! A checkpoint is the complete serialized state of a [`Fleet`] — every
//! live stream's checker (sample-and-hold signals, health machines,
//! verdict caches, violations, counters), guardian state machines, slab
//! layout including generation counters and free-list order, the merged
//! retired metrics, and the stream-sequence counter — plus, when written
//! by an ingest server, every producer session's applied-sequence
//! high-water mark and its ring of recent encoded responses. Restoring a
//! checkpoint and replaying the post-checkpoint batches yields verdicts
//! **bit-identical** to an uninterrupted run; the proptest in
//! `tests/checkpoint_props.rs` and the chaos soak pin that property.
//!
//! # Format
//!
//! The encoding mirrors the `.adt`/ADWIRE conventions: explicit magic,
//! version and endianness markers, every integer and float little-endian,
//! and a bounds-checked decoder that returns typed [`CheckpointError`]s
//! instead of panicking on corrupt input.
//!
//! ```text
//! checkpoint := magic b"ADCKPT", version u8 (=1), endianness u8 (=1),
//!               fleet-section, session-section
//! ```
//!
//! The fleet section stores the catalog's assertion ids (validated on
//! restore — a checkpoint is only meaningful against the same compiled
//! plan), the health config, the shard layout, and per shard the slab
//! slots with their checker/guardian states. The session section stores
//! `(token, expected_seq, durable_seq, recent responses)` per producer
//! session, so a restarted server can resume producers exactly where the
//! checkpoint cut them (see DESIGN.md §13).
//!
//! Streams carrying a fault injector are rejected with
//! [`CheckpointError::Unsupported`]: injector RNG state is not
//! serializable, and the wire path never attaches injectors.

use std::sync::Arc;

use adassure_core::codec::{self, Cur};
use adassure_core::{Assertion, CheckerPlan, HealthConfig};
use adassure_obs::Guard;

use crate::fleet::{Fleet, FleetConfig, FleetState};
use crate::guard::{GuardConfig, GuardState};
use crate::shard::{DrainStats, ShardState, SlotState, StreamState};

/// Magic bytes opening every checkpoint.
pub const CKPT_MAGIC: &[u8; 6] = b"ADCKPT";
/// Current checkpoint format version. Version 2 added the violation
/// cycle index to the shared checker encoding.
pub const CKPT_VERSION: u8 = 2;
const CKPT_LITTLE_ENDIAN: u8 = 1;

/// Typed checkpoint encode/decode/restore failures.
///
/// The fleet checkpoint shares its error surface (and the checker-state
/// codec) with the sim debug checkpoints; see
/// [`adassure_core::codec`].
pub type CheckpointError = codec::CodecError;

/// One producer session as stored in a checkpoint: its token, the next
/// sequence the server expects, the durable (checkpoint-covered)
/// sequence, and the ring of recently sent encoded responses for resume
/// replay.
#[derive(Debug, Clone)]
pub(crate) struct SessionSeedEntry {
    pub(crate) token: u64,
    pub(crate) expected_seq: u64,
    pub(crate) acks: Vec<(u64, Vec<u8>)>,
}

/// The producer sessions recovered from a checkpoint, to be handed to
/// [`crate::IngestServer::spawn_restored`]. Opaque plain data.
#[derive(Debug, Default)]
pub struct SessionSeed {
    pub(crate) sessions: Vec<SessionSeedEntry>,
}

impl SessionSeed {
    /// Number of sessions in the seed.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Whether the seed holds no sessions.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

use codec::{put_grid, put_histogram, put_u16_str};

fn put_drain_stats(out: &mut Vec<u8>, s: &DrainStats) {
    for v in [
        s.batches,
        s.samples,
        s.cycles,
        s.violations,
        s.bad_cycles,
        s.stale_batches,
    ] {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn put_guard(out: &mut Vec<u8>, g: &GuardState) {
    out.extend_from_slice(&g.config.confirm_cycles.to_le_bytes());
    out.extend_from_slice(&g.config.recover_cycles.to_le_bytes());
    out.push(g.state.index() as u8);
    out.extend_from_slice(&g.alarm_streak.to_le_bytes());
    out.extend_from_slice(&g.clean_streak.to_le_bytes());
    put_grid(out, &g.grid);
}

/// Encodes a captured fleet state plus producer sessions into checkpoint
/// bytes.
pub(crate) fn encode(state: &FleetState, sessions: &[SessionSeedEntry]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4096);
    out.extend_from_slice(CKPT_MAGIC);
    out.push(CKPT_VERSION);
    out.push(CKPT_LITTLE_ENDIAN);
    #[allow(clippy::cast_possible_truncation)]
    out.extend_from_slice(&(state.assertion_ids.len() as u32).to_le_bytes());
    for id in &state.assertion_ids {
        put_u16_str(&mut out, id);
    }
    out.extend_from_slice(&state.health.stale_after.to_le_bytes());
    out.extend_from_slice(&state.health.quarantine_after.to_le_bytes());
    out.extend_from_slice(&state.health.recover_after.to_le_bytes());
    out.extend_from_slice(&state.next_seq.to_le_bytes());
    out.extend_from_slice(&state.closed_streams.to_le_bytes());
    let retired = serde_json::to_vec(&state.retired).expect("metrics snapshot serializes");
    #[allow(clippy::cast_possible_truncation)]
    out.extend_from_slice(&(retired.len() as u32).to_le_bytes());
    out.extend_from_slice(&retired);
    #[allow(clippy::cast_possible_truncation)]
    out.extend_from_slice(&(state.shards.len() as u32).to_le_bytes());
    for (shard, &rejected) in state.shards.iter().zip(
        state
            .rejected
            .iter()
            .chain(std::iter::repeat(&0))
            .take(state.shards.len()),
    ) {
        out.extend_from_slice(&rejected.to_le_bytes());
        put_drain_stats(&mut out, &shard.totals);
        out.extend_from_slice(&shard.cycle_counter.to_le_bytes());
        put_histogram(&mut out, &shard.cycle_ns);
        #[allow(clippy::cast_possible_truncation)]
        out.extend_from_slice(&(shard.slots.len() as u32).to_le_bytes());
        for slot in &shard.slots {
            out.extend_from_slice(&slot.gen.to_le_bytes());
            match &slot.stream {
                None => out.push(0),
                Some(stream) => {
                    out.push(1);
                    out.extend_from_slice(&stream.seq.to_le_bytes());
                    out.extend_from_slice(&stream.last_t.to_le_bytes());
                    match &stream.guard {
                        Some(g) => {
                            out.push(1);
                            put_guard(&mut out, g);
                        }
                        None => out.push(0),
                    }
                    codec::put_checker(&mut out, &stream.checker);
                }
            }
        }
        #[allow(clippy::cast_possible_truncation)]
        out.extend_from_slice(&(shard.free.len() as u32).to_le_bytes());
        for &f in &shard.free {
            out.extend_from_slice(&f.to_le_bytes());
        }
    }
    #[allow(clippy::cast_possible_truncation)]
    out.extend_from_slice(&(sessions.len() as u32).to_le_bytes());
    for session in sessions {
        out.extend_from_slice(&session.token.to_le_bytes());
        out.extend_from_slice(&session.expected_seq.to_le_bytes());
        #[allow(clippy::cast_possible_truncation)]
        out.extend_from_slice(&(session.acks.len() as u32).to_le_bytes());
        for (seq, bytes) in &session.acks {
            out.extend_from_slice(&seq.to_le_bytes());
            #[allow(clippy::cast_possible_truncation)]
            out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            out.extend_from_slice(bytes);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

fn read_drain_stats(c: &mut Cur<'_>) -> Result<DrainStats, CheckpointError> {
    Ok(DrainStats {
        batches: c.u64("totals")?,
        samples: c.u64("totals")?,
        cycles: c.u64("totals")?,
        violations: c.u64("totals")?,
        bad_cycles: c.u64("totals")?,
        stale_batches: c.u64("totals")?,
    })
}

fn read_guard(c: &mut Cur<'_>) -> Result<GuardState, CheckpointError> {
    let config = GuardConfig {
        confirm_cycles: c.u32("guard confirm cycles")?,
        recover_cycles: c.u32("guard recover cycles")?,
    };
    let state_idx = c.u8("guard state")? as usize;
    let state = *Guard::ALL
        .get(state_idx)
        .ok_or_else(|| Cur::bad(format!("invalid guard state index {state_idx}")))?;
    let alarm_streak = c.u32("guard alarm streak")?;
    let clean_streak = c.u32("guard clean streak")?;
    let grid = c.grid("guard grid")?;
    Ok(GuardState {
        config,
        state,
        alarm_streak,
        clean_streak,
        grid,
    })
}

/// Decodes checkpoint bytes into the plain-data fleet state plus the
/// producer sessions.
pub(crate) fn decode(bytes: &[u8]) -> Result<(FleetState, Vec<SessionSeedEntry>), CheckpointError> {
    let mut c = Cur::new(bytes);
    let magic = c.take(6, "magic")?;
    if magic != CKPT_MAGIC {
        return Err(Cur::bad("bad magic (not an ADCKPT checkpoint)"));
    }
    let version = c.u8("version")?;
    if version != CKPT_VERSION {
        return Err(CheckpointError::Incompatible {
            message: format!("checkpoint version {version}, this build speaks {CKPT_VERSION}"),
        });
    }
    let endian = c.u8("endianness")?;
    if endian != CKPT_LITTLE_ENDIAN {
        return Err(CheckpointError::Incompatible {
            message: format!("unsupported endianness marker {endian}"),
        });
    }
    let id_count = c.count("assertion count")?;
    let mut assertion_ids = Vec::with_capacity(id_count);
    for _ in 0..id_count {
        assertion_ids.push(c.str16("assertion id")?);
    }
    let health = HealthConfig {
        stale_after: c.f64("health stale-after")?,
        quarantine_after: c.u32("health quarantine-after")?,
        recover_after: c.u32("health recover-after")?,
    };
    let next_seq = c.u64("next stream seq")?;
    let closed_streams = c.u64("closed streams")?;
    let retired_len = c.count("retired metrics length")?;
    let retired_bytes = c.take(retired_len, "retired metrics")?;
    let retired = serde_json::from_slice(retired_bytes)
        .map_err(|e| Cur::bad(format!("retired metrics JSON: {e}")))?;
    let shard_count = c.count("shard count")?;
    let mut shards = Vec::with_capacity(shard_count);
    let mut rejected = Vec::with_capacity(shard_count);
    for _ in 0..shard_count {
        rejected.push(c.u64("rejected batches")?);
        let totals = read_drain_stats(&mut c)?;
        let cycle_counter = c.u64("cycle counter")?;
        let cycle_ns = c.histogram("cycle histogram")?;
        let slot_count = c.count("slot count")?;
        let mut slots = Vec::with_capacity(slot_count);
        for _ in 0..slot_count {
            let gen = c.u32("slot generation")?;
            let stream = if c.bool("slot live flag")? {
                let seq = c.u64("stream seq")?;
                let last_t = c.f64("stream last-t")?;
                let guard = if c.bool("guard flag")? {
                    Some(read_guard(&mut c)?)
                } else {
                    None
                };
                let checker = codec::read_checker(&mut c)?;
                Some(StreamState {
                    seq,
                    last_t,
                    checker,
                    guard,
                })
            } else {
                None
            };
            slots.push(SlotState { gen, stream });
        }
        let free_count = c.count("free-list count")?;
        let mut free = Vec::with_capacity(free_count);
        for _ in 0..free_count {
            free.push(c.u32("free-list entry")?);
        }
        shards.push(ShardState {
            slots,
            free,
            totals,
            cycle_ns,
            cycle_counter,
        });
    }
    let session_count = c.count("session count")?;
    let mut sessions = Vec::with_capacity(session_count);
    for _ in 0..session_count {
        let token = c.u64("session token")?;
        let expected_seq = c.u64("session expected seq")?;
        let ack_count = c.count("session ack count")?;
        let mut acks = Vec::with_capacity(ack_count);
        for _ in 0..ack_count {
            let seq = c.u64("ack seq")?;
            let len = c.count("ack length")?;
            acks.push((seq, c.take(len, "ack bytes")?.to_vec()));
        }
        sessions.push(SessionSeedEntry {
            token,
            expected_seq,
            acks,
        });
    }
    c.expect_end()?;
    Ok((
        FleetState {
            assertion_ids,
            health,
            next_seq,
            closed_streams,
            retired,
            rejected,
            shards,
        },
        sessions,
    ))
}

// ---------------------------------------------------------------------------
// Public fleet-level API
// ---------------------------------------------------------------------------

impl Fleet {
    /// Drains every queue, then serializes the fleet's complete state
    /// into versioned checkpoint bytes. Restoring them with
    /// [`Fleet::restore`] (same catalog, same config) and replaying the
    /// post-checkpoint batches yields bit-identical verdicts to an
    /// uninterrupted run.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Unsupported`] when a live stream carries a
    /// fault injector (its RNG state is not serializable).
    pub fn checkpoint(&mut self) -> Result<Vec<u8>, CheckpointError> {
        let state = self
            .capture_state()
            .map_err(|message| CheckpointError::Unsupported { message })?;
        Ok(encode(&state, &[]))
    }

    /// Rebuilds a fleet from checkpoint bytes, compiling `catalog` and
    /// validating it against the checkpoint's stored assertion ids.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Malformed`] for corrupt bytes,
    /// [`CheckpointError::Incompatible`] when the catalog, health config
    /// or shard count does not match the checkpoint.
    pub fn restore(
        catalog: impl IntoIterator<Item = Assertion>,
        config: FleetConfig,
        bytes: &[u8],
    ) -> Result<Self, CheckpointError> {
        Fleet::restore_with_plan(Arc::new(CheckerPlan::compile(catalog)), config, bytes)
    }

    /// [`Fleet::restore`] over an already-compiled plan.
    pub fn restore_with_plan(
        plan: Arc<CheckerPlan>,
        config: FleetConfig,
        bytes: &[u8],
    ) -> Result<Self, CheckpointError> {
        let (state, _sessions) = decode(bytes)?;
        Fleet::restore_with_state(plan, config, state)
            .map_err(|message| CheckpointError::Incompatible { message })
    }
}

/// Decodes a server checkpoint into a restored [`Fleet`] plus the
/// [`SessionSeed`] to hand to [`crate::IngestServer::spawn_restored`], so
/// reconnecting producers resume exactly at the checkpointed sequence.
pub fn restore_server(
    catalog: impl IntoIterator<Item = Assertion>,
    config: FleetConfig,
    bytes: &[u8],
) -> Result<(Fleet, SessionSeed), CheckpointError> {
    let (state, sessions) = decode(bytes)?;
    let fleet = Fleet::restore_with_state(Arc::new(CheckerPlan::compile(catalog)), config, state)
        .map_err(|message| CheckpointError::Incompatible { message })?;
    Ok((fleet, SessionSeed { sessions }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::SampleBatch;
    use adassure_core::{Condition, Severity, SignalExpr};
    use adassure_exp::Runtime;

    fn catalog() -> Vec<Assertion> {
        vec![
            Assertion::new(
                "C1",
                "bounded x",
                Severity::Critical,
                Condition::AtMost {
                    expr: SignalExpr::signal("x").abs(),
                    limit: 1.0,
                },
            ),
            Assertion::new(
                "C2",
                "fresh gnss",
                Severity::Warning,
                Condition::Fresh {
                    signal: "gnss".into(),
                    max_age: 0.3,
                },
            ),
        ]
    }

    fn config() -> FleetConfig {
        FleetConfig {
            shards: 2,
            runtime: Runtime::with_workers(1),
            ..FleetConfig::default()
        }
    }

    #[test]
    fn checkpoint_restore_continues_bit_identically() {
        let mut fleet = Fleet::new(catalog(), config());
        let mut oracle = Fleet::new(catalog(), config());
        let ids: Vec<_> = (0..3).map(|_| fleet.open_stream()).collect();
        let oracle_ids: Vec<_> = (0..3).map(|_| oracle.open_stream()).collect();
        let feed = |fleet: &Fleet, ids: &[crate::StreamId], k: u64| {
            for (s, &id) in ids.iter().enumerate() {
                let mut batch = SampleBatch::new(id);
                let t = 0.1 * k as f64;
                let x = if (k + s as u64).is_multiple_of(5) {
                    2.0
                } else {
                    0.3
                };
                batch.push(t, "x", x);
                if !k.is_multiple_of(3) {
                    batch.push(t, "gnss", 1.0);
                }
                fleet.submit(batch).unwrap();
            }
        };
        for k in 1..=10 {
            feed(&fleet, &ids, k);
            feed(&oracle, &oracle_ids, k);
        }
        oracle.poll();
        let bytes = fleet.checkpoint().expect("checkpoint");
        drop(fleet);
        let restored = Fleet::restore(catalog(), config(), &bytes).expect("restore");
        let mut fleet = restored;
        for k in 11..=20 {
            feed(&fleet, &ids, k);
            feed(&oracle, &oracle_ids, k);
        }
        fleet.poll();
        oracle.poll();
        for (&id, &oid) in ids.iter().zip(&oracle_ids) {
            let (report, _) = fleet.close_stream(id).unwrap();
            let (oreport, _) = oracle.close_stream(oid).unwrap();
            assert_eq!(
                serde_json::to_vec(&report).unwrap(),
                serde_json::to_vec(&oreport).unwrap()
            );
        }
        assert_eq!(
            serde_json::to_vec(&fleet.metrics().summary()).unwrap(),
            serde_json::to_vec(&oracle.metrics().summary()).unwrap()
        );
    }

    #[test]
    fn restore_rejects_wrong_catalog_and_layout() {
        let mut fleet = Fleet::new(catalog(), config());
        let _ = fleet.open_stream();
        let bytes = fleet.checkpoint().unwrap();
        let other = vec![Assertion::new(
            "Z9",
            "different",
            Severity::Info,
            Condition::AtMost {
                expr: SignalExpr::signal("z"),
                limit: 0.0,
            },
        )];
        assert!(matches!(
            Fleet::restore(other, config(), &bytes),
            Err(CheckpointError::Incompatible { .. })
        ));
        let narrow = FleetConfig {
            shards: 1,
            ..config()
        };
        assert!(matches!(
            Fleet::restore(catalog(), narrow, &bytes),
            Err(CheckpointError::Incompatible { .. })
        ));
    }

    #[test]
    fn corrupt_bytes_are_typed_not_panics() {
        let mut fleet = Fleet::new(catalog(), config());
        let _ = fleet.open_stream();
        let bytes = fleet.checkpoint().unwrap();
        assert!(matches!(
            decode(b"NOTACKPT"),
            Err(CheckpointError::Malformed { .. })
        ));
        for cut in [0, 7, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                decode(&bytes[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
        let mut flipped = bytes.clone();
        flipped[6] = 99; // version byte
        assert!(matches!(
            decode(&flipped),
            Err(CheckpointError::Incompatible { .. })
        ));
    }

    #[test]
    fn injector_streams_are_refused_with_a_typed_error() {
        use crate::shard::StreamConfig;
        use adassure_attacks::{ChannelFaultInjector, FaultKind, FaultSpec, Window};
        let mut fleet = Fleet::new(catalog(), config());
        let spec = FaultSpec::new(FaultKind::Dropout, 0.5, Window::always());
        let _ = fleet.open_stream_with(StreamConfig {
            injector: Some(ChannelFaultInjector::new(spec, 7)),
            guard: None,
        });
        assert!(matches!(
            fleet.checkpoint(),
            Err(CheckpointError::Unsupported { .. })
        ));
    }
}
