//! End-to-end integration: golden runs across the full workload matrix are
//! clean, and the recorded traces are well-formed.

use adassure::control::ControllerKind;
use adassure::core::{catalog, checker};
use adassure::scenarios::{run, Scenario, ScenarioKind};
use adassure::trace::{csv, well_known as sig, Trace};

fn catalog_for(scenario: &Scenario) -> Vec<adassure::core::Assertion> {
    let mut cfg = catalog::CatalogConfig::default();
    if !scenario.track.is_closed() {
        cfg = cfg.with_goal_distance(scenario.route_length());
    }
    catalog::build(&cfg)
}

#[test]
fn golden_runs_are_clean_across_the_workload_matrix() {
    // Every scenario × every controller, one seed each: the headline
    // zero-false-positive property of the default catalog.
    for scenario in Scenario::all() {
        let cat = catalog_for(&scenario);
        for controller in ControllerKind::ALL {
            let out = run::clean(&scenario, controller, 11).expect("simulation");
            let report = checker::check(&cat, &out.trace);
            assert!(
                report.is_clean(),
                "{} / {} fired on a clean run:\n{}",
                scenario.kind,
                controller,
                report.summary()
            );
        }
    }
}

#[test]
fn open_scenarios_reach_their_goal() {
    for kind in [
        ScenarioKind::Straight,
        ScenarioKind::SCurve,
        ScenarioKind::LaneChange,
        ScenarioKind::Hairpin,
    ] {
        let scenario = Scenario::of_kind(kind).unwrap();
        for controller in ControllerKind::ALL {
            let out = run::clean(&scenario, controller, 5).expect("simulation");
            assert!(out.reached_goal, "{kind} / {controller} timed out");
        }
    }
}

#[test]
fn traces_carry_the_full_signal_set() {
    let scenario = Scenario::of_kind(ScenarioKind::SCurve).unwrap();
    let out = run::clean(&scenario, ControllerKind::Lqr, 3).expect("simulation");
    for name in [
        sig::TRUE_X,
        sig::TRUE_Y,
        sig::TRUE_HEADING,
        sig::TRUE_SPEED,
        sig::TRUE_XTRACK_ERR,
        sig::TRUE_PROGRESS,
        sig::GNSS_X,
        sig::GNSS_Y,
        sig::GNSS_SPEED,
        sig::GNSS_JUMP,
        sig::WHEEL_SPEED,
        sig::WHEEL_ACCEL,
        sig::WHEEL_JITTER,
        sig::IMU_YAW_RATE,
        sig::IMU_ACCEL,
        sig::COMPASS_HEADING,
        sig::EST_X,
        sig::EST_Y,
        sig::EST_HEADING,
        sig::EST_SPEED,
        sig::INNOVATION,
        sig::XTRACK_ERR,
        sig::HEADING_ERR,
        sig::TARGET_SPEED,
        sig::PROGRESS,
        sig::STEER_CMD,
        sig::ACCEL_CMD,
        sig::STEER_ACTUAL,
        sig::LAT_ACCEL,
    ] {
        assert!(
            out.trace
                .series_by_name(name)
                .is_some_and(|s| !s.is_empty()),
            "missing or empty signal {name}"
        );
    }
}

#[test]
fn dense_signals_export_to_csv_and_back() {
    let scenario = Scenario::of_kind(ScenarioKind::Straight).unwrap();
    let out = run::clean(&scenario, ControllerKind::PurePursuit, 9).expect("simulation");
    // GNSS signals are sparse; export the dense (per-cycle) subset, which
    // shares one time grid by construction.
    let dense: Trace = out
        .trace
        .iter()
        .filter(|s| {
            !matches!(
                s.id().as_str(),
                sig::GNSS_X
                    | sig::GNSS_Y
                    | sig::GNSS_SPEED
                    | sig::GNSS_JUMP
                    | sig::WHEEL_ACCEL
                    | sig::WHEEL_JITTER
            )
        })
        .cloned()
        .collect();
    assert!(dense.is_aligned(), "per-cycle signals share the time grid");
    let text = csv::to_csv(&dense).expect("aligned");
    let back = csv::from_csv(&text).expect("round trip");
    assert_eq!(back.signal_count(), dense.signal_count());
    assert_eq!(back.sample_count(), dense.sample_count());
}

#[test]
fn offline_report_matches_online_monitoring() {
    // Replay the trace manually through an OnlineChecker in time order and
    // compare with the offline convenience path.
    use adassure::core::OnlineChecker;

    let scenario = Scenario::of_kind(ScenarioKind::LaneChange).unwrap();
    let cat = catalog_for(&scenario);
    let out = run::clean(&scenario, ControllerKind::Stanley, 21).expect("simulation");

    let offline = checker::check(&cat, &out.trace);

    let mut online = OnlineChecker::new(cat.iter().cloned());
    let events = checker::events(&out.trace);
    let mut i = 0;
    while i < events.len() {
        let t = events[i].0;
        online.begin_cycle(t).unwrap();
        while i < events.len() && events[i].0 == t {
            online.update(events[i].1.clone(), events[i].2);
            i += 1;
        }
        online.end_cycle();
    }
    let online = online.finish(out.trace.span().unwrap().1);
    assert_eq!(offline, online);
}
