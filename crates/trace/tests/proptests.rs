//! Property-based tests of the trace substrate's invariants.

use adassure_trace::{csv, stats, window, Series, Trace};
use proptest::prelude::*;

/// Strictly increasing time grid plus matching finite values.
fn samples_strategy() -> impl Strategy<Value = Vec<(f64, f64)>> {
    (1usize..60).prop_flat_map(|n| {
        (
            proptest::collection::vec(0.001f64..0.5, n),
            proptest::collection::vec(-1e6f64..1e6, n),
        )
            .prop_map(|(dts, values)| {
                let mut t = 0.0;
                dts.into_iter()
                    .zip(values)
                    .map(|(dt, v)| {
                        t += dt;
                        (t, v)
                    })
                    .collect()
            })
    })
}

proptest! {
    #[test]
    fn monotone_samples_always_push(samples in samples_strategy()) {
        let series = Series::from_samples("s", samples.clone()).expect("monotone");
        prop_assert_eq!(series.len(), samples.len());
    }

    #[test]
    fn value_at_is_exact_on_samples_and_bounded_between(samples in samples_strategy()) {
        let series = Series::from_samples("s", samples.clone()).unwrap();
        for &(t, v) in &samples {
            prop_assert_eq!(series.value_at(t), Some(v));
        }
        for w in samples.windows(2) {
            let mid = (w[0].0 + w[1].0) / 2.0;
            if let Some(v) = series.value_at(mid) {
                let (lo, hi) = (w[0].1.min(w[1].1), w[0].1.max(w[1].1));
                prop_assert!(v >= lo - 1e-6 && v <= hi + 1e-6, "{v} outside [{lo}, {hi}]");
            }
        }
    }

    #[test]
    fn derivative_series_shares_timestamps(samples in samples_strategy()) {
        let series = Series::from_samples("s", samples).unwrap();
        let d = series.differentiate();
        if series.len() >= 2 {
            prop_assert_eq!(d.len(), series.len());
            for (a, b) in d.samples().iter().zip(series.samples()) {
                prop_assert_eq!(a.time, b.time);
            }
        } else {
            prop_assert!(d.is_empty());
        }
    }

    #[test]
    fn summary_stats_orderings(values in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
        let s = stats::SummaryStats::from_values(values.clone()).unwrap();
        prop_assert!(s.min <= s.mean + 1e-9);
        prop_assert!(s.mean <= s.max + 1e-9);
        prop_assert!(s.rms + 1e-9 >= s.mean.abs());
        prop_assert!(s.std_dev >= 0.0);
        prop_assert_eq!(s.count, values.len());
    }

    #[test]
    fn percentile_is_monotone_and_bounded(
        values in proptest::collection::vec(-1e3f64..1e3, 1..50),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let (lo_q, hi_q) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let lo = stats::percentile(values.clone(), lo_q).unwrap();
        let hi = stats::percentile(values.clone(), hi_q).unwrap();
        prop_assert!(lo <= hi + 1e-9);
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(lo >= min - 1e-9 && hi <= max + 1e-9);
    }

    #[test]
    fn csv_round_trip_preserves_aligned_traces(
        samples in samples_strategy(),
        n_signals in 1usize..5,
    ) {
        let mut trace = Trace::new();
        for i in 0..n_signals {
            for &(t, v) in &samples {
                trace.record(format!("sig_{i}"), t, v + i as f64);
            }
        }
        let text = csv::to_csv(&trace).expect("aligned by construction");
        let back = csv::from_csv(&text).expect("round trip");
        prop_assert_eq!(back.signal_count(), trace.signal_count());
        prop_assert_eq!(back.sample_count(), trace.sample_count());
        // Values survive to printed-float precision.
        for series in trace.iter() {
            let round = back.series(series.id()).unwrap();
            for (a, b) in series.samples().iter().zip(round.samples()) {
                prop_assert!((a.value - b.value).abs() <= 1e-9 * a.value.abs().max(1.0));
            }
        }
    }

    #[test]
    fn first_sustained_implies_long_enough_run(
        samples in samples_strategy(),
        duration in 0.0f64..1.0,
        threshold in -1e5f64..1e5,
    ) {
        let series = Series::from_samples("s", samples).unwrap();
        if window::first_sustained(&series, duration, |v| v > threshold).is_some() {
            let run = window::longest_true_run(&series, |v| v > threshold);
            prop_assert!(run + 1e-9 >= duration, "run {run} < required {duration}");
        }
    }
}
