//! Offline vendored stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the type
//! shapes this workspace actually uses — non-generic structs with named
//! fields, newtype (single-field tuple) structs, unit structs, and enums
//! whose variants are unit, tuple, or struct-like — without depending on
//! `syn`/`quote`: the input is parsed directly from the `proc_macro` token
//! stream and the generated impls are emitted as source strings.
//!
//! Serialized representations match real serde defaults: structs as maps,
//! newtype structs transparently, enums externally tagged (`"Variant"`,
//! `{"Variant": value}`, `{"Variant": [..]}`, `{"Variant": {..}}`).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::ser::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives `serde::de::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Input model
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    body: Body,
}

enum Body {
    /// `struct S;`
    UnitStruct,
    /// `struct S { a: A, b: B }`
    Struct(Vec<String>),
    /// `struct S(A, B);` — field count only.
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    /// Tuple variant — field count only.
    Tuple(usize),
    Struct(Vec<String>),
}

// ---------------------------------------------------------------------------
// Token-stream parsing (no syn available)
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attrs_and_vis(&tokens, &mut pos);

    let keyword = expect_ident(&tokens, &mut pos);
    let name = expect_ident(&tokens, &mut pos);

    if matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("vendored serde_derive does not support generic types (deriving on `{name}`)");
    }

    let body = match keyword.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Struct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::UnitStruct,
            other => panic!("unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            other => panic!("unsupported enum body for `{name}`: {other:?}"),
        },
        other => panic!("derive supports only structs and enums, found `{other}`"),
    };

    Item { name, body }
}

/// Skips any `#[...]` attributes (incl. doc comments) and a leading
/// visibility modifier (`pub`, `pub(...)`).
fn skip_attrs_and_vis(tokens: &[TokenTree], pos: &mut usize) {
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *pos += 2; // '#' + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *pos += 1;
                if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *pos += 1; // pub(crate) / pub(super)
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> String {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(id)) => {
            *pos += 1;
            id.to_string()
        }
        other => panic!("expected identifier, found {other:?}"),
    }
}

/// Parses `a: A, b: B<C, D>, ...` into the field names, tracking `<>` depth
/// so commas inside generic arguments don't split fields.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        fields.push(expect_ident(&tokens, &mut pos));
        // ':'
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => panic!("expected ':' after field name, found {other:?}"),
        }
        // Skip the type up to a top-level ','.
        let mut angle_depth = 0usize;
        while let Some(tok) = tokens.get(pos) {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    angle_depth = angle_depth.saturating_sub(1);
                }
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    pos += 1;
                    break;
                }
                _ => {}
            }
            pos += 1;
        }
    }
    fields
}

/// Counts the fields of a tuple struct/variant body `(A, B<C, D>, ...)`.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut angle_depth = 0usize;
    let mut fields = 1;
    for (i, tok) in tokens.iter().enumerate() {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1);
            }
            TokenTree::Punct(p)
                if p.as_char() == ',' && angle_depth == 0 && i + 1 < tokens.len() =>
            {
                fields += 1; // not a trailing comma
            }
            _ => {}
        }
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut pos);
        let fields = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                VariantFields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantFields::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantFields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the trailing ','.
        while let Some(tok) = tokens.get(pos) {
            pos += 1;
            if matches!(tok, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::UnitStruct => {
            format!("__serializer.serialize_unit_struct(\"{name}\")")
        }
        Body::TupleStruct(1) => {
            format!("__serializer.serialize_newtype_struct(\"{name}\", &self.0)")
        }
        Body::TupleStruct(n) => {
            let mut s = format!(
                "let mut __state = __serializer.serialize_tuple_struct(\"{name}\", {n})?;\n"
            );
            for i in 0..*n {
                s.push_str(&format!(
                    "::serde::ser::SerializeTuple::serialize_element(&mut __state, &self.{i})?;\n"
                ));
            }
            s.push_str("::serde::ser::SerializeTuple::end(__state)");
            s
        }
        Body::Struct(fields) => {
            let mut s = format!(
                "let mut __state = __serializer.serialize_struct(\"{name}\", {})?;\n",
                fields.len()
            );
            for f in fields {
                s.push_str(&format!(
                    "::serde::ser::SerializeStruct::serialize_field(&mut __state, \"{f}\", &self.{f})?;\n"
                ));
            }
            s.push_str("::serde::ser::SerializeStruct::end(__state)");
            s
        }
        Body::Enum(variants) => {
            let mut arms = String::new();
            for (idx, v) in variants.iter().enumerate() {
                let vname = &v.name;
                match &v.fields {
                    VariantFields::Unit => arms.push_str(&format!(
                        "{name}::{vname} => __serializer.serialize_unit_variant(\"{name}\", {idx}u32, \"{vname}\"),\n"
                    )),
                    VariantFields::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vname}(__f0) => __serializer.serialize_newtype_variant(\"{name}\", {idx}u32, \"{vname}\", __f0),\n"
                    )),
                    VariantFields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let mut arm = format!(
                            "{name}::{vname}({}) => {{\nlet mut __state = __serializer.serialize_tuple_variant(\"{name}\", {idx}u32, \"{vname}\", {n})?;\n",
                            binds.join(", ")
                        );
                        for b in &binds {
                            arm.push_str(&format!(
                                "::serde::ser::SerializeTuple::serialize_element(&mut __state, {b})?;\n"
                            ));
                        }
                        arm.push_str("::serde::ser::SerializeTuple::end(__state)\n}\n");
                        arms.push_str(&arm);
                    }
                    VariantFields::Struct(fields) => {
                        let mut arm = format!(
                            "{name}::{vname} {{ {} }} => {{\nlet mut __state = __serializer.serialize_struct_variant(\"{name}\", {idx}u32, \"{vname}\", {})?;\n",
                            fields.join(", "),
                            fields.len()
                        );
                        for f in fields {
                            arm.push_str(&format!(
                                "::serde::ser::SerializeStruct::serialize_field(&mut __state, \"{f}\", {f})?;\n"
                            ));
                        }
                        arm.push_str("::serde::ser::SerializeStruct::end(__state)\n}\n");
                        arms.push_str(&arm);
                    }
                }
            }
            if variants.is_empty() {
                "match *self {}".to_string()
            } else {
                format!("match self {{\n{arms}}}")
            }
        }
    };

    format!(
        "#[automatically_derived]\n\
         impl ::serde::ser::Serialize for {name} {{\n\
             fn serialize<__S: ::serde::ser::Serializer>(\n\
                 &self,\n\
                 __serializer: __S,\n\
             ) -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let err = "<__D::Error as ::serde::de::Error>::custom";
    let body = match &item.body {
        Body::UnitStruct => format!(
            "match __deserializer.deserialize_content()? {{\n\
                 ::serde::de::Content::Null => ::core::result::Result::Ok({name}),\n\
                 __other => ::core::result::Result::Err({err}(::std::format!(\n\
                     \"expected null for unit struct {name}, found {{}}\", __other.kind()))),\n\
             }}"
        ),
        Body::TupleStruct(1) => format!(
            "::core::result::Result::Ok({name}(::serde::de::from_content(\n\
                 __deserializer.deserialize_content()?)?))"
        ),
        Body::TupleStruct(n) => format!(
            "match __deserializer.deserialize_content()? {{\n\
                 ::serde::de::Content::Seq(__items) if __items.len() == {n} => {{\n\
                     let mut __iter = __items.into_iter();\n\
                     ::core::result::Result::Ok({name}({fields}))\n\
                 }}\n\
                 __other => ::core::result::Result::Err({err}(::std::format!(\n\
                     \"expected array of {n} for tuple struct {name}, found {{}}\", __other.kind()))),\n\
             }}",
            fields = (0..*n)
                .map(|_| {
                    "::serde::de::from_content(__iter.next().expect(\"length checked\"))?"
                        .to_string()
                })
                .collect::<Vec<_>>()
                .join(", "),
        ),
        Body::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::de::from_content(::serde::de::take_field(&mut __entries, \"{f}\"))?"
                    )
                })
                .collect();
            format!(
                "match __deserializer.deserialize_content()? {{\n\
                     ::serde::de::Content::Map(mut __entries) => {{\n\
                         let _ = &mut __entries;\n\
                         ::core::result::Result::Ok({name} {{ {} }})\n\
                     }}\n\
                     __other => ::core::result::Result::Err({err}(::std::format!(\n\
                         \"expected object for struct {name}, found {{}}\", __other.kind()))),\n\
                 }}",
                inits.join(", ")
            )
        }
        Body::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    VariantFields::Unit => unit_arms.push_str(&format!(
                        "\"{vname}\" => ::core::result::Result::Ok({name}::{vname}),\n"
                    )),
                    VariantFields::Tuple(1) => data_arms.push_str(&format!(
                        "\"{vname}\" => ::core::result::Result::Ok({name}::{vname}(\n\
                             ::serde::de::from_content(__value)?)),\n"
                    )),
                    VariantFields::Tuple(n) => data_arms.push_str(&format!(
                        "\"{vname}\" => match __value {{\n\
                             ::serde::de::Content::Seq(__items) if __items.len() == {n} => {{\n\
                                 let mut __iter = __items.into_iter();\n\
                                 ::core::result::Result::Ok({name}::{vname}({fields}))\n\
                             }}\n\
                             __other => ::core::result::Result::Err({err}(::std::format!(\n\
                                 \"expected array of {n} for variant {name}::{vname}, found {{}}\", __other.kind()))),\n\
                         }},\n",
                        fields = (0..*n)
                            .map(|_| {
                                "::serde::de::from_content(__iter.next().expect(\"length checked\"))?"
                                    .to_string()
                            })
                            .collect::<Vec<_>>()
                            .join(", "),
                    )),
                    VariantFields::Struct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::de::from_content(::serde::de::take_field(&mut __fields, \"{f}\"))?"
                                )
                            })
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vname}\" => match __value {{\n\
                                 ::serde::de::Content::Map(mut __fields) => {{\n\
                                     let _ = &mut __fields;\n\
                                     ::core::result::Result::Ok({name}::{vname} {{ {} }})\n\
                                 }}\n\
                                 __other => ::core::result::Result::Err({err}(::std::format!(\n\
                                     \"expected object for variant {name}::{vname}, found {{}}\", __other.kind()))),\n\
                             }},\n",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "match __deserializer.deserialize_content()? {{\n\
                     ::serde::de::Content::String(__tag) => match __tag.as_str() {{\n\
                         {unit_arms}\
                         __other => ::core::result::Result::Err({err}(::std::format!(\n\
                             \"unknown unit variant `{{__other}}` for enum {name}\"))),\n\
                     }},\n\
                     ::serde::de::Content::Map(mut __entries) if __entries.len() == 1 => {{\n\
                         let (__tag, __value) = __entries.remove(0);\n\
                         let _ = &__value;\n\
                         match __tag.as_str() {{\n\
                             {data_arms}\
                             __other => ::core::result::Result::Err({err}(::std::format!(\n\
                                 \"unknown variant `{{__other}}` for enum {name}\"))),\n\
                         }}\n\
                     }}\n\
                     __other => ::core::result::Result::Err({err}(::std::format!(\n\
                         \"expected string or single-entry object for enum {name}, found {{}}\",\n\
                         __other.kind()))),\n\
                 }}"
            )
        }
    };

    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::de::Deserialize<'de> for {name} {{\n\
             fn deserialize<__D: ::serde::de::Deserializer<'de>>(\n\
                 __deserializer: __D,\n\
             ) -> ::core::result::Result<Self, __D::Error> {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    )
}
