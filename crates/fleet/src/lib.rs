//! Fleet-scale assertion monitoring: thousands-to-millions of concurrent
//! vehicle streams over per-shard checker instances.
//!
//! The per-vehicle engine ([`adassure_core::OnlineChecker`]) is compiled,
//! allocation-free in steady state and `Send` — this crate multiplexes it:
//!
//! - [`stream`] defines the wire surface: a generational [`StreamId`] and
//!   timestamped [`SampleBatch`]es (a cycle is a run of equal timestamps);
//! - [`shard`] owns stream state in generational slabs — per-stream
//!   checker (stamped from one shared [`adassure_core::CheckerPlan`]),
//!   optional telemetry-fault injector, optional guardian — and drains
//!   queued batches into checker cycles;
//! - [`fleet`] wires shards behind bounded ingestion queues with explicit
//!   backpressure ([`SubmitError::Saturated`] returns the batch; every
//!   rejection and stale drop is counted) and drains them in parallel on
//!   the worker pool shared with the campaign engine
//!   ([`adassure_exp::Runtime`]);
//! - [`guard`] is the lightweight per-stream guardian (nominal → degraded
//!   → safe-stop with confirmation and hysteresis);
//! - [`wire`] is the versioned, little-endian, length-prefixed binary
//!   ingest protocol (validating streaming decoder, typed nack reasons);
//! - [`ingest`] runs that protocol: a connection-per-producer TCP/UDS
//!   server feeding the shard queues, and the windowed client-side
//!   [`IngestProducer`] with go-back-N retry on saturation;
//! - [`checkpoint`] snapshots the whole fleet — per-stream checker
//!   state, guardians, health, session sequences — into a versioned
//!   binary image a restarted server restores bit-identically;
//! - [`resilient`] wraps the producer with reconnect-and-resume so
//!   connection cuts and server restarts preserve exactly-once batch
//!   application;
//! - [`chaos`] injects deterministic, seeded transport faults
//!   (mid-frame cuts, stalls) for resilience drills.
//!
//! # Determinism
//!
//! Sharded output is bit-identical to running each stream on its own
//! serial checker, for any shard and worker count: a stream's verdicts
//! depend only on its own in-order batch sequence (streams never share
//! mutable state), and fleet-wide metrics merge per-stream snapshots in
//! open/close order — orders the *caller* controls — using the
//! associative, order-insensitive [`adassure_obs::MetricsSnapshot::merge`].
//! The `fleet_differential` integration test pins this against the serial
//! engine; DESIGN.md §11 has the full argument.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chaos;
pub mod checkpoint;
pub mod fleet;
pub mod guard;
pub mod ingest;
pub mod resilient;
pub mod shard;
pub mod stream;
pub mod wire;

pub use chaos::{ChaosConfig, ChaosTransport, Severable};
pub use checkpoint::{restore_server, CheckpointError, SessionSeed};
pub use fleet::{Fleet, FleetConfig, FleetHandle, FleetStats, PollStats, SubmitError};
pub use guard::{GuardConfig, GuardState, StreamGuard};
pub use ingest::{
    Checkpointer, IngestConfig, IngestListener, IngestProducer, IngestServer, IngestStats,
    IngestStatsSnapshot, ProducerConfig, ProducerError, ProducerStats, RecoveryState,
};
pub use resilient::{ReconnectPolicy, ResilientError, ResilientProducer, Transport};
pub use shard::{DrainStats, StreamConfig, StreamError};
pub use stream::{Sample, SampleBatch, StreamId};
pub use wire::{FrameDecoder, NackReason, WireError};

#[cfg(test)]
mod tests {
    use super::*;
    use adassure_core::{Assertion, Condition, Severity, SignalExpr};

    fn catalog() -> Vec<Assertion> {
        vec![Assertion::new(
            "A1",
            "bounded x",
            Severity::Critical,
            Condition::AtMost {
                expr: SignalExpr::signal("x").abs(),
                limit: 1.0,
            },
        )]
    }

    fn config(shards: usize, queue: usize) -> FleetConfig {
        FleetConfig {
            shards,
            queue_capacity: queue,
            ..FleetConfig::default()
        }
    }

    #[test]
    fn saturation_is_typed_and_counted() {
        let mut fleet = Fleet::new(catalog(), config(1, 2));
        let id = fleet.open_stream();
        let batch = |t: f64| {
            let mut b = SampleBatch::new(id);
            b.push(t, "x", 0.0);
            b
        };
        fleet.submit(batch(0.1)).unwrap();
        fleet.submit(batch(0.2)).unwrap();
        let err = fleet.submit(batch(0.3)).unwrap_err();
        let recovered = match err {
            SubmitError::Saturated { shard: 0, batch } => batch,
            other => panic!("expected saturation, got {other:?}"),
        };
        assert_eq!(fleet.stats().rejected_batches, 1);
        // Drain and retry: nothing was lost.
        assert_eq!(fleet.poll().cycles, 2);
        fleet.submit(recovered).unwrap();
        assert_eq!(fleet.poll().cycles, 1);
        assert_eq!(fleet.stats().cycles, 3);
    }

    #[test]
    fn stale_generation_batches_are_counted_not_applied() {
        let mut fleet = Fleet::new(catalog(), config(1, 8));
        let old = fleet.open_stream();
        fleet.close_stream(old).unwrap();
        let new = fleet.open_stream();
        assert_eq!(old.shard, new.shard);
        assert_eq!(old.slot, new.slot, "slot is reused");
        assert_ne!(old.gen, new.gen, "generation advanced");

        let mut stale = SampleBatch::new(old);
        stale.push(0.1, "x", 5.0);
        fleet.submit(stale).unwrap();
        let polled = fleet.poll();
        assert_eq!(polled.stale_batches, 1);
        assert_eq!(polled.cycles, 0, "stale batch never reaches a checker");
        assert!(fleet.close_stream(old).is_err(), "double close is stale");
        let (report, _) = fleet.close_stream(new).unwrap();
        assert!(report.is_clean());
    }

    #[test]
    fn bad_timestamps_are_counted_and_skipped() {
        let mut fleet = Fleet::new(catalog(), config(2, 8));
        let id = fleet.open_stream();
        let mut b = SampleBatch::new(id);
        b.push(0.2, "x", 0.0);
        fleet.submit(b).unwrap();
        fleet.poll();
        let mut b = SampleBatch::new(id);
        b.push(0.1, "x", 9.0); // non-monotone: rejected, not evaluated
        b.push(0.3, "x", 0.0);
        fleet.submit(b).unwrap();
        let polled = fleet.poll();
        assert_eq!(polled.bad_cycles, 1);
        assert_eq!(polled.cycles, 1);
        let (report, _) = fleet.close_stream(id).unwrap();
        assert!(report.is_clean(), "the rejected excursion never fired");
    }

    #[test]
    fn metrics_merge_all_streams_live_and_retired() {
        let mut fleet = Fleet::new(catalog(), config(3, 8));
        let a = fleet.open_stream();
        let b = fleet.open_stream();
        for (id, v) in [(a, 0.5), (b, 2.0)] {
            let mut batch = SampleBatch::new(id);
            batch.push(0.1, "x", v);
            batch.push(0.2, "x", v);
            fleet.submit(batch).unwrap();
        }
        fleet.poll();
        let live = fleet.metrics();
        assert_eq!(live.cycles, 4);
        fleet.close_stream(a).unwrap();
        let mixed = fleet.metrics();
        assert_eq!(mixed.cycles, 4, "retired streams stay in the totals");
        assert_eq!(mixed.assertions[0].verdicts.violated, 2);
    }

    #[test]
    fn handle_submits_from_producer_threads() {
        let mut fleet = Fleet::new(catalog(), config(2, 64));
        let ids: Vec<StreamId> = (0..4).map(|_| fleet.open_stream()).collect();
        let handle = fleet.handle();
        std::thread::scope(|scope| {
            for &id in &ids {
                let handle = handle.clone();
                scope.spawn(move || {
                    let mut b = SampleBatch::new(id);
                    b.push(0.1, "x", 0.0);
                    handle.submit(b).unwrap();
                });
            }
        });
        assert_eq!(fleet.poll().cycles, 4);
    }
}
