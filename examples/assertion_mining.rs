//! Assertion mining: learn catalog thresholds from golden runs instead of
//! hand-tuning them, then show the mined catalog is clean on fresh golden
//! runs and still detects attacks.
//!
//! Run with: `cargo run --release --example assertion_mining`

use adassure::attacks::campaign::standard_attacks;
use adassure::control::ControllerKind;
use adassure::core::mining::{self, MiningConfig};
use adassure::core::{catalog, checker};
use adassure::scenarios::{run, Scenario, ScenarioKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = Scenario::of_kind(ScenarioKind::SCurve)?;
    let controller = ControllerKind::PurePursuit;
    let base = catalog::CatalogConfig::default().with_goal_distance(scenario.route_length());

    // --- Mine from three golden runs (training seeds). ------------------
    let train_seeds = [100u64, 101, 102];
    let mut golden = Vec::new();
    for &seed in &train_seeds {
        golden.push(run::clean(&scenario, controller, seed)?.trace);
    }
    let golden_refs: Vec<_> = golden.iter().collect();
    let bounds = mining::mine_bounds(&base, &golden_refs, &MiningConfig::default());

    println!("mined thresholds (observed worst case × 1.3 margin):\n");
    println!(
        "{:<5} {:>12} {:>12} {:>12}",
        "id", "observed", "mined", "hand-tuned"
    );
    let defaults = catalog::build(&base);
    let mut ids: Vec<_> = bounds.keys().collect();
    ids.sort_by_key(|id| id[1..].parse::<u32>().unwrap_or(u32::MAX));
    for id in ids {
        let b = &bounds[id];
        let hand = defaults
            .iter()
            .find(|a| a.id.as_str() == id.as_str())
            .map(|a| format!("{:.3}", a.condition.threshold()))
            .unwrap_or_default();
        println!(
            "{id:<5} {:>12.3} {:>12.3} {:>12}",
            b.observed, b.mined, hand
        );
    }

    // --- Validate: clean on held-out golden seeds... --------------------
    let mined_cat = mining::mined_catalog(&base, &golden_refs, &MiningConfig::default());
    let mut false_positives = 0usize;
    let holdout = [200u64, 201, 202, 203, 204];
    for &seed in &holdout {
        let out = run::clean(&scenario, controller, seed)?;
        let report = checker::check(&mined_cat, &out.trace);
        false_positives += usize::from(!report.is_clean());
    }
    println!(
        "\nheld-out golden runs: {false_positives}/{} flagged (false positives)",
        holdout.len()
    );

    // --- ...and still detecting attacks. ---------------------------------
    let mut detected = 0usize;
    let attacks = standard_attacks(scenario.attack_start);
    for attack in &attacks {
        let mut injector = attack.injector(7);
        let out = run::with_tap(&scenario, controller, 7, &mut injector)?;
        let report = checker::check(&mined_cat, &out.trace);
        if report.detection_latency(attack.window.start).is_some() {
            detected += 1;
        }
    }
    println!(
        "attacked runs: {detected}/{} detected with the mined catalog",
        attacks.len()
    );
    Ok(())
}
