#!/usr/bin/env sh
# Local CI gate: formatting, lints, tests. Run from the repository root.
set -eu

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (workspace, warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test (workspace) =="
cargo test --workspace -q

echo "== table5_robustness smoke slice (seconds-scale, seeded) =="
cargo run --release -q -p adassure-bench --bin table5_robustness -- --smoke

echo "== observability differential (JSONL vs NullSink, bit-identical reports) =="
cargo test -q -p adassure-exp --test obs_differential

echo "== lane engine differential (scalar vs lane-batched, bit-identical) =="
cargo test -q -p adassure-core --test proptests lane_batched

echo "== columnar pipeline differential (CSV -> .adt -> lane check) =="
cargo test -q -p adassure-exp --test columnar_differential

echo "== trace-import smoke (CSV corpus -> .adt, verified round trip) =="
rm -rf target/ci_adt && mkdir -p target/ci_adt
cargo run --release -q -p adassure-trace --bin trace-import -- \
    --verify --out target/ci_adt crates/trace/testdata/smoke.csv

echo "== observability smoke: obs_dump event log + jsonl_check validation =="
ADASSURE_OBS=1 ADASSURE_OBS_PATH=target/ci_events.jsonl \
    cargo run --release -q -p adassure-bench --bin obs_dump -- --smoke \
    > target/ci_obs_prometheus.txt
cargo run --release -q -p adassure-bench --bin jsonl_check -- target/ci_events.jsonl

echo "== fleet differential (sharded vs serial, bit-identical for any layout) =="
cargo test -q -p adassure-fleet --test differential

echo "== fleet soak smoke (10k+ concurrent streams on the sharded checker) =="
cargo run --release -q -p adassure-bench --bin fleet_soak -- \
    --smoke --out target/ci_fleet_soak.json

echo "== ingest differential (loopback wire vs in-process, bit-identical) =="
cargo test -q -p adassure-fleet --test ingest_differential

echo "== wire robustness (truncation/corruption/disconnect: typed, counted, no panics) =="
cargo test -q -p adassure-fleet --test wire_robustness

echo "== network ingest soak smoke (loopback TCP, zero lost samples) =="
cargo run --release -q -p adassure-bench --bin net_soak -- \
    --smoke --out target/ci_net_soak.json

echo "== wire framing properties (any fragmentation/truncation reassembles) =="
cargo test -q -p adassure-fleet --test wire_props

echo "== checkpoint properties (restore continues bit-identically, any split) =="
cargo test -q -p adassure-fleet --test checkpoint_props

echo "== crash resilience (seeded cuts, checkpointed restart, connection cap) =="
cargo test -q -p adassure-fleet --test resilience

echo "== chaos soak smoke (faulted sockets + server crash, byte-identical) =="
cargo run --release -q -p adassure-bench --bin chaos_soak -- \
    --smoke --out target/ci_chaos_soak.json

echo "== debug replay (bit-identical time travel + checkpoint resume) =="
cargo test -q -p adassure-debug --test replay

echo "== minimizer property (reproduces at stamped cycle, 1-minimal) =="
cargo test -q -p adassure-debug --test minimize_prop

echo "== debug smoke (seeded replay-to-cycle + minimize -> rerun round trip) =="
cargo run --release -q -p adassure-debug --bin addebug -- replay \
    --scenario straight --seed 1 --attack gnss_bias --cycle 1234 \
    > target/ci_addebug_replay.txt
cargo run --release -q -p adassure-debug --bin addebug -- minimize \
    --scenario straight --seed 1 --attack gnss_bias --max-runs 40 \
    --out target/ci_repro.json
cargo run --release -q -p adassure-debug --bin addebug -- rerun target/ci_repro.json

echo "== cargo bench --no-run (benchmarks stay compilable) =="
cargo bench --workspace --no-run

echo "CI OK"
