//! Deterministic parallel execution over grid cells.
//!
//! This module is the campaign-facing surface of the shared worker pool;
//! the pool itself lives in [`crate::runtime`] so the fleet monitor server
//! can drive shards on the same machinery. Work is distributed by an
//! atomic cursor over the item list and every result is keyed by its item
//! index, so the merged output is bit-identical to a serial run regardless
//! of worker count or scheduling.

use crate::runtime::Runtime;
use std::sync::OnceLock;

/// Environment variable overriding the worker count (values `>= 1`;
/// anything else falls back to the default).
pub const THREADS_ENV: &str = "ADASSURE_THREADS";

/// The number of workers the global [`Runtime`] uses.
///
/// Precedence, resolved **once per process** on the first call (the
/// result is cached in a `OnceLock`, so later changes to the environment
/// are ignored):
///
/// 1. `ADASSURE_THREADS`, when set to a positive integer (anything else —
///    empty, `0`, non-numeric — is ignored);
/// 2. the machine's available parallelism
///    ([`std::thread::available_parallelism`]);
/// 3. `1`, when the parallelism query itself fails.
///
/// Callers that need a *different* worker count in the same process (the
/// determinism tests, explicit fleet configs) construct a
/// [`Runtime::with_workers`] instead of mutating the environment.
pub fn thread_count() -> usize {
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(|| {
        std::env::var(THREADS_ENV)
            .ok()
            .as_deref()
            .and_then(parse_thread_override)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
    })
}

/// Parses an `ADASSURE_THREADS` value: `Some(n)` for a positive integer
/// (surrounding whitespace tolerated), `None` for anything else.
pub fn parse_thread_override(value: &str) -> Option<usize> {
    match value.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Some(n),
        _ => None,
    }
}

/// Maps `f` over `items` on the global [`Runtime`]'s workers, returning
/// results in item order. See [`Runtime::map`] for the purity contract and
/// panic behaviour.
pub fn map<I, T, F>(items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    Runtime::global().map(items, f)
}

/// [`map`] with an explicit worker count (used by the determinism tests).
pub fn map_with_threads<I, T, F>(items: &[I], threads: usize, f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    Runtime::with_workers(threads).map(items, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_matches_serial_iteration() {
        let items: Vec<u64> = (0..50).collect();
        let out = map_with_threads(&items, 4, |&x| x + 1);
        assert_eq!(out, items.iter().map(|&x| x + 1).collect::<Vec<_>>());
    }

    #[test]
    fn override_parsing_accepts_positive_integers_only() {
        assert_eq!(parse_thread_override("4"), Some(4));
        assert_eq!(parse_thread_override("  2 "), Some(2));
        assert_eq!(parse_thread_override("1"), Some(1));
        assert_eq!(parse_thread_override("0"), None);
        assert_eq!(parse_thread_override(""), None);
        assert_eq!(parse_thread_override("not-a-number"), None);
        assert_eq!(parse_thread_override("-3"), None);
    }

    #[test]
    fn thread_count_is_stable_within_a_process() {
        // The cached value never changes once resolved — the determinism
        // campaigns rely on construction-time worker counts instead.
        let first = thread_count();
        assert!(first >= 1);
        assert_eq!(thread_count(), first);
    }
}
