use serde::{Deserialize, Serialize};

use adassure_sim::geometry::Vec2;
use adassure_sim::track::Track;

/// The estimator's belief about the vehicle state, handed to lateral
/// controllers every cycle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Estimate {
    /// Estimated position (m).
    pub position: Vec2,
    /// Estimated heading (rad).
    pub heading: f64,
    /// Estimated forward speed (m/s).
    pub speed: f64,
    /// Measured yaw rate passed through from the IMU (rad/s).
    pub yaw_rate: f64,
}

impl Estimate {
    /// An estimate at rest at the origin.
    pub fn zero() -> Self {
        Estimate {
            position: Vec2::ZERO,
            heading: 0.0,
            speed: 0.0,
            yaw_rate: 0.0,
        }
    }
}

/// A lateral (steering) controller.
///
/// Implementations are deliberately *unaware* of ground truth: they see only
/// the estimate derived from (possibly attacked) sensors, which is what
/// makes the ADAssure debugging problem real.
pub trait LateralController {
    /// Computes the steering command (rad) for the current cycle.
    fn steer(&mut self, est: &Estimate, track: &Track, dt: f64) -> f64;

    /// Resets any internal state (integrators, warm starts).
    fn reset(&mut self) {}
}

/// Which lateral controller a stack uses. Used by campaign sweeps to
/// enumerate stacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ControllerKind {
    /// Geometric pure-pursuit lookahead controller.
    PurePursuit,
    /// Stanley front-axle error controller.
    Stanley,
    /// LQR error-state feedback with gains from a discrete Riccati solve.
    Lqr,
    /// Receding-horizon MPC with a kinematic prediction model.
    Mpc,
}

impl ControllerKind {
    /// All controller kinds, in a stable order.
    pub const ALL: [ControllerKind; 4] = [
        ControllerKind::PurePursuit,
        ControllerKind::Stanley,
        ControllerKind::Lqr,
        ControllerKind::Mpc,
    ];

    /// Short lowercase name (stable across releases; used in reports).
    pub fn name(self) -> &'static str {
        match self {
            ControllerKind::PurePursuit => "pure_pursuit",
            ControllerKind::Stanley => "stanley",
            ControllerKind::Lqr => "lqr",
            ControllerKind::Mpc => "mpc",
        }
    }
}

impl std::fmt::Display for ControllerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_unique_and_named() {
        let names: std::collections::HashSet<_> =
            ControllerKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), 4);
        assert_eq!(ControllerKind::Mpc.to_string(), "mpc");
    }

    #[test]
    fn zero_estimate() {
        let e = Estimate::zero();
        assert_eq!(e.position, Vec2::ZERO);
        assert_eq!(e.speed, 0.0);
    }
}
