//! Determinism pins for the steppable session and its checkpoints.
//!
//! The time-travel debugger's correctness rests on two properties of the
//! engine loop: (1) a run is a pure function of its configuration and
//! seed, and (2) a [`SimSnapshot`] captures *all* mutable loop state, so
//! restore-and-continue is bit-identical to running straight through.
//! These tests pin both, with a driver whose commands feed sensor noise
//! back into the physics (so any RNG or actuator state missed by the
//! snapshot would diverge the trajectory immediately).

use adassure_sim::engine::{DriveCtx, Engine, NoTap, SimConfig, SimSession};
use adassure_sim::track::Track;
use adassure_sim::vehicle::Controls;
use adassure_trace::Trace;

fn engine() -> Engine {
    let track = Track::line([0.0, 0.0], [400.0, 0.0], 1.0).expect("valid track");
    let config = SimConfig::new(20.0).with_seed(0xC0FFEE);
    Engine::new(config, track)
}

/// A deterministic scripted driver that couples noisy sensor readings back
/// into the commands, and records a signal of its own into the trace.
fn driver() -> impl FnMut(&DriveCtx<'_>, &mut Trace) -> Controls {
    |ctx: &DriveCtx<'_>, trace: &mut Trace| {
        let steer = 0.05 * (0.37 * ctx.time).sin() + 0.002 * ctx.frame.imu_yaw_rate;
        let accel = (6.0 - ctx.frame.wheel_speed).clamp(-2.0, 2.0);
        trace.record("script_steer", ctx.time, steer);
        Controls { steer, accel }
    }
}

fn run_straight(cycles: usize) -> SimSession {
    let mut session = engine().session().expect("valid config");
    let mut drive = driver();
    let mut tap = NoTap;
    for _ in 0..cycles {
        assert!(session.step(&mut drive, &mut tap).expect("step"));
    }
    session
}

#[test]
fn two_identical_runs_are_byte_identical() {
    let a = run_straight(900);
    let b = run_straight(900);
    assert_eq!(a.trace(), b.trace(), "traces diverged");
    assert_eq!(a.state(), b.state(), "final states diverged");
    assert_eq!(a.time(), b.time());
}

#[test]
fn checkpoint_resume_matches_straight_run() {
    let reference = run_straight(900);
    for split in [1usize, 137, 450, 899] {
        // Run to the split point, snapshot, and resume in a *fresh*
        // session over the same engine.
        let interrupted = run_straight(split);
        let snap = interrupted.snapshot();
        let mut resumed = engine().session().expect("valid config");
        resumed.restore(&snap);
        assert_eq!(resumed.steps(), split);
        let mut drive = driver();
        let mut tap = NoTap;
        for _ in split..900 {
            assert!(resumed.step(&mut drive, &mut tap).expect("step"));
        }
        assert_eq!(
            resumed.trace(),
            reference.trace(),
            "split at {split}: trace diverged after restore"
        );
        assert_eq!(
            resumed.state(),
            reference.state(),
            "split at {split}: state diverged after restore"
        );
    }
}

#[test]
fn restore_rewinds_within_one_session() {
    // Snapshot mid-run, keep going, rewind, and replay: the second pass
    // over the same cycles must reproduce the first exactly.
    let mut session = engine().session().expect("valid config");
    let mut drive = driver();
    let mut tap = NoTap;
    for _ in 0..300 {
        assert!(session.step(&mut drive, &mut tap).expect("step"));
    }
    let snap = session.snapshot();
    for _ in 300..600 {
        assert!(session.step(&mut drive, &mut tap).expect("step"));
    }
    let first_pass = session.trace().clone();
    session.restore(&snap);
    // The driver closure is stateless, so reusing it is fine; a stateful
    // driver would be restored through its own state snapshot.
    for _ in 300..600 {
        assert!(session.step(&mut drive, &mut tap).expect("step"));
    }
    assert_eq!(session.trace(), &first_pass, "rewound replay diverged");
}
