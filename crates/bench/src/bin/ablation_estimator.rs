//! **AB3 — Estimator ablation (extension)**: how estimator robustness
//! interacts with assertion-based debugging. Compares the complementary
//! filter, a standard EKF and an innovation-gated EKF under the GNSS attack
//! classes: detection latency *and* physical damage (worst true cross-track
//! error).
//!
//! The expected tension: gating *masks* spoofed fixes from the behavioural
//! assertions (the vehicle stays on the true path) while the innovation
//! assertion fires regardless — robustness and diagnosability are
//! complementary, not competing.
//!
//! Regenerate with:
//! `cargo run --release -p adassure-bench --bin ablation_estimator`

use adassure_attacks::Channel;
use adassure_control::pipeline::EstimatorKind;
use adassure_control::ControllerKind;
use adassure_exp::agg::fmt_mean_std;
use adassure_exp::{AttackSet, Campaign, Grid};
use adassure_scenarios::{Scenario, ScenarioKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = Scenario::of_kind(ScenarioKind::SCurve)?;
    let seeds = [1u64, 2, 3];
    let grid = Grid::new()
        .scenarios([scenario.kind])
        .controllers([ControllerKind::PurePursuit])
        .estimators(EstimatorKind::ALL)
        .attacks(AttackSet::Channel(Channel::Gnss))
        .seeds(seeds);
    let report = Campaign::new("ab3_estimator", grid)
        .run()
        .map_err(|e| format!("ab3 campaign: {e}"))?;

    println!(
        "AB3: estimator ablation under GNSS attacks (scenario `{}`, pure_pursuit, seeds {seeds:?})",
        scenario.kind
    );
    println!("cells: detection latency (s) | worst true |xtrack| (m), mean over seeds\n");
    print!("{:<16}", "attack");
    for kind in EstimatorKind::ALL {
        print!("{:>26}", kind.name());
    }
    println!();

    for attack in AttackSet::Channel(Channel::Gnss).specs(0.0) {
        print!("{:<16}", attack.name());
        for estimator in EstimatorKind::ALL {
            let runs = report.select(|r| {
                r.attack.as_deref() == Some(attack.name()) && r.estimator == estimator.name()
            });
            let latencies: Vec<f64> = runs.iter().filter_map(|r| r.detection_latency).collect();
            let damages: Vec<f64> = runs.iter().map(|r| r.worst_xtrack_err).collect();
            let detected = latencies.len();
            let latency = if latencies.is_empty() {
                format!("miss {}/{}", detected, seeds.len())
            } else {
                fmt_mean_std(&latencies)
            };
            print!("{:>26}", format!("{latency} | {}", fmt_mean_std(&damages)));
        }
        println!();
    }
    println!("\n(the gated EKF keeps the vehicle physically safer under spoofing —");
    println!(" the rejected fixes never steer the car — while the innovation");
    println!(" assertion still fires, so detection is not traded away.)");

    let path = report
        .write_json("results")
        .map_err(|e| format!("write results json: {e}"))?;
    eprintln!("wrote {}", path.display());
    Ok(())
}
