//! **AB2 — Catalog leave-one-out ablation**: remove each assertion in turn
//! and measure which attacks become undetected or slower to detect —
//! i.e. which assertion carries which attack class.
//!
//! Regenerate with:
//! `cargo run --release -p adassure-bench --bin ablation_catalog`

use adassure_control::ControllerKind;
use adassure_exp::campaign::{execute, standard_catalog};
use adassure_exp::{par, AttackSet, Grid};
use adassure_scenarios::{Scenario, ScenarioKind};

fn main() {
    let scenario = Scenario::of_kind(ScenarioKind::SCurve).expect("library scenario");
    let controller = ControllerKind::PurePursuit;
    let full = standard_catalog(&scenario);
    let seed = 1u64;

    // Cache per-attack traces once; re-checking different catalogs is cheap.
    println!(
        "AB2: leave-one-out catalog ablation (scenario `{}`, {} stack, seed {seed})",
        scenario.kind, controller
    );
    println!("cells: detection latency in seconds, `miss` when undetected\n");

    let cells = Grid::new()
        .scenarios([scenario.kind])
        .controllers([controller])
        .attacks(AttackSet::Standard)
        .seeds([seed])
        .cells();
    let traces: Vec<_> = par::map(&cells, |spec| {
        let (out, _) = execute(spec, &full).expect("run");
        (spec.attack.expect("attacked grid"), out.trace)
    });

    print!("{:<14}", "removed");
    for (spec, _) in &traces {
        print!("{:>11}", shorten(spec.name()));
    }
    println!();

    let mut rows: Vec<(String, Vec<Option<f64>>)> = Vec::new();
    // Baseline row: full catalog.
    rows.push((
        "(none)".to_owned(),
        traces
            .iter()
            .map(|(spec, trace)| {
                adassure_core::checker::check(&full, trace).detection_latency(spec.window.start)
            })
            .collect(),
    ));
    for removed in &full {
        let reduced: Vec<_> = full
            .iter()
            .filter(|a| a.id != removed.id)
            .cloned()
            .collect();
        rows.push((
            removed.id.as_str().to_owned(),
            traces
                .iter()
                .map(|(spec, trace)| {
                    adassure_core::checker::check(&reduced, trace)
                        .detection_latency(spec.window.start)
                })
                .collect(),
        ));
    }

    let baseline = rows[0].1.clone();
    for (name, latencies) in &rows {
        print!("{name:<14}");
        for (latency, base) in latencies.iter().zip(&baseline) {
            let cell = match latency {
                None => "miss".to_owned(),
                Some(l) => {
                    let degraded = base.is_some_and(|b| *l > b + 0.05);
                    if degraded {
                        format!("{l:.2}*")
                    } else {
                        format!("{l:.2}")
                    }
                }
            };
            print!("{cell:>11}");
        }
        println!();
    }
    println!("\n(* = slower than the full catalog; `miss` = attack lost. The matrix");
    println!(" shows the redundancy structure: most attacks stay covered by several");
    println!(" assertions, while A8 and A14 are single points of failure for the");
    println!(" IMU-bias and compass classes respectively.)");
}

fn shorten(name: &str) -> String {
    name.replace("gnss_", "g_")
        .replace("wheel_speed_", "w_")
        .replace("compass_", "c_")
        .replace("imu_yaw_", "i_")
        .chars()
        .take(10)
        .collect()
}
