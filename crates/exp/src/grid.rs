//! Declarative run grids: the cross product of scenarios, controllers,
//! estimators, attacks and seeds, enumerated into indexed cells.

use adassure_attacks::campaign::{extended_attacks, standard_attacks, AttackSpec};
use adassure_attacks::Channel;
use adassure_control::pipeline::EstimatorKind;
use adassure_control::ControllerKind;
use adassure_scenarios::{Scenario, ScenarioKind};

/// Which attack catalog a grid sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackSet {
    /// No attacks (clean-only grids).
    None,
    /// The standard eleven-attack catalog.
    Standard,
    /// The extended catalog (standard eleven plus three variants).
    Extended,
    /// Only the three extension attacks beyond the standard catalog.
    ExtensionOnly,
    /// The standard attacks targeting one sensor channel.
    Channel(Channel),
}

impl AttackSet {
    /// Resolves the set into concrete specs for a scenario's canonical
    /// attack start.
    pub fn specs(self, attack_start: f64) -> Vec<AttackSpec> {
        match self {
            AttackSet::None => Vec::new(),
            AttackSet::Standard => standard_attacks(attack_start),
            AttackSet::Extended => extended_attacks(attack_start),
            AttackSet::ExtensionOnly => {
                let standard = standard_attacks(attack_start).len();
                extended_attacks(attack_start).split_off(standard)
            }
            AttackSet::Channel(channel) => standard_attacks(attack_start)
                .into_iter()
                .filter(|spec| spec.kind.channel() == channel)
                .collect(),
        }
    }
}

/// One fully-resolved cell of a [`Grid`]: everything needed to execute and
/// identify a single simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunSpec {
    /// Position in the grid's enumeration order (results are keyed by it).
    pub index: usize,
    /// The scenario to drive.
    pub scenario: ScenarioKind,
    /// The lateral controller under test.
    pub controller: ControllerKind,
    /// The state estimator under test.
    pub estimator: EstimatorKind,
    /// The attack to inject, or `None` for a clean (golden) run.
    pub attack: Option<AttackSpec>,
    /// The simulation seed.
    pub seed: u64,
}

impl RunSpec {
    /// The time alarms are measured against: the attack's activation time,
    /// or `0.0` for a clean run (the whole run counts).
    pub fn alarm_start(&self) -> f64 {
        self.attack.map_or(0.0, |a| a.window.start)
    }

    /// The run context stamped onto this cell's [`adassure_core::CheckReport`]:
    /// the names + seed a debugger needs to re-execute the identical run.
    pub fn context(&self) -> adassure_core::RunContext {
        adassure_core::RunContext {
            seed: self.seed,
            scenario: self.scenario.name().to_owned(),
            controller: self.controller.name().to_owned(),
            estimator: self.estimator.name().to_owned(),
            attack: self.attack.map(|a| a.name().to_owned()),
        }
    }
}

/// A declarative sweep over the experiment axes.
///
/// Cells enumerate in a fixed nested order — scenario, controller,
/// estimator, attack (clean first when included), seed — so a grid's cell
/// indices, and therefore its result ordering, are stable.
#[derive(Debug, Clone)]
pub struct Grid {
    scenarios: Vec<ScenarioKind>,
    controllers: Vec<ControllerKind>,
    estimators: Vec<EstimatorKind>,
    attacks: AttackSet,
    include_clean: bool,
    seeds: Vec<u64>,
}

impl Default for Grid {
    fn default() -> Self {
        Grid::new()
    }
}

impl Grid {
    /// A single-cell baseline grid: straight scenario, pure pursuit, the
    /// complementary estimator, the standard attacks, seed 1.
    pub fn new() -> Self {
        Grid {
            scenarios: vec![ScenarioKind::Straight],
            controllers: vec![ControllerKind::PurePursuit],
            estimators: vec![EstimatorKind::Complementary],
            attacks: AttackSet::Standard,
            include_clean: false,
            seeds: vec![1],
        }
    }

    /// Replaces the scenario axis.
    pub fn scenarios(mut self, kinds: impl IntoIterator<Item = ScenarioKind>) -> Self {
        self.scenarios = kinds.into_iter().collect();
        self
    }

    /// Replaces the controller axis.
    pub fn controllers(mut self, kinds: impl IntoIterator<Item = ControllerKind>) -> Self {
        self.controllers = kinds.into_iter().collect();
        self
    }

    /// Replaces the estimator axis.
    pub fn estimators(mut self, kinds: impl IntoIterator<Item = EstimatorKind>) -> Self {
        self.estimators = kinds.into_iter().collect();
        self
    }

    /// Replaces the attack set.
    pub fn attacks(mut self, set: AttackSet) -> Self {
        self.attacks = set;
        self
    }

    /// Whether a clean (no-attack) run precedes the attacked runs in each
    /// scenario × controller × estimator block.
    pub fn include_clean(mut self, include: bool) -> Self {
        self.include_clean = include;
        self
    }

    /// Replaces the seed axis.
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Enumerates every cell, resolving attack windows against each
    /// scenario's canonical `attack_start`.
    ///
    /// # Panics
    ///
    /// Panics if a library scenario fails to build (a bug, covered by the
    /// scenario crate's tests).
    pub fn cells(&self) -> Vec<RunSpec> {
        let mut cells = Vec::new();
        for &scenario in &self.scenarios {
            let attack_start = Scenario::of_kind(scenario)
                .expect("library scenarios are valid")
                .attack_start;
            let specs = self.attacks.specs(attack_start);
            for &controller in &self.controllers {
                for &estimator in &self.estimators {
                    let clean = self.include_clean.then_some(None);
                    for attack in clean.into_iter().chain(specs.iter().copied().map(Some)) {
                        for &seed in &self.seeds {
                            cells.push(RunSpec {
                                index: cells.len(),
                                scenario,
                                controller,
                                estimator,
                                attack,
                                seed,
                            });
                        }
                    }
                }
            }
        }
        cells
    }

    /// The number of cells the grid enumerates.
    pub fn len(&self) -> usize {
        let attacks_per_block = self.attacks.specs(0.0).len() + usize::from(self.include_clean);
        self.scenarios.len()
            * self.controllers.len()
            * self.estimators.len()
            * attacks_per_block
            * self.seeds.len()
    }

    /// Whether the grid enumerates no cells at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_enumerate_in_stable_nested_order() {
        let grid = Grid::new()
            .scenarios([ScenarioKind::Straight, ScenarioKind::SCurve])
            .controllers([ControllerKind::PurePursuit, ControllerKind::Stanley])
            .attacks(AttackSet::Standard)
            .seeds([1, 2, 3]);
        let cells = grid.cells();
        assert_eq!(cells.len(), 2 * 2 * 11 * 3);
        assert_eq!(cells.len(), grid.len());
        for (i, cell) in cells.iter().enumerate() {
            assert_eq!(cell.index, i);
        }
        // Seeds vary fastest; scenarios slowest.
        assert_eq!(cells[0].seed, 1);
        assert_eq!(cells[1].seed, 2);
        assert_eq!(cells[0].scenario, ScenarioKind::Straight);
        assert_eq!(cells.last().unwrap().scenario, ScenarioKind::SCurve);
    }

    #[test]
    fn clean_run_leads_each_block() {
        let cells = Grid::new()
            .attacks(AttackSet::Standard)
            .include_clean(true)
            .seeds([7])
            .cells();
        assert_eq!(cells.len(), 12);
        assert!(cells[0].attack.is_none());
        assert!(cells[1..].iter().all(|c| c.attack.is_some()));
        assert_eq!(cells[0].alarm_start(), 0.0);
        assert!(cells[1].alarm_start() > 0.0);
    }

    #[test]
    fn attack_sets_resolve_expected_catalogs() {
        assert!(AttackSet::None.specs(5.0).is_empty());
        assert_eq!(AttackSet::Standard.specs(5.0).len(), 11);
        assert_eq!(AttackSet::Extended.specs(5.0).len(), 14);
        let extension = AttackSet::ExtensionOnly.specs(5.0);
        assert_eq!(
            extension.iter().map(AttackSpec::name).collect::<Vec<_>>(),
            ["wheel_speed_noise", "imu_yaw_scale", "compass_drift"]
        );
        let gnss = AttackSet::Channel(Channel::Gnss).specs(5.0);
        assert_eq!(gnss.len(), 7);
        assert!(gnss.iter().all(|s| s.kind.channel() == Channel::Gnss));
    }

    #[test]
    fn empty_axes_mean_empty_grids() {
        let grid = Grid::new().seeds([]);
        assert!(grid.is_empty());
        assert!(grid.cells().is_empty());
    }
}
