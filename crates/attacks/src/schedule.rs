use serde::{Deserialize, Serialize};

/// The time window during which an attack is active.
///
/// # Example
///
/// ```
/// use adassure_attacks::Window;
///
/// let w = Window::new(5.0, 12.0);
/// assert!(!w.contains(4.9));
/// assert!(w.contains(5.0));
/// assert!(w.contains(11.9));
/// assert!(!w.contains(12.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Window {
    /// Activation time (s), inclusive.
    pub start: f64,
    /// Deactivation time (s), exclusive. `f64::INFINITY` = never ends.
    pub end: f64,
}

// JSON cannot represent an infinite float, so the serialized form writes an
// open-ended window's `end` as `null` and reads it back as infinity. The
// impls are manual because the derive would emit `null` too (losing the
// window on re-read).
impl Serialize for Window {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct;
        let mut s = serializer.serialize_struct("Window", 2)?;
        s.serialize_field("start", &self.start)?;
        s.serialize_field("end", &self.end.is_finite().then_some(self.end))?;
        s.end()
    }
}

impl<'de> Deserialize<'de> for Window {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        use serde::de::{from_content, take_field, Content, Error};
        match deserializer.deserialize_content()? {
            Content::Map(mut entries) => {
                let start: f64 = from_content(take_field(&mut entries, "start"))?;
                let end: Option<f64> = from_content(take_field(&mut entries, "end"))?;
                let end = end.unwrap_or(f64::INFINITY);
                if !(start.is_finite() && end >= start) {
                    return Err(D::Error::custom(format_args!(
                        "attack window must satisfy finite start <= end, got [{start}, {end})"
                    )));
                }
                Ok(Window { start, end })
            }
            other => Err(D::Error::custom(format_args!(
                "expected object, found {}",
                other.kind()
            ))),
        }
    }
}

impl Window {
    /// Creates a window `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics when `end < start` or `start` is not finite.
    pub fn new(start: f64, end: f64) -> Self {
        assert!(
            start.is_finite() && end >= start,
            "attack window must satisfy finite start <= end"
        );
        Window { start, end }
    }

    /// A window active from `start` until the end of the run.
    pub fn from_start(start: f64) -> Self {
        Window::new(start, f64::INFINITY)
    }

    /// A window covering the entire run.
    pub fn always() -> Self {
        Window::new(0.0, f64::INFINITY)
    }

    /// Whether `t` falls inside the window.
    pub fn contains(&self, t: f64) -> bool {
        t >= self.start && t < self.end
    }

    /// Seconds since activation (zero before the window opens).
    pub fn elapsed(&self, t: f64) -> f64 {
        (t - self.start).max(0.0)
    }
}

impl Default for Window {
    fn default() -> Self {
        Window::always()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn containment_semantics() {
        let w = Window::new(1.0, 2.0);
        assert!(!w.contains(0.99));
        assert!(w.contains(1.0));
        assert!(!w.contains(2.0));
    }

    #[test]
    fn open_ended_windows() {
        assert!(Window::from_start(3.0).contains(1e12));
        assert!(Window::always().contains(0.0));
    }

    #[test]
    fn elapsed_clamps_before_start() {
        let w = Window::from_start(5.0);
        assert_eq!(w.elapsed(3.0), 0.0);
        assert_eq!(w.elapsed(8.0), 3.0);
    }

    #[test]
    #[should_panic(expected = "attack window")]
    fn inverted_window_panics() {
        let _ = Window::new(2.0, 1.0);
    }
}
