//! Lane-batched offline assertion evaluation over columnar traces.
//!
//! The scalar offline path ([`crate::checker::check`]) replays one trace at
//! a time through [`crate::online::OnlineChecker`], paying per-sample id
//! routing and per-monitor dispatch for every cycle of every trace. This
//! module amortises that overhead across a *lane group*: up to [`LANES`]
//! traces are checked together in two phases. First the group's
//! sample-and-hold state is resolved slot by slot ([`History`]): dense
//! controller-rate signals are read in place from the trace columns and
//! only sparse remainders are materialised as per-cycle struct-of-arrays
//! rows. Then each monitor sweeps the whole cycle range in one pass
//! (monitor-major, so a pass streams only that monitor's slots). Each op
//! touches a `[f64; LANES]` column — a shape the compiler
//! auto-vectorises — and per-lane validity is a bitmask, so "some signal
//! unseen in lane 3" costs an AND instead of a branch.
//!
//! # Semantics: bit-identical to the scalar path
//!
//! The lane path produces, per trace, exactly the [`CheckReport`] (and
//! per-run metrics) the scalar replay produces — every violation's onset,
//! detection time, payload value and recovery stamp agrees down to the
//! `f64` bit pattern. The differential property test in
//! `tests/proptests.rs` pins this, including health/Inconclusive
//! transitions under a finite staleness horizon. Key correspondences:
//!
//! * cycle boundaries: a [`ColumnarTrace`]'s cycle grid is exactly the set
//!   of distinct timestamps [`crate::checker::for_each_cycle`] sweeps;
//! * expression evaluation: the same [`Op`] sequence runs per lane with
//!   the same operand order, and the validity mask AND mirrors the scalar
//!   evaluator's `Option` short-circuit;
//! * the verdict cache: the scalar path replays a cached verdict when no
//!   input changed; all cached conditions are pure functions of stored
//!   state, so the lane path's unconditional re-evaluation is
//!   bit-identical by construction;
//! * health: offline traces cannot carry poisoned (non-finite) samples —
//!   [`adassure_trace::Trace`] rejects them at record time — so with the
//!   default infinite staleness horizon every monitor stays Active and the
//!   health layer is skipped wholesale; with a finite horizon the
//!   degradation/quarantine/recovery streaks run per lane, matching the
//!   online checker state machine exactly.

// Lockstep per-lane index loops (`for l in 0..LANES`) mirror the
// struct-of-arrays layout and keep every lane's op visibly identical;
// iterator rewrites obscure that without changing codegen.
#![allow(clippy::needless_range_loop)]

use adassure_obs::{
    AssertionStats, Health as ObsHealth, Histogram, MetricsSnapshot, TransitionGrid, VerdictCounts,
};
use adassure_trace::ColumnarTrace;

use crate::assertion::{Assertion, Temporal};
use crate::compile::{CompiledCondition, Op, SlotMask};
use crate::expr::{wrap_angle, Env};
use crate::online::HealthConfig;
use crate::report::CheckReport;
use crate::violation::Violation;

/// Traces evaluated together per lane group. A `u8` mask covers it; the
/// column width auto-vectorises on both SSE2 and NEON.
pub const LANES: usize = 8;

/// One validity/selection bit per lane.
type Mask = u8;

/// Health-state encoding matching [`ObsHealth`]'s `index()` order.
const ACTIVE: u8 = 0;
const DEGRADED: u8 = 1;
const SUSPENDED: u8 = 2;

/// One signal's sample columns for one lane, consumed front-to-back
/// during history materialisation. Empty slices mean "no such series in
/// this lane" and simply never match a cycle.
#[derive(Clone, Copy, Default)]
struct LaneSeries<'t> {
    times: &'t [f64],
    values: &'t [f64],
    cycles: &'t [u32],
}

/// One slot's per-cycle state: a *dense prefix* read straight from the
/// trace's sample columns, plus materialised sample-and-hold rows for the
/// remaining cycles.
///
/// Controller-rate signals — the bulk of a trace — have exactly one
/// sample per cycle in every lane (an identity cycle index), so cycles
/// `0..dense` need no materialisation at all: the held value at `(k, l)`
/// *is* `values[l][k]`, the last step is `values[l][k] - values[l][k-1]`,
/// and the validity masks are constants. Only the cycles past the dense
/// prefix (sparse GNSS-rate series, or lanes of unequal length) get
/// explicit rows, which keeps the materialisation traffic proportional to
/// the sparse minority instead of the whole trace.
struct SlotHistory<'t> {
    /// Cycles `0..dense` are covered by the sample columns directly.
    dense: usize,
    /// Lanes carrying this signal (all of them whenever `dense > 0`).
    present: Mask,
    /// Per lane: the full sample columns (empty for absent lanes).
    values: [&'t [f64]; LANES],
    times: [&'t [f64]; LANES],
    /// Materialised rows for cycles `dense..max_cycles`, indexed by
    /// `k - dense`: held value / lanes seen, and (only when a condition
    /// needs them) the last step's delta / dt / lanes stepped and the
    /// held sample's timestamp.
    v_col: Vec<[f64; LANES]>,
    s_col: Vec<Mask>,
    d_col: Vec<[f64; LANES]>,
    dt_col: Vec<[f64; LANES]>,
    st_col: Vec<Mask>,
    t_col: Vec<[f64; LANES]>,
}

/// The whole group's sample-and-hold state, resolved per cycle before the
/// monitor sweep runs.
///
/// Interleaving ingest with evaluation — a cursor check per (slot, lane)
/// inside the cycle loop — measured ~13 ns per sample and dominated the
/// whole pass; fully materialising every slot's per-cycle rows just moved
/// the cost into ~10 MB of row stores per group. This layout does
/// neither: dense slots are read in place and only sparse remainders are
/// materialised (see [`SlotHistory`]).
struct History<'t> {
    /// Traces in the group (lanes beyond this index are idle).
    lanes: usize,
    /// Longest lane's cycle count.
    max_cycles: usize,
    /// Per cycle: each lane's clock (its own timestamp for that cycle).
    now: Vec<[f64; LANES]>,
    /// Per cycle: lanes still inside their own trace.
    active: Vec<Mask>,
    slots: Vec<SlotHistory<'t>>,
}

impl History<'_> {
    /// Held value row and seen mask for `slot` at cycle `k`.
    #[inline]
    fn value(&self, slot: usize, k: usize) -> ([f64; LANES], Mask) {
        let sh = &self.slots[slot];
        if k < sh.dense {
            let mut vals = [0.0; LANES];
            for l in 0..self.lanes {
                vals[l] = sh.values[l][k];
            }
            (vals, sh.present)
        } else {
            (sh.v_col[k - sh.dense], sh.s_col[k - sh.dense])
        }
    }

    /// Last step's `(delta, dt, stepped)` for `slot` at cycle `k`.
    #[inline]
    fn deriv(&self, slot: usize, k: usize) -> ([f64; LANES], [f64; LANES], Mask) {
        let sh = &self.slots[slot];
        if k < sh.dense {
            if k == 0 {
                // First sample: seeds value/time only, no step yet.
                return ([0.0; LANES], [1.0; LANES], 0);
            }
            let mut delta = [0.0; LANES];
            let mut dt = [1.0; LANES];
            for l in 0..self.lanes {
                delta[l] = sh.values[l][k] - sh.values[l][k - 1];
                dt[l] = sh.times[l][k] - sh.times[l][k - 1];
            }
            (delta, dt, sh.present)
        } else {
            let i = k - sh.dense;
            (sh.d_col[i], sh.dt_col[i], sh.st_col[i])
        }
    }

    /// Held sample timestamp row and seen mask for `slot` at cycle `k`.
    #[inline]
    fn time(&self, slot: usize, k: usize) -> ([f64; LANES], Mask) {
        let sh = &self.slots[slot];
        if k < sh.dense {
            let mut ts = [0.0; LANES];
            for l in 0..self.lanes {
                ts[l] = sh.times[l][k];
            }
            (ts, sh.present)
        } else {
            (sh.t_col[k - sh.dense], sh.s_col[k - sh.dense])
        }
    }
}

/// Resolves the group's per-cycle state. `health_on` forces update
/// timestamps for every monitored input (the staleness scan reads them);
/// like the derivative columns, that only affects the materialised
/// remainder — the dense prefix always has timestamps in place.
fn build_history<'t>(plan: &Plan, group: &'t [ColumnarTrace], health_on: bool) -> History<'t> {
    let width = plan.env.table().len();
    // Route each lane's series to the plan slot it feeds. Signals outside
    // the compiled table are skipped — the scalar path interns them into
    // fresh slots no assertion references, so dropping them here is
    // observationally identical.
    let mut series: Vec<[LaneSeries<'t>; LANES]> = vec![Default::default(); width];
    for (l, trace) in group.iter().enumerate() {
        for (i, id) in trace.signals().iter().enumerate() {
            if let Some(slot) = plan.env.table().slot(id) {
                let (times, values, cycles) = trace.series(i);
                series[slot as usize][l] = LaneSeries {
                    times,
                    values,
                    cycles,
                };
            }
        }
    }

    let cycle_counts: Vec<usize> = group.iter().map(ColumnarTrace::cycle_count).collect();
    let cycle_times: Vec<&[f64]> = group.iter().map(ColumnarTrace::cycle_times).collect();
    let max_cycles = cycle_counts.iter().copied().max().unwrap_or(0);

    let mut now = Vec::with_capacity(max_cycles);
    let mut active = Vec::with_capacity(max_cycles);
    let mut now_row = [0.0f64; LANES];
    for k in 0..max_cycles {
        let mut mask: Mask = 0;
        for l in 0..group.len() {
            if k < cycle_counts[l] {
                mask |= 1 << l;
                now_row[l] = cycle_times[l][k];
            }
        }
        now.push(now_row);
        active.push(mask);
    }

    let all_lanes = ((1u16 << group.len()) - 1) as Mask;
    let mut slots = Vec::with_capacity(width);
    for s in 0..width {
        let mut curs = series[s];
        let want_deriv = plan.need_deriv[s];
        let want_time = plan.need_time[s] || (health_on && plan.is_input[s]);

        // Lanes carrying this signal, and the length of the identity
        // prefix they share: `dense` cycles where every lane has exactly
        // one sample per cycle (a strictly increasing cycle index starting
        // at 0 and reaching n-1 at position n-1 *is* 0..n). The prefix is
        // only usable in place when every lane of the group carries it —
        // otherwise the constant-mask shortcut in the accessors would lie.
        let mut present: Mask = 0;
        let mut dense = max_cycles;
        for (l, cur) in curs.iter().enumerate() {
            if cur.cycles.is_empty() {
                continue;
            }
            present |= 1 << l;
            dense = dense.min(cur.cycles.len());
        }
        if present != all_lanes {
            dense = 0;
        }
        for (l, cur) in curs.iter().enumerate() {
            if dense > 0
                && present & (1 << l) != 0
                && (cur.cycles[0] != 0 || cur.cycles[dense - 1] != (dense - 1) as u32)
            {
                dense = 0;
            }
        }

        let mut sh = SlotHistory {
            dense,
            present,
            values: [[].as_slice(); LANES],
            times: [[].as_slice(); LANES],
            v_col: Vec::new(),
            s_col: Vec::new(),
            d_col: Vec::new(),
            dt_col: Vec::new(),
            st_col: Vec::new(),
            t_col: Vec::new(),
        };
        for (l, cur) in curs.iter().enumerate() {
            sh.values[l] = cur.values;
            sh.times[l] = cur.times;
        }

        // Seed the held state the sequential sample-and-hold would have
        // reached at the end of the dense prefix, then run the remaining
        // cycles event-driven: jump to the next cycle holding any sample
        // and run-length fill the held rows in between (sparse series —
        // GNSS-rate signals — touch a few hundred of several thousand
        // cycles).
        let mut held_v = [0.0f64; LANES];
        let mut held_t = [0.0f64; LANES];
        let mut held_delta = [0.0f64; LANES];
        // 1.0 so a masked-out derivative lane divides by a harmless
        // non-zero rather than producing 0/0 garbage.
        let mut held_dt = [1.0f64; LANES];
        let (mut seen_m, mut stepped_m): (Mask, Mask) = (0, 0);
        if dense > 0 {
            for l in 0..group.len() {
                held_v[l] = curs[l].values[dense - 1];
                held_t[l] = curs[l].times[dense - 1];
            }
            seen_m = present;
        }
        if dense > 1 {
            for l in 0..group.len() {
                held_delta[l] = curs[l].values[dense - 1] - curs[l].values[dense - 2];
                held_dt[l] = curs[l].times[dense - 1] - curs[l].times[dense - 2];
            }
            stepped_m = present;
        }
        if dense > 0 {
            for cur in curs.iter_mut().take(group.len()) {
                cur.times = &cur.times[dense..];
                cur.values = &cur.values[dense..];
                cur.cycles = &cur.cycles[dense..];
            }
        }

        let tail = max_cycles - dense;
        sh.v_col.reserve_exact(tail);
        sh.s_col.reserve_exact(tail);
        if want_deriv {
            sh.d_col.reserve_exact(tail);
            sh.dt_col.reserve_exact(tail);
            sh.st_col.reserve_exact(tail);
        }
        if want_time {
            sh.t_col.reserve_exact(tail);
        }
        let mut k = dense;
        while k < max_cycles {
            let mut next = max_cycles as u32;
            for cur in &curs {
                if let Some(&c) = cur.cycles.first() {
                    next = next.min(c);
                }
            }
            let nk = (next as usize).min(max_cycles);
            let filled = nk - dense;
            sh.v_col.resize(filled, held_v);
            sh.s_col.resize(filled, seen_m);
            if want_deriv {
                sh.d_col.resize(filled, held_delta);
                sh.dt_col.resize(filled, held_dt);
                sh.st_col.resize(filled, stepped_m);
            }
            if want_time {
                sh.t_col.resize(filled, held_t);
            }
            if nk >= max_cycles {
                break;
            }
            for l in 0..LANES {
                let cur = &mut curs[l];
                if let [c, cycles_rest @ ..] = cur.cycles {
                    if *c as usize == nk {
                        let (t, v) = (cur.times[0], cur.values[0]);
                        cur.times = &cur.times[1..];
                        cur.values = &cur.values[1..];
                        cur.cycles = cycles_rest;
                        // Mirrors `Env::update_slot`: the first sample only
                        // seeds value/time; every later one records a step
                        // (series timestamps strictly increase).
                        let bit = 1u8 << l;
                        if stepped_m & bit == 0 {
                            if seen_m & bit == 0 {
                                seen_m |= bit;
                                held_t[l] = t;
                                held_v[l] = v;
                                continue;
                            }
                            stepped_m |= bit;
                        }
                        held_delta[l] = v - held_v[l];
                        held_dt[l] = t - held_t[l];
                        held_t[l] = t;
                        held_v[l] = v;
                    }
                }
            }
            sh.v_col.push(held_v);
            sh.s_col.push(seen_m);
            if want_deriv {
                sh.d_col.push(held_delta);
                sh.dt_col.push(held_dt);
                sh.st_col.push(stepped_m);
            }
            if want_time {
                sh.t_col.push(held_t);
            }
            k = nk + 1;
        }
        slots.push(sh);
    }

    History {
        lanes: group.len(),
        max_cycles,
        now,
        active,
        slots,
    }
}

/// One postfix stack cell: a value column plus its per-lane validity.
type LaneCell = ([f64; LANES], Mask);

/// Runs a compiled postfix program over all lanes at once. The returned
/// mask has a bit set exactly for the lanes where the scalar evaluator
/// would return `Some` (every referenced signal seen / stepped); values in
/// invalid lanes are unspecified.
#[inline]
fn eval_expr_lanes(ops: &[Op], hist: &History, k: usize, stack: &mut Vec<LaneCell>) -> LaneCell {
    stack.clear();
    for op in ops {
        match *op {
            Op::Signal(slot) => {
                stack.push(hist.value(slot as usize, k));
            }
            Op::Const(v) => stack.push(([v; LANES], Mask::MAX)),
            Op::Derivative(slot) => {
                let (delta, dt, stepped) = hist.deriv(slot as usize, k);
                let mut vals = [0.0; LANES];
                for l in 0..LANES {
                    vals[l] = delta[l] / dt[l];
                }
                stack.push((vals, stepped));
            }
            Op::AngularDerivative(slot) => {
                let (delta, dt, stepped) = hist.deriv(slot as usize, k);
                let mut vals = [0.0; LANES];
                for l in 0..LANES {
                    vals[l] = wrap_angle(delta[l]) / dt[l];
                }
                stack.push((vals, stepped));
            }
            Op::Abs => {
                let top = stack.last_mut().expect("well-formed postfix program");
                for v in &mut top.0 {
                    *v = v.abs();
                }
            }
            Op::Neg => {
                let top = stack.last_mut().expect("well-formed postfix program");
                for v in &mut top.0 {
                    *v = -*v;
                }
            }
            Op::Tan => {
                let top = stack.last_mut().expect("well-formed postfix program");
                for v in &mut top.0 {
                    *v = v.tan();
                }
            }
            Op::Add => {
                let (b, mb) = stack.pop().expect("well-formed postfix program");
                let a = stack.last_mut().expect("well-formed postfix program");
                for l in 0..LANES {
                    a.0[l] += b[l];
                }
                a.1 &= mb;
            }
            Op::Sub => {
                let (b, mb) = stack.pop().expect("well-formed postfix program");
                let a = stack.last_mut().expect("well-formed postfix program");
                for l in 0..LANES {
                    a.0[l] -= b[l];
                }
                a.1 &= mb;
            }
            Op::Mul => {
                let (b, mb) = stack.pop().expect("well-formed postfix program");
                let a = stack.last_mut().expect("well-formed postfix program");
                for l in 0..LANES {
                    a.0[l] *= b[l];
                }
                a.1 &= mb;
            }
            Op::AngleDiff => {
                let (b, mb) = stack.pop().expect("well-formed postfix program");
                let a = stack.last_mut().expect("well-formed postfix program");
                for l in 0..LANES {
                    a.0[l] = wrap_angle(a.0[l] - b[l]);
                }
                a.1 &= mb;
            }
        }
    }
    stack.pop().expect("postfix program leaves one value")
}

/// Evaluates a compiled condition over all lanes: `(payloads, valid,
/// healthy)`. For lane `l`: `valid` bit clear ⇔ scalar `Eval::Unknown`;
/// otherwise `healthy` bit set ⇔ `Eval::Healthy`, clear ⇔
/// `Eval::Violated(payloads[l])`.
#[inline]
fn eval_condition_lanes(
    cond: &CompiledCondition,
    hist: &History,
    k: usize,
    now: &[f64; LANES],
    stack: &mut Vec<LaneCell>,
) -> ([f64; LANES], Mask, Mask) {
    match cond {
        CompiledCondition::AtMost { expr, limit } => {
            let (vals, valid) = eval_expr_lanes(expr.ops(), hist, k, stack);
            let mut healthy: Mask = 0;
            for l in 0..LANES {
                healthy |= Mask::from(vals[l] <= *limit) << l;
            }
            (vals, valid, healthy)
        }
        CompiledCondition::AtLeast { expr, limit } => {
            let (vals, valid) = eval_expr_lanes(expr.ops(), hist, k, stack);
            let mut healthy: Mask = 0;
            for l in 0..LANES {
                healthy |= Mask::from(vals[l] >= *limit) << l;
            }
            (vals, valid, healthy)
        }
        CompiledCondition::Fresh { slot, max_age } => {
            let (time, seen) = hist.time(*slot as usize, k);
            let mut ages = [0.0; LANES];
            let mut healthy: Mask = 0;
            for l in 0..LANES {
                ages[l] = now[l] - time[l];
                healthy |= Mask::from(ages[l] <= *max_age) << l;
            }
            (ages, seen, healthy)
        }
    }
}

/// Evaluates a monitor's kernel over all lanes: `(payloads, valid,
/// healthy)`, exactly what [`eval_condition_lanes`] returns. `cond` is
/// only dereferenced on the [`Kernel::Generic`] fallback.
#[inline]
fn eval_kernel(
    ke: &KernelEntry,
    cond: &CompiledCondition,
    hist: &History,
    k: usize,
    now: &[f64; LANES],
    stack: &mut Vec<LaneCell>,
) -> ([f64; LANES], Mask, Mask) {
    let (vals, valid) = match ke.kernel {
        Kernel::Sig { slot, abs } => {
            let (mut vals, seen) = hist.value(slot as usize, k);
            if abs {
                for v in &mut vals {
                    *v = v.abs();
                }
            }
            (vals, seen)
        }
        Kernel::Deriv { slot, abs } => {
            let (delta, dt, stepped) = hist.deriv(slot as usize, k);
            let mut vals = [0.0; LANES];
            for l in 0..LANES {
                vals[l] = delta[l] / dt[l];
            }
            if abs {
                for v in &mut vals {
                    *v = v.abs();
                }
            }
            (vals, stepped)
        }
        Kernel::SubAbs { a, b } => {
            let (va, seen_a) = hist.value(a as usize, k);
            let (vb, seen_b) = hist.value(b as usize, k);
            let mut vals = [0.0; LANES];
            for l in 0..LANES {
                vals[l] = (va[l] - vb[l]).abs();
            }
            (vals, seen_a & seen_b)
        }
        Kernel::SubMulConst { a, b, c } => {
            let (va, seen_a) = hist.value(a as usize, k);
            let (vb, seen_b) = hist.value(b as usize, k);
            let mut vals = [0.0; LANES];
            for l in 0..LANES {
                vals[l] = va[l] - vb[l] * c;
            }
            (vals, seen_a & seen_b)
        }
        Kernel::MulAbs { a, b } => {
            let (va, seen_a) = hist.value(a as usize, k);
            let (vb, seen_b) = hist.value(b as usize, k);
            let mut vals = [0.0; LANES];
            for l in 0..LANES {
                vals[l] = (va[l] * vb[l]).abs();
            }
            (vals, seen_a & seen_b)
        }
        Kernel::AngDerivSubAbs { d, b } => {
            let (delta, dt, stepped) = hist.deriv(d as usize, k);
            let (vb, seen_b) = hist.value(b as usize, k);
            let mut vals = [0.0; LANES];
            for l in 0..LANES {
                vals[l] = (wrap_angle(delta[l]) / dt[l] - vb[l]).abs();
            }
            (vals, stepped & seen_b)
        }
        Kernel::Fresh { slot } => {
            let (time, seen) = hist.time(slot as usize, k);
            let mut ages = [0.0; LANES];
            for l in 0..LANES {
                ages[l] = now[l] - time[l];
            }
            (ages, seen)
        }
        Kernel::Generic => return eval_condition_lanes(cond, hist, k, now, stack),
    };
    let mut healthy: Mask = 0;
    if ke.at_least {
        for l in 0..LANES {
            healthy |= Mask::from(vals[l] >= ke.limit) << l;
        }
    } else {
        for l in 0..LANES {
            healthy |= Mask::from(vals[l] <= ke.limit) << l;
        }
    }
    (vals, valid, healthy)
}

/// Calls `f(l)` for each set bit of `mask`, in ascending lane order.
#[inline]
fn for_each_lane(mask: Mask, mut f: impl FnMut(usize)) {
    let mut m = mask;
    while m != 0 {
        let l = m.trailing_zeros() as usize;
        m &= m - 1;
        f(l);
    }
}

/// A flattened fast path for the condition shapes the standard catalog
/// uses. Sixteen heterogeneous postfix programs make the evaluator's
/// per-op dispatch branch effectively random, and the misprediction cost
/// dwarfs the arithmetic (measured ~6x over a homogeneous catalog).
/// Recognising a monitor's whole shape up front reduces evaluation to one
/// well-predicted branch per monitor per cycle. Every kernel performs the
/// identical `f64` operations in the identical order as the stack
/// machine, so results stay bit-identical; [`Kernel::Generic`] falls back
/// to the stack machine for shapes not listed here.
enum Kernel {
    /// `signal(s)`, optionally `.abs()`.
    Sig { slot: u32, abs: bool },
    /// `derivative(s)`, optionally `.abs()`.
    Deriv { slot: u32, abs: bool },
    /// `(a - b).abs()`.
    SubAbs { a: u32, b: u32 },
    /// `a - b * c` (the A7-shaped consistency residual).
    SubMulConst { a: u32, b: u32, c: f64 },
    /// `(a * b).abs()`.
    MulAbs { a: u32, b: u32 },
    /// `(angular_derivative(d) - b).abs()` (the A14 compass check).
    AngDerivSubAbs { d: u32, b: u32 },
    /// `Fresh`: the payload is the signal's age.
    Fresh { slot: u32 },
    /// Anything else: run the compiled postfix program.
    Generic,
}

impl Kernel {
    /// Recognises the condition's shape, defaulting to [`Kernel::Generic`].
    fn recognise(condition: &CompiledCondition) -> Kernel {
        let ops = match condition {
            CompiledCondition::AtMost { expr, .. } | CompiledCondition::AtLeast { expr, .. } => {
                expr.ops()
            }
            CompiledCondition::Fresh { slot, .. } => return Kernel::Fresh { slot: *slot },
        };
        match *ops {
            [Op::Signal(slot)] => Kernel::Sig { slot, abs: false },
            [Op::Signal(slot), Op::Abs] => Kernel::Sig { slot, abs: true },
            [Op::Derivative(slot)] => Kernel::Deriv { slot, abs: false },
            [Op::Derivative(slot), Op::Abs] => Kernel::Deriv { slot, abs: true },
            [Op::Signal(a), Op::Signal(b), Op::Sub, Op::Abs] => Kernel::SubAbs { a, b },
            [Op::Signal(a), Op::Signal(b), Op::Const(c), Op::Mul, Op::Sub] => {
                Kernel::SubMulConst { a, b, c }
            }
            [Op::Signal(a), Op::Signal(b), Op::Mul, Op::Abs] => Kernel::MulAbs { a, b },
            [Op::AngularDerivative(d), Op::Signal(b), Op::Sub, Op::Abs] => {
                Kernel::AngDerivSubAbs { d, b }
            }
            _ => Kernel::Generic,
        }
    }
}

/// The per-cycle evaluation parameters of one monitor, packed dense so
/// the hot loop streams a small contiguous table instead of pulling each
/// monitor's full [`Assertion`] (strings and all) through the cache every
/// cycle.
struct KernelEntry {
    /// Shape-specialised evaluator for this condition.
    kernel: Kernel,
    /// `true` for `AtLeast` (healthy ⇔ value ≥ limit), `false` for
    /// `AtMost` / `Fresh` (healthy ⇔ value ≤ limit).
    at_least: bool,
    /// The comparison bound (`Fresh`'s `max_age` counts).
    limit: f64,
}

/// One catalog assertion lowered for lane execution — the cold half,
/// touched only off the steady-state path (grace warm-up, health scans,
/// violations, finalisation).
struct PlanMonitor {
    assertion: Assertion,
    condition: CompiledCondition,
    /// Dense list of slots the condition reads (for the health scan).
    input_slots: Box<[u32]>,
    /// `Fresh` conditions monitor staleness themselves and are exempt from
    /// the health layer's staleness rule.
    staleness_exempt: bool,
}

/// A catalog compiled for lane execution, reusable across lane groups.
struct Plan {
    monitors: Vec<PlanMonitor>,
    /// Dense evaluation table, parallel to `monitors`.
    kernels: Vec<KernelEntry>,
    /// Scratch environment whose [`crate::compile::SignalTable`] maps
    /// trace signal names to the slots the plan reads.
    env: Env,
    max_stack: usize,
    /// Per slot: some condition takes its (angular) derivative, so the
    /// history must materialise delta/dt/stepped columns for it.
    need_deriv: Vec<bool>,
    /// Per slot: a `Fresh` condition ages it, so the history must
    /// materialise its update-timestamp column.
    need_time: Vec<bool>,
    /// Per slot: some monitor reads it (the health layer's staleness scan
    /// needs its timestamps when a finite horizon is configured).
    is_input: Vec<bool>,
}

fn compile_plan(catalog: &[Assertion]) -> Plan {
    let mut env = Env::new();
    let mut kernels = Vec::with_capacity(catalog.len());
    let mut monitors: Vec<PlanMonitor> = catalog
        .iter()
        .map(|assertion| {
            let condition = CompiledCondition::compile(&assertion.condition, &mut env);
            let staleness_exempt = condition.time_dependent();
            let (at_least, limit) = match &condition {
                CompiledCondition::AtMost { limit, .. } => (false, *limit),
                CompiledCondition::AtLeast { limit, .. } => (true, *limit),
                CompiledCondition::Fresh { max_age, .. } => (false, *max_age),
            };
            kernels.push(KernelEntry {
                kernel: Kernel::recognise(&condition),
                at_least,
                limit,
            });
            PlanMonitor {
                assertion: assertion.clone(),
                condition,
                input_slots: Box::new([]),
                staleness_exempt,
            }
        })
        .collect();
    // Input lists need the final table width (compiling a later assertion
    // can intern more slots), so fill them in a second pass.
    let width = env.table().len();
    let mut max_stack = 0;
    let mut need_deriv = vec![false; width];
    let mut need_time = vec![false; width];
    let mut is_input = vec![false; width];
    for monitor in &mut monitors {
        let mut mask = SlotMask::with_capacity(width);
        monitor.condition.mark_inputs(&mut mask);
        monitor.input_slots = mask.iter().collect();
        for &slot in monitor.input_slots.iter() {
            is_input[slot as usize] = true;
        }
        max_stack = max_stack.max(monitor.condition.max_stack());
        match &monitor.condition {
            CompiledCondition::AtMost { expr, .. } | CompiledCondition::AtLeast { expr, .. } => {
                for op in expr.ops() {
                    if let Op::Derivative(s) | Op::AngularDerivative(s) = op {
                        need_deriv[*s as usize] = true;
                    }
                }
            }
            CompiledCondition::Fresh { slot, .. } => need_time[*slot as usize] = true,
        }
    }
    Plan {
        monitors,
        kernels,
        env,
        max_stack,
        need_deriv,
        need_time,
        is_input,
    }
}

/// The per-monitor state the steady-state loop actually touches every
/// cycle: nine bitmasks. At 16 monitors the whole array spans three cache
/// lines, so the per-cycle monitor sweep stays L1-resident regardless of
/// catalog width (the split was worth ~4x on the standard catalog — the
/// old one-struct-per-monitor layout pulled ~300 bytes per monitor per
/// cycle through the cache).
#[derive(Clone, Copy, Default)]
struct HotLanes {
    /// Lanes whose clock has passed the assertion's grace period. Cycle
    /// timestamps strictly increase, so this set only ever grows.
    grace_passed: Mask,
    /// Lanes with an open violating episode (`episode_start` valid).
    episode: Mask,
    /// Lanes whose current episode has already alarmed.
    alarmed: Mask,
    /// Lanes with an un-recovered pushed violation (`open_idx` valid).
    open: Mask,
    ever_healthy: Mask,
    saw_first_sample: Mask,
    /// Last observed verdict per lane as class masks (all clear =
    /// `Unknown`, the pre-first-evaluation state).
    lv_pass: Mask,
    lv_viol: Mask,
    lv_inc: Mask,
}

/// Per-monitor, per-lane state touched only off the steady-state path:
/// episode bookkeeping, health streaks and observability counters.
struct ColdLanes {
    episode_start: [f64; LANES],
    /// Per lane: index into that lane's violation list of the open alarm.
    open_idx: [u32; LANES],
    /// Per-lane health state (`ACTIVE`/`DEGRADED`/`SUSPENDED`).
    health: [u8; LANES],
    degraded_streak: [u32; LANES],
    clean_streak: [u32; LANES],
    /// Per-lane observability counters.
    c_unknown: [u64; LANES],
    c_pass: [u64; LANES],
    c_inc: [u64; LANES],
    c_viol: [u64; LANES],
    flips: [u64; LANES],
    episodes: [u64; LANES],
    /// Byte-packed [`SPREAD`] accumulators feeding the counters above.
    acc_unknown: u64,
    acc_pass: u64,
    acc_inc: u64,
    acc_viol: u64,
    acc_flips: u64,
}

impl ColdLanes {
    fn new() -> Self {
        ColdLanes {
            episode_start: [0.0; LANES],
            open_idx: [0; LANES],
            health: [ACTIVE; LANES],
            degraded_streak: [0; LANES],
            clean_streak: [0; LANES],
            c_unknown: [0; LANES],
            c_pass: [0; LANES],
            c_inc: [0; LANES],
            c_viol: [0; LANES],
            flips: [0; LANES],
            episodes: [0; LANES],
            acc_unknown: 0,
            acc_pass: 0,
            acc_inc: 0,
            acc_viol: 0,
            acc_flips: 0,
        }
    }

    /// Drains the packed SWAR accumulators into the 64-bit counters.
    fn flush_counters(&mut self) {
        for l in 0..LANES {
            let sh = 8 * l as u32;
            self.c_unknown[l] += (self.acc_unknown >> sh) & 0xff;
            self.c_pass[l] += (self.acc_pass >> sh) & 0xff;
            self.c_inc[l] += (self.acc_inc >> sh) & 0xff;
            self.c_viol[l] += (self.acc_viol >> sh) & 0xff;
            self.flips[l] += (self.acc_flips >> sh) & 0xff;
        }
        self.acc_unknown = 0;
        self.acc_pass = 0;
        self.acc_inc = 0;
        self.acc_viol = 0;
        self.acc_flips = 0;
    }
}

/// Byte-spread table for SWAR verdict counting: `SPREAD[m]` has a 1 in
/// byte `l` exactly when bit `l` of mask `m` is set, so adding
/// `SPREAD[mask]` into a `u64` accumulator bumps eight per-lane counters
/// at once. Each accumulator grows by at most 1 per byte per cycle and is
/// drained every [`FLUSH_PERIOD`] cycles, so bytes never carry into their
/// neighbours.
const SPREAD: [u64; 256] = {
    let mut table = [0u64; 256];
    let mut m = 0;
    while m < 256 {
        let mut v = 0u64;
        let mut l = 0;
        while l < 8 {
            if m & (1 << l) != 0 {
                v |= 1 << (8 * l);
            }
            l += 1;
        }
        table[m] = v;
        m += 1;
    }
    table
};

/// Cycles between SWAR accumulator drains — the per-byte maximum.
const FLUSH_PERIOD: u32 = 255;

/// Checks up to [`LANES`] columnar traces together, returning per-trace
/// `(report, metrics)` in input order. `group.len()` must be in
/// `1..=LANES`.
/// `METRICS` monomorphises the loop: the report-only path (`false`) skips
/// verdict counters and flip detection entirely — they feed only the
/// [`MetricsSnapshot`], never the [`CheckReport`] — while the observed
/// path (`true`) keeps them, SWAR byte-packed.
fn run_group<const METRICS: bool>(
    plan: &Plan,
    health_cfg: &HealthConfig,
    group: &[ColumnarTrace],
) -> Vec<(CheckReport, Option<MetricsSnapshot>)> {
    let lanes = group.len();
    debug_assert!((1..=LANES).contains(&lanes));
    let mut hots: Vec<HotLanes> = vec![HotLanes::default(); plan.monitors.len()];
    let mut colds: Vec<ColdLanes> = plan.monitors.iter().map(|_| ColdLanes::new()).collect();
    // Violations tagged with their detection cycle: the monitor-major
    // sweep discovers them grouped by monitor, and the scalar replay
    // reports them in (cycle, monitor) order — a stable sort on the cycle
    // tag restores exactly that order before the report is assembled.
    let mut violations: Vec<Vec<(u32, Violation)>> = vec![Vec::new(); lanes];
    let mut inconclusive = [0u64; LANES];
    let mut grids: Vec<TransitionGrid> = vec![TransitionGrid::new(); lanes];
    let mut stack: Vec<LaneCell> = Vec::with_capacity(plan.max_stack);

    let cycle_counts: Vec<usize> = group.iter().map(ColumnarTrace::cycle_count).collect();
    // Offline traces carry no non-finite samples, so with an infinite
    // staleness horizon no input can ever go missing: every monitor stays
    // Active and the whole health layer short-circuits.
    let health_on = health_cfg.stale_after.is_finite();
    let hist = build_history(plan, group, health_on);

    // Monitor-major sweep: each monitor makes one full pass over the
    // cycle range before the next starts. The alternative — cycle-major,
    // every monitor per cycle — reads every plan slot's sample columns
    // concurrently, and on the standard catalog that is hundreds of
    // interleaved (slot, lane) read streams, far past what the hardware
    // prefetcher tracks. A per-monitor pass streams only that monitor's
    // one-to-three slots. Monitors never read each other's state within a
    // cycle, so every verdict is identical; only the violation discovery
    // order changes, and the cycle-tag sort at finalisation restores it.
    for m in 0..plan.kernels.len() {
        let ke = &plan.kernels[m];
        let pm = &plan.monitors[m];
        let hot = &mut hots[m];
        let cold = &mut colds[m];
        let mut flush_in = FLUSH_PERIOD;
        for k in 0..hist.max_cycles {
            let active = hist.active[k];
            let now = &hist.now[k];
            if METRICS {
                // Drain the SWAR accumulators before any byte can wrap:
                // at most one add per byte per cycle.
                flush_in -= 1;
                if flush_in == 0 {
                    cold.flush_counters();
                    flush_in = FLUSH_PERIOD;
                }
            }

            // Lanes past the assertion's grace period this cycle. Grace is
            // monotone per lane, so only un-passed lanes need the compare.
            let pending = active & !hot.grace_passed;
            if pending != 0 {
                let grace = pm.assertion.grace;
                for_each_lane(pending, |l| {
                    hot.grace_passed |= Mask::from(now[l] >= grace) << l;
                });
            }
            let processed = active & hot.grace_passed;
            if processed == 0 {
                continue;
            }

            // Health layer: per-lane streaks, exactly the online state
            // machine (minus poisoning, impossible offline).
            let mut inc: Mask = 0;
            if health_on {
                for_each_lane(processed, |l| {
                    let bit = 1u8 << l;
                    let mut missing = 0u32;
                    if !pm.staleness_exempt {
                        for &slot in pm.input_slots.iter() {
                            let (time, seen) = hist.time(slot as usize, k);
                            if seen & bit != 0 && now[l] - time[l] > health_cfg.stale_after {
                                missing += 1;
                            }
                        }
                    }
                    let prev = cold.health[l];
                    if missing > 0 {
                        cold.clean_streak[l] = 0;
                        cold.degraded_streak[l] = cold.degraded_streak[l].saturating_add(1);
                        cold.health[l] = if cold.degraded_streak[l] >= health_cfg.quarantine_after {
                            SUSPENDED
                        } else {
                            DEGRADED
                        };
                        inc |= bit;
                    } else {
                        cold.degraded_streak[l] = 0;
                        if cold.health[l] != ACTIVE {
                            cold.clean_streak[l] = cold.clean_streak[l].saturating_add(1);
                            if cold.clean_streak[l] >= health_cfg.recover_after {
                                cold.health[l] = ACTIVE;
                                cold.clean_streak[l] = 0;
                            }
                        }
                        if cold.health[l] != ACTIVE {
                            // Clean again but inside the hysteresis window.
                            inc |= bit;
                        }
                    }
                    if cold.health[l] != prev {
                        grids[l].record(prev as usize, cold.health[l] as usize);
                    }
                });
            }

            // Evaluate the condition for every lane at once. Inconclusive
            // lanes ignore the result (evaluation has no side effects), so
            // no masking is needed before the class split.
            let (vals, valid, healthy) = eval_kernel(ke, &pm.condition, &hist, k, now, &mut stack);
            let inc_lanes = processed & inc;
            let rest = processed & !inc;
            let unk = rest & !valid;
            let pass = rest & valid & healthy;
            let viol = rest & valid & !healthy;

            if METRICS {
                // Verdict counters: one table lookup and 64-bit add per
                // class bumps all eight lane counters at once.
                cold.acc_unknown += SPREAD[unk as usize];
                cold.acc_pass += SPREAD[pass as usize];
                cold.acc_inc += SPREAD[inc_lanes as usize];
                cold.acc_viol += SPREAD[viol as usize];

                // Flip detection against the stored last-verdict masks.
                let lv_unknown = !(hot.lv_pass | hot.lv_viol | hot.lv_inc);
                let same = (pass & hot.lv_pass)
                    | (viol & hot.lv_viol)
                    | (inc_lanes & hot.lv_inc)
                    | (unk & lv_unknown);
                let changed = processed & !same;
                if changed != 0 {
                    cold.acc_flips += SPREAD[changed as usize];
                    hot.lv_pass = (hot.lv_pass & !changed) | (pass & changed);
                    hot.lv_viol = (hot.lv_viol & !changed) | (viol & changed);
                    hot.lv_inc = (hot.lv_inc & !changed) | (inc_lanes & changed);
                }
            }

            // Steady state — every processed lane passing and no episode,
            // alarm or open violation anywhere: the full machinery below
            // reduces to two mask ORs.
            if (unk | inc_lanes | viol | hot.episode | hot.alarmed | hot.open) == 0 {
                hot.ever_healthy |= pass;
                hot.saw_first_sample |= pass;
                continue;
            }

            // Temporal state machine, mask-level where possible.
            // Unknown / Inconclusive: neutral — reset the episode.
            let reset = unk | inc_lanes;
            hot.episode &= !reset;
            hot.alarmed &= !reset;
            hot.open &= !reset;
            for_each_lane(inc_lanes, |l| inconclusive[l] += 1);

            // Healthy: stamp recoveries on open alarms, close the episode.
            let heal = pass & hot.open;
            for_each_lane(heal, |l| {
                violations[l][cold.open_idx[l] as usize].1.recovered = Some(now[l]);
            });
            hot.open &= !pass;
            hot.episode &= !pass;
            hot.alarmed &= !pass;
            hot.ever_healthy |= pass;
            hot.saw_first_sample |= pass;

            // Violated: open episodes, fire alarms per the temporal op.
            if viol != 0 {
                let assertion = &pm.assertion;
                hot.saw_first_sample |= viol;
                for_each_lane(viol & !hot.episode, |l| cold.episode_start[l] = now[l]);
                hot.episode |= viol;
                let candidates = viol & !hot.alarmed;
                let alarm = match assertion.temporal {
                    Temporal::Immediate => candidates,
                    Temporal::Sustained(d) => {
                        let mut a: Mask = 0;
                        for_each_lane(candidates, |l| {
                            a |= Mask::from(now[l] - cold.episode_start[l] >= d) << l;
                        });
                        a
                    }
                    Temporal::Eventually => 0, // judged at finish
                };
                for_each_lane(alarm, |l| {
                    hot.alarmed |= 1u8 << l;
                    hot.open |= 1u8 << l;
                    cold.open_idx[l] = u32::try_from(violations[l].len())
                        .expect("fewer than u32::MAX violations per trace");
                    cold.episodes[l] += 1;
                    violations[l].push((
                        k as u32,
                        Violation {
                            assertion: assertion.id.clone(),
                            severity: assertion.severity,
                            onset: cold.episode_start[l],
                            detected: now[l],
                            value: vals[l],
                            cycle: k as u64,
                            recovered: None,
                        },
                    ));
                });
            }
        }
    }
    if METRICS {
        for cold in colds.iter_mut() {
            cold.flush_counters();
        }
    }

    // Finalisation, per lane: judge `Eventually` in monitor order, then
    // assemble the report and metrics.
    let health_labels = [
        ObsHealth::Active.name(),
        ObsHealth::Degraded.name(),
        ObsHealth::Suspended.name(),
    ];
    let mut out = Vec::with_capacity(lanes);
    for (l, tagged) in violations.into_iter().enumerate() {
        let bit = 1u8 << l;
        let end_time = group[l].end_time();
        // Monitor-major discovery order is (monitor, cycle); the scalar
        // replay reports (cycle, monitor). The sort is stable, and within
        // one monitor entries are already cycle-ordered, so sorting on the
        // cycle tag alone lands every tie in monitor order.
        let mut tagged = tagged;
        tagged.sort_by_key(|&(k, _)| k);
        let mut lane_violations: Vec<Violation> = tagged.into_iter().map(|(_, v)| v).collect();
        let mut assertions = Vec::new();
        if METRICS {
            assertions.reserve_exact(plan.monitors.len());
        }
        for (m, pm) in plan.monitors.iter().enumerate() {
            let (hot, cold) = (&hots[m], &mut colds[m]);
            if pm.assertion.temporal == Temporal::Eventually
                && hot.saw_first_sample & bit != 0
                && hot.ever_healthy & bit == 0
            {
                cold.episodes[l] += 1;
                lane_violations.push(Violation {
                    assertion: pm.assertion.id.clone(),
                    severity: pm.assertion.severity,
                    onset: pm.assertion.grace,
                    detected: end_time,
                    value: f64::NAN,
                    cycle: group[l].cycle_count() as u64,
                    recovered: None,
                });
            }
            if METRICS {
                assertions.push(AssertionStats {
                    id: pm.assertion.id.as_str().to_owned(),
                    verdicts: VerdictCounts {
                        unknown: cold.c_unknown[l],
                        pass: cold.c_pass[l],
                        inconclusive: cold.c_inc[l],
                        violated: cold.c_viol[l],
                    },
                    flips: cold.flips[l],
                    episodes: cold.episodes[l],
                });
            }
        }
        let mut report = CheckReport::new(lane_violations, end_time, plan.monitors.len());
        report.inconclusive_cycles = inconclusive[l];
        let metrics = METRICS.then(|| MetricsSnapshot {
            cycles: cycle_counts[l] as u64,
            assertions,
            health_transitions: grids[l].sparse(health_labels),
            guard_transitions: Vec::new(),
            events_emitted: 0,
            eval_cycle_ns: Histogram::nanos(),
            detection_latency_s: Histogram::seconds(),
        });
        out.push((report, metrics));
    }
    out
}

/// Checks a batch of columnar traces against `catalog` with the default
/// [`HealthConfig`], lane-batching up to [`LANES`] traces per pass.
/// Reports are returned in input order and are bit-identical to
/// [`crate::checker::check`] run per trace.
///
/// # Example
///
/// ```
/// use adassure_core::catalog::{self, CatalogConfig};
/// use adassure_core::{checker, lane};
/// use adassure_trace::{ColumnarTrace, Trace};
///
/// let mut trace = Trace::new();
/// for i in 0..100 {
///     trace.record("xtrack_err", f64::from(i) * 0.01, 3.0);
/// }
/// let cat = catalog::build(&CatalogConfig::default());
/// let columnar = ColumnarTrace::from_trace(&trace);
/// let reports = lane::check_columnar(&cat, std::slice::from_ref(&columnar));
/// assert_eq!(reports[0], checker::check(&cat, &trace));
/// ```
pub fn check_columnar(catalog: &[Assertion], traces: &[ColumnarTrace]) -> Vec<CheckReport> {
    check_columnar_with_health(catalog, HealthConfig::default(), traces)
}

/// [`check_columnar`] with an explicit telemetry-health configuration
/// (matching [`crate::online::OnlineChecker::with_health`] per trace).
/// Runs the report-only loop, which skips the metrics bookkeeping.
pub fn check_columnar_with_health(
    catalog: &[Assertion],
    health: HealthConfig,
    traces: &[ColumnarTrace],
) -> Vec<CheckReport> {
    let plan = compile_plan(catalog);
    let mut out = Vec::with_capacity(traces.len());
    for group in traces.chunks(LANES) {
        out.extend(
            run_group::<false>(&plan, &health, group)
                .into_iter()
                .map(|(report, _)| report),
        );
    }
    out
}

/// Full-fat lane checking: per trace, the report *and* the final
/// [`MetricsSnapshot`] (cycles, per-assertion verdict counters, flips,
/// episodes, health transitions) — what the scalar
/// [`crate::checker::check_observed`] produces with events disabled.
pub fn check_columnar_observed(
    catalog: &[Assertion],
    health: HealthConfig,
    traces: &[ColumnarTrace],
) -> Vec<(CheckReport, MetricsSnapshot)> {
    let plan = compile_plan(catalog);
    let mut out = Vec::with_capacity(traces.len());
    for group in traces.chunks(LANES) {
        out.extend(
            run_group::<true>(&plan, &health, group)
                .into_iter()
                .map(|(report, metrics)| (report, metrics.expect("observed mode builds metrics"))),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assertion::{Condition, Severity};
    use crate::catalog::{self, CatalogConfig};
    use crate::checker;
    use crate::expr::SignalExpr;
    use adassure_trace::Trace;

    fn bound(limit: f64) -> Assertion {
        Assertion::new(
            "A1",
            "bounded x",
            Severity::Critical,
            Condition::AtMost {
                expr: SignalExpr::signal("x").abs(),
                limit,
            },
        )
    }

    /// Report equality down to the `f64` bit pattern — `Eventually`
    /// violations carry a `NaN` payload, which derived `PartialEq`
    /// (IEEE `==`) would spuriously report as unequal.
    fn assert_reports_bit_equal(lane: &CheckReport, scalar: &CheckReport) {
        assert_eq!(lane.end_time.to_bits(), scalar.end_time.to_bits());
        assert_eq!(lane.assertions_checked, scalar.assertions_checked);
        assert_eq!(lane.inconclusive_cycles, scalar.inconclusive_cycles);
        assert_eq!(lane.violations.len(), scalar.violations.len());
        for (a, b) in lane.violations.iter().zip(&scalar.violations) {
            assert_eq!(a.assertion, b.assertion);
            assert_eq!(a.severity, b.severity);
            assert_eq!(a.onset.to_bits(), b.onset.to_bits());
            assert_eq!(a.detected.to_bits(), b.detected.to_bits());
            assert_eq!(a.value.to_bits(), b.value.to_bits());
            assert_eq!(a.recovered.map(f64::to_bits), b.recovered.map(f64::to_bits));
        }
    }

    fn excursion_trace(phase: f64) -> Trace {
        let mut t = Trace::new();
        for i in 0..200 {
            let time = f64::from(i) * 0.01;
            let v = if (phase..phase + 0.4).contains(&time) {
                5.0
            } else {
                0.3
            };
            t.record("x", time, v);
        }
        t
    }

    #[test]
    fn lane_batch_matches_scalar_reports() {
        let catalog = [
            bound(1.0),
            bound(1.0).with_temporal(Temporal::Sustained(0.15)),
            Assertion::new(
                "A3",
                "progress eventually",
                Severity::Warning,
                Condition::AtLeast {
                    expr: SignalExpr::signal("x"),
                    limit: 100.0,
                },
            )
            .with_temporal(Temporal::Eventually),
        ];
        let traces: Vec<Trace> = (0..11)
            .map(|i| excursion_trace(f64::from(i) * 0.1))
            .collect();
        let columnar: Vec<ColumnarTrace> = traces.iter().map(ColumnarTrace::from_trace).collect();
        let lane_reports = check_columnar(&catalog, &columnar);
        assert_eq!(lane_reports.len(), traces.len());
        for (trace, lane_report) in traces.iter().zip(&lane_reports) {
            assert_reports_bit_equal(lane_report, &checker::check(&catalog, trace));
        }
    }

    #[test]
    fn empty_batch_and_empty_trace() {
        let catalog = [bound(1.0)];
        assert!(check_columnar(&catalog, &[]).is_empty());
        let empty = ColumnarTrace::from_trace(&Trace::new());
        let reports = check_columnar(&catalog, &[empty]);
        assert!(reports[0].is_clean());
        assert_eq!(reports[0].end_time, 0.0);
    }

    #[test]
    fn standard_catalog_group_matches_scalar() {
        // Mixed-rate signals exercise the validity masks: "slow" updates
        // every third cycle, so derivative/unknown states differ per lane.
        let cat = catalog::build(&CatalogConfig::default());
        let mut traces = Vec::new();
        for seed in 0..5u32 {
            let mut t = Trace::new();
            for i in 0..300 {
                let time = f64::from(i) * 0.02;
                let wob = f64::from((i * (seed + 3)) % 17) * 0.01;
                t.record("xtrack_err", time, 0.1 + wob);
                t.record("wheel_speed", time, 5.0 + wob);
                if i % 3 == 0 {
                    t.record("gnss_x", time, f64::from(i) * 0.1);
                    t.record("gnss_y", time, wob);
                }
            }
            traces.push(t);
        }
        let columnar: Vec<ColumnarTrace> = traces.iter().map(ColumnarTrace::from_trace).collect();
        for (trace, lane_report) in traces.iter().zip(check_columnar(&cat, &columnar)) {
            assert_reports_bit_equal(&lane_report, &checker::check(&cat, trace));
        }
    }

    #[test]
    fn metrics_match_scalar_observed() {
        use adassure_obs::{NullSink, ObsConfig};

        let catalog = [
            bound(1.0),
            bound(0.2).with_temporal(Temporal::Sustained(0.1)),
        ];
        let traces: Vec<Trace> = (0..3)
            .map(|i| excursion_trace(f64::from(i) * 0.3))
            .collect();
        let columnar: Vec<ColumnarTrace> = traces.iter().map(ColumnarTrace::from_trace).collect();
        let lane = check_columnar_observed(&catalog, HealthConfig::default(), &columnar);
        for (trace, (lane_report, lane_metrics)) in traces.iter().zip(lane) {
            let (report, metrics, _) = checker::check_observed(
                &catalog,
                trace,
                0,
                &ObsConfig::disabled(),
                Box::new(NullSink),
            );
            assert_reports_bit_equal(&lane_report, &report);
            // The deterministic slice must agree; wall-clock timing differs.
            assert_eq!(lane_metrics.summary(), metrics.summary());
        }
    }

    #[test]
    fn staleness_health_matches_scalar() {
        // "x" goes dark while "clock" keeps cycles coming: the monitor
        // degrades, suspends, then recovers — all through the lane path.
        let cfg = HealthConfig {
            stale_after: 0.05,
            quarantine_after: 3,
            recover_after: 2,
        };
        let mut trace = Trace::new();
        for i in 0..100 {
            let time = f64::from(i) * 0.02;
            trace.record("clock", time, 0.0);
            if !(20..60).contains(&i) {
                trace.record("x", time, if i > 80 { 9.0 } else { 0.0 });
            }
        }
        let catalog = [bound(1.0)];
        let scalar = checker::check_with_health(&catalog, cfg, &trace);
        let columnar = ColumnarTrace::from_trace(&trace);
        let lane = check_columnar_with_health(&catalog, cfg, std::slice::from_ref(&columnar));
        assert_reports_bit_equal(&lane[0], &scalar);
        assert!(lane[0].inconclusive_cycles > 0, "went dark at some point");
    }
}
