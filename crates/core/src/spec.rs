//! A textual specification language for assertions.
//!
//! Lets a catalog live in a plain-text file next to the vehicle
//! configuration instead of in Rust code:
//!
//! ```text
//! # ADAssure catalog excerpt
//! A1 critical: |xtrack_err| <= 1.5 sustained 0.3 grace 8 -- bounded cross-track error
//! A6 critical: |gnss_speed - wheel_speed| <= 2.0 sustained 0.25 grace 5 -- speed consistency
//! A9 critical: d(progress)/dt >= -30 grace 3 -- no progress regression
//! A12 warning: progress >= 270 eventually -- goal eventually reached
//! A13 critical: fresh(gnss_x) <= 0.5 grace 3 -- GNSS keeps fixing
//! ```
//!
//! The expression grammar is exactly what [`SignalExpr`]'s `Display`
//! produces, so `parse_expr(expr.to_string())` round-trips (a property the
//! test suite checks):
//!
//! ```text
//! expr    := term (('+' | '-') term)*
//! term    := factor ('*' factor)*
//! factor  := number | signal | '|' expr '|' | '(' expr ')' | '-' factor
//!          | 'd(' signal ')/dt' | 'dang(' signal ')/dt'
//!          | 'tan(' expr ')' | 'angdiff(' expr ',' expr ')'
//! ```

use std::fmt;

use adassure_trace::SignalId;

use crate::assertion::{Assertion, AssertionId, Condition, Severity, Temporal};
use crate::expr::SignalExpr;

/// Errors produced while parsing a specification.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseSpecError {
    /// 1-based line of the offending text (0 for single-expression parses).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "spec parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseSpecError {}

fn err(message: impl Into<String>) -> ParseSpecError {
    ParseSpecError {
        line: 0,
        message: message.into(),
    }
}

// ---------------------------------------------------------------- lexer --

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Number(f64),
    Ident(String),
    Plus,
    Minus,
    Star,
    Pipe,
    LParen,
    RParen,
    Comma,
    /// The `d(` opener of a derivative.
    DOpen,
    /// The `dang(` opener of an angular derivative.
    DangOpen,
    /// The `)/dt` closer of a derivative.
    DtClose,
}

fn lex(input: &str) -> Result<Vec<Token>, ParseSpecError> {
    let mut tokens = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' => i += 1,
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '-' => {
                tokens.push(Token::Minus);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '|' => {
                tokens.push(Token::Pipe);
                i += 1;
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                if input[i..].starts_with(")/dt") {
                    tokens.push(Token::DtClose);
                    i += 4;
                } else {
                    tokens.push(Token::RParen);
                    i += 1;
                }
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '0'..='9' | '.' => {
                let start = i;
                while i < bytes.len() && matches!(bytes[i] as char, '0'..='9' | '.' | 'e' | 'E') {
                    // Accept exponent signs only right after e/E.
                    i += 1;
                    if i < bytes.len()
                        && matches!(bytes[i - 1] as char, 'e' | 'E')
                        && matches!(bytes[i] as char, '+' | '-')
                    {
                        i += 1;
                    }
                }
                let text = &input[start..i];
                let value: f64 = text
                    .parse()
                    .map_err(|_| err(format!("invalid number `{text}`")))?;
                tokens.push(Token::Number(value));
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len()
                    && matches!(bytes[i] as char, 'a'..='z' | 'A'..='Z' | '0'..='9' | '_')
                {
                    i += 1;
                }
                let word = &input[start..i];
                // `d(` / `dang(` introduce derivatives.
                if i < bytes.len() && bytes[i] as char == '(' && word == "d" {
                    tokens.push(Token::DOpen);
                    i += 1;
                } else if i < bytes.len() && bytes[i] as char == '(' && word == "dang" {
                    tokens.push(Token::DangOpen);
                    i += 1;
                } else {
                    tokens.push(Token::Ident(word.to_owned()));
                }
            }
            other => return Err(err(format!("unexpected character `{other}`"))),
        }
    }
    Ok(tokens)
}

// --------------------------------------------------------------- parser --

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, token: &Token) -> Result<(), ParseSpecError> {
        match self.next() {
            Some(t) if t == *token => Ok(()),
            other => Err(err(format!("expected {token:?}, found {other:?}"))),
        }
    }

    fn expr(&mut self) -> Result<SignalExpr, ParseSpecError> {
        let mut lhs = self.term()?;
        loop {
            match self.peek() {
                Some(Token::Plus) => {
                    self.pos += 1;
                    lhs = lhs.add(self.term()?);
                }
                Some(Token::Minus) => {
                    self.pos += 1;
                    lhs = lhs.sub(self.term()?);
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn term(&mut self) -> Result<SignalExpr, ParseSpecError> {
        let mut lhs = self.factor()?;
        while self.peek() == Some(&Token::Star) {
            self.pos += 1;
            lhs = lhs.mul(self.factor()?);
        }
        Ok(lhs)
    }

    fn factor(&mut self) -> Result<SignalExpr, ParseSpecError> {
        match self.next() {
            Some(Token::Number(v)) => Ok(SignalExpr::constant(v)),
            // `neg()` folds `-<number>` into a negative constant.
            Some(Token::Minus) => Ok(self.factor()?.neg()),
            Some(Token::Pipe) => {
                let inner = self.expr()?;
                self.expect(&Token::Pipe)?;
                Ok(inner.abs())
            }
            Some(Token::LParen) => {
                let inner = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(inner)
            }
            Some(Token::DOpen) => {
                let signal = self.signal_name()?;
                self.expect(&Token::DtClose)?;
                Ok(SignalExpr::derivative(signal))
            }
            Some(Token::DangOpen) => {
                let signal = self.signal_name()?;
                self.expect(&Token::DtClose)?;
                Ok(SignalExpr::angular_derivative(signal))
            }
            Some(Token::Ident(word)) => match word.as_str() {
                "tan" => {
                    self.expect(&Token::LParen)?;
                    let inner = self.expr()?;
                    self.expect(&Token::RParen)?;
                    Ok(inner.tan())
                }
                "angdiff" => {
                    self.expect(&Token::LParen)?;
                    let a = self.expr()?;
                    self.expect(&Token::Comma)?;
                    let b = self.expr()?;
                    self.expect(&Token::RParen)?;
                    Ok(a.angle_diff(b))
                }
                _ => Ok(SignalExpr::signal(word)),
            },
            other => Err(err(format!("unexpected token {other:?} in expression"))),
        }
    }

    fn signal_name(&mut self) -> Result<SignalId, ParseSpecError> {
        match self.next() {
            Some(Token::Ident(word)) => Ok(SignalId::new(word)),
            other => Err(err(format!("expected a signal name, found {other:?}"))),
        }
    }
}

/// Parses a single expression.
///
/// # Errors
///
/// Returns [`ParseSpecError`] describing the first syntactic problem.
///
/// # Example
///
/// ```
/// use adassure_core::spec::parse_expr;
///
/// let e = parse_expr("|gnss_speed - wheel_speed|")?;
/// assert_eq!(e.to_string(), "|(gnss_speed - wheel_speed)|");
/// # Ok::<(), adassure_core::spec::ParseSpecError>(())
/// ```
pub fn parse_expr(input: &str) -> Result<SignalExpr, ParseSpecError> {
    let mut parser = Parser {
        tokens: lex(input)?,
        pos: 0,
    };
    let expr = parser.expr()?;
    if parser.pos != parser.tokens.len() {
        return Err(err(format!(
            "trailing tokens after expression: {:?}",
            &parser.tokens[parser.pos..]
        )));
    }
    Ok(expr)
}

/// Parses one assertion line:
/// `<id> [info|warning|critical]: <condition> [sustained <s>] [eventually] [grace <s>] [-- <description>]`.
///
/// # Errors
///
/// Returns [`ParseSpecError`] describing the first problem.
pub fn parse_assertion(input: &str) -> Result<Assertion, ParseSpecError> {
    let (body, description) = match input.split_once("--") {
        Some((b, d)) => (b.trim(), d.trim().to_owned()),
        None => (input.trim(), String::new()),
    };
    let (head, rest) = body
        .split_once(':')
        .ok_or_else(|| err("missing `:` after assertion id"))?;

    let mut head_parts = head.split_whitespace();
    let id = head_parts
        .next()
        .ok_or_else(|| err("missing assertion id"))?;
    let severity = match head_parts.next() {
        None => Severity::Warning,
        Some("info") => Severity::Info,
        Some("warning") => Severity::Warning,
        Some("critical") => Severity::Critical,
        Some(other) => return Err(err(format!("unknown severity `{other}`"))),
    };
    if head_parts.next().is_some() {
        return Err(err("unexpected tokens before `:`"));
    }

    // Split trailing clauses (sustained/eventually/grace) off the condition.
    let mut condition_text = rest.trim().to_owned();
    let mut temporal = Temporal::Immediate;
    let mut grace = 0.0;
    loop {
        let words: Vec<&str> = condition_text.split_whitespace().collect();
        if words.len() >= 2
            && (words[words.len() - 2] == "sustained" || words[words.len() - 2] == "grace")
        {
            let value: f64 = words[words.len() - 1]
                .parse()
                .map_err(|_| err(format!("invalid duration `{}`", words[words.len() - 1])))?;
            if words[words.len() - 2] == "sustained" {
                temporal = Temporal::Sustained(value);
            } else {
                grace = value;
            }
            condition_text = words[..words.len() - 2].join(" ");
        } else if words.last() == Some(&"eventually") {
            temporal = Temporal::Eventually;
            condition_text = words[..words.len() - 1].join(" ");
        } else {
            break;
        }
    }

    let condition = parse_condition(&condition_text)?;
    Ok(Assertion {
        id: AssertionId::new(id),
        description,
        severity,
        condition,
        temporal,
        grace,
    })
}

fn parse_condition(text: &str) -> Result<Condition, ParseSpecError> {
    let (lhs, op, rhs) = if let Some((l, r)) = text.split_once("<=") {
        (l, "<=", r)
    } else if let Some((l, r)) = text.split_once(">=") {
        (l, ">=", r)
    } else {
        return Err(err("condition must contain `<=` or `>=`"));
    };
    let limit: f64 = rhs
        .trim()
        .parse()
        .map_err(|_| err(format!("threshold must be a number, got `{}`", rhs.trim())))?;
    let lhs = lhs.trim();

    // fresh(<signal>) is special syntax for the freshness condition.
    if let Some(inner) = lhs.strip_prefix("fresh(").and_then(|s| s.strip_suffix(')')) {
        if op != "<=" {
            return Err(err("freshness conditions only support `<=`"));
        }
        return Ok(Condition::Fresh {
            signal: SignalId::new(inner.trim()),
            max_age: limit,
        });
    }

    let expr = parse_expr(lhs)?;
    Ok(match op {
        "<=" => Condition::AtMost { expr, limit },
        _ => Condition::AtLeast { expr, limit },
    })
}

/// Parses a whole catalog: one assertion per line, `#` comments and blank
/// lines ignored.
///
/// # Errors
///
/// Returns [`ParseSpecError`] with the 1-based line number of the first
/// offending line.
pub fn parse_catalog(input: &str) -> Result<Vec<Assertion>, ParseSpecError> {
    let mut out = Vec::new();
    for (idx, line) in input.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let assertion = parse_assertion(line).map_err(|mut e| {
            e.line = idx + 1;
            e
        })?;
        out.push(assertion);
    }
    Ok(out)
}

/// Formats an assertion back into the specification syntax accepted by
/// [`parse_assertion`] (round-trips).
pub fn format_assertion(assertion: &Assertion) -> String {
    let severity = match assertion.severity {
        Severity::Info => "info",
        Severity::Warning => "warning",
        Severity::Critical => "critical",
    };
    let condition = match &assertion.condition {
        Condition::AtMost { expr, limit } => format!("{expr} <= {limit}"),
        Condition::AtLeast { expr, limit } => format!("{expr} >= {limit}"),
        Condition::Fresh { signal, max_age } => format!("fresh({signal}) <= {max_age}"),
    };
    let temporal = match assertion.temporal {
        Temporal::Immediate => String::new(),
        Temporal::Sustained(d) => format!(" sustained {d}"),
        Temporal::Eventually => " eventually".to_owned(),
    };
    let grace = if assertion.grace > 0.0 {
        format!(" grace {}", assertion.grace)
    } else {
        String::new()
    };
    let description = if assertion.description.is_empty() {
        String::new()
    } else {
        format!(" -- {}", assertion.description)
    };
    format!(
        "{} {severity}: {condition}{temporal}{grace}{description}",
        assertion.id
    )
}

/// Formats a whole catalog, one assertion per line.
pub fn format_catalog(catalog: &[Assertion]) -> String {
    catalog
        .iter()
        .map(format_assertion)
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{self, CatalogConfig};

    #[test]
    fn parses_simple_bounds() {
        let a = parse_assertion(
            "A1 critical: |xtrack_err| <= 1.5 sustained 0.3 grace 8 -- bounded error",
        )
        .unwrap();
        assert_eq!(a.id.as_str(), "A1");
        assert_eq!(a.severity, Severity::Critical);
        assert_eq!(a.condition.threshold(), 1.5);
        assert_eq!(a.temporal, Temporal::Sustained(0.3));
        assert_eq!(a.grace, 8.0);
        assert_eq!(a.description, "bounded error");
    }

    #[test]
    fn parses_at_least_and_negative_thresholds() {
        let a = parse_assertion("A9: d(progress)/dt >= -30 grace 3").unwrap();
        assert_eq!(a.severity, Severity::Warning, "default severity");
        assert!(matches!(a.condition, Condition::AtLeast { .. }));
        assert_eq!(a.condition.threshold(), -30.0);
    }

    #[test]
    fn parses_freshness() {
        let a = parse_assertion("A13 critical: fresh(gnss_x) <= 0.5").unwrap();
        match &a.condition {
            Condition::Fresh { signal, max_age } => {
                assert_eq!(signal.as_str(), "gnss_x");
                assert_eq!(*max_age, 0.5);
            }
            other => panic!("unexpected condition {other:?}"),
        }
    }

    #[test]
    fn parses_eventually() {
        let a = parse_assertion("A12 warning: progress >= 270 eventually").unwrap();
        assert_eq!(a.temporal, Temporal::Eventually);
    }

    #[test]
    fn parses_derivatives_and_functions() {
        let e = parse_expr("|dang(compass_heading)/dt - imu_yaw_rate|").unwrap();
        assert_eq!(e.to_string(), "|(dang(compass_heading)/dt - imu_yaw_rate)|");
        let e = parse_expr("wheel_speed * tan(steer_actual) * 0.37").unwrap();
        assert!(e.to_string().contains("tan(steer_actual)"));
        let e = parse_expr("angdiff(est_heading, true_heading)").unwrap();
        assert!(matches!(e, SignalExpr::AngleDiff(_, _)));
    }

    #[test]
    fn precedence_mul_binds_tighter() {
        let e = parse_expr("a + b * c").unwrap();
        assert_eq!(e.to_string(), "(a + (b * c))");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_assertion("no colon here").is_err());
        assert!(
            parse_assertion("A1: xtrack_err < 1.5").is_err(),
            "unsupported operator"
        );
        assert!(
            parse_assertion("A1 loud: x <= 1").is_err(),
            "unknown severity"
        );
        assert!(parse_expr("x +").is_err());
        assert!(parse_expr("(x").is_err());
        assert!(parse_expr("|x").is_err());
        assert!(parse_expr("x ?").is_err());
        assert!(parse_assertion("A1: fresh(gnss_x) >= 0.5").is_err());
    }

    #[test]
    fn catalog_parsing_skips_comments_and_reports_lines() {
        let text = "\n# comment\nA1: |x| <= 1\n\nA2: y >= 0\n";
        let cat = parse_catalog(text).unwrap();
        assert_eq!(cat.len(), 2);

        let bad = "# fine\nA1: |x| <=\n";
        let e = parse_catalog(bad).unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn builtin_catalog_round_trips_through_the_spec_language() {
        let cat = catalog::build(&CatalogConfig::default().with_goal_distance(300.0));
        let text = format_catalog(&cat);
        let parsed = parse_catalog(&text).expect("formatted catalog must parse");
        assert_eq!(parsed.len(), cat.len());
        for (a, b) in cat.iter().zip(&parsed) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.severity, b.severity);
            assert_eq!(a.temporal, b.temporal);
            assert_eq!(a.grace, b.grace);
            assert_eq!(a.condition, b.condition, "{}", a.id);
        }
    }

    #[test]
    fn parsed_catalog_checks_traces_identically() {
        use adassure_trace::Trace;
        let cat = catalog::build(&CatalogConfig::default());
        let text = format_catalog(&cat);
        let parsed = parse_catalog(&text).unwrap();

        let mut trace = Trace::new();
        for i in 0..3000 {
            let t = f64::from(i) * 0.01;
            trace.record("xtrack_err", t, if t > 20.0 { 5.0 } else { 0.1 });
            trace.record("innovation", t, 0.2);
        }
        let a = crate::checker::check(&cat, &trace);
        let b = crate::checker::check(&parsed, &trace);
        assert_eq!(a, b);
        assert!(!a.is_clean());
    }
}
