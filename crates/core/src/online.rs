//! The incremental (online) assertion checker.
//!
//! [`OnlineChecker`] is designed to run *inside* a control loop: per cycle
//! it takes the new signal samples, evaluates every assertion against the
//! sample-and-hold environment, and advances each assertion's temporal
//! state machine. Memory is bounded (one [`crate::expr::Env`] slot per
//! signal, O(1) state per assertion) and no allocation happens on the
//! steady-state path — the property benchmarked by experiment F3 and
//! enforced by the counting-allocator test in `tests/alloc_steady_state.rs`.
//!
//! On construction the catalog is lowered through [`crate::compile`]: each
//! condition becomes a postfix [`CompiledCondition`] over interned signal
//! slots, with an input [`SlotMask`]. Per cycle the checker tracks which
//! slots were updated; `end_cycle` re-evaluates an assertion only when one
//! of its inputs changed (or its verdict depends on the clock, as
//! [`crate::Condition::Fresh`] does), replaying the cached verdict
//! otherwise. All other conditions are pure functions of stored signal
//! state, so the cache preserves verdicts bit-for-bit.
//!
//! The offline checker ([`crate::checker`]) replays recorded traces through
//! this same type, so online and offline verdicts agree by construction.
//!
//! # Telemetry health
//!
//! Real telemetry links drop samples, freeze, and deliver NaN bursts. Each
//! monitor therefore carries a [`HealthState`]: while any input slot is
//! *poisoned* (last sample was non-finite) or *stale* (no update within
//! [`HealthConfig::stale_after`]), the monitor reports
//! [`Eval::Inconclusive`] instead of a stale or garbage verdict, and its
//! temporal episode resets. Sustained degradation quarantines the monitor
//! ([`HealthState::Suspended`]); recovery back to [`HealthState::Active`]
//! is hysteretic — it takes [`HealthConfig::recover_after`] consecutive
//! clean cycles. [`crate::Condition::Fresh`] monitors are exempt from the
//! staleness rule (staleness *is* their subject) but still degrade on
//! poisoned inputs. The default [`HealthConfig`] disables the staleness
//! horizon, so plain [`OnlineChecker::new`] behaviour is unchanged for
//! finite-valued streams.

use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use adassure_obs::{
    AssertionStats, Event as ObsEvent, EventFilter, EventSink, Health as ObsHealth, Histogram,
    Label, MetricsSnapshot, ObsConfig, TransitionGrid, Verdict as ObsVerdict,
};
use adassure_trace::SignalId;

use crate::assertion::{Assertion, Eval, Severity, Temporal};
use crate::compile::{CompiledCondition, SlotMask};
use crate::expr::Env;
use crate::report::CheckReport;
use crate::violation::Violation;

/// Error returned by [`OnlineChecker::begin_cycle`] for an invalid cycle
/// timestamp. The cycle is not opened and the checker state is unchanged.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum CycleError {
    /// The timestamp was not strictly greater than the previous cycle's.
    NonMonotonic {
        /// Timestamp of the last successfully opened cycle.
        last: f64,
        /// The rejected timestamp.
        attempted: f64,
    },
    /// The timestamp was NaN or infinite.
    NonFinite {
        /// The rejected timestamp.
        attempted: f64,
    },
}

impl fmt::Display for CycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CycleError::NonMonotonic { last, attempted } => write!(
                f,
                "non-monotone cycle timestamp: {attempted} does not advance past {last}"
            ),
            CycleError::NonFinite { attempted } => {
                write!(f, "non-finite cycle timestamp: {attempted}")
            }
        }
    }
}

impl std::error::Error for CycleError {}

/// Telemetry health of one monitor (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// All inputs live and finite; verdicts are trusted.
    Active,
    /// Some inputs dark; carries how many. Verdicts are
    /// [`Eval::Inconclusive`].
    Degraded(u32),
    /// Degraded for at least [`HealthConfig::quarantine_after`] consecutive
    /// cycles; stays suspended until the hysteretic recovery completes.
    Suspended,
}

/// Parameters of the telemetry-health layer.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HealthConfig {
    /// An input is considered dark once no update arrived for this long
    /// (s). The default is infinite: staleness degradation off, matching
    /// the pre-health checker on sparse but well-formed streams.
    pub stale_after: f64,
    /// Consecutive degraded cycles before a monitor is quarantined.
    pub quarantine_after: u32,
    /// Consecutive clean cycles before a degraded or suspended monitor
    /// returns to [`HealthState::Active`].
    pub recover_after: u32,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            stale_after: f64::INFINITY,
            quarantine_after: 100,
            recover_after: 25,
        }
    }
}

/// One assertion's compiled, immutable evaluation plan: the condition
/// lowered to postfix ops over interned slots, its input mask, and the
/// derived flags the monitor loop consults every cycle. Owned by a
/// [`CheckerPlan`] and shared read-only by every checker built from it.
#[derive(Debug)]
pub struct MonitorPlan {
    assertion: Assertion,
    /// The condition lowered to postfix ops over interned slots.
    condition: CompiledCondition,
    /// Slots the condition reads; intersected with the cycle's dirty mask.
    inputs: SlotMask,
    /// The same input slots as a dense list, for the per-cycle health scan.
    input_slots: Box<[u32]>,
    /// `Fresh` conditions monitor staleness themselves; the health layer's
    /// staleness rule would shadow them, so they are exempt from it.
    staleness_exempt: bool,
    /// Assertion id as an inline label, so events carry no heap strings.
    label: Label,
}

impl MonitorPlan {
    /// The assertion this plan was compiled from.
    pub fn assertion(&self) -> &Assertion {
        &self.assertion
    }
}

/// The compiled, shareable half of an [`OnlineChecker`]: the interned
/// signal table (as a prototype [`Env`]) plus every assertion's
/// [`MonitorPlan`].
///
/// Compiling a catalog is the expensive part of checker construction —
/// lowering conditions to postfix programs and interning signal names.
/// A fleet monitoring thousands of streams against one catalog compiles
/// the plan **once**, wraps it in an [`Arc`], and stamps out per-stream
/// checkers with [`OnlineChecker::from_plan`]; each checker then carries
/// only its own mutable state (sample-and-hold `Env`, health machines,
/// verdict caches). The plan is `Send + Sync` and never mutated after
/// compilation, so sharing is free of synchronisation.
#[derive(Debug)]
pub struct CheckerPlan {
    /// Prototype environment: the interned table with empty signal state.
    /// Each checker clones it, so slot indices agree across all streams.
    env_proto: Env,
    monitors: Vec<MonitorPlan>,
    /// Deepest evaluation stack in the catalog, so checkers pre-size their
    /// scratch stack and never allocate on the steady-state path.
    max_stack: usize,
    /// Width of the interned table, for dirty masks and poison tables.
    width: usize,
}

impl CheckerPlan {
    /// Compiles an assertion catalog into a shareable plan.
    pub fn compile(catalog: impl IntoIterator<Item = Assertion>) -> Self {
        let mut env = Env::new();
        let mut monitors: Vec<MonitorPlan> = catalog
            .into_iter()
            .map(|assertion| {
                let condition = CompiledCondition::compile(&assertion.condition, &mut env);
                // `time_dependent` is true exactly for `Fresh` conditions —
                // the ones whose subject is staleness itself.
                let staleness_exempt = condition.time_dependent();
                let label = Label::new(assertion.id.as_str());
                MonitorPlan {
                    assertion,
                    condition,
                    inputs: SlotMask::with_capacity(0),
                    input_slots: Box::new([]),
                    staleness_exempt,
                    label,
                }
            })
            .collect();
        // Input masks need the final table width (compiling a later
        // assertion can intern more slots), so size them in a second pass.
        let width = env.table().len();
        let mut max_stack = 0;
        for monitor in &mut monitors {
            let mut mask = SlotMask::with_capacity(width);
            monitor.condition.mark_inputs(&mut mask);
            monitor.input_slots = mask.iter().collect();
            monitor.inputs = mask;
            max_stack = max_stack.max(monitor.condition.max_stack());
        }
        CheckerPlan {
            env_proto: env,
            monitors,
            max_stack,
            width,
        }
    }

    /// Number of assertions in the plan.
    pub fn assertion_count(&self) -> usize {
        self.monitors.len()
    }

    /// The per-assertion plans, in catalog order.
    pub fn monitors(&self) -> &[MonitorPlan] {
        &self.monitors
    }
}

/// Per-stream mutable state of one monitor — everything that changes as
/// cycles close, parallel to the plan's [`MonitorPlan`] list.
#[derive(Debug, Clone)]
struct MonitorRt {
    health: HealthState,
    degraded_streak: u32,
    clean_streak: u32,
    /// Verdict of the last evaluation, replayed while no input changes.
    cached: Option<Eval>,
    episode_start: Option<f64>,
    alarmed_this_episode: bool,
    ever_healthy: bool,
    saw_first_sample: bool,
    /// Index into the violation list of this episode's alarm, so recovery
    /// can be stamped when the condition heals.
    open_violation: Option<usize>,
    /// Verdict of the previous cycle, for flip counting/events.
    last_verdict: ObsVerdict,
}

impl MonitorRt {
    fn new() -> Self {
        MonitorRt {
            health: HealthState::Active,
            degraded_streak: 0,
            clean_streak: 0,
            cached: None,
            episode_start: None,
            alarmed_this_episode: false,
            ever_healthy: false,
            saw_first_sample: false,
            open_violation: None,
            last_verdict: ObsVerdict::Unknown,
        }
    }
}

/// Plain-data snapshot of one signal slot's sample-and-hold state, as
/// stored inside a [`CheckerState`]. Slot order follows the plan's
/// interned table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SignalSnapshot {
    /// Whether the slot has received at least one finite sample.
    pub seen: bool,
    /// Timestamp of the newest sample.
    pub time: f64,
    /// Newest (finite) value.
    pub value: f64,
    /// `(delta, dt)` of the last two distinct-time updates.
    pub last_step: Option<(f64, f64)>,
}

/// Plain-data snapshot of one monitor's mutable state (health machine,
/// verdict cache, episode bookkeeping), parallel to the plan's monitor
/// list.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonitorSnapshot {
    /// Telemetry health of the monitor.
    pub health: HealthState,
    /// Consecutive degraded cycles (drives quarantine).
    pub degraded_streak: u32,
    /// Consecutive clean cycles (drives hysteretic recovery).
    pub clean_streak: u32,
    /// Verdict of the last evaluation, replayed while no input changes.
    pub cached: Option<Eval>,
    /// Onset time of the current violation episode, if one is open.
    pub episode_start: Option<f64>,
    /// Whether the current episode has already alarmed.
    pub alarmed_this_episode: bool,
    /// Whether the condition has ever evaluated healthy.
    pub ever_healthy: bool,
    /// Whether any evaluation (healthy or violated) has happened.
    pub saw_first_sample: bool,
    /// Index into the violation list of this episode's alarm.
    pub open_violation: Option<u64>,
    /// Verdict of the previous cycle, for flip counting.
    pub last_verdict: ObsVerdict,
}

/// The complete serializable mutable state of an [`OnlineChecker`],
/// captured between cycles by [`OnlineChecker::save_state`] and replayed
/// into a fresh checker by [`OnlineChecker::restore`]. All fields are
/// plain data; the compiled plan itself is *not* part of the state — the
/// restore side must supply an identical plan (same catalog, same interned
/// table), which callers validate via assertion ids.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckerState {
    /// The environment clock at capture time.
    pub now: f64,
    /// Per-slot sample-and-hold state for every plan slot, in slot order.
    pub signals: Vec<SignalSnapshot>,
    /// Per-monitor mutable state, in catalog order.
    pub monitors: Vec<MonitorSnapshot>,
    /// Per-slot poison flags, in slot order.
    pub poisoned: Vec<bool>,
    /// Monitor-cycles that produced [`Eval::Inconclusive`].
    pub inconclusive_cycles: u64,
    /// Timestamp of the last opened cycle (monotonicity fence).
    pub last_cycle: Option<f64>,
    /// Violations raised so far, in detection order.
    pub violations: Vec<Violation>,
    /// Per-assertion observability counters, in catalog order.
    pub stats: Vec<AssertionStats>,
    /// Health-transition counts across all monitors.
    pub health_grid: [[u64; 3]; 3],
    /// Wall-clock evaluation latency histogram (carried for counter
    /// continuity; never part of deterministic summaries).
    pub eval_ns: Histogram,
    /// Cycles closed so far.
    pub cycles: u64,
    /// Events that passed the filter so far.
    pub events_emitted: u64,
    /// Run id stamped on emitted events.
    pub run_id: u64,
    /// Whether the RunStart event has been emitted.
    pub started: bool,
}

/// Error returned by [`OnlineChecker::restore`] when a [`CheckerState`]
/// does not fit the supplied plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RestoreError {
    /// What did not line up between the state and the plan.
    pub message: String,
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "checker state does not fit the plan: {}", self.message)
    }
}

impl std::error::Error for RestoreError {}

/// The incremental checker.
///
/// # Example
///
/// ```
/// use adassure_core::{Assertion, Condition, OnlineChecker, Severity, SignalExpr, Temporal};
///
/// let a = Assertion::new(
///     "A1",
///     "bounded cross-track error",
///     Severity::Critical,
///     Condition::AtMost { expr: SignalExpr::signal("xtrack_err").abs(), limit: 1.0 },
/// );
/// let mut checker = OnlineChecker::new([a]);
/// checker.begin_cycle(0.0).unwrap();
/// checker.update("xtrack_err", 0.2);
/// assert_eq!(checker.end_cycle(), 0);
/// checker.begin_cycle(0.01).unwrap();
/// checker.update("xtrack_err", 2.0);
/// assert_eq!(checker.end_cycle(), 1);
/// ```
#[derive(Debug)]
pub struct OnlineChecker {
    /// The shared compiled plan (catalog, conditions, interned table).
    plan: Arc<CheckerPlan>,
    env: Env,
    /// Per-monitor mutable state, parallel to `plan.monitors`.
    monitors: Vec<MonitorRt>,
    /// Slots updated since the last `end_cycle`.
    dirty: SlotMask,
    /// Per-slot poison flag: true while the slot's latest sample was
    /// non-finite (the sample-and-hold value in `env` stays the last good
    /// one).
    poisoned: Box<[bool]>,
    health_config: HealthConfig,
    /// Monitor-cycles that produced [`Eval::Inconclusive`].
    inconclusive_cycles: u64,
    /// Timestamp of the last successfully opened cycle, enforcing
    /// monotonicity.
    last_cycle: Option<f64>,
    /// Shared scratch stack for compiled-expression evaluation, sized to
    /// the deepest expression in the catalog so evaluation never allocates.
    stack: Vec<f64>,
    violations: Vec<Violation>,
    cycle_open: bool,
    /// Per-assertion observability counters, parallel to `monitors`.
    /// Allocated once at construction; bumped in place afterwards.
    stats: Box<[AssertionStats]>,
    /// Health-state transitions across all monitors.
    health_grid: TransitionGrid,
    /// Wall-clock `end_cycle` latency, sampled every `timing_mask + 1`
    /// cycles. Excluded from deterministic summaries.
    eval_ns: Histogram,
    /// Cycles closed so far.
    cycles: u64,
    /// `cycle & timing_mask == 0` → take a wall-clock timing sample.
    timing_mask: u64,
    /// Event destination; `None` keeps observability down to counters.
    sink: Option<Box<dyn EventSink>>,
    /// Severity/sampling filter applied before the sink.
    filter: EventFilter,
    /// Events that passed the filter.
    events_emitted: u64,
    /// Run id stamped on emitted events.
    run_id: u64,
    /// Whether the RunStart event has been emitted.
    started: bool,
}

impl OnlineChecker {
    /// Creates a checker over an assertion catalog, compiling it into the
    /// interned evaluation plan. Uses the default [`HealthConfig`] (no
    /// staleness horizon).
    pub fn new(catalog: impl IntoIterator<Item = Assertion>) -> Self {
        OnlineChecker::with_health(catalog, HealthConfig::default())
    }

    /// Creates a checker with an explicit telemetry-health configuration.
    pub fn with_health(
        catalog: impl IntoIterator<Item = Assertion>,
        health_config: HealthConfig,
    ) -> Self {
        OnlineChecker::from_plan(Arc::new(CheckerPlan::compile(catalog)), health_config)
    }

    /// Creates a checker over an already-compiled shared plan.
    ///
    /// This is the fleet path: compile the catalog once with
    /// [`CheckerPlan::compile`], then stamp out one checker per stream.
    /// Construction clones the plan's prototype environment (empty signal
    /// state, shared interned table) and allocates only the per-stream
    /// state; no compilation or interning happens here.
    pub fn from_plan(plan: Arc<CheckerPlan>, health_config: HealthConfig) -> Self {
        let env = plan.env_proto.clone();
        let monitors = vec![MonitorRt::new(); plan.monitors.len()];
        let stats = plan
            .monitors
            .iter()
            .map(|m| AssertionStats::new(m.assertion.id.as_str()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        let width = plan.width;
        let max_stack = plan.max_stack;
        OnlineChecker {
            plan,
            env,
            monitors,
            dirty: SlotMask::with_capacity(width),
            poisoned: vec![false; width].into_boxed_slice(),
            health_config,
            inconclusive_cycles: 0,
            last_cycle: None,
            stack: Vec::with_capacity(max_stack),
            violations: Vec::new(),
            cycle_open: false,
            stats,
            health_grid: TransitionGrid::new(),
            eval_ns: Histogram::nanos(),
            cycles: 0,
            timing_mask: ObsConfig::disabled().timing_mask(),
            sink: None,
            filter: EventFilter::none(),
            events_emitted: 0,
            run_id: 0,
            started: false,
        }
    }

    /// Creates a checker with health *and* observability configuration:
    /// events that pass `obs.filter` go to `sink` (dropped entirely when
    /// `obs.events` is off), and wall-clock timing follows
    /// `obs.timing_stride`.
    pub fn with_observability(
        catalog: impl IntoIterator<Item = Assertion>,
        health_config: HealthConfig,
        obs: &ObsConfig,
        sink: Box<dyn EventSink>,
    ) -> Self {
        let mut checker = OnlineChecker::with_health(catalog, health_config);
        checker.set_event_sink(obs, sink);
        checker
    }

    /// Attaches (or, with `obs.events` off, detaches) the event sink and
    /// adopts `obs`'s filter and timing stride. Call before the first
    /// cycle so the `run_start` event is not lost.
    pub fn set_event_sink(&mut self, obs: &ObsConfig, sink: Box<dyn EventSink>) {
        self.timing_mask = obs.timing_mask();
        self.filter = obs.filter.clone();
        self.sink = obs.events.then_some(sink);
    }

    /// Stamps `run` on every subsequently emitted event (campaign cells
    /// use their cell index).
    pub fn set_run_id(&mut self, run: u64) {
        self.run_id = run;
    }

    /// Number of monitored assertions.
    pub fn assertion_count(&self) -> usize {
        self.monitors.len()
    }

    /// The shared compiled plan this checker runs on. Clone the `Arc` to
    /// stamp out further checkers over the same catalog.
    pub fn plan(&self) -> &Arc<CheckerPlan> {
        &self.plan
    }

    /// Opens a new control cycle at time `t`. Call before the cycle's
    /// [`OnlineChecker::update`]s.
    ///
    /// # Errors
    ///
    /// Rejects a timestamp that is NaN/infinite or does not strictly
    /// advance past the previous cycle's; the cycle is not opened.
    pub fn begin_cycle(&mut self, t: f64) -> Result<(), CycleError> {
        if !t.is_finite() {
            return Err(CycleError::NonFinite { attempted: t });
        }
        if let Some(last) = self.last_cycle {
            if t <= last {
                return Err(CycleError::NonMonotonic { last, attempted: t });
            }
        }
        self.last_cycle = Some(t);
        self.env.set_time(t);
        self.cycle_open = true;
        if !self.started {
            self.started = true;
            let ev = ObsEvent::RunStart {
                run: self.run_id,
                t,
            };
            emit_to(
                &mut self.sink,
                &mut self.filter,
                &mut self.events_emitted,
                ev,
            );
        }
        Ok(())
    }

    /// Ingests one new signal sample for the open cycle.
    ///
    /// A non-finite value never enters the sample-and-hold state: the slot
    /// keeps its last good value and is *poisoned* — every monitor reading
    /// it reports [`Eval::Inconclusive`] — until a finite sample arrives.
    #[inline]
    pub fn update(&mut self, signal: impl Into<SignalId>, value: f64) {
        debug_assert!(self.cycle_open, "update outside begin_cycle/end_cycle");
        let signal = signal.into();
        let slot = self.env.resolve(&signal);
        if value.is_finite() {
            self.env.update_slot(slot, value);
            if let Some(p) = self.poisoned.get_mut(slot as usize) {
                *p = false;
            }
        } else if let Some(p) = self.poisoned.get_mut(slot as usize) {
            // Slots beyond the poison table were first seen after
            // compilation; no assertion reads them, same as the mask rule.
            *p = true;
        }
        // Slots beyond the mask were first seen after compilation, so no
        // assertion can read them; `set` ignores them.
        self.dirty.set(slot);
    }

    /// Closes the cycle: evaluates every assertion and advances temporal
    /// state. Returns the number of *new* violations raised this cycle.
    pub fn end_cycle(&mut self) -> usize {
        let t0 = (self.cycles & self.timing_mask == 0).then(Instant::now);
        // Destructure for disjoint field borrows: the monitor loop mutates
        // `monitors`/`stats` while emitting through `sink`.
        let OnlineChecker {
            plan,
            env,
            monitors,
            dirty,
            poisoned,
            health_config,
            inconclusive_cycles,
            stack,
            violations,
            stats,
            health_grid,
            sink,
            filter,
            events_emitted,
            run_id,
            cycles,
            ..
        } = self;
        let plan = &**plan;
        let t = env.now();
        let before = violations.len();
        for ((mp, monitor), stat) in plan
            .monitors
            .iter()
            .zip(monitors.iter_mut())
            .zip(stats.iter_mut())
        {
            if t < mp.assertion.grace {
                continue;
            }
            let prev_health = obs_health(monitor.health);
            // Health pass: count inputs that are poisoned or (unless the
            // condition monitors staleness itself) dark past the horizon.
            // Slots never seen stay neutral — that is the existing Unknown
            // start-up semantics, not a telemetry fault.
            let mut missing = 0u32;
            for &slot in mp.input_slots.iter() {
                let is_poisoned = poisoned.get(slot as usize).copied().unwrap_or(false);
                let stale = !mp.staleness_exempt
                    && env
                        .age_at(slot)
                        .is_some_and(|age| age > health_config.stale_after);
                if is_poisoned || stale {
                    missing += 1;
                }
            }
            let eval = if missing > 0 {
                monitor.clean_streak = 0;
                monitor.degraded_streak = monitor.degraded_streak.saturating_add(1);
                monitor.health = if monitor.degraded_streak >= health_config.quarantine_after {
                    HealthState::Suspended
                } else {
                    HealthState::Degraded(missing)
                };
                // The held verdict was computed from data now known bad.
                monitor.cached = None;
                Eval::Inconclusive
            } else {
                monitor.degraded_streak = 0;
                if monitor.health != HealthState::Active {
                    monitor.clean_streak = monitor.clean_streak.saturating_add(1);
                    if monitor.clean_streak >= health_config.recover_after {
                        monitor.health = HealthState::Active;
                        monitor.clean_streak = 0;
                    }
                }
                if monitor.health == HealthState::Active {
                    if mp.condition.time_dependent()
                        || monitor.cached.is_none()
                        || mp.inputs.intersects(dirty)
                    {
                        let eval = mp.condition.eval(env, stack);
                        monitor.cached = Some(eval);
                        eval
                    } else {
                        // No input changed and the condition ignores the
                        // clock: the verdict is unchanged by construction.
                        monitor.cached.unwrap_or(Eval::Unknown)
                    }
                } else {
                    // Inputs are clean again but the hysteresis window has
                    // not elapsed: keep quarantining.
                    Eval::Inconclusive
                }
            };
            let new_health = obs_health(monitor.health);
            if new_health != prev_health {
                health_grid.record(prev_health.index(), new_health.index());
                let ev = ObsEvent::HealthTransition {
                    run: *run_id,
                    t,
                    assertion: mp.label,
                    from: prev_health,
                    to: new_health,
                };
                emit_to(sink, filter, events_emitted, ev);
            }
            let verdict = obs_verdict(eval);
            stat.verdicts.record(verdict);
            if verdict != monitor.last_verdict {
                stat.flips += 1;
                let ev = ObsEvent::VerdictFlip {
                    run: *run_id,
                    t,
                    assertion: mp.label,
                    from: monitor.last_verdict,
                    to: verdict,
                };
                emit_to(sink, filter, events_emitted, ev);
                monitor.last_verdict = verdict;
            }
            match eval {
                Eval::Unknown => {
                    // Not enough data yet: treat as neutral, reset episodes.
                    monitor.episode_start = None;
                    monitor.alarmed_this_episode = false;
                    monitor.open_violation = None;
                }
                Eval::Inconclusive => {
                    // Telemetry went dark: the verdict cannot be trusted
                    // either way. Neutral like Unknown — reset the episode,
                    // never stamp a recovery on data we cannot see.
                    *inconclusive_cycles += 1;
                    monitor.episode_start = None;
                    monitor.alarmed_this_episode = false;
                    monitor.open_violation = None;
                }
                Eval::Healthy => {
                    if let Some(idx) = monitor.open_violation.take() {
                        violations[idx].recovered = Some(t);
                    }
                    monitor.episode_start = None;
                    monitor.alarmed_this_episode = false;
                    monitor.ever_healthy = true;
                    monitor.saw_first_sample = true;
                }
                Eval::Violated(value) => {
                    monitor.saw_first_sample = true;
                    let onset = *monitor.episode_start.get_or_insert(t);
                    let should_alarm = match mp.assertion.temporal {
                        Temporal::Immediate => !monitor.alarmed_this_episode,
                        Temporal::Sustained(d) => !monitor.alarmed_this_episode && t - onset >= d,
                        Temporal::Eventually => false, // judged at finish()
                    };
                    if should_alarm {
                        monitor.alarmed_this_episode = true;
                        monitor.open_violation = Some(violations.len());
                        stat.episodes += 1;
                        violations.push(Violation {
                            assertion: mp.assertion.id.clone(),
                            severity: mp.assertion.severity,
                            onset,
                            detected: t,
                            value,
                            cycle: *cycles,
                            recovered: None,
                        });
                    }
                }
            }
        }
        dirty.clear();
        self.cycle_open = false;
        self.cycles += 1;
        if let Some(t0) = t0 {
            self.eval_ns.record(t0.elapsed().as_nanos() as f64);
        }
        self.violations.len() - before
    }

    /// Violations raised so far, in detection order.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Health of the monitor at `index` (catalog order), if it exists.
    pub fn health(&self, index: usize) -> Option<HealthState> {
        self.monitors.get(index).map(|m| m.health)
    }

    /// Whether every monitor is [`HealthState::Active`].
    pub fn all_active(&self) -> bool {
        self.monitors
            .iter()
            .all(|m| m.health == HealthState::Active)
    }

    /// Monitor-cycles that produced [`Eval::Inconclusive`] so far.
    pub fn inconclusive_cycles(&self) -> u64 {
        self.inconclusive_cycles
    }

    /// Earliest onset among currently *standing* alarms — episodes whose
    /// temporal operator has fired and whose condition has not healed —
    /// at or above `min` severity. `None` when no such alarm stands.
    pub fn open_episode_onset(&self, min: Severity) -> Option<f64> {
        self.plan
            .monitors
            .iter()
            .zip(&self.monitors)
            .filter(|(mp, m)| mp.assertion.severity >= min && m.alarmed_this_episode)
            .filter_map(|(_, m)| m.episode_start)
            .min_by(|a, b| a.total_cmp(b))
    }

    /// Events that passed the filter and reached the sink so far.
    pub fn events_emitted(&self) -> u64 {
        self.events_emitted
    }

    /// The current metrics as a serializable snapshot. Cheap enough to
    /// call between cycles (clones the counters, not the monitors).
    pub fn metrics(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            cycles: self.cycles,
            assertions: self.stats.to_vec(),
            health_transitions: self.health_grid.sparse([
                ObsHealth::Active.name(),
                ObsHealth::Degraded.name(),
                ObsHealth::Suspended.name(),
            ]),
            guard_transitions: Vec::new(),
            events_emitted: self.events_emitted,
            eval_cycle_ns: self.eval_ns.clone(),
            detection_latency_s: Histogram::seconds(),
        }
    }

    /// Finalises the run at `end_time`: judges [`Temporal::Eventually`]
    /// assertions (those that never held raise a violation at `end_time`)
    /// and produces the report.
    pub fn finish(self, end_time: f64) -> CheckReport {
        self.finish_observed(end_time).0
    }

    /// [`OnlineChecker::finish`] plus the observability outputs: emits the
    /// `run_end` event, flushes the sink, and returns the report together
    /// with the final [`MetricsSnapshot`] and the sink (so callers can
    /// drain a `VecSink` or recover a writer).
    pub fn finish_observed(
        mut self,
        end_time: f64,
    ) -> (CheckReport, MetricsSnapshot, Option<Box<dyn EventSink>>) {
        for i in 0..self.monitors.len() {
            let mp = &self.plan.monitors[i];
            let monitor = &self.monitors[i];
            if mp.assertion.temporal == Temporal::Eventually
                && monitor.saw_first_sample
                && !monitor.ever_healthy
            {
                self.stats[i].episodes += 1;
                self.violations.push(Violation {
                    assertion: mp.assertion.id.clone(),
                    severity: mp.assertion.severity,
                    onset: mp.assertion.grace,
                    detected: end_time,
                    value: f64::NAN,
                    cycle: self.cycles,
                    recovered: None,
                });
            }
        }
        if self.started {
            let ev = ObsEvent::RunEnd {
                run: self.run_id,
                t: end_time,
                cycles: self.cycles,
                violations: self.violations.len() as u64,
            };
            emit_to(
                &mut self.sink,
                &mut self.filter,
                &mut self.events_emitted,
                ev,
            );
        }
        let mut sink = self.sink.take();
        if let Some(s) = sink.as_mut() {
            let _ = s.flush();
        }
        let snapshot = self.metrics();
        let mut report = CheckReport::new(self.violations, end_time, self.monitors.len());
        report.inconclusive_cycles = self.inconclusive_cycles;
        (report, snapshot, sink)
    }

    /// Captures the checker's complete mutable state as plain data.
    ///
    /// Must be called *between* cycles (after `end_cycle`, before the next
    /// `begin_cycle`): the dirty mask is clear and no cycle is open, so the
    /// snapshot together with the plan fully determines all future
    /// verdicts. Signal slots interned after compilation (unknown to every
    /// assertion) are not captured — no condition can read them.
    pub fn save_state(&self) -> CheckerState {
        debug_assert!(!self.cycle_open, "save_state inside an open cycle");
        let width = self.plan.width;
        let signals = (0..width as u32)
            .map(|slot| {
                let (seen, time, value, last_step) =
                    self.env.slot_state(slot).unwrap_or((false, 0.0, 0.0, None));
                SignalSnapshot {
                    seen,
                    time,
                    value,
                    last_step,
                }
            })
            .collect();
        let monitors = self
            .monitors
            .iter()
            .map(|m| MonitorSnapshot {
                health: m.health,
                degraded_streak: m.degraded_streak,
                clean_streak: m.clean_streak,
                cached: m.cached,
                episode_start: m.episode_start,
                alarmed_this_episode: m.alarmed_this_episode,
                ever_healthy: m.ever_healthy,
                saw_first_sample: m.saw_first_sample,
                open_violation: m.open_violation.map(|i| i as u64),
                last_verdict: m.last_verdict,
            })
            .collect();
        CheckerState {
            now: self.env.now(),
            signals,
            monitors,
            poisoned: self.poisoned.to_vec(),
            inconclusive_cycles: self.inconclusive_cycles,
            last_cycle: self.last_cycle,
            violations: self.violations.clone(),
            stats: self.stats.to_vec(),
            health_grid: self.health_grid.counts(),
            eval_ns: self.eval_ns.clone(),
            cycles: self.cycles,
            events_emitted: self.events_emitted,
            run_id: self.run_id,
            started: self.started,
        }
    }

    /// Rebuilds a checker from a [`CheckerState`] previously captured with
    /// [`OnlineChecker::save_state`], over the *same* compiled plan. The
    /// restored checker produces bit-identical verdicts to one that ran
    /// uninterrupted.
    ///
    /// No event sink is attached (the fleet path runs sinkless); attach
    /// one afterwards with [`OnlineChecker::set_event_sink`] if needed.
    ///
    /// # Errors
    ///
    /// Rejects states whose dimensions (monitor count, slot width, stats
    /// ids, violation indices) do not match the plan.
    pub fn restore(
        plan: Arc<CheckerPlan>,
        health_config: HealthConfig,
        state: CheckerState,
    ) -> Result<Self, RestoreError> {
        let mismatch = |message: String| RestoreError { message };
        if state.monitors.len() != plan.monitors.len() {
            return Err(mismatch(format!(
                "state has {} monitors, plan has {}",
                state.monitors.len(),
                plan.monitors.len()
            )));
        }
        if state.stats.len() != plan.monitors.len() {
            return Err(mismatch(format!(
                "state has {} stat rows, plan has {} monitors",
                state.stats.len(),
                plan.monitors.len()
            )));
        }
        for (stat, mp) in state.stats.iter().zip(&plan.monitors) {
            if stat.id != mp.assertion.id.as_str() {
                return Err(mismatch(format!(
                    "stat row for assertion {:?} does not match plan assertion {:?}",
                    stat.id,
                    mp.assertion.id.as_str()
                )));
            }
        }
        if state.signals.len() != plan.width {
            return Err(mismatch(format!(
                "state has {} signal slots, plan width is {}",
                state.signals.len(),
                plan.width
            )));
        }
        if state.poisoned.len() != plan.width {
            return Err(mismatch(format!(
                "state has {} poison flags, plan width is {}",
                state.poisoned.len(),
                plan.width
            )));
        }
        for m in &state.monitors {
            if let Some(idx) = m.open_violation {
                if idx as usize >= state.violations.len() {
                    return Err(mismatch(format!(
                        "open violation index {idx} out of range ({} violations)",
                        state.violations.len()
                    )));
                }
            }
        }
        let mut checker = OnlineChecker::from_plan(plan, health_config);
        checker.env.set_time(state.now);
        for (slot, s) in state.signals.iter().enumerate() {
            checker
                .env
                .restore_slot_state(slot as u32, s.seen, s.time, s.value, s.last_step);
        }
        for (rt, m) in checker.monitors.iter_mut().zip(&state.monitors) {
            *rt = MonitorRt {
                health: m.health,
                degraded_streak: m.degraded_streak,
                clean_streak: m.clean_streak,
                cached: m.cached,
                episode_start: m.episode_start,
                alarmed_this_episode: m.alarmed_this_episode,
                ever_healthy: m.ever_healthy,
                saw_first_sample: m.saw_first_sample,
                open_violation: m.open_violation.map(|i| i as usize),
                last_verdict: m.last_verdict,
            };
        }
        checker.poisoned = state.poisoned.into_boxed_slice();
        checker.inconclusive_cycles = state.inconclusive_cycles;
        checker.last_cycle = state.last_cycle;
        checker.violations = state.violations;
        checker.stats = state.stats.into_boxed_slice();
        checker.health_grid = TransitionGrid::from_counts(state.health_grid);
        checker.eval_ns = state.eval_ns;
        checker.cycles = state.cycles;
        checker.events_emitted = state.events_emitted;
        checker.run_id = state.run_id;
        checker.started = state.started;
        Ok(checker)
    }
}

/// Forwards `ev` to the sink if one is attached and the filter accepts it.
/// A free function so the monitor loop can call it while holding disjoint
/// borrows of the checker's fields.
#[inline]
fn emit_to(
    sink: &mut Option<Box<dyn EventSink>>,
    filter: &mut EventFilter,
    events_emitted: &mut u64,
    ev: ObsEvent,
) {
    if let Some(sink) = sink {
        if filter.accepts(&ev) {
            sink.emit(ev);
            *events_emitted += 1;
        }
    }
}

/// Projects the counted [`HealthState`] onto the 3-state observability
/// enum (degraded levels collapse, so `Degraded(1) → Degraded(2)` is not a
/// transition).
fn obs_health(h: HealthState) -> ObsHealth {
    match h {
        HealthState::Active => ObsHealth::Active,
        HealthState::Degraded(_) => ObsHealth::Degraded,
        HealthState::Suspended => ObsHealth::Suspended,
    }
}

/// Projects an [`Eval`] onto the observability verdict enum.
fn obs_verdict(eval: Eval) -> ObsVerdict {
    match eval {
        Eval::Unknown => ObsVerdict::Unknown,
        Eval::Healthy => ObsVerdict::Pass,
        Eval::Inconclusive => ObsVerdict::Inconclusive,
        Eval::Violated(_) => ObsVerdict::Violated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assertion::{Condition, Severity};
    use crate::expr::SignalExpr;

    fn bound_assertion(limit: f64) -> Assertion {
        Assertion::new(
            "A1",
            "bounded x",
            Severity::Critical,
            Condition::AtMost {
                expr: SignalExpr::signal("x").abs(),
                limit,
            },
        )
    }

    fn drive(checker: &mut OnlineChecker, samples: &[(f64, f64)]) -> usize {
        let mut total = 0;
        for &(t, v) in samples {
            checker.begin_cycle(t).unwrap();
            checker.update("x", v);
            total += checker.end_cycle();
        }
        total
    }

    #[test]
    fn immediate_fires_once_per_episode() {
        let mut c = OnlineChecker::new([bound_assertion(1.0)]);
        let n = drive(
            &mut c,
            &[(0.0, 0.5), (0.1, 2.0), (0.2, 2.5), (0.3, 0.1), (0.4, 3.0)],
        );
        assert_eq!(n, 2, "two episodes, one alarm each");
        assert_eq!(c.violations()[0].onset, 0.1);
        assert_eq!(c.violations()[1].onset, 0.4);
    }

    #[test]
    fn sustained_debounces_glitches() {
        let a = bound_assertion(1.0).with_temporal(Temporal::Sustained(0.25));
        let mut c = OnlineChecker::new([a]);
        // A 0.1 s glitch must not alarm.
        let n = drive(&mut c, &[(0.0, 2.0), (0.1, 0.0), (0.2, 0.0)]);
        assert_eq!(n, 0);
        // A sustained excursion must.
        let n = drive(&mut c, &[(0.3, 2.0), (0.4, 2.0), (0.5, 2.0), (0.6, 2.0)]);
        assert_eq!(n, 1);
        let v = &c.violations()[0];
        assert_eq!(v.onset, 0.3);
        assert!((v.detected - 0.55).abs() < 0.06, "{}", v.detected);
    }

    #[test]
    fn grace_period_masks_startup() {
        let a = bound_assertion(1.0).with_grace(0.5);
        let mut c = OnlineChecker::new([a]);
        let n = drive(&mut c, &[(0.0, 9.0), (0.4, 9.0)]);
        assert_eq!(n, 0, "violations inside grace are ignored");
        let n = drive(&mut c, &[(0.6, 9.0)]);
        assert_eq!(n, 1);
    }

    #[test]
    fn unknown_signals_do_not_fire() {
        let mut c = OnlineChecker::new([bound_assertion(1.0)]);
        c.begin_cycle(0.0).unwrap();
        c.update("unrelated", 99.0);
        assert_eq!(c.end_cycle(), 0);
    }

    #[test]
    fn eventually_judged_at_finish() {
        let goal = Assertion::new(
            "A12",
            "goal reached",
            Severity::Warning,
            Condition::AtLeast {
                expr: SignalExpr::signal("progress"),
                limit: 100.0,
            },
        )
        .with_temporal(Temporal::Eventually);

        // Run that reaches the goal: clean.
        let mut c = OnlineChecker::new([goal.clone()]);
        drive_progress(&mut c, &[(0.0, 10.0), (1.0, 120.0)]);
        let report = c.finish(2.0);
        assert!(report.is_clean());

        // Run that never reaches it: violation at end time.
        let mut c = OnlineChecker::new([goal.clone()]);
        drive_progress(&mut c, &[(0.0, 10.0), (1.0, 50.0)]);
        let report = c.finish(2.0);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].detected, 2.0);

        // Run where the signal never appears: neutral, no violation.
        let c = OnlineChecker::new([goal]);
        let report = c.finish(2.0);
        assert!(report.is_clean(), "missing signal must stay neutral");
    }

    fn drive_progress(checker: &mut OnlineChecker, samples: &[(f64, f64)]) {
        for &(t, v) in samples {
            checker.begin_cycle(t).unwrap();
            checker.update("progress", v);
            checker.end_cycle();
        }
    }

    #[test]
    fn fresh_condition_fires_on_staleness() {
        let a = Assertion::new(
            "A13",
            "gnss fresh",
            Severity::Critical,
            Condition::Fresh {
                signal: "gnss_x".into(),
                max_age: 0.3,
            },
        );
        let mut c = OnlineChecker::new([a]);
        c.begin_cycle(0.0).unwrap();
        c.update("gnss_x", 1.0);
        assert_eq!(c.end_cycle(), 0);
        // Clock advances without updates; other signals keep cycles coming.
        let mut fired = 0;
        for i in 1..10 {
            c.begin_cycle(f64::from(i) * 0.1).unwrap();
            c.update("other", 0.0);
            fired += c.end_cycle();
        }
        assert_eq!(fired, 1, "stale fix alarms exactly once per episode");
        assert!(c.violations()[0].detected > 0.3);
    }

    #[test]
    fn multiple_assertions_are_independent() {
        let a1 = bound_assertion(1.0);
        let a2 = Assertion::new(
            "A2",
            "y bounded",
            Severity::Warning,
            Condition::AtMost {
                expr: SignalExpr::signal("y").abs(),
                limit: 5.0,
            },
        );
        let mut c = OnlineChecker::new([a1, a2]);
        c.begin_cycle(0.0).unwrap();
        c.update("x", 3.0);
        c.update("y", 2.0);
        assert_eq!(c.end_cycle(), 1, "only A1 fires");
        assert_eq!(c.violations()[0].assertion.as_str(), "A1");
    }

    #[test]
    fn recovery_is_stamped_when_the_condition_heals() {
        let mut c = OnlineChecker::new([bound_assertion(1.0)]);
        drive(&mut c, &[(0.0, 5.0), (0.1, 5.0), (0.2, 0.0), (0.3, 5.0)]);
        let violations = c.violations();
        assert_eq!(violations.len(), 2);
        assert_eq!(violations[0].recovered, Some(0.2));
        assert_eq!(violations[1].recovered, None, "second episode still open");
        assert_eq!(violations[0].episode_duration(), Some(0.2));
    }

    #[test]
    fn report_carries_counts() {
        let mut c = OnlineChecker::new([bound_assertion(1.0)]);
        drive(&mut c, &[(0.0, 5.0)]);
        let report = c.finish(1.0);
        assert_eq!(report.assertions_checked, 1);
        assert_eq!(report.end_time, 1.0);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.inconclusive_cycles, 0);
    }

    #[test]
    fn begin_cycle_rejects_bad_timestamps() {
        let mut c = OnlineChecker::new([bound_assertion(1.0)]);
        c.begin_cycle(0.5).unwrap();
        c.update("x", 0.0);
        c.end_cycle();
        // Regression: these used to be accepted silently, corrupting ages
        // and derivatives downstream.
        assert_eq!(
            c.begin_cycle(0.5),
            Err(CycleError::NonMonotonic {
                last: 0.5,
                attempted: 0.5
            })
        );
        assert_eq!(
            c.begin_cycle(0.2),
            Err(CycleError::NonMonotonic {
                last: 0.5,
                attempted: 0.2
            })
        );
        assert!(matches!(
            c.begin_cycle(f64::NAN),
            Err(CycleError::NonFinite { .. })
        ));
        assert!(matches!(
            c.begin_cycle(f64::INFINITY),
            Err(CycleError::NonFinite { .. })
        ));
        // A rejected timestamp leaves the checker usable.
        c.begin_cycle(0.6).unwrap();
        c.update("x", 5.0);
        assert_eq!(c.end_cycle(), 1);
    }

    #[test]
    fn nan_sample_poisons_and_goes_inconclusive() {
        let cfg = HealthConfig {
            recover_after: 2,
            ..HealthConfig::default()
        };
        let mut c = OnlineChecker::with_health([bound_assertion(1.0)], cfg);
        c.begin_cycle(0.0).unwrap();
        c.update("x", 5.0);
        assert_eq!(c.end_cycle(), 1, "finite excursion alarms");
        // A NaN burst must not produce garbage verdicts or heal the episode.
        for i in 1..=3 {
            c.begin_cycle(f64::from(i) * 0.1).unwrap();
            c.update("x", f64::NAN);
            assert_eq!(c.end_cycle(), 0);
        }
        assert_eq!(c.health(0), Some(HealthState::Degraded(1)));
        assert_eq!(c.inconclusive_cycles(), 3);
        assert_eq!(c.violations()[0].recovered, None, "no recovery on NaN");
        // Finite samples again: hysteresis holds for `recover_after` cycles,
        // then verdicts resume.
        c.begin_cycle(0.4).unwrap();
        c.update("x", 5.0);
        assert_eq!(c.end_cycle(), 0, "first clean cycle still inconclusive");
        c.begin_cycle(0.5).unwrap();
        c.update("x", 5.0);
        assert_eq!(c.end_cycle(), 1, "recovered monitor alarms afresh");
        assert_eq!(c.health(0), Some(HealthState::Active));
        let report = c.finish(1.0);
        assert_eq!(report.inconclusive_cycles, 4);
    }

    #[test]
    fn stale_input_degrades_then_suspends() {
        let cfg = HealthConfig {
            stale_after: 0.25,
            quarantine_after: 3,
            recover_after: 2,
        };
        let mut c = OnlineChecker::with_health([bound_assertion(1.0)], cfg);
        c.begin_cycle(0.0).unwrap();
        c.update("x", 0.0);
        c.end_cycle();
        assert!(c.all_active());
        // The signal goes dark while cycles keep coming.
        let mut fired = 0;
        for i in 1..10 {
            c.begin_cycle(f64::from(i) * 0.1).unwrap();
            c.update("other", 0.0);
            fired += c.end_cycle();
        }
        assert_eq!(fired, 0, "dark input never yields a verdict");
        assert_eq!(c.health(0), Some(HealthState::Suspended));
        assert!(!c.all_active());
        // The signal returns: two clean cycles complete the recovery.
        for i in 10..12 {
            c.begin_cycle(f64::from(i) * 0.1).unwrap();
            c.update("x", 0.0);
            c.end_cycle();
        }
        assert_eq!(c.health(0), Some(HealthState::Active));
    }

    #[test]
    fn fresh_conditions_are_exempt_from_staleness() {
        // A Fresh monitor's subject *is* staleness: a health horizon tighter
        // than its max_age must not mask the alarm behind Inconclusive.
        let a = Assertion::new(
            "A13",
            "gnss fresh",
            Severity::Critical,
            Condition::Fresh {
                signal: "gnss_x".into(),
                max_age: 0.3,
            },
        );
        let cfg = HealthConfig {
            stale_after: 0.2,
            ..HealthConfig::default()
        };
        let mut c = OnlineChecker::with_health([a], cfg);
        c.begin_cycle(0.0).unwrap();
        c.update("gnss_x", 1.0);
        c.end_cycle();
        let mut fired = 0;
        for i in 1..8 {
            c.begin_cycle(f64::from(i) * 0.1).unwrap();
            c.update("other", 0.0);
            fired += c.end_cycle();
        }
        assert_eq!(fired, 1, "staleness alarm fires despite the horizon");
        assert_eq!(c.health(0), Some(HealthState::Active));
    }

    #[test]
    fn health_transitions_are_counted_and_emitted() {
        use adassure_obs::VecSink;

        let cfg = HealthConfig {
            recover_after: 2,
            ..HealthConfig::default()
        };
        let mut c = OnlineChecker::with_observability(
            [bound_assertion(1.0)],
            cfg,
            &ObsConfig::enabled(),
            Box::new(VecSink::default()),
        );
        drive(&mut c, &[(0.0, 0.5)]);
        drive(&mut c, &[(0.1, f64::NAN), (0.2, f64::NAN)]);
        drive(&mut c, &[(0.3, 0.5), (0.4, 0.5), (0.5, 0.5)]);
        let (_, metrics, sink) = c.finish_observed(1.0);
        // active→degraded once, degraded→active once; the Degraded(1)→
        // Degraded(1) cycle is not a transition.
        assert_eq!(metrics.health_transitions.len(), 2);
        assert!(
            metrics.health_transitions.iter().all(|tr| tr.count == 1),
            "{:?}",
            metrics.health_transitions
        );
        let events = sink.unwrap().take_events();
        let health_events: Vec<_> = events
            .iter()
            .filter(|e| matches!(e, ObsEvent::HealthTransition { .. }))
            .collect();
        assert_eq!(health_events.len(), 2);
        assert_eq!(
            metrics.assertions[0].verdicts.inconclusive, 3,
            "two NaN cycles plus one hysteresis cycle"
        );
    }

    #[test]
    fn disabled_observability_still_counts() {
        let mut c = OnlineChecker::new([bound_assertion(1.0)]);
        drive(&mut c, &[(0.0, 0.5), (0.1, 5.0)]);
        let metrics = c.metrics();
        assert_eq!(metrics.cycles, 2);
        assert_eq!(metrics.assertions[0].verdicts.pass, 1);
        assert_eq!(metrics.assertions[0].verdicts.violated, 1);
        assert_eq!(metrics.events_emitted, 0, "no sink, no events");
    }

    #[test]
    fn save_restore_round_trip_is_bit_identical() {
        let catalog = || {
            vec![
                bound_assertion(1.0).with_temporal(Temporal::Sustained(0.15)),
                Assertion::new(
                    "A13",
                    "gnss fresh",
                    Severity::Critical,
                    Condition::Fresh {
                        signal: "gnss_x".into(),
                        max_age: 0.3,
                    },
                ),
            ]
        };
        let cfg = HealthConfig {
            stale_after: 0.5,
            quarantine_after: 3,
            recover_after: 2,
        };
        // Telemetry that walks through degradation, suspension, recovery
        // and a mid-episode sustained excursion.
        let feed: Vec<(f64, Option<f64>, Option<f64>)> = (1..=40)
            .map(|k| {
                let t = 0.1 * k as f64;
                let x = match k % 7 {
                    0 => f64::NAN,
                    1..=3 => 2.0,
                    _ => 0.2,
                };
                let gnss = (k % 3 != 0).then_some(k as f64);
                (t, Some(x), gnss)
            })
            .collect();
        let drive_one = |c: &mut OnlineChecker, (t, x, gnss): (f64, Option<f64>, Option<f64>)| {
            c.begin_cycle(t).unwrap();
            if let Some(x) = x {
                c.update("x", x);
            }
            if let Some(g) = gnss {
                c.update("gnss_x", g);
            }
            c.end_cycle();
        };

        for cut in [1usize, 5, 13, 21, 39] {
            let mut oracle = OnlineChecker::with_health(catalog(), cfg);
            let mut live = OnlineChecker::with_health(catalog(), cfg);
            for &step in &feed[..cut] {
                drive_one(&mut oracle, step);
                drive_one(&mut live, step);
            }
            let state = live.save_state();
            let mut restored =
                OnlineChecker::restore(live.plan().clone(), cfg, state).expect("restore");
            drop(live);
            for &step in &feed[cut..] {
                drive_one(&mut oracle, step);
                drive_one(&mut restored, step);
            }
            let (oracle_report, oracle_metrics, _) = oracle.finish_observed(5.0);
            let (report, metrics, _) = restored.finish_observed(5.0);
            assert_eq!(
                serde_json::to_vec(&report).unwrap(),
                serde_json::to_vec(&oracle_report).unwrap(),
                "report diverged after restore at cut {cut}"
            );
            assert_eq!(
                serde_json::to_vec(&metrics.summary()).unwrap(),
                serde_json::to_vec(&oracle_metrics.summary()).unwrap(),
                "metrics diverged after restore at cut {cut}"
            );
        }
    }

    #[test]
    fn restore_rejects_mismatched_plan() {
        let c = OnlineChecker::new([bound_assertion(1.0)]);
        let state = c.save_state();
        let other = OnlineChecker::new([bound_assertion(1.0), bound_assertion(2.0)]);
        assert!(
            OnlineChecker::restore(other.plan().clone(), HealthConfig::default(), state).is_err()
        );
    }

    #[test]
    fn open_episode_onset_tracks_standing_alarms() {
        let a1 = bound_assertion(1.0); // Critical
        let a2 = Assertion::new(
            "A2",
            "y bounded",
            Severity::Warning,
            Condition::AtMost {
                expr: SignalExpr::signal("y").abs(),
                limit: 1.0,
            },
        );
        let mut c = OnlineChecker::new([a1, a2]);
        c.begin_cycle(0.0).unwrap();
        c.update("x", 0.0);
        c.update("y", 5.0);
        c.end_cycle();
        assert_eq!(c.open_episode_onset(Severity::Critical), None);
        assert_eq!(c.open_episode_onset(Severity::Warning), Some(0.0));
        c.begin_cycle(0.1).unwrap();
        c.update("x", 5.0);
        c.update("y", 0.0);
        c.end_cycle();
        assert_eq!(c.open_episode_onset(Severity::Critical), Some(0.1));
        c.begin_cycle(0.2).unwrap();
        c.update("x", 0.0);
        c.end_cycle();
        assert_eq!(c.open_episode_onset(Severity::Info), None, "all healed");
    }
}
