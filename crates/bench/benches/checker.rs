//! Criterion micro-benchmarks of the assertion checker (experiment F3's
//! microscopic companion): per-cycle online cost, offline trace checking,
//! and expression evaluation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use adassure_bench::{catalog_for, run_clean};
use adassure_control::ControllerKind;
use adassure_core::catalog::{self, CatalogConfig};
use adassure_core::{checker, OnlineChecker, SignalExpr};
use adassure_scenarios::{Scenario, ScenarioKind};
use adassure_trace::SignalId;

fn bench_online_cycle(c: &mut Criterion) {
    let catalog = catalog::build(&CatalogConfig::default().with_goal_distance(300.0));
    let signals: Vec<SignalId> = adassure_trace::well_known::ALL
        .iter()
        .map(SignalId::new)
        .collect();

    c.bench_function("online_checker/100_cycles_16_assertions", |b| {
        b.iter_batched(
            || {
                let mut checker = OnlineChecker::new(catalog.iter().cloned());
                // Warm the environment so every assertion is evaluable.
                checker.begin_cycle(0.0).unwrap();
                for s in &signals {
                    checker.update(s.clone(), 0.1);
                }
                checker.end_cycle();
                checker
            },
            |mut checker| {
                for i in 1..100u32 {
                    let t = f64::from(i) * 0.01;
                    checker.begin_cycle(t).unwrap();
                    for s in &signals {
                        checker.update(s.clone(), 0.1 + f64::from(i) * 1e-4);
                    }
                    checker.end_cycle();
                }
                checker
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_offline_check(c: &mut Criterion) {
    let scenario = Scenario::of_kind(ScenarioKind::Straight).expect("scenario");
    let cat = catalog_for(&scenario);
    let (out, _) = run_clean(&scenario, ControllerKind::PurePursuit, 1, &cat).expect("run");

    c.bench_function("offline_check/75s_trace_16_assertions", |b| {
        b.iter(|| checker::check(std::hint::black_box(&cat), std::hint::black_box(&out.trace)))
    });
}

fn bench_expr_eval(c: &mut Criterion) {
    use adassure_core::expr::Env;
    let expr = SignalExpr::signal("gnss_speed")
        .sub(SignalExpr::signal("wheel_speed"))
        .abs();
    let mut env = Env::new();
    env.set_time(0.0);
    env.update(&SignalId::new("gnss_speed"), 8.2);
    env.update(&SignalId::new("wheel_speed"), 8.0);

    c.bench_function("expr/cross_consistency_eval", |b| {
        b.iter(|| std::hint::black_box(&expr).eval(std::hint::black_box(&env)))
    });
}

criterion_group!(
    benches,
    bench_online_cycle,
    bench_offline_check,
    bench_expr_eval
);
criterion_main!(benches);
