//! Offline checking: replay a recorded trace through the online monitor.
//!
//! Offline and online verdicts agree by construction because this module
//! contains no evaluation logic of its own — it only reconstructs the
//! per-cycle sample stream from a [`Trace`] and feeds it to
//! [`OnlineChecker`].
//!
//! Two replay paths exist, with identical cycle boundaries:
//!
//! * [`for_each_cycle`] sweeps the trace's per-series cursors directly —
//!   no flattening, no sort — and backs [`check`] and [`replay`];
//! * [`events`] + [`Cycles`] materialise a time-sorted event stream for
//!   callers that need one (overhead harnesses, or [`check_events`] to
//!   check one stream against many catalogs without re-sorting).

use adassure_obs::{EventSink, MetricsSnapshot, NullSink, ObsConfig};
use adassure_trace::{SignalId, Trace};

use crate::assertion::Assertion;
use crate::online::{HealthConfig, OnlineChecker};
use crate::report::CheckReport;

/// One flattened trace sample: `(time, signal, value)`.
pub type Event<'t> = (f64, &'t SignalId, f64);

/// The trace's samples flattened into [`Event`]s, sorted by time (ties
/// resolved by signal name, so replay is deterministic).
///
/// No two events share a `(time, signal)` pair — a [`Trace`] rejects
/// duplicate timestamps per signal — so the unstable sort is deterministic.
pub fn events(trace: &Trace) -> Vec<Event<'_>> {
    let mut out: Vec<Event<'_>> = Vec::with_capacity(trace.sample_count());
    for series in trace.iter() {
        for sample in series.samples() {
            out.push((sample.time, series.id(), sample.value));
        }
    }
    out.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(b.1)));
    out
}

/// Iterator over the control cycles of a time-sorted event stream: yields
/// `(time, samples)` for each distinct timestamp, in order.
///
/// This is the single place the per-cycle grouping of a replay is decided;
/// [`check`], [`replay`] and the overhead harnesses all consume it, so
/// their cycle boundaries agree by construction.
#[derive(Debug, Clone)]
pub struct Cycles<'e, 't> {
    rest: &'e [Event<'t>],
}

impl<'e, 't> Cycles<'e, 't> {
    /// Wraps a time-sorted event stream (as produced by [`events`]).
    pub fn new(events: &'e [Event<'t>]) -> Self {
        Cycles { rest: events }
    }
}

impl<'e, 't> Iterator for Cycles<'e, 't> {
    type Item = (f64, &'e [Event<'t>]);

    fn next(&mut self) -> Option<Self::Item> {
        let first = self.rest.first()?;
        let t = first.0;
        let n = self.rest.iter().take_while(|e| e.0 == t).count();
        let (cycle, rest) = self.rest.split_at(n);
        self.rest = rest;
        Some((t, cycle))
    }
}

/// Drives `f` over every cycle of `trace`, merging the per-series sample
/// streams directly: each series is already time-sorted, so the cycles
/// come out of a cursor sweep with no flattening, no sort and no
/// allocation beyond one reusable per-cycle buffer.
///
/// Within a cycle the samples arrive in signal-name order (the series
/// iterate name-sorted), matching the tie order of [`events`] exactly —
/// replays through this sweep and through a sorted event stream are
/// byte-identical.
///
/// Both [`check`] and [`replay`] are thin wrappers over this sweep, so
/// their cycle boundaries agree by construction.
pub fn for_each_cycle(trace: &Trace, mut f: impl FnMut(f64, &[(&SignalId, f64)])) {
    let mut cursors: Vec<(&SignalId, &[adassure_trace::Sample])> =
        trace.iter().map(|s| (s.id(), s.samples())).collect();
    cursors.retain(|(_, samples)| !samples.is_empty());
    let mut cycle: Vec<(&SignalId, f64)> = Vec::with_capacity(cursors.len());
    loop {
        let mut t = f64::INFINITY;
        let mut any = false;
        for (_, samples) in &cursors {
            if let Some(s) = samples.first() {
                any = true;
                if s.time < t {
                    t = s.time;
                }
            }
        }
        if !any {
            break;
        }
        cycle.clear();
        for (id, samples) in &mut cursors {
            if let Some(s) = samples.first() {
                if s.time == t {
                    cycle.push((*id, s.value));
                    *samples = &samples[1..];
                }
            }
        }
        f(t, &cycle);
    }
}

/// Replays `trace` through a fresh [`OnlineChecker`] over `catalog` and
/// returns the report.
///
/// # Example
///
/// ```
/// use adassure_core::catalog::{self, CatalogConfig};
/// use adassure_trace::Trace;
///
/// let trace = Trace::new();
/// let report = adassure_core::checker::check(&catalog::build(&CatalogConfig::default()), &trace);
/// assert!(report.is_clean());
/// ```
pub fn check(catalog: &[Assertion], trace: &Trace) -> CheckReport {
    check_observed(
        catalog,
        trace,
        0,
        &ObsConfig::disabled(),
        Box::new(NullSink),
    )
    .0
}

/// [`check`] with an explicit telemetry-health configuration, for callers
/// (and differential tests) that exercise staleness degradation offline.
pub fn check_with_health(
    catalog: &[Assertion],
    health: HealthConfig,
    trace: &Trace,
) -> CheckReport {
    let mut checker = OnlineChecker::with_health(catalog.iter().cloned(), health);
    for_each_cycle(trace, |t, cycle| {
        checker
            .begin_cycle(t)
            .expect("trace cycles are strictly time-ordered");
        for &(id, value) in cycle {
            checker.update(id.clone(), value);
        }
        checker.end_cycle();
    });
    checker.finish(trace.span().map_or(0.0, |(_, b)| b))
}

/// [`check`] with observability: replays `trace` through a checker whose
/// events (stamped with run id `run`, filtered per `obs`) go to `sink`,
/// and returns the report together with the final metrics and the sink.
///
/// The replayed verdicts are identical to [`check`]'s by construction —
/// observability only *reads* monitor state — which the campaign
/// differential test asserts end to end.
pub fn check_observed(
    catalog: &[Assertion],
    trace: &Trace,
    run: u64,
    obs: &ObsConfig,
    sink: Box<dyn EventSink>,
) -> (CheckReport, MetricsSnapshot, Option<Box<dyn EventSink>>) {
    let mut checker = OnlineChecker::with_observability(
        catalog.iter().cloned(),
        HealthConfig::default(),
        obs,
        sink,
    );
    checker.set_run_id(run);
    for_each_cycle(trace, |t, cycle| {
        // A Trace rejects non-monotone and non-finite times per series, and
        // the sweep merges them in ascending order.
        checker
            .begin_cycle(t)
            .expect("trace cycles are strictly time-ordered");
        for &(id, value) in cycle {
            checker.update(id.clone(), value);
        }
        checker.end_cycle();
    });
    let end = trace.span().map_or(0.0, |(_, b)| b);
    checker.finish_observed(end)
}

/// Checks an already-flattened event stream (from [`events`]) against
/// `catalog`, finalising at `end_time`.
///
/// Splitting this from [`check`] lets callers that check one trace against
/// several catalogs — the ablation studies do — pay the sort once.
pub fn check_events(catalog: &[Assertion], events: &[Event<'_>], end_time: f64) -> CheckReport {
    let mut checker = OnlineChecker::new(catalog.iter().cloned());
    for (t, cycle) in Cycles::new(events) {
        checker
            .begin_cycle(t)
            .expect("event stream cycles are strictly time-ordered");
        for &(_, id, value) in cycle {
            checker.update(id.clone(), value);
        }
        checker.end_cycle();
    }
    checker.finish(end_time)
}

/// Replays `trace` cycle by cycle, invoking `f(t, env)` after each cycle's
/// updates. Used by assertion mining to observe expression values on golden
/// runs with the exact semantics of the online monitor.
pub fn replay(trace: &Trace, mut f: impl FnMut(f64, &crate::expr::Env)) {
    let mut env = crate::expr::Env::new();
    for_each_cycle(trace, |t, cycle| {
        env.set_time(t);
        for &(id, value) in cycle {
            env.update(id, value);
        }
        f(t, &env);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assertion::{Condition, Severity, Temporal};
    use crate::expr::SignalExpr;

    fn bound(limit: f64) -> Assertion {
        Assertion::new(
            "A1",
            "bounded x",
            Severity::Critical,
            Condition::AtMost {
                expr: SignalExpr::signal("x").abs(),
                limit,
            },
        )
    }

    #[test]
    fn events_are_time_sorted_with_stable_ties() {
        let mut trace = Trace::new();
        trace.record("b", 0.0, 1.0);
        trace.record("a", 0.0, 2.0);
        trace.record("a", 0.1, 3.0);
        let ev = events(&trace);
        assert_eq!(ev.len(), 3);
        assert_eq!(ev[0].1.as_str(), "a");
        assert_eq!(ev[1].1.as_str(), "b");
        assert_eq!(ev[2].0, 0.1);
    }

    #[test]
    fn offline_check_detects_excursion() {
        let mut trace = Trace::new();
        for i in 0..100 {
            let t = f64::from(i) * 0.01;
            trace.record("x", t, if t < 0.5 { 0.0 } else { 5.0 });
        }
        let report = check(&[bound(1.0)], &trace);
        assert_eq!(report.violations.len(), 1);
        assert!((report.violations[0].onset - 0.5).abs() < 1e-9);
        assert!((report.end_time - 0.99).abs() < 1e-9);
    }

    #[test]
    fn offline_matches_online_semantics() {
        // Drive the same data both ways and compare.
        let samples: Vec<(f64, f64)> = (0..200)
            .map(|i| {
                let t = f64::from(i) * 0.01;
                (t, if (0.7..1.1).contains(&t) { 9.0 } else { 0.0 })
            })
            .collect();
        let assertion = bound(1.0).with_temporal(Temporal::Sustained(0.2));

        let mut trace = Trace::new();
        for &(t, v) in &samples {
            trace.record("x", t, v);
        }
        let offline = check(std::slice::from_ref(&assertion), &trace);

        let mut online = OnlineChecker::new([assertion]);
        for &(t, v) in &samples {
            online.begin_cycle(t).unwrap();
            online.update("x", v);
            online.end_cycle();
        }
        let online = online.finish(trace.span().unwrap().1);

        assert_eq!(offline, online);
        assert_eq!(offline.violations.len(), 1);
    }

    #[test]
    fn replay_exposes_env_per_cycle() {
        let mut trace = Trace::new();
        trace.record("x", 0.0, 1.0);
        trace.record("x", 0.1, 2.0);
        trace.record("y", 0.1, 5.0);
        let mut seen = Vec::new();
        replay(&trace, |t, env| {
            seen.push((t, env.value(&"x".into()), env.value(&"y".into())));
        });
        assert_eq!(
            seen,
            vec![(0.0, Some(1.0), None), (0.1, Some(2.0), Some(5.0))]
        );
    }

    #[test]
    fn cycles_group_by_distinct_timestamp() {
        let mut trace = Trace::new();
        trace.record("b", 0.0, 1.0);
        trace.record("a", 0.0, 2.0);
        trace.record("a", 0.1, 3.0);
        let ev = events(&trace);
        let cycles: Vec<_> = Cycles::new(&ev).collect();
        assert_eq!(cycles.len(), 2);
        assert_eq!(cycles[0].0, 0.0);
        assert_eq!(cycles[0].1.len(), 2);
        assert_eq!(cycles[1].0, 0.1);
        assert_eq!(cycles[1].1.len(), 1);
        assert_eq!(Cycles::new(&[]).count(), 0);
    }

    #[test]
    fn cycle_sweep_matches_sorted_event_grouping() {
        // Mixed-rate signals: "fast" every cycle, "slow" every third.
        let mut trace = Trace::new();
        for i in 0..30 {
            let t = f64::from(i) * 0.01;
            trace.record("fast", t, f64::from(i));
            if i % 3 == 0 {
                trace.record("slow", t, -f64::from(i));
            }
        }
        trace.record("zz_late", 0.005, 7.0); // off-grid timestamp
        let mut swept = Vec::new();
        for_each_cycle(&trace, |t, cycle| {
            swept.push((
                t,
                cycle
                    .iter()
                    .map(|(id, v)| (id.as_str().to_owned(), *v))
                    .collect::<Vec<_>>(),
            ));
        });
        let ev = events(&trace);
        let grouped: Vec<_> = Cycles::new(&ev)
            .map(|(t, cycle)| {
                (
                    t,
                    cycle
                        .iter()
                        .map(|(_, id, v)| (id.as_str().to_owned(), *v))
                        .collect::<Vec<_>>(),
                )
            })
            .collect();
        assert_eq!(swept, grouped);
    }

    #[test]
    fn check_events_matches_check() {
        let mut trace = Trace::new();
        for i in 0..100 {
            let t = f64::from(i) * 0.01;
            trace.record("x", t, if t < 0.5 { 0.0 } else { 5.0 });
        }
        let catalog = [bound(1.0)];
        let stream = events(&trace);
        let end = trace.span().unwrap().1;
        assert_eq!(
            check_events(&catalog, &stream, end),
            check(&catalog, &trace)
        );
    }

    #[test]
    fn check_observed_matches_check_and_counts() {
        use adassure_obs::{Event as ObsEvent, VecSink};

        let mut trace = Trace::new();
        for i in 0..100 {
            let t = f64::from(i) * 0.01;
            trace.record("x", t, if t < 0.5 { 0.0 } else { 5.0 });
        }
        let catalog = [bound(1.0)];
        let baseline = check(&catalog, &trace);
        let (report, metrics, sink) = check_observed(
            &catalog,
            &trace,
            7,
            &ObsConfig::enabled(),
            Box::new(VecSink::default()),
        );
        assert_eq!(report, baseline, "observability must not perturb verdicts");
        assert_eq!(metrics.cycles, 100);
        let a = &metrics.assertions[0];
        assert_eq!(a.id, "A1");
        assert_eq!(a.verdicts.total(), 100);
        assert_eq!(a.verdicts.pass, 50);
        assert_eq!(a.verdicts.violated, 50);
        assert_eq!(a.episodes, 1);
        assert_eq!(a.flips, 2, "unknown→pass, pass→violated");
        let events = sink.expect("sink returned").take_events();
        assert_eq!(metrics.events_emitted, events.len() as u64);
        assert!(events.iter().all(|e| e.run() == 7));
        assert!(matches!(events.first(), Some(ObsEvent::RunStart { .. })));
        assert!(matches!(events.last(), Some(ObsEvent::RunEnd { .. })));
    }

    #[test]
    fn empty_trace_is_clean() {
        let report = check(&[bound(1.0)], &Trace::new());
        assert!(report.is_clean());
        assert_eq!(report.end_time, 0.0);
    }
}
