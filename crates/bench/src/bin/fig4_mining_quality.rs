//! **F4 — Mined vs hand-tuned thresholds**: false positives on held-out
//! golden runs and detection rate/latency on the standard attack set, for
//! the hand catalog and catalogs mined from 1 / 3 / 5 golden runs.
//!
//! Regenerate with:
//! `cargo run --release -p adassure-bench --bin fig4_mining_quality`

use adassure_control::pipeline::EstimatorKind;
use adassure_control::ControllerKind;
use adassure_core::mining::{self, MiningConfig};
use adassure_core::{catalog, Assertion};
use adassure_exp::agg::{fmt_mean_std, latencies};
use adassure_exp::campaign::{catalog_config_for, execute};
use adassure_exp::{par, AttackSet, Campaign, Grid, RunSpec};
use adassure_scenarios::{Scenario, ScenarioKind};

fn main() {
    let scenario = Scenario::of_kind(ScenarioKind::SCurve).expect("library scenario");
    let controller = ControllerKind::PurePursuit;
    let base = catalog_config_for(&scenario);

    // Golden training pool: clean cells through the campaign executor, with
    // an empty catalog (nothing to check — only the traces matter).
    let train_seeds: Vec<u64> = (100..105).collect();
    let train_cells: Vec<RunSpec> = train_seeds
        .iter()
        .enumerate()
        .map(|(index, &seed)| RunSpec {
            index,
            scenario: scenario.kind,
            controller,
            estimator: EstimatorKind::Complementary,
            attack: None,
            seed,
        })
        .collect();
    let golden: Vec<_> = par::map(&train_cells, |spec| {
        execute(spec, &[]).expect("golden run").0.trace
    });

    let hand = catalog::build(&base);
    let variants: Vec<(String, Vec<Assertion>)> = {
        let mut v = vec![("hand-tuned".to_owned(), hand)];
        for n in [1usize, 3, 5] {
            let refs: Vec<_> = golden.iter().take(n).collect();
            v.push((
                format!("mined({n} runs)"),
                mining::mined_catalog(&base, &refs, &MiningConfig::default()),
            ));
        }
        v
    };

    let holdout_seeds: Vec<u64> = (200..210).collect();
    let attack_count = AttackSet::Standard.specs(0.0).len();
    println!(
        "F4: mined vs hand-tuned catalogs (scenario `{}`, {} stack)",
        scenario.kind, controller
    );
    println!(
        "false positives over {} held-out golden runs; detection over the {} standard attacks x 3 seeds\n",
        holdout_seeds.len(),
        attack_count
    );
    println!(
        "{:<16} {:>14} {:>12} {:>16}",
        "catalog", "false positives", "detected", "latency (s)"
    );

    for (name, cat) in &variants {
        // Held-out clean runs: any alarm at all is a false positive.
        let holdout_grid = Grid::new()
            .scenarios([scenario.kind])
            .controllers([controller])
            .attacks(AttackSet::None)
            .include_clean(true)
            .seeds(holdout_seeds.iter().copied());
        let holdout = Campaign::new("f4_holdout", holdout_grid)
            .with_catalog(|_| cat.clone())
            .run()
            .expect("clean");
        let false_positives = holdout.select(|r| r.detected).len();

        // The standard attack sweep under the same catalog.
        let attack_grid = Grid::new()
            .scenarios([scenario.kind])
            .controllers([controller])
            .attacks(AttackSet::Standard)
            .seeds([1, 2, 3]);
        let attacked = Campaign::new("f4_attacks", attack_grid)
            .with_catalog(|_| cat.clone())
            .run()
            .expect("attacked");
        let total = attacked.runs.len();
        let detected = attacked.select(|r| r.detected).len();
        let lat = latencies(attacked.runs.iter());
        println!(
            "{:<16} {:>11}/{:<2} {:>9}/{:<2} {:>16}",
            name,
            false_positives,
            holdout_seeds.len(),
            detected,
            total,
            fmt_mean_std(&lat)
        );
    }
    println!("\n(mining from >=3 golden runs matches hand-tuned detection while the");
    println!(" false-positive rate shrinks toward the hand-tuned catalog's as the");
    println!(" training pool grows — thresholds a user gets without any tuning.)");
}
