//! **T3 — Root-cause diagnosis accuracy.**
//!
//! For every attack class: how often the diagnosis engine ranks the truly
//! attacked channel first (top-1) or within the first two candidates
//! (top-2), across 2 scenarios × 2 controllers × 3 seeds.
//!
//! Regenerate with:
//! `cargo run --release -p adassure-bench --bin table3_diagnosis_accuracy`

use adassure_attacks::campaign::AttackSpec;
use adassure_attacks::{Channel, Window};
use adassure_bench::{attacks_for, catalog_for, run_attacked};
use adassure_control::ControllerKind;
use adassure_core::diagnosis::{self, CauseTag};
use adassure_scenarios::{Scenario, ScenarioKind};

fn cause_of(channel: Channel) -> CauseTag {
    match channel {
        Channel::Gnss => CauseTag::GnssChannel,
        Channel::WheelSpeed => CauseTag::WheelSpeedChannel,
        Channel::ImuYaw => CauseTag::ImuYawChannel,
        Channel::Compass => CauseTag::CompassChannel,
    }
}

fn main() {
    let scenarios: Vec<Scenario> = [ScenarioKind::Straight, ScenarioKind::SCurve]
        .iter()
        .map(|&k| Scenario::of_kind(k).expect("library scenario"))
        .collect();
    let controllers = [ControllerKind::PurePursuit, ControllerKind::Stanley];
    let seeds = [1u64, 2, 3];
    let per_cell = scenarios.len() * controllers.len() * seeds.len();

    println!("T3: diagnosis accuracy per attack (over {per_cell} runs each)");
    println!("scenarios: straight + s_curve; controllers: pure_pursuit + stanley\n");
    println!(
        "{:<20} {:<12} {:>10} {:>10} {:>10}",
        "attack", "true cause", "detected", "top-1", "top-2"
    );

    let mut grand = (0usize, 0usize, 0usize, 0usize);
    for attack in attacks_for(&scenarios[0]) {
        let truth = cause_of(attack.kind.channel());
        let mut detected = 0usize;
        let mut top1 = 0usize;
        let mut top2 = 0usize;
        for scenario in &scenarios {
            let cat = catalog_for(scenario);
            let spec = AttackSpec::new(attack.kind, Window::from_start(scenario.attack_start));
            for controller in controllers {
                for &seed in &seeds {
                    let (_, report) = run_attacked(scenario, controller, &spec, seed, &cat)
                        .expect("attacked run");
                    if report.detection_latency(spec.window.start).is_none() {
                        continue;
                    }
                    detected += 1;
                    let verdict = diagnosis::diagnose(&report);
                    top1 += usize::from(verdict.top() == Some(truth));
                    top2 += usize::from(verdict.contains_in_top(truth, 2));
                }
            }
        }
        println!(
            "{:<20} {:<12} {:>7}/{:<2} {:>9} {:>10}",
            attack.name(),
            truth.name(),
            detected,
            per_cell,
            format!("{}%", percent(top1, detected)),
            format!("{}%", percent(top2, detected)),
        );
        grand.0 += detected;
        grand.1 += top1;
        grand.2 += top2;
        grand.3 += per_cell;
    }
    println!(
        "\noverall: detected {}/{} runs; top-1 {}%, top-2 {}% of detected runs",
        grand.0,
        grand.3,
        percent(grand.1, grand.0),
        percent(grand.2, grand.0)
    );
}

fn percent(num: usize, den: usize) -> u32 {
    if den == 0 {
        0
    } else {
        ((num as f64 / den as f64) * 100.0).round() as u32
    }
}
