//! Machine-readable checker throughput numbers for the compiled
//! evaluation plan, written to `BENCH_checker.json` at the repo root.
//!
//! Two measurements, matching the criterion micro-benchmarks in
//! `benches/checker.rs` so the numbers are directly comparable:
//!
//! * **online** — the `online_checker/100_cycles_16_assertions` workload:
//!   99 steady-state cycles updating all 30 well-known signals against the
//!   standard catalog;
//! * **offline** — `checker::check` of a clean 75 s Straight-scenario
//!   trace against the standard catalog, plus the parallel many-trace
//!   batch throughput of [`adassure_exp::check_traces`] and the columnar
//!   lane-batched path ([`adassure_exp::check_columnar_traces`] over
//!   pre-converted `.adt`-shaped traces).
//!
//! Baselines are the same workloads measured at the pre-compilation
//! checker (commit `1cc72db`, tree-walking `HashMap` environment).
//!
//! Regenerate with:
//! `cargo run --release -p adassure-bench --bin bench_throughput`

use std::time::Instant;

use adassure_bench::{catalog_for, run_clean};
use adassure_control::ControllerKind;
use adassure_core::catalog::{self, CatalogConfig};
use adassure_core::{checker, HealthConfig, OnlineChecker};
use adassure_exp::{check_columnar_traces, check_traces, par, Runtime};
use adassure_obs::{JsonlWriter, ObsConfig};
use adassure_scenarios::{Scenario, ScenarioKind};
use adassure_trace::{ColumnarTrace, SignalId, Trace};
use serde::Serialize;

/// `online_checker/100_cycles_16_assertions` on the pre-compilation
/// checker (commit 1cc72db), measured on this configuration.
const BASELINE_ONLINE_NS: f64 = 99_027.0;
/// `offline_check/75s_trace_16_assertions` at the same baseline.
const BASELINE_OFFLINE_NS: f64 = 19_271_433.0;

#[derive(Serialize)]
struct Report {
    benchmark: &'static str,
    baseline: &'static str,
    regenerate: &'static str,
    online: Comparison,
    offline: Comparison,
    offline_batch: Batch,
    offline_columnar: ColumnarBatch,
    obs_overhead: ObsOverhead,
}

#[derive(Serialize)]
struct ObsOverhead {
    id: &'static str,
    plain_ns: f64,
    observed_ns: f64,
    overhead_pct: f64,
}

#[derive(Serialize)]
struct Comparison {
    id: &'static str,
    baseline_ns: f64,
    current_ns: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct Batch {
    traces: usize,
    workers: usize,
    wall_ms: f64,
    traces_per_sec: f64,
}

#[derive(Serialize)]
struct ColumnarBatch {
    traces: usize,
    lanes: usize,
    workers: usize,
    wall_ms: f64,
    traces_per_sec: f64,
    baseline_traces_per_sec: f64,
    speedup: f64,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let online_ns = measure_online()?;
    let observed_ns = measure_online_observed()?;
    let (offline_ns, batch, columnar) = measure_offline()?;
    let obs_overhead = ObsOverhead {
        id: "online_checker/100_cycles_16_assertions+jsonl",
        plain_ns: online_ns,
        observed_ns,
        overhead_pct: 100.0 * (observed_ns - online_ns) / online_ns,
    };

    let report = Report {
        benchmark: "checker_throughput",
        baseline: "pre-compilation checker (commit 1cc72db)",
        regenerate: "cargo run --release -p adassure-bench --bin bench_throughput",
        online: Comparison {
            id: "online_checker/100_cycles_16_assertions",
            baseline_ns: BASELINE_ONLINE_NS,
            current_ns: online_ns,
            speedup: BASELINE_ONLINE_NS / online_ns,
        },
        offline: Comparison {
            id: "offline_check/75s_trace_16_assertions",
            baseline_ns: BASELINE_OFFLINE_NS,
            current_ns: offline_ns,
            speedup: BASELINE_OFFLINE_NS / offline_ns,
        },
        offline_batch: batch,
        offline_columnar: columnar,
        obs_overhead,
    };

    println!(
        "online : {:>12.0} ns/iter  ({:.1}x over baseline {:.0} ns)",
        report.online.current_ns, report.online.speedup, BASELINE_ONLINE_NS
    );
    println!(
        "offline: {:>12.0} ns/check ({:.1}x over baseline {:.0} ns)",
        report.offline.current_ns, report.offline.speedup, BASELINE_OFFLINE_NS
    );
    println!(
        "batch  : {} traces on {} workers in {:.1} ms ({:.0} traces/sec)",
        report.offline_batch.traces,
        report.offline_batch.workers,
        report.offline_batch.wall_ms,
        report.offline_batch.traces_per_sec
    );
    println!(
        "columnar: {} traces in {}-wide lanes on {} workers in {:.1} ms ({:.0} traces/sec, {:.1}x over {:.0}/sec)",
        report.offline_columnar.traces,
        report.offline_columnar.lanes,
        report.offline_columnar.workers,
        report.offline_columnar.wall_ms,
        report.offline_columnar.traces_per_sec,
        report.offline_columnar.speedup,
        report.offline_columnar.baseline_traces_per_sec
    );
    println!(
        "obs    : {:>12.0} ns/iter with metrics+JSONL ({:+.1}% over plain)",
        report.obs_overhead.observed_ns, report.obs_overhead.overhead_pct
    );

    let json =
        serde_json::to_string_pretty(&report).map_err(|e| format!("serialize report: {e}"))?;
    std::fs::write("BENCH_checker.json", json + "\n")
        .map_err(|e| format!("write BENCH_checker.json: {e}"))?;
    println!("wrote BENCH_checker.json");
    Ok(())
}

/// The criterion online workload: warmed checker, then 99 cycles updating
/// all 30 well-known signals. Returns best mean ns per 99-cycle iteration.
fn measure_online() -> Result<f64, String> {
    measure_online_with(|cat| OnlineChecker::new(cat.iter().cloned()))
}

/// The same workload with the full observability layer attached: verdict
/// counters, transition grids, the default 1-in-64 timing sample and a
/// JSONL event sink (into `io::sink`, so the cost measured is
/// serialization, not disk).
fn measure_online_observed() -> Result<f64, String> {
    measure_online_with(|cat| {
        OnlineChecker::with_observability(
            cat.iter().cloned(),
            HealthConfig::default(),
            &ObsConfig::enabled(),
            Box::new(JsonlWriter::new(std::io::sink())),
        )
    })
}

fn measure_online_with(
    make: impl Fn(&[adassure_core::Assertion]) -> OnlineChecker,
) -> Result<f64, String> {
    let cat = catalog::build(&CatalogConfig::default().with_goal_distance(300.0));
    let signals: Vec<SignalId> = adassure_trace::well_known::ALL
        .iter()
        .map(SignalId::new)
        .collect();

    let run_iter = |checker: &mut OnlineChecker| -> Result<(), String> {
        for i in 1..100u32 {
            let t = f64::from(i) * 0.01;
            checker
                .begin_cycle(t)
                .map_err(|e| format!("begin cycle at t={t}: {e}"))?;
            for s in &signals {
                checker.update(s.clone(), 0.1 + f64::from(i) * 1e-4);
            }
            checker.end_cycle();
        }
        Ok(())
    };

    let mut best = f64::INFINITY;
    for _ in 0..7 {
        let iters = 200u32;
        let mut total = 0.0;
        for _ in 0..iters {
            let mut checker = make(&cat);
            checker
                .begin_cycle(0.0)
                .map_err(|e| format!("begin warm-up cycle: {e}"))?;
            for s in &signals {
                checker.update(s.clone(), 0.1);
            }
            checker.end_cycle();
            let start = Instant::now();
            run_iter(&mut checker)?;
            total += start.elapsed().as_secs_f64();
            std::hint::black_box(checker.violations().len());
        }
        best = best.min(total * 1e9 / f64::from(iters));
    }
    Ok(best)
}

/// `offline_batch` (16 traces of one 75 s Straight run each) measured at
/// the scalar per-trace batch path, before lane batching landed. The
/// columnar entry reports its speedup against this.
const BASELINE_BATCH_TRACES_PER_SEC: f64 = 222.39;

/// The criterion offline workload (single-trace `checker::check`) plus the
/// parallel batch throughput over campaign-generated traces — once through
/// the `Trace`-input path and once over pre-converted columnar documents
/// (the `.adt` corpus shape, conversion outside the timed region).
fn measure_offline() -> Result<(f64, Batch, ColumnarBatch), String> {
    let scenario =
        Scenario::of_kind(ScenarioKind::Straight).map_err(|e| format!("workload scenario: {e}"))?;
    let cat = catalog_for(&scenario);

    // Campaign-generated traces, one per seed, produced in parallel like
    // any other harness sweep.
    let seeds: Vec<u64> = (1..=16).collect();
    let traces: Vec<Trace> = par::map(&seeds, |&seed| {
        run_clean(&scenario, ControllerKind::PurePursuit, seed, &cat)
            .map(|(out, _)| out.trace)
            .map_err(|e| format!("clean run, seed {seed}: {e}"))
    })
    .into_iter()
    .collect::<Result<_, _>>()?;

    // Single-trace serial check: comparable to the criterion bench.
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let start = Instant::now();
        let report = checker::check(&cat, &traces[0]);
        let elapsed = start.elapsed().as_secs_f64();
        std::hint::black_box(report.violations.len());
        best = best.min(elapsed * 1e9);
    }

    // Parallel batch: all traces across the campaign thread pool. The
    // work items are lane groups, so the effective worker count is capped
    // by the group count, not the trace count.
    let groups = traces.len().div_ceil(adassure_core::lane::LANES);
    let mut batch_best = f64::INFINITY;
    for _ in 0..5 {
        let start = Instant::now();
        let reports = check_traces(&cat, &traces);
        let elapsed = start.elapsed().as_secs_f64();
        std::hint::black_box(reports.len());
        batch_best = batch_best.min(elapsed);
    }
    let batch = Batch {
        traces: traces.len(),
        workers: Runtime::global().effective_workers(groups),
        wall_ms: batch_best * 1e3,
        traces_per_sec: traces.len() as f64 / batch_best,
    };

    // Columnar batch: the `.adt` corpus fast path — documents already in
    // columnar form, so the timed region is pure lane evaluation.
    let columnar_traces: Vec<ColumnarTrace> =
        traces.iter().map(ColumnarTrace::from_trace).collect();
    let mut columnar_best = f64::INFINITY;
    for _ in 0..5 {
        let start = Instant::now();
        let reports = check_columnar_traces(&cat, &columnar_traces);
        let elapsed = start.elapsed().as_secs_f64();
        std::hint::black_box(reports.len());
        columnar_best = columnar_best.min(elapsed);
    }
    let columnar_tps = traces.len() as f64 / columnar_best;
    let columnar = ColumnarBatch {
        traces: traces.len(),
        lanes: adassure_core::lane::LANES,
        workers: Runtime::global().effective_workers(groups),
        wall_ms: columnar_best * 1e3,
        traces_per_sec: columnar_tps,
        baseline_traces_per_sec: BASELINE_BATCH_TRACES_PER_SEC,
        speedup: columnar_tps / BASELINE_BATCH_TRACES_PER_SEC,
    };
    Ok((best, batch, columnar))
}
