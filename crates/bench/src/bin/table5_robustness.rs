//! **T5 — degraded-telemetry robustness (extension)**: detection and
//! false-alarm rates of the guarded stack when the *monitor's* telemetry
//! link is faulty, swept over fault kind × rate × controller and compared
//! against the clean-link baseline.
//!
//! Every run wraps the stack in the runtime
//! [`adassure::guardian::Guardian`]; the fault injector sits between the
//! stack and the guardian's checkers, so the vehicle itself is only ever
//! disturbed by the grid's *attack* axis. The table reports, per fault
//! configuration, how much detection degrades and how many false alarms
//! the link faults add.
//!
//! Regenerate with:
//! `cargo run --release -p adassure-bench --bin table5_robustness`
//!
//! `--smoke` runs a seconds-scale slice (one scenario, one controller, one
//! seed, three cells, dropout only) for CI.

use adassure::guardian::{GuardState, Guardian, GuardianConfig};
use adassure_attacks::{FaultKind, FaultSpec, Window};
use adassure_control::pipeline::AdStack;
use adassure_control::ControllerKind;
use adassure_exp::campaign::standard_catalog;
use adassure_exp::grid::AttackSet;
use adassure_exp::{par, CampaignReport, Grid, GroupSummary, RunRecord, RunSpec};
use adassure_obs::MetricsSnapshot;
use adassure_scenarios::{run, Scenario, ScenarioKind};

/// One telemetry-link configuration of the sweep: `None` is the clean
/// baseline link.
type FaultConfig = Option<(FaultKind, f64)>;

fn config_label(config: FaultConfig) -> String {
    match config {
        None => "baseline".to_owned(),
        Some((kind, rate)) => format!("{}@{rate:.2}", kind.name()),
    }
}

/// Executes one grid cell with the guarded stack and an optionally faulty
/// telemetry link, returning the record plus the guardian's final metrics
/// (checker counters + mode-transition grid).
fn run_guarded(
    config: FaultConfig,
    spec: &RunSpec,
) -> Result<(RunRecord, MetricsSnapshot), String> {
    let scenario =
        Scenario::of_kind(spec.scenario).map_err(|e| format!("cell {}: {e}", spec.index))?;
    let stack_config = run::stack_config(&scenario, spec.controller).with_estimator(spec.estimator);
    let stack = AdStack::new(stack_config, scenario.track.clone());
    let mut guardian = Guardian::new(
        stack,
        standard_catalog(&scenario),
        GuardianConfig::default(),
    );
    if let Some((kind, rate)) = config {
        let fault = FaultSpec::new(kind, rate, Window::always());
        guardian = guardian.with_telemetry_fault(fault.injector(spec.seed));
    }
    let engine = run::engine_for(&scenario, spec.seed);
    let out = match spec.attack {
        Some(attack) => {
            let mut injector = attack.injector(spec.seed);
            engine.run_with_tap(&mut guardian, &mut injector)
        }
        None => engine.run(&mut guardian),
    }
    .map_err(|e| {
        format!(
            "guarded cell {} ({}): {e}",
            spec.index,
            config_label(config)
        )
    })?;
    let guard_state = match guardian.state() {
        GuardState::Nominal => "nominal",
        GuardState::Degraded { .. } => "degraded",
        GuardState::SafeStop { .. } => "safe_stop",
    };
    let end = out.trace.span().map_or(scenario.duration, |(_, end)| end);
    let (report, metrics) = guardian.into_report_observed(end);
    let mut record = RunRecord::from_run(spec, &out, &report);
    record.fault = config.map(|(kind, _)| kind.name().to_owned());
    record.fault_rate = config.map(|(_, rate)| rate);
    record.guard_state = Some(guard_state.to_owned());
    Ok((record, metrics))
}

/// Detection rate over attacked runs and false-alarm rate over clean runs.
fn rates(records: &[&RunRecord]) -> (f64, f64) {
    let frac = |hit: usize, total: usize| {
        if total == 0 {
            0.0
        } else {
            hit as f64 / total as f64
        }
    };
    let attacked: Vec<_> = records.iter().filter(|r| r.attack.is_some()).collect();
    let clean: Vec<_> = records.iter().filter(|r| r.attack.is_none()).collect();
    (
        frac(
            attacked.iter().filter(|r| r.detected).count(),
            attacked.len(),
        ),
        frac(clean.iter().filter(|r| r.detected).count(), clean.len()),
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = std::env::args().any(|arg| arg == "--smoke");

    let (scenarios, controllers, seeds): (Vec<_>, Vec<_>, Vec<u64>) = if smoke {
        (
            vec![ScenarioKind::Straight],
            vec![ControllerKind::PurePursuit],
            vec![1],
        )
    } else {
        (
            ScenarioKind::GUARDIAN_SET.to_vec(),
            vec![ControllerKind::PurePursuit, ControllerKind::Stanley],
            vec![1, 2],
        )
    };
    let mut configs: Vec<FaultConfig> = vec![None];
    if smoke {
        configs.push(Some((FaultKind::Dropout, 0.2)));
    } else {
        for kind in FaultKind::ALL {
            for rate in [0.05, 0.2] {
                configs.push(Some((kind, rate)));
            }
        }
    }

    let grid = Grid::new()
        .scenarios(scenarios)
        .controllers(controllers)
        .attacks(AttackSet::Standard)
        .include_clean(true)
        .seeds(seeds);
    let mut cells = grid.cells();
    if smoke {
        // The clean cell plus the first two attacked cells.
        cells.truncate(3);
    }

    let jobs: Vec<(FaultConfig, RunSpec)> = configs
        .iter()
        .flat_map(|config| cells.iter().map(|cell| (*config, *cell)))
        .collect();
    let outcomes = par::map(&jobs, |(config, spec)| run_guarded(*config, spec))
        .into_iter()
        .collect::<Result<Vec<_>, _>>()?;
    // Deterministic roll-up: merge per-run metrics in job order (the same
    // order whatever ADASSURE_THREADS says) and record each detection
    // latency.
    let mut merged = MetricsSnapshot::empty();
    let mut runs: Vec<RunRecord> = Vec::with_capacity(outcomes.len());
    for (record, metrics) in outcomes {
        merged.merge(&metrics);
        if let Some(latency) = record.detection_latency {
            merged.detection_latency_s.record(latency);
        }
        runs.push(record);
    }

    // Per-configuration aggregates, with deltas against the clean link.
    let records_of = |config: FaultConfig| -> Vec<&RunRecord> {
        let label = config.map(|(kind, _)| kind.name().to_owned());
        let rate = config.map(|(_, rate)| rate);
        runs.iter()
            .filter(|r| r.fault == label && r.fault_rate == rate)
            .collect()
    };
    let (base_detection, base_false_alarm) = rates(&records_of(None));
    let summaries: Vec<GroupSummary> = configs
        .iter()
        .map(|&config| {
            let records = records_of(config);
            let (detection_rate, false_alarm_rate) = rates(&records);
            GroupSummary {
                group: config_label(config),
                runs: records.len(),
                detection_rate,
                false_alarm_rate,
                detection_delta: detection_rate - base_detection,
                false_alarm_delta: false_alarm_rate - base_false_alarm,
            }
        })
        .collect();

    println!(
        "T5: degraded-telemetry robustness ({} cells x {} link configs{})",
        cells.len(),
        configs.len(),
        if smoke { ", smoke slice" } else { "" }
    );
    println!(
        "\n{:<22} {:>5} {:>10} {:>10} {:>8} {:>8}  final guard states",
        "link fault", "runs", "det", "false", "Δdet", "Δfalse"
    );
    for (summary, &config) in summaries.iter().zip(&configs) {
        let mut counts: Vec<(String, usize)> = Vec::new();
        for record in records_of(config) {
            let state = record.guard_state.clone().unwrap_or_default();
            match counts.iter_mut().find(|(s, _)| *s == state) {
                Some((_, n)) => *n += 1,
                None => counts.push((state, 1)),
            }
        }
        counts.sort();
        let states: Vec<String> = counts.iter().map(|(s, n)| format!("{s}:{n}")).collect();
        println!(
            "{:<22} {:>5} {:>9.0}% {:>9.0}% {:>+7.0}% {:>+7.0}%  {}",
            summary.group,
            summary.runs,
            summary.detection_rate * 100.0,
            summary.false_alarm_rate * 100.0,
            summary.detection_delta * 100.0,
            summary.false_alarm_delta * 100.0,
            states.join(" ")
        );
    }
    println!("\n(detection is measured on attacked runs, false alarms on clean runs;");
    println!(" deltas are against the clean-link baseline. Inconclusive monitors and");
    println!(" the guardian's limp-home mode absorb link faults instead of stopping");
    println!(" a healthy vehicle.)");

    let name = if smoke {
        "table5_robustness_smoke"
    } else {
        "table5_robustness"
    };
    let report = CampaignReport {
        name: name.to_owned(),
        runs,
        summaries,
        obs: merged.summary(),
    };
    let path = report
        .write_json("results")
        .map_err(|e| format!("write results json: {e}"))?;
    println!("\nwrote {}", path.display());
    Ok(())
}
