//! Offline checking: replay a recorded trace through the online monitor.
//!
//! Offline and online verdicts agree by construction because this module
//! contains no evaluation logic of its own — it only reconstructs the
//! per-cycle sample stream from a [`Trace`] and feeds it to
//! [`OnlineChecker`].

use adassure_trace::{SignalId, Trace};

use crate::assertion::Assertion;
use crate::online::OnlineChecker;
use crate::report::CheckReport;

/// The trace's samples flattened into `(time, signal, value)` events,
/// sorted by time (ties resolved by signal name, so replay is
/// deterministic).
pub fn events(trace: &Trace) -> Vec<(f64, &SignalId, f64)> {
    let mut out: Vec<(f64, &SignalId, f64)> = Vec::with_capacity(trace.sample_count());
    for series in trace.iter() {
        for sample in series.samples() {
            out.push((sample.time, series.id(), sample.value));
        }
    }
    out.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(b.1)));
    out
}

/// Replays `trace` through a fresh [`OnlineChecker`] over `catalog` and
/// returns the report.
///
/// # Example
///
/// ```
/// use adassure_core::catalog::{self, CatalogConfig};
/// use adassure_trace::Trace;
///
/// let trace = Trace::new();
/// let report = adassure_core::checker::check(&catalog::build(&CatalogConfig::default()), &trace);
/// assert!(report.is_clean());
/// ```
pub fn check(catalog: &[Assertion], trace: &Trace) -> CheckReport {
    let mut checker = OnlineChecker::new(catalog.iter().cloned());
    let stream = events(trace);
    let mut i = 0;
    while i < stream.len() {
        let t = stream[i].0;
        checker.begin_cycle(t);
        while i < stream.len() && stream[i].0 == t {
            let (_, id, value) = stream[i];
            checker.update(id.clone(), value);
            i += 1;
        }
        checker.end_cycle();
    }
    let end = trace.span().map_or(0.0, |(_, b)| b);
    checker.finish(end)
}

/// Replays `trace` cycle by cycle, invoking `f(t, env)` after each cycle's
/// updates. Used by assertion mining to observe expression values on golden
/// runs with the exact semantics of the online monitor.
pub fn replay(trace: &Trace, mut f: impl FnMut(f64, &crate::expr::Env)) {
    let mut env = crate::expr::Env::new();
    let stream = events(trace);
    let mut i = 0;
    while i < stream.len() {
        let t = stream[i].0;
        env.set_time(t);
        while i < stream.len() && stream[i].0 == t {
            let (_, id, value) = stream[i];
            env.update(id, value);
            i += 1;
        }
        f(t, &env);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assertion::{Condition, Severity, Temporal};
    use crate::expr::SignalExpr;

    fn bound(limit: f64) -> Assertion {
        Assertion::new(
            "A1",
            "bounded x",
            Severity::Critical,
            Condition::AtMost {
                expr: SignalExpr::signal("x").abs(),
                limit,
            },
        )
    }

    #[test]
    fn events_are_time_sorted_with_stable_ties() {
        let mut trace = Trace::new();
        trace.record("b", 0.0, 1.0);
        trace.record("a", 0.0, 2.0);
        trace.record("a", 0.1, 3.0);
        let ev = events(&trace);
        assert_eq!(ev.len(), 3);
        assert_eq!(ev[0].1.as_str(), "a");
        assert_eq!(ev[1].1.as_str(), "b");
        assert_eq!(ev[2].0, 0.1);
    }

    #[test]
    fn offline_check_detects_excursion() {
        let mut trace = Trace::new();
        for i in 0..100 {
            let t = f64::from(i) * 0.01;
            trace.record("x", t, if t < 0.5 { 0.0 } else { 5.0 });
        }
        let report = check(&[bound(1.0)], &trace);
        assert_eq!(report.violations.len(), 1);
        assert!((report.violations[0].onset - 0.5).abs() < 1e-9);
        assert!((report.end_time - 0.99).abs() < 1e-9);
    }

    #[test]
    fn offline_matches_online_semantics() {
        // Drive the same data both ways and compare.
        let samples: Vec<(f64, f64)> = (0..200)
            .map(|i| {
                let t = f64::from(i) * 0.01;
                (t, if (0.7..1.1).contains(&t) { 9.0 } else { 0.0 })
            })
            .collect();
        let assertion = bound(1.0).with_temporal(Temporal::Sustained(0.2));

        let mut trace = Trace::new();
        for &(t, v) in &samples {
            trace.record("x", t, v);
        }
        let offline = check(std::slice::from_ref(&assertion), &trace);

        let mut online = OnlineChecker::new([assertion]);
        for &(t, v) in &samples {
            online.begin_cycle(t);
            online.update("x", v);
            online.end_cycle();
        }
        let online = online.finish(trace.span().unwrap().1);

        assert_eq!(offline, online);
        assert_eq!(offline.violations.len(), 1);
    }

    #[test]
    fn replay_exposes_env_per_cycle() {
        let mut trace = Trace::new();
        trace.record("x", 0.0, 1.0);
        trace.record("x", 0.1, 2.0);
        trace.record("y", 0.1, 5.0);
        let mut seen = Vec::new();
        replay(&trace, |t, env| {
            seen.push((t, env.value(&"x".into()), env.value(&"y".into())));
        });
        assert_eq!(
            seen,
            vec![(0.0, Some(1.0), None), (0.1, Some(2.0), Some(5.0))]
        );
    }

    #[test]
    fn empty_trace_is_clean() {
        let report = check(&[bound(1.0)], &Trace::new());
        assert!(report.is_clean());
        assert_eq!(report.end_time, 0.0);
    }
}
