//! **T2 — Detection rate and latency per attack × controller.**
//!
//! For every attack class and each of the four lateral controllers:
//! detection rate over (2 scenarios × 3 seeds) and mean ± std detection
//! latency of the detected runs.
//!
//! Regenerate with:
//! `cargo run --release -p adassure-bench --bin table2_detection_latency`

use adassure_control::ControllerKind;
use adassure_exp::agg::fmt_mean_std;
use adassure_exp::{AttackSet, Campaign, Grid};
use adassure_scenarios::ScenarioKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seeds = [1u64, 2, 3];
    let grid = Grid::new()
        .scenarios([ScenarioKind::Straight, ScenarioKind::SCurve])
        .controllers(ControllerKind::ALL)
        .attacks(AttackSet::Standard)
        .seeds(seeds);
    let runs_per_cell = 2 * seeds.len();
    let report = Campaign::new("t2_detection_latency", grid)
        .run()
        .map_err(|e| format!("t2 campaign: {e}"))?;

    println!(
        "T2: detection rate (of {runs_per_cell} runs) and latency (s, mean±std) per attack x controller"
    );
    println!("scenarios: straight + s_curve; seeds {seeds:?}\n");
    print!("{:<20}", "attack");
    for c in ControllerKind::ALL {
        print!("{:>24}", c.name());
    }
    println!();

    for attack in AttackSet::Standard.specs(0.0) {
        print!("{:<20}", attack.name());
        for controller in ControllerKind::ALL {
            let runs = report.select(|r| {
                r.attack.as_deref() == Some(attack.name()) && r.controller == controller.name()
            });
            let detected = runs.iter().filter(|r| r.detected).count();
            let latencies: Vec<f64> = runs.iter().filter_map(|r| r.detection_latency).collect();
            print!(
                "{:>24}",
                format!("{detected}/{runs_per_cell} {}", fmt_mean_std(&latencies))
            );
        }
        println!();
    }
    println!("\n(gnss_drift and wheel_speed_freeze are the stealthy tail: they evade");
    println!(" the cross-consistency checks and surface only behaviourally, tens of");
    println!(" seconds later — the expected shape for slow-drag attacks.)");

    let path = report
        .write_json("results")
        .map_err(|e| format!("write results json: {e}"))?;
    eprintln!("wrote {}", path.display());
    Ok(())
}
