//! Runtime guardian: the ADAssure monitor promoted from a debugging tool to
//! a runtime-assurance guard.
//!
//! [`Guardian`] wraps the full control stack
//! ([`adassure_control::pipeline::AdStack`]) together with an
//! in-loop [`OnlineChecker`]. Every cycle it feeds the cycle's signals to
//! the checker; when an assertion at or above the configured severity
//! fires, the guardian overrides the stack with a **safe stop**: steering
//! frozen at its last nominal value, maximum comfortable braking. This is
//! the natural "from debugging to runtime assurance" extension of the
//! methodology, evaluated by experiment F5.

use adassure_control::pipeline::AdStack;
use adassure_core::assertion::Severity;
use adassure_core::{Assertion, OnlineChecker, Violation};
use adassure_sim::engine::{DriveCtx, Driver};
use adassure_sim::vehicle::Controls;
use adassure_trace::{well_known as sig, Trace};

/// Configuration of the guardian's intervention policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardianConfig {
    /// Minimum severity of a violation that triggers the safe stop.
    pub trigger_severity: Severity,
    /// Braking deceleration commanded during the safe stop (m/s², positive).
    pub stop_decel: f64,
}

impl Default for GuardianConfig {
    fn default() -> Self {
        GuardianConfig {
            trigger_severity: Severity::Critical,
            stop_decel: 4.0,
        }
    }
}

/// The guardian's operating state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GuardState {
    /// Passing the stack's controls through unchanged.
    Nominal,
    /// Safe stop engaged.
    SafeStop {
        /// Time the stop was engaged (s).
        since: f64,
        /// Steering angle held during the stop (rad).
        held_steer: f64,
    },
}

/// A monitored control stack with safe-stop fallback.
#[derive(Debug)]
pub struct Guardian {
    stack: AdStack,
    checker: OnlineChecker,
    config: GuardianConfig,
    state: GuardState,
    trigger: Option<Violation>,
}

/// Signals the guardian forwards from the trace into the in-loop checker.
/// (Command signals are fed directly from the stack's output, because the
/// engine records them only *after* the driver returns.)
const FORWARDED: &[&str] = &[
    sig::GNSS_X,
    sig::GNSS_Y,
    sig::GNSS_SPEED,
    sig::GNSS_JUMP,
    sig::WHEEL_SPEED,
    sig::WHEEL_ACCEL,
    sig::IMU_YAW_RATE,
    sig::IMU_ACCEL,
    sig::COMPASS_HEADING,
    sig::EST_X,
    sig::EST_Y,
    sig::EST_HEADING,
    sig::EST_SPEED,
    sig::INNOVATION,
    sig::XTRACK_ERR,
    sig::HEADING_ERR,
    sig::TARGET_SPEED,
    sig::PROGRESS,
    sig::STEER_ACTUAL,
];

impl Guardian {
    /// Wraps `stack`, monitoring it with `catalog`.
    ///
    /// Note that [`Temporal::Eventually`](adassure_core::Temporal)
    /// assertions (A12) never fire mid-run, so they are inert as triggers;
    /// include them or not as you wish.
    pub fn new(
        stack: AdStack,
        catalog: impl IntoIterator<Item = Assertion>,
        config: GuardianConfig,
    ) -> Self {
        Guardian {
            stack,
            checker: OnlineChecker::new(catalog),
            config,
            state: GuardState::Nominal,
            trigger: None,
        }
    }

    /// Current operating state.
    pub fn state(&self) -> GuardState {
        self.state
    }

    /// The violation that triggered the safe stop, if engaged.
    pub fn trigger(&self) -> Option<&Violation> {
        self.trigger.as_ref()
    }

    /// All violations observed so far (triggering or not).
    pub fn violations(&self) -> &[Violation] {
        self.checker.violations()
    }

    /// Consumes the guardian, returning the wrapped stack and the
    /// monitor's final report at `end_time`.
    pub fn into_report(self, end_time: f64) -> adassure_core::CheckReport {
        self.checker.finish(end_time)
    }
}

impl Driver for Guardian {
    fn control(&mut self, ctx: &DriveCtx<'_>, trace: &mut Trace) -> Controls {
        let nominal = self.stack.control(ctx, trace);

        // Feed this cycle's signals to the in-loop checker. Sensor and
        // pipeline signals were recorded into the trace this cycle (by the
        // engine and the stack respectively); command signals come from the
        // controls we are about to return.
        self.checker.begin_cycle(ctx.time);
        for name in FORWARDED {
            if let Some(sample) = trace.series_by_name(name).and_then(|s| s.last()) {
                // Actuator feedback is recorded by the engine *after* the
                // driver returns, so its newest sample is one cycle old —
                // feed it anyway (sample-and-hold). Every other signal must
                // carry this cycle's timestamp, so that e.g. the GNSS
                // freshness assertion still sees fixes age.
                let fresh_enough = if *name == sig::STEER_ACTUAL {
                    sample.time >= ctx.time - ctx.dt * 1.5
                } else {
                    sample.time == ctx.time
                };
                if fresh_enough {
                    self.checker.update(*name, sample.value);
                }
            }
        }
        self.checker.update(sig::STEER_CMD, nominal.steer);
        self.checker.update(sig::ACCEL_CMD, nominal.accel);
        let fresh = self.checker.end_cycle();

        if fresh > 0 && self.state == GuardState::Nominal {
            let triggering = self
                .checker
                .violations()
                .iter()
                .rev()
                .take(fresh)
                .find(|v| v.severity >= self.config.trigger_severity)
                .cloned();
            if let Some(violation) = triggering {
                self.state = GuardState::SafeStop {
                    since: ctx.time,
                    held_steer: nominal.steer,
                };
                self.trigger = Some(violation);
            }
        }

        match self.state {
            GuardState::Nominal => nominal,
            GuardState::SafeStop { held_steer, .. } => {
                Controls::new(held_steer, -self.config.stop_decel)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adassure_attacks::{campaign::AttackSpec, AttackKind, Window};
    use adassure_control::ControllerKind;
    use adassure_core::catalog::{self, CatalogConfig};
    use adassure_scenarios::{run, Scenario, ScenarioKind};
    use adassure_sim::engine::Engine;
    use adassure_sim::geometry::Vec2;

    fn guardian_for(scenario: &Scenario) -> Guardian {
        let stack = AdStack::new(
            run::stack_config(scenario, ControllerKind::PurePursuit),
            scenario.track.clone(),
        );
        let cat = catalog::build(&CatalogConfig::default());
        Guardian::new(stack, cat, GuardianConfig::default())
    }

    #[test]
    fn clean_run_stays_nominal() {
        let scenario = Scenario::of_kind(ScenarioKind::Straight).unwrap();
        let mut guardian = guardian_for(&scenario);
        let out = run::engine_for(&scenario, 1).run(&mut guardian).unwrap();
        assert!(out.reached_goal);
        assert_eq!(guardian.state(), GuardState::Nominal);
        assert!(guardian.trigger().is_none());
    }

    #[test]
    fn jump_attack_engages_safe_stop_and_vehicle_halts() {
        let scenario = Scenario::of_kind(ScenarioKind::Straight).unwrap();
        let mut guardian = guardian_for(&scenario);
        let attack = AttackSpec::new(
            AttackKind::GnssJump {
                offset: Vec2::new(12.0, 8.0),
            },
            Window::from_start(scenario.attack_start),
        );
        let mut injector = attack.injector(1);
        let engine: Engine = run::engine_for(&scenario, 1);
        let out = engine.run_with_tap(&mut guardian, &mut injector).unwrap();
        match guardian.state() {
            GuardState::SafeStop { since, .. } => {
                assert!(since >= scenario.attack_start);
                assert!(since < scenario.attack_start + 1.0, "engaged at {since}");
            }
            GuardState::Nominal => panic!("guardian must engage under a jump attack"),
        }
        assert!(guardian.trigger().is_some());
        assert!(
            out.final_state.speed < 0.1,
            "vehicle should be stopped, speed {}",
            out.final_state.speed
        );
        assert!(!out.reached_goal);
    }

    #[test]
    fn severity_filter_ignores_low_severity_violations() {
        use adassure_core::{Condition, SignalExpr};
        let scenario = Scenario::of_kind(ScenarioKind::Straight).unwrap();
        let stack = AdStack::new(
            run::stack_config(&scenario, ControllerKind::PurePursuit),
            scenario.track.clone(),
        );
        // A warning-severity assertion that always fires once moving.
        let nag = Assertion::new(
            "NAG",
            "always fires",
            Severity::Warning,
            Condition::AtMost {
                expr: SignalExpr::signal(sig::EST_SPEED),
                limit: 0.5,
            },
        )
        .with_grace(5.0);
        let mut guardian = Guardian::new(stack, [nag], GuardianConfig::default());
        let out = run::engine_for(&scenario, 1).run(&mut guardian).unwrap();
        assert_eq!(
            guardian.state(),
            GuardState::Nominal,
            "warnings must not stop the car"
        );
        assert!(
            !guardian.violations().is_empty(),
            "but they are still logged"
        );
        assert!(out.reached_goal);
    }

    #[test]
    fn report_is_available_after_the_run() {
        let scenario = Scenario::of_kind(ScenarioKind::Straight).unwrap();
        let mut guardian = guardian_for(&scenario);
        let attack = AttackSpec::new(AttackKind::GnssDropout, Window::from_start(12.0));
        let mut injector = attack.injector(2);
        let out = run::engine_for(&scenario, 2)
            .run_with_tap(&mut guardian, &mut injector)
            .unwrap();
        let end = out.trace.span().unwrap().1;
        let report = guardian.into_report(end);
        assert!(report.violations_of("A13").next().is_some());
    }
}
