//! The ADAssure assertion catalog (A1–A16) for AD control stacks.
//!
//! The catalog binds to the workspace-wide signal names
//! ([`adassure_trace::well_known`]), so any stack that records those signals
//! — including [`adassure-control`'s pipeline](https://docs.rs) — is
//! monitored without per-experiment wiring.
//!
//! Assertions fall into four classes:
//!
//! | Class | Assertions | Catches |
//! |---|---|---|
//! | behavioural bounds | A1 A2 A3 A4 A10 | any attack once it bends the vehicle's behaviour |
//! | actuator discipline | A5 | command thrash from corrupted estimates |
//! | cross-consistency | A6 A7 A8 A11 A13 A14 A15 A16 | sensor-channel attacks *before* behaviour degrades |
//! | mission progress | A9 A12 | teleports, regressions, failure to finish |
//!
//! Thresholds ([`Thresholds`]) are either the hand-calibrated defaults
//! below or mined from golden runs ([`crate::mining`]).

use serde::{Deserialize, Serialize};

use adassure_trace::well_known as sig;
use adassure_trace::SignalId;

use crate::assertion::{Assertion, Condition, Severity, Temporal};
use crate::expr::SignalExpr;

/// Threshold parameters of the catalog, one per assertion.
///
/// All values are in the monitored expression's units (metres, radians,
/// seconds, ...). `Default` gives the hand-calibrated values used by the
/// paper-shaped experiments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Thresholds {
    /// A1: maximum |estimated cross-track error| (m).
    pub a1_max_xtrack: f64,
    /// A2: maximum |heading error to path tangent| (rad).
    pub a2_max_heading_err: f64,
    /// A3: maximum |speed − target speed| (m/s).
    pub a3_max_speed_err: f64,
    /// A4: maximum |steering command| (rad).
    pub a4_max_steer_cmd: f64,
    /// A5: maximum |d(steer_cmd)/dt| (rad/s).
    pub a5_max_steer_rate: f64,
    /// A6: maximum |GNSS-derived speed − wheel speed| (m/s).
    pub a6_max_speed_gap: f64,
    /// A7: maximum *speed-adjusted* per-fix GNSS displacement (m): the
    /// monitored expression is `gnss_jump − 0.15 · gnss_speed`, so the
    /// allowance grows with how fast the GNSS stream itself says the
    /// vehicle is moving. A fixed jump bound would fire on honest fixes at
    /// high speed — exactly the false positive that misdiagnosed
    /// wheel-channel attacks during calibration.
    pub a7_max_gnss_jump: f64,
    /// A8: maximum |IMU yaw rate − bicycle-kinematics yaw rate| (rad/s).
    pub a8_max_yaw_residual: f64,
    /// A9: minimum d(progress)/dt (m/s). Routine GNSS corrections nudge the
    /// estimate backward a few centimetres within one 10 ms cycle (≈ −3
    /// m/s spikes), so the bound is expressed as "no more than ~0.3 m of
    /// regression in a cycle" (−30 m/s), which real teleport/replay attacks
    /// exceed by orders of magnitude.
    pub a9_min_progress_rate: f64,
    /// A10: maximum |lateral acceleration| (m/s²).
    pub a10_max_lat_accel: f64,
    /// A11: maximum estimator innovation (m).
    pub a11_max_innovation: f64,
    /// A12: fraction of the goal distance that must eventually be covered.
    pub a12_goal_fraction: f64,
    /// A13: maximum GNSS staleness (s).
    pub a13_gnss_max_age: f64,
    /// A14: maximum |d(compass)/dt − IMU yaw rate| (rad/s).
    pub a14_max_compass_rate_gap: f64,
    /// A15: maximum |wheel-derived acceleration − IMU acceleration| (m/s²).
    pub a15_max_accel_residual: f64,
    /// A16: maximum wheel-speed jitter (EWMA of per-cycle change, m/s).
    /// Debounced level checks are blind to zero-mean noise injection — the
    /// violating samples never *sustain* — so noise is caught through this
    /// dispersion measure instead.
    pub a16_max_wheel_jitter: f64,
}

impl Default for Thresholds {
    fn default() -> Self {
        // Hand-calibrated against the clean envelope of all six scenarios
        // × four controllers × three seeds (see the `calibrate` harness):
        // each bound sits ~30 % above the worst clean observation, so a
        // default-configured catalog is false-positive-free across the
        // whole workload matrix while still separating every attack class.
        Thresholds {
            a1_max_xtrack: 2.5,
            a2_max_heading_err: 0.6,
            a3_max_speed_err: 2.8,
            a4_max_steer_cmd: 0.56,
            a5_max_steer_rate: 140.0,
            a6_max_speed_gap: 3.0,
            a7_max_gnss_jump: 1.6,
            a8_max_yaw_residual: 0.06,
            a9_min_progress_rate: -30.0,
            a10_max_lat_accel: 9.0,
            a11_max_innovation: 1.6,
            a12_goal_fraction: 0.9,
            a13_gnss_max_age: 0.5,
            a14_max_compass_rate_gap: 8.0,
            a15_max_accel_residual: 2.5,
            a16_max_wheel_jitter: 0.5,
        }
    }
}

/// Configuration of a catalog build.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CatalogConfig {
    /// Threshold parameters.
    pub thresholds: Thresholds,
    /// Total distance of the scenario's route (m); enables the A12
    /// goal-reached assertion when known.
    pub goal_distance: Option<f64>,
    /// Wheelbase used by the A8 kinematic-consistency model (m).
    pub wheelbase: f64,
    /// Start-up grace applied to behavioural assertions (s).
    pub behavioural_grace: f64,
    /// Start-up grace applied to cross-consistency assertions (s).
    pub consistency_grace: f64,
}

impl Default for CatalogConfig {
    fn default() -> Self {
        CatalogConfig {
            thresholds: Thresholds::default(),
            goal_distance: None,
            wheelbase: 2.7,
            behavioural_grace: 8.0,
            consistency_grace: 5.0,
        }
    }
}

impl CatalogConfig {
    /// Replaces the thresholds.
    pub fn with_thresholds(mut self, thresholds: Thresholds) -> Self {
        self.thresholds = thresholds;
        self
    }

    /// Sets the goal distance (enables A12).
    pub fn with_goal_distance(mut self, distance: f64) -> Self {
        self.goal_distance = Some(distance);
        self
    }
}

/// Builds the A1–A14 catalog for a configuration.
///
/// A12 is included only when [`CatalogConfig::goal_distance`] is set.
pub fn build(config: &CatalogConfig) -> Vec<Assertion> {
    let t = &config.thresholds;
    let bg = config.behavioural_grace;
    let cg = config.consistency_grace;
    let mut catalog = vec![
        Assertion::new(
            "A1",
            "cross-track error of the estimated pose stays bounded",
            Severity::Critical,
            Condition::AtMost {
                expr: SignalExpr::signal(sig::XTRACK_ERR).abs(),
                limit: t.a1_max_xtrack,
            },
        )
        .with_temporal(Temporal::Sustained(0.3))
        .with_grace(bg),
        Assertion::new(
            "A2",
            "heading error to the path tangent stays bounded",
            Severity::Critical,
            Condition::AtMost {
                expr: SignalExpr::signal(sig::HEADING_ERR).abs(),
                limit: t.a2_max_heading_err,
            },
        )
        .with_temporal(Temporal::Sustained(0.3))
        .with_grace(bg),
        Assertion::new(
            "A3",
            "estimated speed tracks the target speed",
            Severity::Warning,
            Condition::AtMost {
                expr: SignalExpr::signal(sig::EST_SPEED)
                    .sub(SignalExpr::signal(sig::TARGET_SPEED))
                    .abs(),
                limit: t.a3_max_speed_err,
            },
        )
        .with_temporal(Temporal::Sustained(1.0))
        .with_grace(bg),
        Assertion::new(
            "A4",
            "steering command stays within the actuator range",
            Severity::Warning,
            Condition::AtMost {
                expr: SignalExpr::signal(sig::STEER_CMD).abs(),
                limit: t.a4_max_steer_cmd,
            },
        )
        .with_grace(1.0),
        Assertion::new(
            "A5",
            "steering command slew rate stays bounded",
            Severity::Warning,
            Condition::AtMost {
                expr: SignalExpr::derivative(sig::STEER_CMD).abs(),
                limit: t.a5_max_steer_rate,
            },
        )
        .with_grace(bg),
        Assertion::new(
            "A6",
            "GNSS-derived speed is consistent with wheel odometry",
            Severity::Critical,
            Condition::AtMost {
                expr: SignalExpr::signal(sig::GNSS_SPEED)
                    .sub(SignalExpr::signal(sig::WHEEL_SPEED))
                    .abs(),
                limit: t.a6_max_speed_gap,
            },
        )
        .with_temporal(Temporal::Sustained(0.25))
        .with_grace(cg),
        Assertion::new(
            "A7",
            "per-fix GNSS displacement stays plausible for the GNSS-reported speed",
            Severity::Critical,
            Condition::AtMost {
                expr: SignalExpr::signal(sig::GNSS_JUMP)
                    .sub(SignalExpr::signal(sig::GNSS_SPEED).mul(SignalExpr::constant(0.15))),
                limit: t.a7_max_gnss_jump,
            },
        )
        .with_grace(cg),
        Assertion::new(
            "A8",
            "IMU yaw rate matches bicycle kinematics of speed and steering",
            Severity::Critical,
            Condition::AtMost {
                expr: SignalExpr::signal(sig::IMU_YAW_RATE)
                    .sub(
                        SignalExpr::signal(sig::WHEEL_SPEED)
                            .mul(SignalExpr::signal(sig::STEER_ACTUAL).tan())
                            .mul(SignalExpr::constant(1.0 / config.wheelbase)),
                    )
                    .abs(),
                limit: t.a8_max_yaw_residual,
            },
        )
        .with_temporal(Temporal::Sustained(0.4))
        .with_grace(cg),
        Assertion::new(
            "A9",
            "progress along the route never regresses",
            Severity::Critical,
            Condition::AtLeast {
                expr: SignalExpr::derivative(sig::PROGRESS),
                limit: t.a9_min_progress_rate,
            },
        )
        .with_grace(3.0),
        Assertion::new(
            "A10",
            "implied lateral acceleration stays within the envelope",
            Severity::Warning,
            Condition::AtMost {
                expr: SignalExpr::signal(sig::EST_SPEED)
                    .mul(SignalExpr::signal(sig::IMU_YAW_RATE))
                    .abs(),
                limit: t.a10_max_lat_accel,
            },
        )
        .with_temporal(Temporal::Sustained(0.2))
        .with_grace(bg),
        Assertion::new(
            "A11",
            "estimator innovation (GNSS vs dead reckoning) stays bounded",
            Severity::Critical,
            Condition::AtMost {
                expr: SignalExpr::signal(sig::INNOVATION),
                limit: t.a11_max_innovation,
            },
        )
        .with_temporal(Temporal::Sustained(0.3))
        .with_grace(cg),
        Assertion::new(
            "A13",
            "GNSS fixes keep arriving",
            Severity::Critical,
            Condition::Fresh {
                signal: sig::GNSS_X.into(),
                max_age: t.a13_gnss_max_age,
            },
        )
        .with_grace(3.0),
        Assertion::new(
            "A14",
            "compass rate of change matches the IMU yaw rate",
            Severity::Critical,
            Condition::AtMost {
                // Angle-aware derivative: a compass crossing the ±π seam is
                // a 2π numeric jump but zero physical rotation.
                expr: SignalExpr::angular_derivative(sig::COMPASS_HEADING)
                    .sub(SignalExpr::signal(sig::IMU_YAW_RATE))
                    .abs(),
                limit: t.a14_max_compass_rate_gap,
            },
        )
        .with_grace(3.0),
        Assertion::new(
            "A15",
            "wheel-derived acceleration matches the IMU acceleration",
            Severity::Critical,
            Condition::AtMost {
                expr: SignalExpr::signal(sig::WHEEL_ACCEL)
                    .sub(SignalExpr::signal(sig::IMU_ACCEL))
                    .abs(),
                limit: t.a15_max_accel_residual,
            },
        )
        .with_temporal(Temporal::Sustained(0.4))
        .with_grace(cg),
        Assertion::new(
            "A16",
            "wheel-speed jitter (per-cycle dispersion) stays bounded",
            Severity::Critical,
            Condition::AtMost {
                expr: SignalExpr::signal(sig::WHEEL_JITTER),
                limit: t.a16_max_wheel_jitter,
            },
        )
        .with_temporal(Temporal::Sustained(0.3))
        .with_grace(cg),
    ];
    if let Some(goal) = config.goal_distance {
        catalog.push(
            Assertion::new(
                "A12",
                "the goal is eventually reached",
                Severity::Warning,
                Condition::AtLeast {
                    expr: SignalExpr::signal(sig::PROGRESS),
                    limit: goal * t.a12_goal_fraction,
                },
            )
            .with_temporal(Temporal::Eventually),
        );
    }
    catalog.sort_by(|a, b| {
        // Sort numerically on the id suffix so A2 < A10.
        let num = |a: &Assertion| a.id.as_str()[1..].parse::<u32>().unwrap_or(u32::MAX);
        num(a).cmp(&num(b))
    });
    catalog
}

/// All signals read by a catalog, deduplicated and sorted by name — the
/// input set the compiled evaluation plan interns up front.
pub fn signals(catalog: &[Assertion]) -> Vec<SignalId> {
    let mut out: Vec<SignalId> = catalog.iter().flat_map(Assertion::signals).collect();
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn catalog_has_sixteen_assertions_with_goal() {
        let cfg = CatalogConfig::default().with_goal_distance(100.0);
        let cat = build(&cfg);
        assert_eq!(cat.len(), 16);
        let ids: HashSet<_> = cat.iter().map(|a| a.id.as_str().to_owned()).collect();
        for i in 1..=16 {
            assert!(ids.contains(&format!("A{i}")), "missing A{i}");
        }
    }

    #[test]
    fn a12_requires_goal_distance() {
        let cat = build(&CatalogConfig::default());
        assert_eq!(cat.len(), 15);
        assert!(cat.iter().all(|a| a.id.as_str() != "A12"));
    }

    #[test]
    fn catalog_is_sorted_numerically() {
        let cfg = CatalogConfig::default().with_goal_distance(100.0);
        let cat = build(&cfg);
        let ids: Vec<&str> = cat.iter().map(|a| a.id.as_str()).collect();
        assert_eq!(ids[0], "A1");
        assert_eq!(ids[1], "A2");
        assert_eq!(ids[9], "A10");
        assert_eq!(ids[15], "A16");
    }

    #[test]
    fn catalog_signals_are_unique_sorted_and_well_known() {
        let cfg = CatalogConfig::default().with_goal_distance(100.0);
        let sigs = signals(&build(&cfg));
        assert!(!sigs.is_empty());
        assert!(sigs.windows(2).all(|w| w[0] < w[1]), "sorted, deduped");
        for s in &sigs {
            assert!(
                s.well_known_index().is_some(),
                "{s} should be a canonical name"
            );
        }
    }

    #[test]
    fn thresholds_flow_into_conditions() {
        let t = Thresholds {
            a1_max_xtrack: 9.9,
            ..Thresholds::default()
        };
        let cfg = CatalogConfig::default().with_thresholds(t);
        let cat = build(&cfg);
        let a1 = cat.iter().find(|a| a.id.as_str() == "A1").unwrap();
        assert_eq!(a1.condition.threshold(), 9.9);
    }

    #[test]
    fn goal_assertion_uses_fraction() {
        let cfg = CatalogConfig::default().with_goal_distance(200.0);
        let cat = build(&cfg);
        let a12 = cat.iter().find(|a| a.id.as_str() == "A12").unwrap();
        assert!((a12.condition.threshold() - 180.0).abs() < 1e-9);
        assert_eq!(a12.temporal, Temporal::Eventually);
    }

    #[test]
    fn every_assertion_references_known_signals() {
        let cfg = CatalogConfig::default().with_goal_distance(100.0);
        for a in build(&cfg) {
            for s in a.condition.signals() {
                assert!(
                    adassure_trace::well_known::ALL.contains(&s.as_str()),
                    "{} references unknown signal {s}",
                    a.id
                );
            }
        }
    }

    #[test]
    fn severities_are_assigned() {
        let cat = build(&CatalogConfig::default());
        let criticals = cat
            .iter()
            .filter(|a| a.severity == Severity::Critical)
            .count();
        assert!(criticals >= 6, "cross-consistency checks are critical");
    }
}
