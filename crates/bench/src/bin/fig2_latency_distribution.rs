//! **F2 — Detection-latency distribution** across seeds, as a text
//! histogram per attack class (lane-change scenario, Stanley stack).
//!
//! Regenerate with:
//! `cargo run --release -p adassure-bench --bin fig2_latency_distribution`

use adassure_attacks::campaign::AttackSpec;
use adassure_attacks::Window;
use adassure_bench::{attacks_for, catalog_for, run_attacked};
use adassure_control::ControllerKind;
use adassure_scenarios::{Scenario, ScenarioKind};

fn main() {
    let scenario = Scenario::of_kind(ScenarioKind::LaneChange).expect("library scenario");
    let controller = ControllerKind::Stanley;
    let cat = catalog_for(&scenario);
    let seeds: Vec<u64> = (1..=10).collect();

    // Log-ish latency buckets (s).
    let edges = [0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 15.0, f64::INFINITY];
    let labels = ["<0.1", "<0.25", "<0.5", "<1", "<2", "<5", "<15", ">=15"];

    println!(
        "F2: detection-latency histogram over {} seeds (scenario `{}`, {} stack)\n",
        seeds.len(),
        scenario.kind,
        controller
    );
    print!("{:<20}", "attack");
    for l in labels {
        print!("{l:>7}");
    }
    println!("{:>7}", "miss");

    for attack in attacks_for(&scenario) {
        let spec = AttackSpec::new(attack.kind, Window::from_start(scenario.attack_start));
        let mut buckets = vec![0usize; edges.len()];
        let mut miss = 0usize;
        for &seed in &seeds {
            let (_, report) =
                run_attacked(&scenario, controller, &spec, seed, &cat).expect("attacked run");
            match report.detection_latency(spec.window.start) {
                Some(latency) => {
                    let idx = edges.iter().position(|&e| latency < e).expect("inf edge");
                    buckets[idx] += 1;
                }
                None => miss += 1,
            }
        }
        print!("{:<20}", attack.name());
        for b in &buckets {
            print!("{:>7}", if *b == 0 { ".".into() } else { b.to_string() });
        }
        println!("{:>7}", if miss == 0 { ".".into() } else { miss.to_string() });
    }
    println!("\n(cross-consistency detections cluster under 0.5 s; the stealthy");
    println!(" drift/wheel-freeze tail lands in the >=5 s buckets or misses.)");
}
