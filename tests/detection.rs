//! Detection integration: every attack class in the standard catalog is
//! detected on representative scenarios, with channel-appropriate
//! assertions firing.

use adassure::attacks::campaign::{standard_attacks, AttackSpec};
use adassure::attacks::{AttackKind, Channel, Window};
use adassure::control::ControllerKind;
use adassure::core::{catalog, checker, CheckReport};
use adassure::scenarios::{run, Scenario, ScenarioKind};
use adassure::sim::geometry::Vec2;

fn check_attacked(
    scenario: &Scenario,
    controller: ControllerKind,
    attack: &AttackSpec,
    seed: u64,
) -> CheckReport {
    let mut cfg = catalog::CatalogConfig::default();
    if !scenario.track.is_closed() {
        cfg = cfg.with_goal_distance(scenario.route_length());
    }
    let cat = catalog::build(&cfg);
    let mut injector = attack.injector(seed);
    let out = run::with_tap(scenario, controller, seed, &mut injector).expect("simulation");
    checker::check(&cat, &out.trace)
}

#[test]
fn every_standard_attack_is_detected_on_the_s_curve() {
    let scenario = Scenario::of_kind(ScenarioKind::SCurve).unwrap();
    for attack in standard_attacks(scenario.attack_start) {
        let report = check_attacked(&scenario, ControllerKind::PurePursuit, &attack, 1);
        assert!(
            report.detection_latency(attack.window.start).is_some(),
            "{} was not detected: {}",
            attack.name(),
            report.summary()
        );
    }
}

#[test]
fn fast_attacks_are_detected_within_a_second() {
    let scenario = Scenario::of_kind(ScenarioKind::Straight).unwrap();
    for attack in standard_attacks(scenario.attack_start) {
        // Drift and wheel-freeze are stealthy by design; everything else
        // should be flagged almost immediately.
        if matches!(
            attack.kind,
            AttackKind::GnssDrift { .. } | AttackKind::WheelSpeedFreeze
        ) {
            continue;
        }
        let report = check_attacked(&scenario, ControllerKind::Stanley, &attack, 2);
        let latency = report
            .detection_latency(attack.window.start)
            .unwrap_or_else(|| panic!("{} undetected", attack.name()));
        assert!(
            latency < 1.0,
            "{} latency {latency:.2}s too slow",
            attack.name()
        );
    }
}

#[test]
fn gnss_attacks_fire_gnss_signature_assertions() {
    let scenario = Scenario::of_kind(ScenarioKind::Straight).unwrap();
    for attack in standard_attacks(scenario.attack_start)
        .into_iter()
        .filter(|a| a.kind.channel() == Channel::Gnss)
    {
        // Slow drift is the documented exception: it evades the
        // consistency checks and surfaces behaviourally.
        if matches!(attack.kind, AttackKind::GnssDrift { .. }) {
            continue;
        }
        let report = check_attacked(&scenario, ControllerKind::PurePursuit, &attack, 3);
        let ids = report.violated_ids();
        let signature_fired = ["A6", "A7", "A9", "A11", "A13"]
            .iter()
            .any(|s| ids.contains(*s));
        assert!(
            signature_fired,
            "{}: no GNSS-signature assertion fired, only {ids:?}",
            attack.name()
        );
    }
}

#[test]
fn imu_bias_fires_the_kinematic_consistency_check() {
    let scenario = Scenario::of_kind(ScenarioKind::Straight).unwrap();
    let attack = AttackSpec::new(
        AttackKind::ImuYawBias { bias: 0.08 },
        Window::from_start(scenario.attack_start),
    );
    let report = check_attacked(&scenario, ControllerKind::Lqr, &attack, 4);
    assert!(
        report.violations_of("A8").next().is_some(),
        "{}",
        report.summary()
    );
}

#[test]
fn compass_step_fires_the_compass_rate_check() {
    let scenario = Scenario::of_kind(ScenarioKind::Straight).unwrap();
    let attack = AttackSpec::new(
        AttackKind::CompassBias { bias: 0.25 },
        Window::from_start(scenario.attack_start),
    );
    let report = check_attacked(&scenario, ControllerKind::PurePursuit, &attack, 5);
    let a14 = report
        .violations_of("A14")
        .next()
        .expect("A14 must catch the bias step");
    // The step is caught at onset, within one GNSS-cycle of activation.
    assert!(
        (a14.detected - scenario.attack_start) < 0.2,
        "A14 late: {:.2}",
        a14.detected
    );
}

#[test]
fn dropout_fires_freshness_and_nothing_gnss_positional() {
    let scenario = Scenario::of_kind(ScenarioKind::Straight).unwrap();
    let attack = AttackSpec::new(
        AttackKind::GnssDropout,
        Window::from_start(scenario.attack_start),
    );
    let report = check_attacked(&scenario, ControllerKind::PurePursuit, &attack, 6);
    assert!(report.violations_of("A13").next().is_some());
    // With no fixes arriving, the jump check has nothing to fire on.
    assert_eq!(
        report
            .violations_of("A7")
            .filter(|v| v.detected >= scenario.attack_start)
            .count(),
        0
    );
}

#[test]
fn attack_magnitude_scales_detectability() {
    use adassure::attacks::campaign::scale_attack;
    let scenario = Scenario::of_kind(ScenarioKind::Straight).unwrap();
    let base = AttackKind::GnssBias {
        offset: Vec2::new(2.5, -2.0),
    };
    // A tiny bias hides inside sensor noise; the standard one is caught.
    let tiny = AttackSpec::new(
        scale_attack(base, 0.1),
        Window::from_start(scenario.attack_start),
    );
    let tiny_report = check_attacked(&scenario, ControllerKind::PurePursuit, &tiny, 7);
    let standard = AttackSpec::new(base, Window::from_start(scenario.attack_start));
    let std_report = check_attacked(&scenario, ControllerKind::PurePursuit, &standard, 7);
    assert!(std_report
        .detection_latency(scenario.attack_start)
        .is_some());
    let tiny_latency = tiny_report.detection_latency(scenario.attack_start);
    let std_latency = std_report.detection_latency(scenario.attack_start);
    if let (Some(t), Some(s)) = (tiny_latency, std_latency) {
        assert!(t >= s, "weaker attack detected faster: {t} < {s}");
    }
}

#[test]
fn wheel_noise_is_caught_by_the_jitter_assertion() {
    let scenario = Scenario::of_kind(ScenarioKind::Straight).unwrap();
    let attack = AttackSpec::new(
        AttackKind::WheelSpeedNoise { std_dev: 2.5 },
        Window::from_start(scenario.attack_start),
    );
    let report = check_attacked(&scenario, ControllerKind::PurePursuit, &attack, 9);
    // Zero-mean noise cannot sustain a level assertion; the dispersion
    // check is the designed witness.
    assert!(
        report.violations_of("A16").next().is_some(),
        "{}",
        report.summary()
    );
}

#[test]
fn imu_gain_fault_is_invisible_until_turning() {
    // On a straight road there is no yaw to scale: undetected.
    let straight = Scenario::of_kind(ScenarioKind::Straight).unwrap();
    let attack = AttackSpec::new(
        AttackKind::ImuYawScale { factor: 1.6 },
        Window::from_start(straight.attack_start),
    );
    let report = check_attacked(&straight, ControllerKind::PurePursuit, &attack, 10);
    assert!(
        report.detection_latency(straight.attack_start).is_none(),
        "gain fault should hide on a straight road: {}",
        report.summary()
    );
    // In a curve the scaled yaw rate violates the kinematic consistency.
    let curve = Scenario::of_kind(ScenarioKind::SCurve).unwrap();
    let attack = AttackSpec::new(
        AttackKind::ImuYawScale { factor: 1.6 },
        Window::from_start(curve.attack_start),
    );
    let report = check_attacked(&curve, ControllerKind::PurePursuit, &attack, 10);
    assert!(report.violations_of("A8").next().is_some());
}

#[test]
fn extended_campaign_is_detected_on_curved_scenarios() {
    use adassure::attacks::campaign::extended_attacks;
    let scenario = Scenario::of_kind(ScenarioKind::SCurve).unwrap();
    for attack in extended_attacks(scenario.attack_start) {
        let report = check_attacked(&scenario, ControllerKind::PurePursuit, &attack, 11);
        assert!(
            report.detection_latency(attack.window.start).is_some(),
            "{} was not detected: {}",
            attack.name(),
            report.summary()
        );
    }
}

#[test]
fn windowed_attack_stops_firing_after_the_window() {
    let scenario = Scenario::of_kind(ScenarioKind::Straight).unwrap();
    let attack = AttackSpec::new(
        AttackKind::GnssBias {
            offset: Vec2::new(3.0, 0.0),
        },
        Window::new(12.0, 20.0),
    );
    let report = check_attacked(&scenario, ControllerKind::PurePursuit, &attack, 8);
    assert!(report.detection_latency(12.0).is_some(), "attack detected");
    // Well after the window closes (allowing recovery), no fresh episodes.
    let late = report.violations.iter().filter(|v| v.onset > 28.0).count();
    assert_eq!(
        late,
        0,
        "assertions kept firing after recovery:\n{}",
        report.summary()
    );
}
