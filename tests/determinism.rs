//! Determinism and robustness properties of the whole stack.

use adassure::attacks::campaign::standard_attacks;
use adassure::control::ControllerKind;
use adassure::core::{catalog, checker};
use adassure::scenarios::{run, Scenario, ScenarioKind};
use proptest::prelude::*;

#[test]
fn full_campaign_is_bit_identical_under_one_seed() {
    let scenario = Scenario::of_kind(ScenarioKind::LaneChange).unwrap();
    let cat = catalog::build(
        &catalog::CatalogConfig::default().with_goal_distance(scenario.route_length()),
    );
    let attacks = standard_attacks(scenario.attack_start);
    let attack = attacks.iter().find(|a| a.name() == "gnss_noise").unwrap();
    let run_once = || {
        let mut injector = attack.injector(77);
        let out = run::with_tap(&scenario, ControllerKind::Mpc, 77, &mut injector).unwrap();
        let report = checker::check(&cat, &out.trace);
        (out.trace, report)
    };
    let (trace_a, report_a) = run_once();
    let (trace_b, report_b) = run_once();
    assert_eq!(trace_a, trace_b);
    assert_eq!(report_a, report_b);
}

#[test]
fn different_seeds_differ_but_stay_clean() {
    let scenario = Scenario::of_kind(ScenarioKind::Straight).unwrap();
    let cat = catalog::build(
        &catalog::CatalogConfig::default().with_goal_distance(scenario.route_length()),
    );
    let mut previous = None;
    for seed in [100, 200, 300] {
        let out = run::clean(&scenario, ControllerKind::PurePursuit, seed).unwrap();
        let report = checker::check(&cat, &out.trace);
        assert!(report.is_clean(), "seed {seed}: {}", report.summary());
        if let Some(prev) = previous.replace(out.trace) {
            assert_ne!(prev, *previous.as_ref().unwrap());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Arbitrary (bounded) attack magnitudes never crash the simulator or
    /// checker — the loop and monitor are total functions of their input.
    #[test]
    fn arbitrary_gnss_bias_never_panics(
        dx in -50.0f64..50.0,
        dy in -50.0f64..50.0,
        start in 5.0f64..40.0,
        seed in 0u64..1000,
    ) {
        use adassure::attacks::{campaign::AttackSpec, AttackKind, Window};
        use adassure::sim::geometry::Vec2;

        let mut scenario = Scenario::of_kind(ScenarioKind::Straight).unwrap();
        scenario.duration = 45.0; // keep property runs quick
        let cat = catalog::build(
            &catalog::CatalogConfig::default().with_goal_distance(scenario.route_length()),
        );
        let attack = AttackSpec::new(
            AttackKind::GnssBias { offset: Vec2::new(dx, dy) },
            Window::from_start(start),
        );
        let mut injector = attack.injector(seed);
        let out = run::with_tap(&scenario, ControllerKind::Stanley, seed, &mut injector)
            .expect("simulation must stay finite");
        prop_assert!(out.final_state.is_finite());
        let report = checker::check(&cat, &out.trace);
        // Reports are well-formed: onset precedes detection.
        for v in &report.violations {
            prop_assert!(v.onset <= v.detected + 1e-9);
        }
    }

    /// Wheel-speed scaling across a wide factor range keeps the loop finite
    /// and the report well-formed.
    #[test]
    fn arbitrary_wheel_scale_never_panics(
        factor in 0.0f64..3.0,
        seed in 0u64..1000,
    ) {
        use adassure::attacks::{campaign::AttackSpec, AttackKind, Window};

        let mut scenario = Scenario::of_kind(ScenarioKind::Straight).unwrap();
        scenario.duration = 40.0;
        let cat = catalog::build(&catalog::CatalogConfig::default());
        let attack = AttackSpec::new(
            AttackKind::WheelSpeedScale { factor },
            Window::from_start(10.0),
        );
        let mut injector = attack.injector(seed);
        let out = run::with_tap(&scenario, ControllerKind::PurePursuit, seed, &mut injector)
            .expect("simulation must stay finite");
        prop_assert!(out.final_state.is_finite());
        let _ = checker::check(&cat, &out.trace);
    }
}
