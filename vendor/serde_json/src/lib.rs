//! Offline vendored stand-in for `serde_json`.
//!
//! Provides the API subset the workspace uses — [`to_string`],
//! [`to_string_pretty`] and [`from_str`] — against the vendored `serde`
//! stub. Output follows serde_json conventions: compact form has no
//! whitespace, pretty form indents with two spaces; structs are objects,
//! enums are externally tagged.

#![warn(missing_docs)]

use serde::de::{Content, ContentDeserializer, DeserializeOwned};
use serde::ser::{self, Serialize};
use std::fmt;

mod read;
mod write;

/// Serialization or parse error.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: ?Sized + Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    value.serialize(write::JsonSerializer::compact(&mut out))?;
    Ok(out)
}

/// Serializes `value` as a two-space-indented JSON string.
pub fn to_string_pretty<T: ?Sized + Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    value.serialize(write::JsonSerializer::pretty(&mut out))?;
    Ok(out)
}

/// Serializes `value` as compact JSON bytes.
pub fn to_vec<T: ?Sized + Serialize>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Deserializes a `T` from a JSON string.
pub fn from_str<T: DeserializeOwned>(input: &str) -> Result<T> {
    let content = read::parse(input)?;
    T::deserialize(ContentDeserializer::<Error>::new(content))
}

/// Deserializes a `T` from JSON bytes.
pub fn from_slice<T: DeserializeOwned>(input: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(input)
        .map_err(|e| Error(format!("invalid UTF-8 in JSON input: {e}")))?;
    from_str(s)
}

/// Parses a JSON string into the generic [`Content`] tree.
pub fn parse_content(input: &str) -> Result<Content> {
    read::parse(input)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::de::Content;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string("hi").unwrap(), "\"hi\"");
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<u64>(" 42 ").unwrap(), 42);
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<f64>("3").unwrap(), 3.0);
        assert_eq!(from_str::<String>("\"hi\"").unwrap(), "hi");
    }

    #[test]
    fn string_escapes() {
        let s = "a\"b\\c\nd\te\u{1}";
        let json = to_string(&s.to_string()).unwrap();
        assert_eq!(json, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![1u64, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        assert_eq!(from_str::<Vec<u64>>(&json).unwrap(), v);

        let mut m = std::collections::BTreeMap::new();
        m.insert("a".to_string(), 1.5f64);
        m.insert("b".to_string(), 2.0);
        let json = to_string(&m).unwrap();
        assert_eq!(json, "{\"a\":1.5,\"b\":2}");
        let back: std::collections::BTreeMap<String, f64> = from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn options_and_null() {
        assert_eq!(to_string(&Option::<u64>::None).unwrap(), "null");
        assert_eq!(to_string(&Some(3u64)).unwrap(), "3");
        assert_eq!(from_str::<Option<u64>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u64>>("3").unwrap(), Some(3));
    }

    #[test]
    fn pretty_formatting() {
        let v = vec![vec![1u64], vec![]];
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "[\n  [\n    1\n  ],\n  []\n]"
        );
    }

    #[test]
    fn nonfinite_floats_serialize_as_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }

    #[test]
    fn parse_rejects_trailing_garbage() {
        assert!(from_str::<u64>("1 2").is_err());
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<Vec<u64>>("[1,]").is_err());
    }

    #[test]
    fn parses_nested_content() {
        let c = parse_content("{\"a\":[1,-2,3.5],\"b\":{\"c\":null}}").unwrap();
        match c {
            Content::Map(entries) => {
                assert_eq!(entries.len(), 2);
                assert_eq!(entries[0].0, "a");
                assert_eq!(
                    entries[0].1,
                    Content::Seq(vec![Content::U64(1), Content::I64(-2), Content::F64(3.5)])
                );
            }
            other => panic!("expected map, got {other:?}"),
        }
    }
}
