//! Dumps the monitor's observability snapshot for a seeded campaign
//! slice: runs the cells through the observed checker, merges the
//! per-cell metrics deterministically (cell order) and prints the result
//! as Prometheus text exposition (default) or a pretty JSON snapshot
//! (`--json`).
//!
//! Unlike the campaign report's embedded [`adassure_obs::ObsSummary`],
//! this dump is the *full* [`adassure_obs::MetricsSnapshot`], including
//! the wall-clock `eval_cycle_ns` histogram — the dump is for operators,
//! not for byte-reproducible results files.
//!
//! Observability is configured from `ADASSURE_OBS` / `ADASSURE_OBS_PATH`
//! (set the latter to also write the structured JSONL event log); when
//! `ADASSURE_OBS` is unset the dump defaults to fully enabled, because
//! dumping with observability off would be pointless.
//!
//! Usage: `obs_dump [--smoke] [--json]`.

use adassure_control::ControllerKind;
use adassure_exp::campaign::{self, standard_catalog};
use adassure_exp::grid::AttackSet;
use adassure_exp::{par, Grid};
use adassure_obs::{
    export, Event, EventSink, JsonlWriter, MetricsSnapshot, ObsConfig, VecSink, OBS_ENV,
};
use adassure_scenarios::{Scenario, ScenarioKind};

fn main() {
    let smoke = std::env::args().any(|arg| arg == "--smoke");
    let as_json = std::env::args().any(|arg| arg == "--json");

    let mut obs = ObsConfig::from_env();
    if !obs.events && std::env::var(OBS_ENV).is_err() {
        let path = obs.jsonl_path.take();
        obs = ObsConfig::enabled();
        obs.jsonl_path = path;
    }

    let (scenarios, seeds): (Vec<_>, Vec<u64>) = if smoke {
        (vec![ScenarioKind::Straight], vec![1])
    } else {
        (
            vec![ScenarioKind::Straight, ScenarioKind::SCurve],
            vec![1, 2],
        )
    };
    let grid = Grid::new()
        .scenarios(scenarios)
        .controllers([ControllerKind::PurePursuit])
        .attacks(AttackSet::Standard)
        .include_clean(true)
        .seeds(seeds);
    let cells = grid.cells();

    let mut catalogs: Vec<(ScenarioKind, Vec<adassure_core::Assertion>)> = Vec::new();
    for cell in &cells {
        if !catalogs.iter().any(|(kind, _)| *kind == cell.scenario) {
            let scenario = Scenario::of_kind(cell.scenario).expect("library scenario");
            catalogs.push((cell.scenario, standard_catalog(&scenario)));
        }
    }

    let collect_events = obs.events && obs.jsonl_path.is_some();
    let outcomes = par::map(&cells, |spec| {
        let cat = &catalogs
            .iter()
            .find(|(kind, _)| *kind == spec.scenario)
            .expect("catalog resolved")
            .1;
        let sink: Box<dyn EventSink> = if collect_events {
            Box::new(VecSink::default())
        } else {
            Box::new(adassure_obs::NullSink)
        };
        let (output, report, metrics, sink) =
            campaign::execute_observed(spec, cat, &obs, sink).expect("library slice runs");
        let latency = report
            .first_detection_after(spec.alarm_start())
            .map(|v| v.detected - spec.alarm_start());
        std::hint::black_box(output.reached_goal);
        let events = sink.map(|mut s| s.take_events()).unwrap_or_default();
        (metrics, latency, events)
    });

    let mut merged = MetricsSnapshot::empty();
    let mut events: Vec<Event> = Vec::new();
    for (metrics, latency, cell_events) in outcomes {
        merged.merge(&metrics);
        if let Some(latency) = latency {
            merged.detection_latency_s.record(latency);
        }
        events.extend(cell_events);
    }

    if let Some(path) = &obs.jsonl_path {
        let file = std::fs::File::create(path).expect("create event log");
        let mut writer = JsonlWriter::new(std::io::BufWriter::new(file));
        for ev in &events {
            writer.emit(*ev);
        }
        writer.flush().expect("flush event log");
        eprintln!("wrote {} events to {}", writer.lines(), path.display());
    }

    if as_json {
        println!("{}", export::json(&merged));
    } else {
        print!("{}", export::prometheus(&merged));
    }

    if let (Some(p50), Some(p99)) = (merged.eval_cycle_ns.p50(), merged.eval_cycle_ns.p99()) {
        eprintln!(
            "eval cycle latency: p50 <= {p50:.0} ns, p99 <= {p99:.0} ns over {} cycles",
            merged.eval_cycle_ns.count
        );
    }
}
