//! Time-travel debugging for ADAssure runs.
//!
//! A violating campaign run is a deterministic program: scenario + stack +
//! seed + attack timeline fix every byte of its trace. This crate exploits
//! that to give the three debugging primitives the methodology calls for:
//!
//! - [`checkpoint`] — a versioned binary [`SimCheckpoint`] capturing the
//!   *complete* mid-run state (engine loop, controller stack, attack
//!   injectors, online checker, optionally a guardian), restorable
//!   bit-identically;
//! - [`session`] — a [`DebugSession`] that steps a run cycle by cycle with
//!   an online checker in the loop, captures periodic checkpoints, and
//!   replays to any cycle (nearest checkpoint + deterministic
//!   fast-forward) where [`DebugSession::inspect`] dumps signals,
//!   compiled-expression values, per-assertion verdicts/health and
//!   violations;
//! - [`minimize`] — a ddmin-style minimizer shrinking a violating attack
//!   timeline (fewest entries, shortest windows, smallest magnitudes) to a
//!   1-minimal repro, re-verified by re-execution and emitted as a
//!   self-contained [`adassure_scenarios::ReproCase`] file the campaign
//!   engine re-runs via `adassure_exp::rerun::run_repro`.
//!
//! # Example
//!
//! ```
//! use adassure_debug::session::{DebugSession, DebugSpec};
//! use adassure_attacks::AttackTimeline;
//! use adassure_control::pipeline::EstimatorKind;
//! use adassure_control::ControllerKind;
//! use adassure_scenarios::ScenarioKind;
//!
//! # fn main() -> Result<(), adassure_debug::DebugError> {
//! let spec = DebugSpec {
//!     scenario: ScenarioKind::Straight,
//!     controller: ControllerKind::PurePursuit,
//!     estimator: EstimatorKind::Complementary,
//!     seed: 1,
//!     timeline: AttackTimeline::new([]),
//! };
//! let mut session = DebugSession::new(&spec, 500)?;
//! session.run_to(100)?;
//! let dump = session.inspect();
//! assert_eq!(dump.cycle, 100);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fmt;

use adassure_core::codec::CodecError;
use adassure_scenarios::ReproError;
use adassure_sim::SimError;

pub mod checkpoint;
pub mod minimize;
pub mod session;

pub use checkpoint::{DriverState, SimCheckpoint};
pub use minimize::{minimize, MinimizeConfig, Minimized};
pub use session::{AssertionDump, DebugSession, DebugSpec, StateDump};

/// Failure of a debug-session, replay or minimization operation.
#[derive(Debug)]
pub enum DebugError {
    /// The underlying simulation failed.
    Sim(SimError),
    /// Encoding or decoding a checkpoint failed.
    Codec(CodecError),
    /// A captured state does not fit the session it is restored into.
    Restore(String),
    /// The online checker rejected a cycle (non-monotone time — a bug in
    /// the replay loop, surfaced as an error instead of a panic).
    Checker(String),
    /// Reading or writing a repro file failed.
    Repro(ReproError),
    /// The run to minimize raises no violation, so there is nothing to
    /// reproduce.
    NoViolation,
    /// The request itself is invalid (unknown name, cycle past the end of
    /// the run, empty timeline).
    BadSpec(String),
}

impl fmt::Display for DebugError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DebugError::Sim(e) => write!(f, "simulation: {e}"),
            DebugError::Codec(e) => write!(f, "checkpoint codec: {e}"),
            DebugError::Restore(message) => write!(f, "restore: {message}"),
            DebugError::Checker(message) => write!(f, "checker: {message}"),
            DebugError::Repro(e) => write!(f, "repro file: {e}"),
            DebugError::NoViolation => {
                write!(f, "the run raises no violation; nothing to minimize")
            }
            DebugError::BadSpec(message) => write!(f, "bad request: {message}"),
        }
    }
}

impl std::error::Error for DebugError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DebugError::Sim(e) => Some(e),
            DebugError::Codec(e) => Some(e),
            DebugError::Repro(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for DebugError {
    fn from(e: SimError) -> Self {
        DebugError::Sim(e)
    }
}

impl From<CodecError> for DebugError {
    fn from(e: CodecError) -> Self {
        DebugError::Codec(e)
    }
}

impl From<ReproError> for DebugError {
    fn from(e: ReproError) -> Self {
        DebugError::Repro(e)
    }
}
