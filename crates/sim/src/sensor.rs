//! Sensor models: GNSS, wheel odometer, IMU and compass.
//!
//! Every control cycle the engine asks the [`SensorSuite`] for a
//! [`SensorFrame`]; attack taps then mutate the frame *in place* before the
//! driver sees it — exactly where a spoofing attack lands on a real
//! platform. GNSS runs at its own (lower) update rate, so its field is an
//! `Option` that is `Some` only on fix cycles.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::geometry::Vec2;
use crate::noise::Gaussian;
use crate::vehicle::VehicleState;

/// One cycle's worth of sensor readings, *after* any attack taps.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensorFrame {
    /// Timestamp (s).
    pub time: f64,
    /// GNSS position fix, present only on GNSS update cycles.
    pub gnss: Option<Vec2>,
    /// Wheel-odometry speed (m/s).
    pub wheel_speed: f64,
    /// IMU yaw rate (rad/s).
    pub imu_yaw_rate: f64,
    /// IMU longitudinal acceleration (m/s²).
    pub imu_accel: f64,
    /// Compass heading (rad).
    pub compass: f64,
}

/// Noise and rate configuration of the sensor suite.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensorConfig {
    /// GNSS fix rate (Hz).
    pub gnss_rate_hz: f64,
    /// GNSS per-axis position noise.
    pub gnss_noise: Gaussian,
    /// Wheel-speed noise.
    pub wheel_noise: Gaussian,
    /// Wheel-speed quantisation step (m/s); zero disables quantisation.
    pub wheel_quantum: f64,
    /// IMU yaw-rate noise.
    pub imu_yaw_noise: Gaussian,
    /// IMU longitudinal-acceleration noise.
    pub imu_accel_noise: Gaussian,
    /// Compass heading noise.
    pub compass_noise: Gaussian,
}

impl SensorConfig {
    /// Realistic automotive-grade defaults (10 Hz GNSS at 0.3 m, 1σ).
    pub fn automotive() -> Self {
        SensorConfig {
            gnss_rate_hz: 10.0,
            gnss_noise: Gaussian::new(0.0, 0.3),
            wheel_noise: Gaussian::new(0.0, 0.05),
            wheel_quantum: 0.01,
            imu_yaw_noise: Gaussian::new(0.0, 0.005),
            imu_accel_noise: Gaussian::new(0.0, 0.05),
            compass_noise: Gaussian::new(0.0, 0.01),
        }
    }

    /// Noiseless sensors at the same rates — used for golden runs and tests
    /// that need exact arithmetic.
    pub fn ideal() -> Self {
        SensorConfig {
            gnss_rate_hz: 10.0,
            gnss_noise: Gaussian::none(),
            wheel_noise: Gaussian::none(),
            wheel_quantum: 0.0,
            imu_yaw_noise: Gaussian::none(),
            imu_accel_noise: Gaussian::none(),
            compass_noise: Gaussian::none(),
        }
    }
}

impl Default for SensorConfig {
    fn default() -> Self {
        SensorConfig::automotive()
    }
}

/// Stateful sensor suite producing one [`SensorFrame`] per control cycle.
#[derive(Debug, Clone)]
pub struct SensorSuite {
    config: SensorConfig,
    gnss_every: usize,
    cycle: usize,
}

impl SensorSuite {
    /// Creates a suite for a control loop running at fixed step `dt`.
    ///
    /// The GNSS decimation factor is derived from `dt` and
    /// [`SensorConfig::gnss_rate_hz`], with a minimum of one fix per cycle.
    pub fn new(config: SensorConfig, dt: f64) -> Self {
        let gnss_every = if config.gnss_rate_hz > 0.0 {
            ((1.0 / (config.gnss_rate_hz * dt)).round() as usize).max(1)
        } else {
            usize::MAX
        };
        SensorSuite {
            config,
            gnss_every,
            cycle: 0,
        }
    }

    /// The suite's configuration.
    pub fn config(&self) -> &SensorConfig {
        &self.config
    }

    /// Number of control cycles between GNSS fixes.
    pub fn gnss_decimation(&self) -> usize {
        self.gnss_every
    }

    /// The number of cycles sensed so far (the suite's only mutable state).
    pub fn cycle(&self) -> usize {
        self.cycle
    }

    /// Rewinds/forwards the cycle counter — checkpoint restore only; the
    /// caller is responsible for pairing it with the matching RNG state.
    pub fn restore_cycle(&mut self, cycle: usize) {
        self.cycle = cycle;
    }

    /// Produces the sensor frame for the current cycle and advances the
    /// cycle counter.
    ///
    /// `true_accel` is the longitudinal acceleration actually applied by the
    /// drivetrain this cycle (the IMU measures physics, not the command).
    pub fn sense<R: Rng + ?Sized>(
        &mut self,
        state: &VehicleState,
        true_accel: f64,
        time: f64,
        rng: &mut R,
    ) -> SensorFrame {
        let gnss = if self.cycle.is_multiple_of(self.gnss_every) {
            Some(Vec2::new(
                state.position.x + self.config.gnss_noise.sample(rng),
                state.position.y + self.config.gnss_noise.sample(rng),
            ))
        } else {
            None
        };
        let mut wheel = state.speed + self.config.wheel_noise.sample(rng);
        if self.config.wheel_quantum > 0.0 {
            wheel = (wheel / self.config.wheel_quantum).round() * self.config.wheel_quantum;
        }
        let frame = SensorFrame {
            time,
            gnss,
            wheel_speed: wheel.max(0.0),
            imu_yaw_rate: state.yaw_rate + self.config.imu_yaw_noise.sample(rng),
            imu_accel: true_accel + self.config.imu_accel_noise.sample(rng),
            compass: crate::geometry::wrap_angle(
                state.heading + self.config.compass_noise.sample(rng),
            ),
        };
        self.cycle += 1;
        frame
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn moving_state() -> VehicleState {
        let mut s = VehicleState::at([10.0, -5.0], 0.3);
        s.speed = 7.0;
        s.yaw_rate = 0.1;
        s
    }

    #[test]
    fn ideal_sensors_report_truth() {
        let mut suite = SensorSuite::new(SensorConfig::ideal(), 0.01);
        let mut rng = SmallRng::seed_from_u64(0);
        let f = suite.sense(&moving_state(), 1.5, 0.0, &mut rng);
        let fix = f.gnss.unwrap();
        assert_eq!(fix, Vec2::new(10.0, -5.0));
        assert_eq!(f.wheel_speed, 7.0);
        assert_eq!(f.imu_yaw_rate, 0.1);
        assert_eq!(f.imu_accel, 1.5);
        assert!((f.compass - 0.3).abs() < 1e-12);
    }

    #[test]
    fn gnss_decimation_follows_rate() {
        // 100 Hz loop, 10 Hz GNSS → fix every 10 cycles.
        let mut suite = SensorSuite::new(SensorConfig::ideal(), 0.01);
        assert_eq!(suite.gnss_decimation(), 10);
        let mut rng = SmallRng::seed_from_u64(0);
        let state = moving_state();
        let mut fixes = 0;
        for i in 0..100 {
            let f = suite.sense(&state, 0.0, i as f64 * 0.01, &mut rng);
            if f.gnss.is_some() {
                fixes += 1;
            }
        }
        assert_eq!(fixes, 10);
    }

    #[test]
    fn zero_gnss_rate_disables_fixes_after_first() {
        let mut config = SensorConfig::ideal();
        config.gnss_rate_hz = 0.0;
        let mut suite = SensorSuite::new(config, 0.01);
        let mut rng = SmallRng::seed_from_u64(0);
        let state = moving_state();
        let first = suite.sense(&state, 0.0, 0.0, &mut rng);
        assert!(first.gnss.is_some());
        for i in 1..50 {
            let f = suite.sense(&state, 0.0, i as f64 * 0.01, &mut rng);
            assert!(f.gnss.is_none());
        }
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let config = SensorConfig::automotive();
        let state = moving_state();
        let run = |seed| {
            let mut suite = SensorSuite::new(config, 0.01);
            let mut rng = SmallRng::seed_from_u64(seed);
            (0..20)
                .map(|i| suite.sense(&state, 0.0, i as f64 * 0.01, &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn wheel_speed_is_quantised_and_non_negative() {
        let mut config = SensorConfig::ideal();
        config.wheel_quantum = 0.5;
        config.wheel_noise = Gaussian::new(-10.0, 0.0); // large negative bias
        let mut suite = SensorSuite::new(config, 0.01);
        let mut rng = SmallRng::seed_from_u64(0);
        let f = suite.sense(&moving_state(), 0.0, 0.0, &mut rng);
        assert_eq!(f.wheel_speed, 0.0, "clamped at zero");

        let mut config = SensorConfig::ideal();
        config.wheel_quantum = 0.5;
        let mut suite = SensorSuite::new(config, 0.01);
        let mut state = moving_state();
        state.speed = 7.3;
        let f = suite.sense(&state, 0.0, 0.0, &mut rng);
        assert_eq!(f.wheel_speed, 7.5, "rounded to quantum");
    }

    #[test]
    fn gaussian_noise_scatters_gnss() {
        let mut suite = SensorSuite::new(SensorConfig::automotive(), 0.1);
        let mut rng = SmallRng::seed_from_u64(11);
        let state = moving_state();
        let mut max_err = 0.0f64;
        for i in 0..100 {
            let f = suite.sense(&state, 0.0, i as f64 * 0.1, &mut rng);
            let fix = f.gnss.expect("0.1 s step at 10 Hz fixes every cycle");
            max_err = max_err.max(fix.distance(state.position));
        }
        assert!(max_err > 0.1, "noise visible");
        assert!(max_err < 3.0, "noise bounded (4 sigma-ish)");
    }
}
