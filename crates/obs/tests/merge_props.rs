//! Properties of [`MetricsSnapshot::merge`]: per-shard merge order must
//! not be able to change exported metrics.
//!
//! The fleet server merges shard snapshots in shard order and campaign
//! cells merge in cell order, but neither order is fundamental — what
//! makes the exports deterministic is that merge is **associative** and
//! **order-insensitive up to list ordering**: every counter, grid cell
//! and histogram bucket ends up identical however the operands are
//! grouped or permuted, and only the *encounter order* of first-seen ids
//! depends on the merge order. The tests below check exactly that split:
//! associativity on the raw snapshots, permutation-insensitivity after
//! canonicalising list order.
//!
//! Histogram `sum` is an `f64`, so associativity of `+` only holds
//! exactly for integer-valued samples (< 2⁵³); the generators therefore
//! record integer values, which is also what the nanosecond timing path
//! records in practice.

use adassure_obs::{AssertionStats, Histogram, MetricsSnapshot, Transition, Verdict};
use proptest::collection::vec;
use proptest::prelude::*;
use proptest::strategy::Strategy;

const IDS: [&str; 4] = ["A1", "A2", "A7", "A12"];
const STATES: [&str; 3] = ["active", "degraded", "suspended"];

fn arb_hist(layout: fn() -> Histogram) -> impl Strategy<Value = Histogram> {
    vec(0u32..2_000_000, 0..16).prop_map(move |values| {
        let mut h = layout();
        for v in values {
            h.record(f64::from(v));
        }
        h
    })
}

/// Per-assertion stats over the shared id universe: unique ids per
/// snapshot (a single checker never repeats one), in a generator-chosen
/// order so permutation tests see differing encounter orders.
fn arb_assertions() -> impl Strategy<Value = Vec<AssertionStats>> {
    vec(
        (
            0usize..IDS.len(),
            (0u64..50, 0u64..50, 0u64..50, 0u64..50),
            0u64..10,
            0u64..5,
        ),
        0..6,
    )
    .prop_map(|entries| {
        let mut out: Vec<AssertionStats> = Vec::new();
        for (idx, (unknown, pass, inconclusive, violated), flips, episodes) in entries {
            if out.iter().any(|s| s.id == IDS[idx]) {
                continue;
            }
            let mut s = AssertionStats::new(IDS[idx]);
            for _ in 0..unknown {
                s.verdicts.record(Verdict::Unknown);
            }
            for _ in 0..pass {
                s.verdicts.record(Verdict::Pass);
            }
            for _ in 0..inconclusive {
                s.verdicts.record(Verdict::Inconclusive);
            }
            for _ in 0..violated {
                s.verdicts.record(Verdict::Violated);
            }
            s.flips = flips;
            s.episodes = episodes;
            out.push(s);
        }
        out
    })
}

fn arb_transitions() -> impl Strategy<Value = Vec<Transition>> {
    // Unique (from, to) pairs per snapshot — one sparse grid never
    // repeats a pair.
    vec((0usize..3, 0usize..3, 1u64..20), 0..5).prop_map(|cells| {
        let mut out: Vec<Transition> = Vec::new();
        for (from, to, count) in cells {
            if !out
                .iter()
                .any(|t| t.from == STATES[from] && t.to == STATES[to])
            {
                out.push(Transition {
                    from: STATES[from].into(),
                    to: STATES[to].into(),
                    count,
                });
            }
        }
        out
    })
}

fn arb_snapshot() -> impl Strategy<Value = MetricsSnapshot> {
    (
        0u64..1000,
        arb_assertions(),
        arb_transitions(),
        arb_transitions(),
        0u64..100,
        arb_hist(Histogram::nanos),
        arb_hist(Histogram::seconds),
    )
        .prop_map(
            |(cycles, assertions, health, guard, events, eval_ns, latency)| {
                let mut snap = MetricsSnapshot::empty();
                snap.cycles = cycles;
                snap.assertions = assertions;
                snap.health_transitions = health;
                snap.guard_transitions = guard;
                snap.events_emitted = events;
                snap.eval_cycle_ns = eval_ns;
                snap.detection_latency_s = latency;
                snap
            },
        )
}

fn merged(a: &MetricsSnapshot, b: &MetricsSnapshot) -> MetricsSnapshot {
    let mut out = a.clone();
    out.merge(b);
    out
}

/// Sorts the id-keyed lists so snapshots that differ only in encounter
/// order compare equal.
fn canonical(mut snap: MetricsSnapshot) -> MetricsSnapshot {
    snap.assertions.sort_by(|a, b| a.id.cmp(&b.id));
    let key = |t: &Transition| (t.from.clone(), t.to.clone());
    snap.health_transitions.sort_by_key(key);
    snap.guard_transitions.sort_by_key(key);
    snap
}

proptest! {
    #[test]
    fn merge_is_associative(
        a in arb_snapshot(),
        b in arb_snapshot(),
        c in arb_snapshot(),
    ) {
        let left = merged(&merged(&a, &b), &c);
        let right = merged(&a, &merged(&b, &c));
        prop_assert_eq!(left, right);
    }

    #[test]
    fn merge_is_order_insensitive_up_to_list_order(
        snaps in vec(arb_snapshot(), 1..5),
        seed in 0u64..u64::MAX,
    ) {
        let mut forward = MetricsSnapshot::empty();
        for s in &snaps {
            forward.merge(s);
        }
        // A seeded Fisher–Yates permutation of the same operands.
        let mut order: Vec<usize> = (0..snaps.len()).collect();
        let mut state = seed | 1;
        for i in (1..order.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (state >> 33) as usize % (i + 1));
        }
        let mut permuted = MetricsSnapshot::empty();
        for &i in &order {
            permuted.merge(&snaps[i]);
        }
        prop_assert_eq!(canonical(forward), canonical(permuted));
    }

    #[test]
    fn empty_is_the_merge_identity(a in arb_snapshot()) {
        prop_assert_eq!(merged(&MetricsSnapshot::empty(), &a), a.clone());
        prop_assert_eq!(merged(&a, &MetricsSnapshot::empty()), a);
    }

    #[test]
    fn merged_quantiles_match_pooled_recording(
        xs in vec(0u32..2_000_000, 1..40),
        ys in vec(0u32..2_000_000, 1..40),
    ) {
        let mut pooled = Histogram::nanos();
        let mut left = Histogram::nanos();
        let mut right = Histogram::nanos();
        for &x in &xs {
            pooled.record(f64::from(x));
            left.record(f64::from(x));
        }
        for &y in &ys {
            pooled.record(f64::from(y));
            right.record(f64::from(y));
        }
        left.merge(&right);
        prop_assert_eq!(left.p50(), pooled.p50());
        prop_assert_eq!(left.p99(), pooled.p99());
    }
}

#[test]
fn merge_counts_are_exact_across_three_shards() {
    let shard = |pass: u64, violated: u64| {
        let mut s = MetricsSnapshot::empty();
        s.cycles = pass + violated;
        let mut st = AssertionStats::new("A1");
        st.verdicts.pass = pass;
        st.verdicts.violated = violated;
        s.assertions.push(st);
        s
    };
    let (a, b, c) = (shard(10, 1), shard(20, 2), shard(30, 3));
    let total = merged(&merged(&a, &b), &c);
    assert_eq!(total.cycles, 66);
    assert_eq!(total.assertions[0].verdicts.pass, 60);
    assert_eq!(total.assertions[0].verdicts.violated, 6);
}
