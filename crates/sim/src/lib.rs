//! Deterministic 2-D driving-simulator substrate for the ADAssure
//! reproduction.
//!
//! The original ADAssure evaluation ran on a real autonomous-driving
//! platform; this crate substitutes it with a from-scratch simulator that
//! produces the same *signal classes* with realistic closed-loop coupling:
//!
//! * [`geometry`] — planar vectors, poses and angle arithmetic;
//! * [`vehicle`] — kinematic and dynamic bicycle models integrated with RK4;
//! * [`actuator`] — first-order-lag actuators with rate and range limits;
//! * [`sensor`] — GNSS / IMU / wheel-odometer / compass models with seeded
//!   noise and per-sensor update rates;
//! * [`track`] — arc-length-parameterised paths with projection and
//!   curvature queries;
//! * [`engine`] — the fixed-step closed-loop runner wiring sensors → (attack
//!   taps) → a [`engine::Driver`] → actuators → physics, recording every
//!   signal into an [`adassure_trace::Trace`].
//!
//! # Example
//!
//! ```
//! use adassure_sim::engine::{Driver, DriveCtx, Engine, SimConfig};
//! use adassure_sim::track::Track;
//! use adassure_sim::vehicle::Controls;
//! use adassure_trace::Trace;
//!
//! /// A driver that just holds the wheel straight at fixed throttle.
//! struct Cruise;
//! impl Driver for Cruise {
//!     fn control(&mut self, _ctx: &DriveCtx<'_>, _trace: &mut Trace) -> Controls {
//!         Controls { steer: 0.0, accel: 1.0 }
//!     }
//! }
//!
//! # fn main() -> Result<(), adassure_sim::SimError> {
//! let track = Track::line([0.0, 0.0], [200.0, 0.0], 1.0)?;
//! let config = SimConfig::new(10.0).with_seed(7);
//! let out = Engine::new(config, track).run(&mut Cruise)?;
//! assert!(out.final_state.speed > 1.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod actuator;
pub mod engine;
mod error;
pub mod geometry;
pub mod noise;
pub mod sensor;
pub mod track;
pub mod vehicle;

pub use error::SimError;
