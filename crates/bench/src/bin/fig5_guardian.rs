//! **F5 — Guardian mitigation (extension)**: worst-case *true* cross-track
//! error of attacked runs with the plain stack vs the same stack wrapped in
//! the runtime [`adassure::guardian::Guardian`] (safe-stop on critical
//! violations).
//!
//! Regenerate with:
//! `cargo run --release -p adassure-bench --bin fig5_guardian`

use adassure::guardian::{GuardState, Guardian, GuardianConfig};
use adassure_control::pipeline::AdStack;
use adassure_control::ControllerKind;
use adassure_exp::agg::fmt_mean_std;
use adassure_exp::campaign::{execute, standard_catalog};
use adassure_exp::grid::AttackSet;
use adassure_exp::{par, Grid, RunRecord};
use adassure_scenarios::{run, Scenario, ScenarioKind};

/// What one grid cell yields: the plain run's record plus the guarded
/// twin's damage and safe-stop delay.
struct GuardedCell {
    plain: RunRecord,
    guarded_worst: f64,
    engage_delay: Option<f64>,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for kind in ScenarioKind::GUARDIAN_SET {
        run_scenario(kind)?;
    }
    println!("\n(safe-stopping on the first critical violation bounds the physical");
    println!(" damage of every fast-detected attack; the stealthy drift class keeps");
    println!(" leaking error in proportion to its detection latency.)");
    Ok(())
}

fn run_scenario(kind: ScenarioKind) -> Result<(), Box<dyn std::error::Error>> {
    let scenario = Scenario::of_kind(kind)?;
    let controller = ControllerKind::PurePursuit;
    let seeds = [1u64, 2, 3];
    let cat = standard_catalog(&scenario);
    let grid = Grid::new()
        .scenarios([scenario.kind])
        .controllers([controller])
        .attacks(AttackSet::Standard)
        .seeds(seeds);

    let cells = grid.cells();
    let results = par::map(&cells, |spec| -> Result<GuardedCell, String> {
        // Plain stack, through the campaign executor.
        let (out, report) = execute(spec, &cat).map_err(|e| format!("cell {}: {e}", spec.index))?;
        let plain = RunRecord::from_run(spec, &out, &report);

        // Guarded twin: the same cell with the stack wrapped in the
        // Guardian (a driver the campaign executor cannot express).
        let attack = spec
            .attack
            .ok_or_else(|| format!("cell {}: guardian grid must be attacked", spec.index))?;
        let stack = AdStack::new(
            run::stack_config(&scenario, controller),
            scenario.track.clone(),
        );
        let mut guardian = Guardian::new(stack, cat.iter().cloned(), GuardianConfig::default());
        let mut injector = attack.injector(spec.seed);
        let out = run::engine_for(&scenario, spec.seed)
            .run_with_tap(&mut guardian, &mut injector)
            .map_err(|e| format!("guarded cell {}: {e}", spec.index))?;
        let engage_delay = match guardian.state() {
            GuardState::SafeStop { since, .. } => Some(since - attack.window.start),
            _ => None,
        };
        Ok(GuardedCell {
            plain,
            guarded_worst: adassure_exp::record::worst_xtrack_after(
                &out.trace,
                attack.window.start,
            ),
            engage_delay,
        })
    })
    .into_iter()
    .collect::<Result<Vec<_>, _>>()?;

    println!(
        "\nF5: guardian mitigation (scenario `{}`, {} stack, seeds {seeds:?})",
        scenario.kind, controller
    );
    println!("cells: worst |true cross-track error| after attack onset, mean±std (m)\n");
    println!(
        "{:<20} {:>16} {:>16} {:>14}",
        "attack", "plain stack", "guarded stack", "stop engaged"
    );

    for attack in AttackSet::Standard.specs(0.0) {
        let rows: Vec<&GuardedCell> = results
            .iter()
            .filter(|c| c.plain.attack.as_deref() == Some(attack.name()))
            .collect();
        let plain: Vec<f64> = rows.iter().map(|c| c.plain.worst_xtrack_err).collect();
        let guarded: Vec<f64> = rows.iter().map(|c| c.guarded_worst).collect();
        let engage_delays: Vec<f64> = rows.iter().filter_map(|c| c.engage_delay).collect();
        println!(
            "{:<20} {:>16} {:>16} {:>14}",
            attack.name(),
            fmt_mean_std(&plain),
            fmt_mean_std(&guarded),
            if engage_delays.is_empty() {
                format!("0/{}", seeds.len())
            } else {
                format!(
                    "{}/{} @{}s",
                    engage_delays.len(),
                    seeds.len(),
                    fmt_mean_std(&engage_delays)
                )
            }
        );
    }
    Ok(())
}
