//! Arc-length-parameterised reference paths.
//!
//! A [`Track`] is a polyline resampled at uniform spacing, supporting the
//! three queries every AD controller and assertion needs:
//!
//! * `point_at(s)` / `heading_at(s)` / `curvature_at(s)` — geometry at an
//!   arc-length station;
//! * `project(point)` — nearest station, *signed* cross-track error
//!   (positive when the point lies left of the path) and local tangent
//!   heading;
//! * `length()` / `is_closed()` — extent bookkeeping (closed tracks wrap).

use serde::{Deserialize, Serialize};

use crate::geometry::{wrap_angle, Vec2};
use crate::SimError;

/// Result of projecting a point onto a track.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Projection {
    /// Arc-length station of the closest point (m).
    pub station: f64,
    /// Signed lateral offset (m); positive = left of the path direction.
    pub cross_track: f64,
    /// Tangent heading of the path at the station (rad).
    pub heading: f64,
    /// Closest point on the path.
    pub point: Vec2,
}

/// An arc-length-parameterised path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Track {
    points: Vec<Vec2>,
    stations: Vec<f64>,
    headings: Vec<f64>,
    curvatures: Vec<f64>,
    closed: bool,
}

impl Track {
    /// Builds a track by resampling a waypoint polyline at `spacing` metres.
    ///
    /// Pass `closed = true` when the last waypoint should connect back to
    /// the first (loops, circles).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidTrack`] when fewer than two distinct
    /// waypoints are supplied, any waypoint is non-finite, or `spacing` is
    /// not positive.
    pub fn from_waypoints(
        waypoints: impl IntoIterator<Item = impl Into<Vec2>>,
        spacing: f64,
        closed: bool,
    ) -> Result<Self, SimError> {
        let raw: Vec<Vec2> = waypoints.into_iter().map(Into::into).collect();
        if !(spacing.is_finite() && spacing > 0.0) {
            return Err(SimError::InvalidTrack(format!(
                "spacing must be positive, got {spacing}"
            )));
        }
        if raw.iter().any(|p| !p.is_finite()) {
            return Err(SimError::InvalidTrack("non-finite waypoint".to_owned()));
        }
        let mut polyline = raw.clone();
        if closed {
            if let (Some(&first), Some(&last)) = (raw.first(), raw.last()) {
                if first.distance(last) > 1e-9 {
                    polyline.push(first);
                }
            }
        }
        let total: f64 = polyline.windows(2).map(|w| w[0].distance(w[1])).sum();
        if polyline.len() < 2 || total < spacing {
            return Err(SimError::InvalidTrack(format!(
                "need at least two distinct waypoints spanning >= spacing ({spacing} m)"
            )));
        }

        // Resample at uniform arc-length spacing.
        let n = (total / spacing).floor() as usize;
        let mut points = Vec::with_capacity(n + 1);
        let mut seg = 0usize;
        let mut seg_start_s = 0.0;
        for i in 0..=n {
            let target = (i as f64 * spacing).min(total);
            loop {
                let seg_len = polyline[seg].distance(polyline[seg + 1]);
                if target <= seg_start_s + seg_len || seg + 2 >= polyline.len() {
                    let alpha = if seg_len > 0.0 {
                        ((target - seg_start_s) / seg_len).clamp(0.0, 1.0)
                    } else {
                        0.0
                    };
                    points.push(polyline[seg].lerp(polyline[seg + 1], alpha));
                    break;
                }
                seg_start_s += seg_len;
                seg += 1;
            }
        }
        if !closed {
            // Make sure the final waypoint is represented exactly.
            let last = *polyline.last().expect("polyline has >= 2 points");
            if points
                .last()
                .is_none_or(|p| p.distance(last) > spacing * 0.25)
            {
                points.push(last);
            } else {
                *points.last_mut().expect("points is non-empty") = last;
            }
        } else if points
            .last()
            .zip(points.first())
            .is_some_and(|(l, f)| l.distance(*f) < spacing * 0.25)
        {
            // Avoid a duplicated closing point.
            points.pop();
        }
        if points.len() < 2 {
            return Err(SimError::InvalidTrack(
                "resampling produced fewer than two points".to_owned(),
            ));
        }

        Ok(Track::from_resampled(points, closed))
    }

    fn from_resampled(points: Vec<Vec2>, closed: bool) -> Self {
        let n = points.len();
        let mut stations = Vec::with_capacity(n);
        let mut acc = 0.0;
        stations.push(0.0);
        for w in points.windows(2) {
            acc += w[0].distance(w[1]);
            stations.push(acc);
        }

        let heading_of = |i: usize, j: usize| (points[j] - points[i]).angle();
        let mut headings = Vec::with_capacity(n);
        for i in 0..n {
            let h = if closed {
                let prev = (i + n - 1) % n;
                let next = (i + 1) % n;
                (points[next] - points[prev]).angle()
            } else if i == 0 {
                heading_of(0, 1)
            } else if i == n - 1 {
                heading_of(n - 2, n - 1)
            } else {
                (points[i + 1] - points[i - 1]).angle()
            };
            headings.push(h);
        }

        let mut curvatures = Vec::with_capacity(n);
        for i in 0..n {
            let (a, b, ds) = if closed {
                let prev = (i + n - 1) % n;
                let next = (i + 1) % n;
                let ds = points[prev].distance(points[i]) + points[i].distance(points[next]);
                (headings[prev], headings[next], ds)
            } else if i == 0 {
                (
                    headings[0],
                    headings[1],
                    points[0].distance(points[1]).max(1e-9),
                )
            } else if i == n - 1 {
                (
                    headings[n - 2],
                    headings[n - 1],
                    points[n - 2].distance(points[n - 1]).max(1e-9),
                )
            } else {
                let ds = points[i - 1].distance(points[i]) + points[i].distance(points[i + 1]);
                (headings[i - 1], headings[i + 1], ds)
            };
            curvatures.push(wrap_angle(b - a) / ds.max(1e-9));
        }

        Track {
            points,
            stations,
            headings,
            curvatures,
            closed,
        }
    }

    /// Straight line from `a` to `b`.
    ///
    /// # Errors
    ///
    /// See [`Track::from_waypoints`].
    pub fn line(a: impl Into<Vec2>, b: impl Into<Vec2>, spacing: f64) -> Result<Self, SimError> {
        Track::from_waypoints([a.into(), b.into()], spacing, false)
    }

    /// Closed circle of `radius` around `center`, traversed
    /// counter-clockwise starting at angle 0.
    ///
    /// # Errors
    ///
    /// See [`Track::from_waypoints`].
    pub fn circle(center: impl Into<Vec2>, radius: f64, spacing: f64) -> Result<Self, SimError> {
        if !(radius.is_finite() && radius > 0.0) {
            return Err(SimError::InvalidTrack(format!(
                "radius must be positive, got {radius}"
            )));
        }
        let center = center.into();
        let steps = ((std::f64::consts::TAU * radius / spacing).ceil() as usize).max(12);
        let pts = (0..steps).map(|i| {
            let a = std::f64::consts::TAU * i as f64 / steps as f64;
            center + Vec2::from_angle(a) * radius
        });
        Track::from_waypoints(pts, spacing, true)
    }

    /// Total arc length (m). For closed tracks this includes the closing
    /// segment.
    pub fn length(&self) -> f64 {
        let open_len = *self.stations.last().expect("track has >= 2 points");
        if self.closed {
            open_len
                + self
                    .points
                    .last()
                    .expect("non-empty")
                    .distance(self.points[0])
        } else {
            open_len
        }
    }

    /// Whether the track loops back on itself.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// The resampled points of the track.
    pub fn points(&self) -> &[Vec2] {
        &self.points
    }

    fn wrap_station(&self, s: f64) -> f64 {
        if self.closed {
            s.rem_euclid(self.length())
        } else {
            s.clamp(0.0, self.length())
        }
    }

    /// Point on the path at arc-length station `s` (clamped for open tracks,
    /// wrapped for closed tracks).
    pub fn point_at(&self, s: f64) -> Vec2 {
        let s = self.wrap_station(s);
        let open_len = *self.stations.last().expect("non-empty");
        if self.closed && s >= open_len {
            let last = *self.points.last().expect("non-empty");
            let close_len = last.distance(self.points[0]).max(1e-12);
            return last.lerp(self.points[0], (s - open_len) / close_len);
        }
        let idx = self.stations.partition_point(|&x| x <= s);
        if idx >= self.points.len() {
            return *self.points.last().expect("non-empty");
        }
        let i = idx - 1;
        let seg = self.stations[idx] - self.stations[i];
        let alpha = if seg > 0.0 {
            (s - self.stations[i]) / seg
        } else {
            0.0
        };
        self.points[i].lerp(self.points[idx], alpha)
    }

    /// Tangent heading at station `s` (rad).
    pub fn heading_at(&self, s: f64) -> f64 {
        self.sample_scalar(s, &self.headings, true)
    }

    /// Signed curvature at station `s` (1/m); positive = turning left.
    pub fn curvature_at(&self, s: f64) -> f64 {
        self.sample_scalar(s, &self.curvatures, false)
    }

    fn sample_scalar(&self, s: f64, values: &[f64], angular: bool) -> f64 {
        let s = self.wrap_station(s);
        let open_len = *self.stations.last().expect("non-empty");
        if self.closed && s >= open_len {
            return values[0];
        }
        let idx = self.stations.partition_point(|&x| x <= s);
        if idx >= values.len() {
            return *values.last().expect("non-empty");
        }
        let i = idx - 1;
        let seg = self.stations[idx] - self.stations[i];
        let alpha = if seg > 0.0 {
            (s - self.stations[i]) / seg
        } else {
            0.0
        };
        if angular {
            wrap_angle(values[i] + alpha * wrap_angle(values[idx] - values[i]))
        } else {
            values[i] + alpha * (values[idx] - values[i])
        }
    }

    /// Projects `point` onto the track: nearest station, signed cross-track
    /// offset and local tangent heading.
    pub fn project(&self, point: impl Into<Vec2>) -> Projection {
        let point = point.into();
        let n = self.points.len();
        let seg_count = if self.closed { n } else { n - 1 };

        let mut best_d2 = f64::INFINITY;
        let mut best = Projection {
            station: 0.0,
            cross_track: 0.0,
            heading: self.headings[0],
            point: self.points[0],
        };
        for i in 0..seg_count {
            let a = self.points[i];
            let b = self.points[(i + 1) % n];
            let ab = b - a;
            let len_sq = ab.norm_sq();
            let t = if len_sq > 0.0 {
                ((point - a).dot(ab) / len_sq).clamp(0.0, 1.0)
            } else {
                0.0
            };
            let proj = a.lerp(b, t);
            let d2 = point.distance(proj).powi(2);
            if d2 < best_d2 {
                best_d2 = d2;
                let seg_len = len_sq.sqrt();
                let station = self.stations[i] + t * seg_len;
                let tangent = if seg_len > 0.0 {
                    ab * (1.0 / seg_len)
                } else {
                    Vec2::from_angle(self.headings[i])
                };
                best = Projection {
                    station,
                    cross_track: tangent.cross(point - proj),
                    heading: tangent.angle(),
                    point: proj,
                };
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn line_length_and_sampling() {
        let t = Track::line([0.0, 0.0], [100.0, 0.0], 1.0).unwrap();
        assert!((t.length() - 100.0).abs() < 1e-9);
        let p = t.point_at(50.0);
        assert!((p.x - 50.0).abs() < 1e-9 && p.y.abs() < 1e-12);
        assert!(t.heading_at(50.0).abs() < 1e-12);
        assert!(t.curvature_at(50.0).abs() < 1e-12);
        assert!(!t.is_closed());
    }

    #[test]
    fn point_at_clamps_open_track() {
        let t = Track::line([0.0, 0.0], [10.0, 0.0], 1.0).unwrap();
        assert_eq!(t.point_at(-5.0), Vec2::new(0.0, 0.0));
        let end = t.point_at(50.0);
        assert!((end.x - 10.0).abs() < 1e-9);
    }

    #[test]
    fn circle_geometry() {
        let t = Track::circle([0.0, 0.0], 20.0, 1.0).unwrap();
        assert!(t.is_closed());
        let expected = std::f64::consts::TAU * 20.0;
        assert!(
            (t.length() - expected).abs() < 0.5,
            "len {} vs {expected}",
            t.length()
        );
        // Quarter way round the circle the heading is +90° from the start.
        let h0 = t.heading_at(0.0);
        let hq = t.heading_at(t.length() / 4.0);
        assert!((wrap_angle(hq - h0) - FRAC_PI_2).abs() < 0.05);
        // Curvature ≈ 1/r everywhere, positive (counter-clockwise). Local
        // resampling seams cause up to ~20 % error, so check each sample
        // loosely and the mean tightly.
        let ks: Vec<f64> = (0..10)
            .map(|i| t.curvature_at(t.length() * f64::from(i) / 10.0))
            .collect();
        for &k in &ks {
            assert!((k - 0.05).abs() < 0.015, "curvature {k}");
        }
        let mean = ks.iter().sum::<f64>() / ks.len() as f64;
        assert!((mean - 0.05).abs() < 0.005, "mean curvature {mean}");
    }

    #[test]
    fn closed_track_wraps_station() {
        let t = Track::circle([0.0, 0.0], 10.0, 0.5).unwrap();
        let len = t.length();
        let a = t.point_at(1.0);
        let b = t.point_at(1.0 + len);
        assert!(a.distance(b) < 1e-6);
    }

    #[test]
    fn projection_on_straight_line() {
        let t = Track::line([0.0, 0.0], [100.0, 0.0], 1.0).unwrap();
        let p = t.project([30.0, 2.0]);
        assert!((p.station - 30.0).abs() < 1e-9);
        assert!((p.cross_track - 2.0).abs() < 1e-9, "left is positive");
        let p = t.project([30.0, -2.0]);
        assert!((p.cross_track + 2.0).abs() < 1e-9, "right is negative");
        assert!(p.heading.abs() < 1e-12);
    }

    #[test]
    fn projection_clamps_to_endpoints() {
        let t = Track::line([0.0, 0.0], [10.0, 0.0], 1.0).unwrap();
        let p = t.project([-5.0, 1.0]);
        assert_eq!(p.station, 0.0);
        let p = t.project([50.0, 0.0]);
        assert!((p.station - 10.0).abs() < 1e-9);
    }

    #[test]
    fn projection_on_circle_points_inward_outward() {
        let t = Track::circle([0.0, 0.0], 20.0, 0.5).unwrap();
        // A point outside the counter-clockwise circle lies to the *right*
        // of the travel direction → negative cross-track.
        let p = t.project([25.0, 0.0]);
        assert!(p.cross_track < -4.0, "{}", p.cross_track);
        let p = t.project([15.0, 0.0]);
        assert!(p.cross_track > 4.0, "{}", p.cross_track);
    }

    #[test]
    fn invalid_tracks_are_rejected() {
        assert!(matches!(
            Track::line([0.0, 0.0], [0.0, 0.0], 1.0),
            Err(SimError::InvalidTrack(_))
        ));
        assert!(matches!(
            Track::line([0.0, 0.0], [10.0, 0.0], 0.0),
            Err(SimError::InvalidTrack(_))
        ));
        assert!(matches!(
            Track::line([f64::NAN, 0.0], [10.0, 0.0], 1.0),
            Err(SimError::InvalidTrack(_))
        ));
        assert!(matches!(
            Track::circle([0.0, 0.0], -1.0, 1.0),
            Err(SimError::InvalidTrack(_))
        ));
        assert!(matches!(
            Track::from_waypoints(Vec::<Vec2>::new(), 1.0, false),
            Err(SimError::InvalidTrack(_))
        ));
    }

    #[test]
    fn multi_segment_polyline_headings() {
        // L-shaped path: east then north.
        let t = Track::from_waypoints([[0.0, 0.0], [10.0, 0.0], [10.0, 10.0]], 0.5, false).unwrap();
        assert!(t.heading_at(2.0).abs() < 1e-6);
        assert!((t.heading_at(18.0) - FRAC_PI_2).abs() < 1e-6);
        assert!((t.length() - 20.0).abs() < 0.5);
        // Curvature spikes positive (left turn) around the corner.
        let k = t.curvature_at(10.0);
        assert!(k > 0.1, "corner curvature {k}");
    }

    #[test]
    fn stations_monotone_and_bounded() {
        let t = Track::circle([5.0, -3.0], 15.0, 1.0).unwrap();
        let mut prev = -1.0;
        for i in 0..t.points().len() {
            let s = t.stations[i];
            assert!(s > prev);
            prev = s;
        }
        assert!(prev <= t.length());
    }

    #[test]
    fn heading_interpolation_handles_wraparound() {
        // Path crossing the ±pi heading boundary: heading west, slightly
        // turning. Build a nearly-straight westward line.
        let t =
            Track::from_waypoints([[0.0, 0.0], [-50.0, 0.1], [-100.0, 0.0]], 1.0, false).unwrap();
        let h = t.heading_at(t.length() / 2.0);
        assert!(
            (h.abs() - PI).abs() < 0.1,
            "heading should be ~±pi, got {h}"
        );
    }
}
