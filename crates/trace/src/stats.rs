//! Summary statistics over signal values.
//!
//! Used by assertion mining (to derive thresholds from golden runs) and by
//! the experiment harnesses (to summarise detection latencies and error
//! magnitudes across seeds).

use serde::{Deserialize, Serialize};

use crate::Series;

/// Summary statistics of a set of scalar values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SummaryStats {
    /// Number of values summarised.
    pub count: usize,
    /// Smallest value.
    pub min: f64,
    /// Largest value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Root mean square.
    pub rms: f64,
    /// Mean absolute value.
    pub mean_abs: f64,
}

impl SummaryStats {
    /// Computes summary statistics over `values`.
    ///
    /// Returns `None` for an empty input or when any value is non-finite.
    pub fn from_values(values: impl IntoIterator<Item = f64>) -> Option<SummaryStats> {
        let mut count = 0usize;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        let mut sum_abs = 0.0;
        for v in values {
            if !v.is_finite() {
                return None;
            }
            count += 1;
            min = min.min(v);
            max = max.max(v);
            sum += v;
            sum_sq += v * v;
            sum_abs += v.abs();
        }
        if count == 0 {
            return None;
        }
        let n = count as f64;
        let mean = sum / n;
        let variance = (sum_sq / n - mean * mean).max(0.0);
        Some(SummaryStats {
            count,
            min,
            max,
            mean,
            std_dev: variance.sqrt(),
            rms: (sum_sq / n).sqrt(),
            mean_abs: sum_abs / n,
        })
    }

    /// Computes summary statistics over the values of a series.
    pub fn from_series(series: &Series) -> Option<SummaryStats> {
        SummaryStats::from_values(series.values())
    }
}

/// The `q`-quantile (`0.0..=1.0`) of `values` using linear interpolation
/// between order statistics.
///
/// Returns `None` for empty input, a `q` outside `[0, 1]`, or non-finite
/// values.
///
/// # Example
///
/// ```
/// let p95 = adassure_trace::stats::percentile([1.0, 2.0, 3.0, 4.0], 0.5);
/// assert_eq!(p95, Some(2.5));
/// ```
pub fn percentile(values: impl IntoIterator<Item = f64>, q: f64) -> Option<f64> {
    if !(0.0..=1.0).contains(&q) {
        return None;
    }
    let mut v: Vec<f64> = values.into_iter().collect();
    if v.is_empty() || v.iter().any(|x| !x.is_finite()) {
        return None;
    }
    v.sort_by(|a, b| a.partial_cmp(b).expect("values are finite"));
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(v[lo])
    } else {
        let alpha = pos - lo as f64;
        Some(v[lo] + alpha * (v[hi] - v[lo]))
    }
}

/// Largest absolute value in `values`, or `None` when empty/non-finite.
pub fn max_abs(values: impl IntoIterator<Item = f64>) -> Option<f64> {
    let mut out: Option<f64> = None;
    for v in values {
        if !v.is_finite() {
            return None;
        }
        out = Some(out.map_or(v.abs(), |m| m.max(v.abs())));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_known_values() {
        let s = SummaryStats::from_values([1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.count, 4);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.std_dev - (1.25f64).sqrt()).abs() < 1e-12);
        assert!((s.rms - (7.5f64).sqrt()).abs() < 1e-12);
        assert!((s.mean_abs - 2.5).abs() < 1e-12);
    }

    #[test]
    fn stats_reject_empty_and_non_finite() {
        assert_eq!(SummaryStats::from_values([]), None);
        assert_eq!(SummaryStats::from_values([1.0, f64::NAN]), None);
    }

    #[test]
    fn stats_handle_negative_values() {
        let s = SummaryStats::from_values([-2.0, 2.0]).unwrap();
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.mean_abs, 2.0);
        assert_eq!(s.rms, 2.0);
    }

    #[test]
    fn percentile_boundaries() {
        let v = [10.0, 20.0, 30.0];
        assert_eq!(percentile(v, 0.0), Some(10.0));
        assert_eq!(percentile(v, 1.0), Some(30.0));
        assert_eq!(percentile(v, 0.5), Some(20.0));
        assert_eq!(percentile(v, 1.5), None);
        assert_eq!(percentile([], 0.5), None);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [0.0, 10.0];
        assert!((percentile(v, 0.25).unwrap() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn max_abs_behaviour() {
        assert_eq!(max_abs([-3.0, 2.0]), Some(3.0));
        assert_eq!(max_abs([]), None);
        assert_eq!(max_abs([f64::INFINITY]), None);
    }

    #[test]
    fn from_series_matches_from_values() {
        let series = Series::from_samples("s", [(0.0, 1.0), (0.1, 3.0)]).unwrap();
        let a = SummaryStats::from_series(&series).unwrap();
        let b = SummaryStats::from_values([1.0, 3.0]).unwrap();
        assert_eq!(a, b);
    }
}
