use serde::{Deserialize, Serialize};

use crate::{SignalId, TraceError};

/// A single timestamped scalar sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Time of the sample (s).
    pub time: f64,
    /// Sampled value.
    pub value: f64,
}

impl Sample {
    /// Creates a sample.
    pub fn new(time: f64, value: f64) -> Self {
        Sample { time, value }
    }
}

/// A single signal sampled over time, with strictly increasing timestamps.
///
/// # Example
///
/// ```
/// use adassure_trace::Series;
///
/// # fn main() -> Result<(), adassure_trace::TraceError> {
/// let mut s = Series::new("speed");
/// s.push(0.0, 1.0)?;
/// s.push(0.1, 2.0)?;
/// assert_eq!(s.value_at(0.05), Some(1.5)); // linear interpolation
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    id: SignalId,
    samples: Vec<Sample>,
}

impl Series {
    /// Creates an empty series for the given signal.
    pub fn new(id: impl Into<SignalId>) -> Self {
        Series {
            id: id.into(),
            samples: Vec::new(),
        }
    }

    /// Creates a series from pre-collected samples.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::NonMonotonicTime`] or
    /// [`TraceError::NonFiniteSample`] if the samples violate the series
    /// invariants.
    pub fn from_samples(
        id: impl Into<SignalId>,
        samples: impl IntoIterator<Item = (f64, f64)>,
    ) -> Result<Self, TraceError> {
        let mut series = Series::new(id);
        for (t, v) in samples {
            series.push(t, v)?;
        }
        Ok(series)
    }

    /// The identifier of the recorded signal.
    pub fn id(&self) -> &SignalId {
        &self.id
    }

    /// Appends a sample.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::NonMonotonicTime`] if `time` is not strictly
    /// greater than the previous sample's time, and
    /// [`TraceError::NonFiniteSample`] if either component is NaN/infinite.
    pub fn push(&mut self, time: f64, value: f64) -> Result<(), TraceError> {
        if !time.is_finite() || !value.is_finite() {
            return Err(TraceError::NonFiniteSample {
                signal: self.id.as_str().to_owned(),
                time,
                value,
            });
        }
        if let Some(last) = self.samples.last() {
            if time <= last.time {
                return Err(TraceError::NonMonotonicTime {
                    signal: self.id.as_str().to_owned(),
                    last: last.time,
                    attempted: time,
                });
            }
        }
        self.samples.push(Sample::new(time, value));
        Ok(())
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the series holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The recorded samples, in time order.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// The values without timestamps, in time order.
    pub fn values(&self) -> impl Iterator<Item = f64> + '_ {
        self.samples.iter().map(|s| s.value)
    }

    /// First sample, if any.
    pub fn first(&self) -> Option<Sample> {
        self.samples.first().copied()
    }

    /// Last sample, if any.
    pub fn last(&self) -> Option<Sample> {
        self.samples.last().copied()
    }

    /// Time span `(start, end)` covered by the series, if non-empty.
    pub fn span(&self) -> Option<(f64, f64)> {
        match (self.samples.first(), self.samples.last()) {
            (Some(a), Some(b)) => Some((a.time, b.time)),
            _ => None,
        }
    }

    /// Linearly interpolated value at `time`.
    ///
    /// Returns `None` when the series is empty or `time` falls outside the
    /// recorded span.
    pub fn value_at(&self, time: f64) -> Option<f64> {
        let (start, end) = self.span()?;
        if time < start || time > end {
            return None;
        }
        let idx = self.samples.partition_point(|s| s.time < time);
        if idx < self.samples.len() && self.samples[idx].time == time {
            return Some(self.samples[idx].value);
        }
        // `time` lies strictly between samples[idx-1] and samples[idx].
        let lo = self.samples[idx - 1];
        let hi = self.samples[idx];
        let alpha = (time - lo.time) / (hi.time - lo.time);
        Some(lo.value + alpha * (hi.value - lo.value))
    }

    /// Value of the sample at or immediately before `time` (sample-and-hold).
    pub fn value_before(&self, time: f64) -> Option<f64> {
        let idx = self.samples.partition_point(|s| s.time <= time);
        idx.checked_sub(1).map(|i| self.samples[i].value)
    }

    /// Central/one-sided finite-difference derivative at sample index `i`.
    ///
    /// Returns `None` when fewer than two samples exist or `i` is out of
    /// bounds.
    pub fn derivative_at(&self, i: usize) -> Option<f64> {
        let n = self.samples.len();
        if n < 2 || i >= n {
            return None;
        }
        let (a, b) = if i == 0 {
            (self.samples[0], self.samples[1])
        } else if i == n - 1 {
            (self.samples[n - 2], self.samples[n - 1])
        } else {
            (self.samples[i - 1], self.samples[i + 1])
        };
        Some((b.value - a.value) / (b.time - a.time))
    }

    /// A new series containing the finite-difference derivative of `self`.
    ///
    /// The derivative series shares the parent's timestamps and is named
    /// `"d(<name>)/dt"`. Empty and single-sample series yield an empty
    /// derivative.
    pub fn differentiate(&self) -> Series {
        let id = SignalId::new(format!("d({})/dt", self.id));
        let mut out = Series::new(id);
        if self.samples.len() < 2 {
            return out;
        }
        for i in 0..self.samples.len() {
            let d = self
                .derivative_at(i)
                .expect("index in bounds with >=2 samples");
            out.push(self.samples[i].time, d)
                .expect("parent timestamps are strictly increasing and finite");
        }
        out
    }

    /// Sub-series restricted to `start <= t <= end` (sample times, no
    /// interpolation at the boundaries).
    pub fn slice_time(&self, start: f64, end: f64) -> Series {
        let mut out = Series::new(self.id.clone());
        out.samples = self
            .samples
            .iter()
            .copied()
            .filter(|s| s.time >= start && s.time <= end)
            .collect();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> Series {
        // 0.25 s steps are exactly representable, keeping expectations exact.
        Series::from_samples("r", (0..10).map(|i| (f64::from(i) * 0.25, f64::from(i)))).unwrap()
    }

    #[test]
    fn push_rejects_non_monotonic() {
        let mut s = Series::new("x");
        s.push(0.0, 1.0).unwrap();
        let err = s.push(0.0, 2.0).unwrap_err();
        assert!(matches!(err, TraceError::NonMonotonicTime { .. }));
        let err = s.push(-1.0, 2.0).unwrap_err();
        assert!(matches!(err, TraceError::NonMonotonicTime { .. }));
    }

    #[test]
    fn push_rejects_non_finite() {
        let mut s = Series::new("x");
        assert!(matches!(
            s.push(f64::NAN, 0.0),
            Err(TraceError::NonFiniteSample { .. })
        ));
        assert!(matches!(
            s.push(0.0, f64::INFINITY),
            Err(TraceError::NonFiniteSample { .. })
        ));
        assert!(s.is_empty());
    }

    #[test]
    fn interpolation_exact_and_between() {
        let s = ramp();
        assert_eq!(s.value_at(0.75), Some(3.0));
        let v = s.value_at(0.875).unwrap();
        assert!((v - 3.5).abs() < 1e-9);
        assert_eq!(s.value_at(-0.1), None);
        assert_eq!(s.value_at(99.0), None);
    }

    #[test]
    fn value_before_is_sample_and_hold() {
        let s = ramp();
        assert_eq!(s.value_before(0.8), Some(3.0));
        assert_eq!(s.value_before(0.75), Some(3.0));
        assert_eq!(s.value_before(-0.01), None);
        assert_eq!(s.value_before(99.0), Some(9.0));
    }

    #[test]
    fn derivative_of_ramp_is_constant() {
        let s = ramp();
        let d = s.differentiate();
        assert_eq!(d.len(), s.len());
        for v in d.values() {
            assert!((v - 4.0).abs() < 1e-9, "{v}");
        }
        assert_eq!(d.id().as_str(), "d(r)/dt");
    }

    #[test]
    fn derivative_of_short_series_is_empty() {
        let mut s = Series::new("x");
        assert!(s.differentiate().is_empty());
        s.push(0.0, 1.0).unwrap();
        assert!(s.differentiate().is_empty());
        assert_eq!(s.derivative_at(0), None);
    }

    #[test]
    fn slice_time_keeps_inclusive_window() {
        let s = ramp();
        let sliced = s.slice_time(0.5, 1.25);
        assert_eq!(sliced.len(), 4);
        assert_eq!(sliced.first().unwrap().time, 0.5);
        assert_eq!(sliced.last().unwrap().time, 1.25);
    }

    #[test]
    fn span_and_accessors() {
        let s = ramp();
        let (a, b) = s.span().unwrap();
        assert_eq!(a, 0.0);
        assert_eq!(b, 2.25);
        assert_eq!(Series::new("e").span(), None);
    }
}
