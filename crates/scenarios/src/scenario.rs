use serde::{Deserialize, Serialize};

use adassure_sim::track::Track;
use adassure_sim::SimError;

use crate::library;

/// The standard scenario set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScenarioKind {
    /// 400 m straight road.
    Straight,
    /// ~350 m S-curve with two opposing bends.
    SCurve,
    /// Straight road with a lane-change offset halfway.
    LaneChange,
    /// Closed urban block: rectangle with rounded corners.
    UrbanLoop,
    /// Closed circle of 25 m radius.
    Circle,
    /// Out-and-back hairpin: straight, 180° turn, straight back.
    Hairpin,
}

impl ScenarioKind {
    /// All scenario kinds, in a stable order.
    pub const ALL: [ScenarioKind; 6] = [
        ScenarioKind::Straight,
        ScenarioKind::SCurve,
        ScenarioKind::LaneChange,
        ScenarioKind::UrbanLoop,
        ScenarioKind::Circle,
        ScenarioKind::Hairpin,
    ];

    /// The scenarios exercised by the guardian experiments: F5 (mitigation)
    /// and the T5 robustness sweep share this set so their numbers are
    /// comparable — one straight workload and one with sustained curvature.
    pub const GUARDIAN_SET: [ScenarioKind; 2] = [ScenarioKind::Straight, ScenarioKind::SCurve];

    /// Short snake-case name (stable; used as row keys in reports).
    pub fn name(self) -> &'static str {
        match self {
            ScenarioKind::Straight => "straight",
            ScenarioKind::SCurve => "s_curve",
            ScenarioKind::LaneChange => "lane_change",
            ScenarioKind::UrbanLoop => "urban_loop",
            ScenarioKind::Circle => "circle",
            ScenarioKind::Hairpin => "hairpin",
        }
    }
}

impl std::fmt::Display for ScenarioKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A complete experiment workload.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Which member of the standard set this is.
    pub kind: ScenarioKind,
    /// The reference track.
    pub track: Track,
    /// Cruise speed on straights (m/s).
    pub cruise_speed: f64,
    /// Simulated time budget (s).
    pub duration: f64,
    /// Canonical attack activation time used by the experiments (s).
    pub attack_start: f64,
}

impl Scenario {
    /// Builds a standard scenario.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError::InvalidTrack`] from track construction (which
    /// would indicate a bug in the library definitions).
    pub fn of_kind(kind: ScenarioKind) -> Result<Scenario, SimError> {
        let (track, cruise_speed, duration) = match kind {
            ScenarioKind::Straight => (library::straight()?, 8.0, 75.0),
            ScenarioKind::SCurve => (library::s_curve()?, 8.0, 90.0),
            ScenarioKind::LaneChange => (library::lane_change()?, 8.0, 70.0),
            ScenarioKind::UrbanLoop => (library::urban_loop()?, 7.0, 90.0),
            ScenarioKind::Circle => (library::circle()?, 7.0, 70.0),
            ScenarioKind::Hairpin => (library::hairpin()?, 7.0, 95.0),
        };
        Ok(Scenario {
            kind,
            track,
            cruise_speed,
            duration,
            attack_start: 12.0,
        })
    }

    /// All standard scenarios.
    ///
    /// # Panics
    ///
    /// Panics if a library track fails to build (a bug, covered by tests).
    pub fn all() -> Vec<Scenario> {
        ScenarioKind::ALL
            .iter()
            .map(|&k| Scenario::of_kind(k).expect("library scenarios are valid"))
            .collect()
    }

    /// The scenario's route length (m).
    pub fn route_length(&self) -> f64 {
        self.track.length()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_scenarios_build() {
        let all = Scenario::all();
        assert_eq!(all.len(), 6);
        for s in &all {
            assert!(s.route_length() > 50.0, "{} too short", s.kind);
            assert!(s.duration > 0.0 && s.cruise_speed > 0.0);
            assert!(s.attack_start < s.duration);
        }
    }

    #[test]
    fn closed_and_open_mix() {
        let all = Scenario::all();
        let closed = all.iter().filter(|s| s.track.is_closed()).count();
        assert_eq!(closed, 2, "urban loop + circle are closed");
    }

    #[test]
    fn names_are_unique() {
        let names: std::collections::HashSet<_> =
            ScenarioKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), 6);
    }
}
